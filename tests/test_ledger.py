"""Tests for the run ledger, trend engine, and HTML dashboard.

Covers the observability guarantees this layer claims: crash-safe
JSONL appends (truncated-last-line tolerance and repair), atomic
retention rewrites, structural diffs over disjoint metric sets, the
MAD z-score drift detector on synthetic trends, a dashboard that is
genuinely self-contained HTML, per-scheme domain counters from the
scheme simulators, stale-shard skipping, the strict regression gate,
and the table renderer's alignment/escaping fixes.
"""

from __future__ import annotations

import importlib.util
import json
import math
import os
from html.parser import HTMLParser
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core.dcs import DcsScheme
from repro.core.schemes.hfg import HfgScheme
from repro.core.schemes.ocst import OcstScheme
from repro.core.schemes.razor import RazorScheme
from repro.core.trident.controller import TridentScheme
from repro.experiments.report import Table
from repro.obs import dashboard, trends
from repro.obs.ledger import LEDGER_VERSION, RunLedger, build_record
from repro.obs.recorder import SHARD_VERSION, TelemetryRecorder
from repro.obs.schema import check
from tests.util import synthetic_error_trace

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def telemetry_off_after_test():
    yield
    obs.disable()


def make_record(run_id="run", **counters):
    """A minimal current-version record for trend/drift tests."""
    return {
        "version": LEDGER_VERSION,
        "run_id": run_id,
        "timestamp": 0.0,
        "git_rev": "deadbeef",
        "config_digest": "cfg",
        "experiments": {},
        "counters": dict(counters),
        "domain": {},
        "checkpoint": {"hits": 0, "misses": 0, "hit_rate": None},
        "spans": {},
        "span_total_s": 0.0,
        "science": {},
        "notes": "",
    }


# ----------------------------------------------------------------------
# append/rewrite crash safety
# ----------------------------------------------------------------------


def test_append_and_read_round_trip(tmp_path):
    ledger = RunLedger(tmp_path)
    for i in range(3):
        ledger.append(make_record(run_id=f"r{i}", x=i))
    records = ledger.records()
    assert [r["run_id"] for r in records] == ["r0", "r1", "r2"]
    # one line per record, each terminated
    assert ledger.path.read_text().count("\n") == 3


def test_truncated_last_line_is_tolerated_and_repaired(tmp_path):
    ledger = RunLedger(tmp_path)
    ledger.append(make_record(run_id="ok0"))
    ledger.append(make_record(run_id="ok1"))
    # simulate a crash mid-append: last line cut short, no newline
    payload = ledger.path.read_bytes()
    ledger.path.write_bytes(payload[:-20])
    assert [r["run_id"] for r in ledger.records()] == ["ok0"]
    # the next append must terminate the fragment, not extend it
    ledger.append(make_record(run_id="ok2"))
    assert [r["run_id"] for r in ledger.records()] == ["ok0", "ok2"]


def test_reader_tolerates_concurrent_service_appends(tmp_path):
    """A ledger CLI reader racing the service's appender sees only
    whole records, in order — never a torn or duplicated one.

    This is the contract the service layer leans on: ``GET /ledger``
    and ``ledger list`` read while the job runner appends through the
    same ``O_APPEND`` one-line-per-write path.
    """
    import threading

    ledger = RunLedger(tmp_path)
    expected_keys = set(make_record())
    stop = threading.Event()
    torn: list[dict] = []

    def reader():
        while not stop.is_set():
            for i, record in enumerate(ledger.records()):
                # every observed record is complete and in append order
                if set(record) != expected_keys or record["run_id"] != f"r{i}":
                    torn.append(record)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for i in range(150):
            ledger.append(make_record(run_id=f"r{i}"))
    finally:
        stop.set()
        thread.join(timeout=60)
    assert torn == []
    assert [r["run_id"] for r in ledger.records()] == [
        f"r{i}" for i in range(150)
    ]


def test_prune_is_atomic_and_keeps_newest(tmp_path):
    ledger = RunLedger(tmp_path)
    for i in range(5):
        ledger.append(make_record(run_id=f"r{i}"))
    assert ledger.prune(keep=2) == 3
    assert [r["run_id"] for r in ledger.records()] == ["r3", "r4"]
    assert ledger.prune(keep=2) == 0
    # no temp files left behind
    assert [p.name for p in tmp_path.iterdir()] == [ledger.path.name]


def test_resolve_by_index_prefix_and_ambiguity(tmp_path):
    ledger = RunLedger(tmp_path)
    ledger.append(make_record(run_id="abc-1"))
    ledger.append(make_record(run_id="abd-2"))
    assert ledger.resolve("-1")["run_id"] == "abd-2"
    assert ledger.resolve("0")["run_id"] == "abc-1"
    assert ledger.resolve("abc")["run_id"] == "abc-1"
    with pytest.raises(LookupError, match="ambiguous"):
        ledger.resolve("ab")
    with pytest.raises(LookupError, match="no ledger record"):
        ledger.resolve("zzz")


def test_build_record_matches_checked_in_schema(tmp_path):
    metrics_doc = {
        "counters": {
            "experiment.ok": 2,
            "checkpoint.hits": 3,
            "checkpoint.misses": 1,
            "scheme.errors{scheme=Razor}": 7,
        },
        "histograms": {"span.runner.chip.s": {"sum": 1.5}},
    }
    record = build_record(metrics_doc=metrics_doc, rev="abc123")
    schema = json.loads(
        (REPO / "benchmarks" / "schemas" / "ledger.schema.json").read_text()
    )
    check(record, schema, label="record")
    # checkpoint counters are schedule-dependent: present in the
    # checkpoint section, absent from the determinism-view counters
    assert record["checkpoint"] == {"hits": 3, "misses": 1, "hit_rate": 0.75}
    assert "checkpoint.hits" not in record["counters"]
    assert record["domain"] == {"scheme.errors{scheme=Razor}": 7}
    assert record["spans"] == {"runner.chip": 1.5}


# ----------------------------------------------------------------------
# diff on disjoint metric sets
# ----------------------------------------------------------------------


def test_diff_records_handles_disjoint_metric_sets():
    a = make_record(run_id="a", shared=10, gone=1)
    b = make_record(run_id="b", shared=12, fresh=2)
    result = trends.diff_records(a, b)
    assert result["only_in_a"] == ["counter.gone"]
    assert result["only_in_b"] == ["counter.fresh"]
    changed = result["changed"]["counter.shared"]
    assert changed["delta"] == 2.0
    assert changed["rel"] == pytest.approx(0.2)
    assert result["counter_drift"] == 1


def test_diff_records_zero_drift_and_tolerance():
    a = make_record(run_id="a", x=100)
    b = make_record(run_id="b", x=101)
    assert trends.diff_records(a, a)["changed"] == {}
    assert trends.diff_records(a, b, rel_tolerance=0.02)["changed"] == {}
    assert trends.diff_records(a, b)["counter_drift"] == 1


# ----------------------------------------------------------------------
# MAD drift detection on synthetic trends
# ----------------------------------------------------------------------


def test_robust_z_zero_mad_semantics():
    window = [5.0, 5.0, 5.0, 5.0]
    assert trends.robust_z(5.0, window) == 0.0
    assert trends.robust_z(5.1, window) == math.inf
    noisy = [10.0, 11.0, 10.0, 12.0, 11.0]
    assert abs(trends.robust_z(11.0, noisy)) < 1.0
    assert trends.robust_z(30.0, noisy) > 10.0


def test_detect_drift_flags_step_change_not_noise():
    steady = [make_record(run_id=f"s{i}", metric=10 + (i % 2)) for i in range(6)]
    quiet = trends.detect_drift(steady + [make_record(run_id="q", metric=11)])
    assert quiet and not any(f["drifted"] for f in quiet)
    loud = trends.detect_drift(steady + [make_record(run_id="l", metric=40)])
    (finding,) = [f for f in loud if f["metric"] == "counter.metric"]
    assert finding["drifted"] and finding["z"] > finding["threshold"]


def test_detect_drift_needs_history_and_skips_foreign_versions():
    records = [make_record(run_id=f"r{i}", x=1) for i in range(2)]
    assert trends.detect_drift(records) == []
    old = dict(make_record(run_id="old", x=999), version=LEDGER_VERSION + 1)
    series = trends.history([old] + [make_record(run_id=f"n{i}", x=1) for i in range(3)])
    assert series["counter.x"] == [1.0, 1.0, 1.0]


def test_timing_metrics_use_looser_threshold():
    records = [make_record(run_id=f"r{i}") for i in range(5)]
    for i, record in enumerate(records):
        record["spans"] = {"runner.chip": 1.0 + 0.05 * (i % 2)}
    records.append(make_record(run_id="latest"))
    records[-1]["spans"] = {"runner.chip": 1.2}
    findings = trends.detect_drift(records)
    (finding,) = [f for f in findings if f["metric"] == "span.runner.chip"]
    assert finding["threshold"] == 6.0


# ----------------------------------------------------------------------
# dashboard HTML: valid, self-contained, sparkline per series
# ----------------------------------------------------------------------


class _Audit(HTMLParser):
    def __init__(self):
        super().__init__()
        self.tags = []
        self.sparks = 0

    def handle_starttag(self, tag, attrs):
        self.tags.append(tag)
        if tag == "svg" and ("class", "spark") in attrs:
            self.sparks += 1


def test_dashboard_is_selfcontained_with_sparkline_per_series(tmp_path):
    ledger = RunLedger(tmp_path)
    for i in range(4):
        record = make_record(run_id=f"r{i}", ok=3, errors=i)
        record["spans"] = {"runner.chip": 1.0 + i}
        record["span_total_s"] = 1.0 + i
        record["domain"] = {
            "scheme.errors{scheme=Razor}": 5 + i,
            "scheme.rollbacks{scheme=Razor}": 5 + i,
            "scheme.errors{scheme=Trident}": 2,
            "scheme.rollbacks{scheme=Trident}": 1,
        }
        ledger.append(record)
    records = ledger.records()
    html_text = dashboard.render_dashboard(records, trace_path="trace.json")

    audit = _Audit()
    audit.feed(html_text)
    audit.close()
    # every ledger series gets a sparkline
    assert audit.sparks == len(trends.history(records))
    # self-contained: no scripts, stylesheets, images, or frames
    assert not {"script", "link", "img", "iframe"} & set(audit.tags)
    assert "http" not in html_text.replace("https://ui.perfetto.dev", "")
    # per-scheme breakdown pivots the labelled domain counters
    assert "Razor" in html_text and "Trident" in html_text
    assert "rollbacks" in html_text


def test_dashboard_renders_empty_ledger():
    html_text = dashboard.render_dashboard([])
    audit = _Audit()
    audit.feed(html_text)
    assert audit.sparks == 0
    assert "no data yet" in html_text


# ----------------------------------------------------------------------
# domain counters from the scheme simulators
# ----------------------------------------------------------------------


def test_schemes_emit_labelled_domain_counters():
    recorder = obs.enable(TelemetryRecorder())
    err_class = np.array([0, 2, 0, 3, 1, 2, 0, 0], dtype=np.int8)
    trace = synthetic_error_trace(err_class)
    schemes = [
        RazorScheme(),
        HfgScheme(),
        OcstScheme(),
        DcsScheme("icslt"),
        TridentScheme(),
    ]
    for scheme in schemes:
        result = scheme.simulate(trace)
        assert result.scheme == scheme.name
    counters = recorder.metrics.snapshot()["counters"]
    for scheme in schemes:
        label = f"{{scheme={scheme.name}}}"
        assert counters[f"scheme.runs{label}"] == 1
        assert f"scheme.errors{label}" in counters
        assert f"scheme.rollbacks{label}" in counters
        assert f"scheme.replays{label}" in counters
    # spot-check semantics: Razor rolls back on every max violation,
    # HFG avoids them all by stretching the guardband
    assert counters["scheme.rollbacks{scheme=Razor}"] == 3
    assert counters["scheme.errors{scheme=Razor}"] == 3
    assert counters["scheme.rollbacks{scheme=HFG}"] == 0
    assert counters["scheme.predicted{scheme=HFG}"] == 3
    # Trident sees the consecutive error too
    assert counters["scheme.ce_count{scheme=Trident}"] == 1


def test_schemes_are_silent_when_telemetry_off():
    trace = synthetic_error_trace(np.array([0, 2, 0], dtype=np.int8))
    result = RazorScheme().simulate(trace)
    assert result.errors_total == 1
    assert not obs.enabled()


# ----------------------------------------------------------------------
# stale shard detection (reused telemetry dirs)
# ----------------------------------------------------------------------


def test_scan_shards_skips_stale_and_counts_them(tmp_path):
    recorder = TelemetryRecorder(shard_dir=tmp_path)
    recorder.metrics.inc("experiment.ok")
    assert recorder.flush() is not None
    assert recorder.shard_path().name.startswith(f"shard-v{SHARD_VERSION}-")

    doc = recorder.snapshot_doc()
    # legacy unversioned filename from an older schema
    (tmp_path / "shard-4242-1.json").write_text(json.dumps(doc))
    # foreign schema version in the filename
    (tmp_path / f"shard-v{SHARD_VERSION + 1}-77-1.json").write_text(json.dumps(doc))
    # filename/header pid mismatch (leftover renamed across runs)
    mismatched = dict(doc, pid=doc["pid"] + 1)
    (tmp_path / f"shard-v{SHARD_VERSION}-{doc['pid']}-2.json").write_text(
        json.dumps(mismatched)
    )
    # corrupt shard: skipped silently, never counted as stale
    (tmp_path / f"shard-v{SHARD_VERSION}-55-3.json").write_text("{trunc")

    docs, stale = obs.scan_shards(tmp_path)
    assert len(docs) == 1 and docs[0]["pid"] == os.getpid()
    assert stale == 3
    # the compatibility shim drops the count but not the filtering
    assert len(obs.load_shards(tmp_path)) == 1


# ----------------------------------------------------------------------
# check_regression: --strict gating and --ledger mode
# ----------------------------------------------------------------------


def load_check_regression():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO / "benchmarks" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_check_regression_strict_gates_metric_drift(tmp_path):
    cr = load_check_regression()
    metrics = tmp_path / "metrics.json"
    metrics.write_text(json.dumps({"counters": {"experiment.ok": 2}, "histograms": {}}))
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps({"metrics": {"tolerance": 0.20, "counters": {"experiment.ok": 1}}})
    )
    args = [
        "--metrics", str(metrics), "--baseline", str(baseline),
        "--out", str(tmp_path / "report.json"),
    ]
    assert cr.main(args) == 0  # >20% drift warns by default
    assert cr.main(args + ["--strict"]) == 1  # --strict turns it into a gate
    report = json.loads((tmp_path / "report.json").read_text())
    assert report["strict"] is True


def test_check_regression_ledger_mode_gates_trajectory(tmp_path):
    cr = load_check_regression()
    ledger = RunLedger(tmp_path / "L")
    for i in range(6):
        ledger.append(make_record(run_id=f"r{i}", metric=10))
    ledger.append(make_record(run_id="bad", metric=50))
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({}))
    args = [
        "--ledger", str(tmp_path / "L"), "--baseline", str(baseline),
        "--out", str(tmp_path / "report.json"),
    ]
    assert cr.main(args) == 0
    assert cr.main(args + ["--strict"]) == 1
    report = json.loads((tmp_path / "report.json").read_text())
    assert any(f["metric"] == "counter.metric" for f in report["ledger"])
    assert report["ledger_warnings"]


# ----------------------------------------------------------------------
# Table.render: numeric right-alignment and cell escaping
# ----------------------------------------------------------------------


def test_table_render_right_aligns_numeric_columns():
    table = Table("t", ["name", "count"])
    table.add_row("a", 5)
    table.add_row("bb", 123)
    lines = table.render().splitlines()
    assert lines[1] == "name  count"
    assert lines[3] == "a         5"
    assert lines[4] == "bb      123"


def test_table_render_keeps_text_columns_left_aligned():
    table = Table("t", ["name", "mixed"])
    table.add_row("a", 1)
    table.add_row("b", "x")  # a non-numeric cell makes the column textual
    lines = table.render().splitlines()
    assert lines[3].startswith("a     1")
    assert lines[4].startswith("b     x")


def test_table_render_escapes_separators_and_newlines():
    table = Table("t", ["name", "value"])
    table.add_row("evil|benchmark", "line1\nline2")
    rendered = table.render()
    assert "evil\\|benchmark" in rendered
    assert "line1\\nline2" in rendered
    assert len(rendered.splitlines()) == 4  # title, header, rule, one row


# ----------------------------------------------------------------------
# end-to-end: two CLI runs, zero counter drift, dashboard renders
# ----------------------------------------------------------------------


def test_cli_ledger_workflow_end_to_end(tmp_path, capsys):
    from repro.experiments.__main__ import main

    ledger_dir = tmp_path / "L"
    for _ in range(2):
        code = main([
            "fig3_4", "--fast", "--cycles", "200", "--jobs", "1",
            "--ledger-dir", str(ledger_dir),
        ])
        assert code == 0
    out = capsys.readouterr().out
    assert "ledger record" in out

    records = RunLedger(ledger_dir).records()
    assert len(records) == 2
    schema = json.loads(
        (REPO / "benchmarks" / "schemas" / "ledger.schema.json").read_text()
    )
    for record in records:
        check(record, schema, label="ledger record")
    assert records[0]["experiments"]["fig3_4"]["status"] == "ok"
    assert records[0]["science"]  # headline figure outputs captured
    # the domain section carries the new instrumentation
    assert any(name.startswith("etrace.") for name in records[0]["domain"])

    # same rev + same config => zero drift on determinism-view counters
    code = main([
        "ledger", "diff", "0", "-1", "--strict", "--ledger-dir", str(ledger_dir),
    ])
    assert code == 0
    assert "counter drift (determinism view): 0" in capsys.readouterr().out

    # the dashboard is written, parses, and has >= 10 sparkline series
    out_html = tmp_path / "dashboard.html"
    code = main([
        "ledger", "html", "--ledger-dir", str(ledger_dir), "--out", str(out_html),
    ])
    assert code == 0
    audit = _Audit()
    audit.feed(out_html.read_text())
    assert audit.sparks >= 10
    assert not {"script", "link", "img"} & set(audit.tags)

    code = main(["ledger", "list", "--ledger-dir", str(ledger_dir)])
    assert code == 0
    assert "2 run(s)" in capsys.readouterr().out
