"""Unit tests for error-trace construction from real timing runs."""

import numpy as np
import pytest

from repro.arch.operands import operand_size_class, owm_flag
from repro.core.scheme_sim import build_error_trace
from repro.timing.dta import ERR_CE


def test_alignment_sensitising_vs_initialising(error_trace16, mcf_trace16):
    assert len(error_trace16) == len(mcf_trace16) - 1
    assert (error_trace16.instr_sens == mcf_trace16.instrs[1:]).all()
    assert (error_trace16.instr_init == mcf_trace16.instrs[:-1]).all()
    assert (error_trace16.static_ids == mcf_trace16.static_ids[1:]).all()


def test_owm_and_sizes_follow_operands(error_trace16, mcf_trace16):
    owm = owm_flag(mcf_trace16.a_values, mcf_trace16.b_values, 16)
    assert (error_trace16.owm_sens == owm[1:]).all()
    assert (error_trace16.owm_init == owm[:-1]).all()
    sizes = operand_size_class(mcf_trace16.a_values, 16)
    assert (error_trace16.size_a == sizes[1:]).all()


def test_error_classes_consistent_with_arrivals(error_trace16):
    trace = error_trace16
    expect_max = trace.t_late > trace.clock_period
    expect_min = trace.t_early < trace.hold_constraint
    assert (trace.max_err == expect_max).all()
    assert (trace.min_err == expect_min).all()
    ce = expect_max & expect_min
    assert ((trace.err_class == ERR_CE) == ce).all()


def test_error_counts_sum(error_trace16):
    counts = error_trace16.error_counts()
    assert sum(counts.values()) == len(error_trace16)


def test_metadata(error_trace16, stage16_ntc):
    assert error_trace16.benchmark == "mcf"
    assert error_trace16.corner == "NTC"
    assert error_trace16.corner_vdd == pytest.approx(0.45)
    assert error_trace16.clock_period == pytest.approx(stage16_ntc.clock_period)
    assert error_trace16.hold_constraint == pytest.approx(
        stage16_ntc.hold_constraint
    )


def test_width_mismatch_rejected(stage16_ntc, chip16):
    from repro.arch.trace import BENCHMARKS, generate_trace

    wrong = generate_trace(BENCHMARKS["mcf"], 50, width=32)
    with pytest.raises(ValueError, match="width"):
        build_error_trace(stage16_ntc, chip16, wrong)


def test_deterministic(stage16_ntc, chip16, mcf_trace16):
    a = build_error_trace(stage16_ntc, chip16, mcf_trace16)
    b = build_error_trace(stage16_ntc, chip16, mcf_trace16)
    assert (a.err_class == b.err_class).all()
    assert np.allclose(a.t_late, b.t_late)


def test_reference_chip_has_both_error_kinds(error_trace16):
    """The FAST ch4 reference chip must exercise min and max paths."""
    counts = error_trace16.error_counts()
    assert counts["se_max"] > 0
    assert counts["se_min"] > 0


def test_max_only_chip(stage16_ntc, chip16_max_only, mcf_trace16):
    trace = build_error_trace(stage16_ntc, chip16_max_only, mcf_trace16)
    counts = trace.error_counts()
    assert counts["se_max"] > 0
    assert counts["se_min"] == 0
