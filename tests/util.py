"""Shared test helpers: random netlists and synthetic error traces."""

from __future__ import annotations

import numpy as np

from repro.core.scheme_sim import ErrorTrace
from repro.gates.celllib import GateKind
from repro.gates.netlist import Netlist
from repro.timing.dta import ERR_NONE

_TWO_INPUT = (
    GateKind.AND2,
    GateKind.OR2,
    GateKind.NAND2,
    GateKind.NOR2,
    GateKind.XOR2,
    GateKind.XNOR2,
)
_ONE_INPUT = (GateKind.BUF, GateKind.INV, GateKind.DBUF)


def random_netlist(
    rng: np.random.Generator,
    num_inputs: int = 6,
    num_gates: int = 40,
    num_outputs: int = 4,
    mux_fraction: float = 0.15,
) -> Netlist:
    """A random, structurally-valid combinational netlist."""
    netlist = Netlist("random")
    for i in range(num_inputs):
        netlist.add(GateKind.INPUT, (), name=f"in{i}")
    netlist.add(GateKind.CONST0, ())
    netlist.add(GateKind.CONST1, ())
    for _ in range(num_gates):
        top = netlist.num_nodes
        roll = rng.random()
        if roll < mux_fraction:
            fanins = tuple(int(rng.integers(0, top)) for _ in range(3))
            netlist.add(GateKind.MUX2, fanins)
        elif roll < mux_fraction + 0.2:
            kind = _ONE_INPUT[int(rng.integers(len(_ONE_INPUT)))]
            netlist.add(kind, (int(rng.integers(0, top)),))
        else:
            kind = _TWO_INPUT[int(rng.integers(len(_TWO_INPUT)))]
            fanins = (int(rng.integers(0, top)), int(rng.integers(0, top)))
            netlist.add(kind, fanins)
    total = netlist.num_nodes
    for i in range(num_outputs):
        netlist.mark_output(f"out{i}", int(rng.integers(num_inputs, total)))
    return netlist


def synthetic_error_trace(
    err_class: np.ndarray,
    instr_sens: np.ndarray | None = None,
    instr_init: np.ndarray | None = None,
    owm: np.ndarray | None = None,
    size_a: np.ndarray | None = None,
    size_b: np.ndarray | None = None,
    t_late: np.ndarray | None = None,
    t_early: np.ndarray | None = None,
    clock_period: float = 1000.0,
    hold_constraint: float = 120.0,
    benchmark: str = "synthetic",
    corner_vdd: float = 0.45,
) -> ErrorTrace:
    """Hand-built ErrorTrace for scheme unit tests.

    Defaults: a single repeated instruction context, with ``t_late``
    derived from the error classes (10 % beyond the clock on max errors).
    """
    err_class = np.asarray(err_class, dtype=np.int8)
    n = len(err_class)

    def default(arr, value, dtype):
        if arr is not None:
            return np.asarray(arr, dtype=dtype)
        return np.full(n, value, dtype=dtype)

    is_max = (err_class == 2) | (err_class == 3)
    is_min = (err_class == 1) | (err_class == 3)
    if t_late is None:
        t_late = np.where(is_max, clock_period * 1.1, clock_period * 0.8)
    if t_early is None:
        t_early = np.where(is_min, hold_constraint * 0.5, hold_constraint * 2.0)

    return ErrorTrace(
        benchmark=benchmark,
        corner="NTC",
        corner_vdd=corner_vdd,
        clock_period=clock_period,
        hold_constraint=hold_constraint,
        instr_sens=default(instr_sens, 1, np.int16),
        instr_init=default(instr_init, 2, np.int16),
        owm_sens=default(owm, True, bool),
        owm_init=default(owm, False, bool),
        size_a=default(size_a, True, bool),
        size_b=default(size_b, False, bool),
        static_ids=np.arange(n, dtype=np.int32),
        t_late=np.asarray(t_late, dtype=np.float32),
        t_early=np.asarray(t_early, dtype=np.float32),
        err_class=err_class,
    )


def all_none(n: int) -> np.ndarray:
    return np.full(n, ERR_NONE, dtype=np.int8)


def eval_word(builder, word, input_bits) -> int:
    """Evaluate a built word circuit on one input vector.

    ``input_bits`` is the flat list of primary-input values in creation
    order; returns the word's value as an unsigned integer (LSB first).
    """
    from repro.timing.levelize import levelize
    from repro.timing.logic_eval import evaluate_logic

    netlist = builder.netlist
    if not netlist.output_ids:
        for i, bit in enumerate(word):
            netlist.mark_output(f"__w[{i}]", bit)
    circuit = levelize(netlist)
    inputs = np.array([[bool(b)] for b in input_bits], dtype=bool)
    values = evaluate_logic(circuit, inputs)
    return sum(int(values[bit, 0]) << i for i, bit in enumerate(word))


def int_to_bits(value: int, width: int) -> list[int]:
    return [(value >> i) & 1 for i in range(width)]
