"""Shared test helpers.

The circuit/chip/trace builders the tests used to define privately now
live in :mod:`repro.qa.circuits` — one canonical implementation that
both the unit tests and the QA fuzz generators construct structures
from — and are re-exported here so test code keeps importing from one
place.  Only the word-level ALU helpers remain test-local.
"""

from __future__ import annotations

import numpy as np

from repro.qa.circuits import (  # noqa: F401 - re-exported for the tests
    ChokeFixture,
    all_none,
    chain_circuit,
    forced_choke_chip,
    random_gate_delays,
    random_netlist,
    synthetic_error_trace,
)


def eval_word(builder, word, input_bits) -> int:
    """Evaluate a built word circuit on one input vector.

    ``input_bits`` is the flat list of primary-input values in creation
    order; returns the word's value as an unsigned integer (LSB first).
    """
    from repro.timing.levelize import levelize
    from repro.timing.logic_eval import evaluate_logic

    netlist = builder.netlist
    if not netlist.output_ids:
        for i, bit in enumerate(word):
            netlist.mark_output(f"__w[{i}]", bit)
    circuit = levelize(netlist)
    inputs = np.array([[bool(b)] for b in input_bits], dtype=bool)
    values = evaluate_logic(circuit, inputs)
    return sum(int(values[bit, 0]) << i for i, bit in enumerate(word))


def int_to_bits(value: int, width: int) -> list[int]:
    return [(value >> i) & 1 for i in range(width)]
