"""Unit tests for Monte Carlo gate characterisation."""

import pytest

from repro.gates.celllib import GateKind
from repro.pv.montecarlo import characterize_gates
from repro.pv.delaymodel import NTC, STC


@pytest.fixture(scope="module")
def mc():
    return {
        corner.name: characterize_gates(corner, num_samples=4000, seed=11)
        for corner in (STC, NTC)
    }


def test_all_combinational_kinds_characterised(mc):
    assert GateKind.INV in mc["STC"]
    assert GateKind.MUX2 in mc["NTC"]
    assert GateKind.INPUT not in mc["STC"]


def test_ntc_relative_spread_dominates_stc(mc):
    for kind in mc["STC"]:
        assert (
            mc["NTC"][kind].relative_spread
            > 2.0 * mc["STC"][kind].relative_spread
        )


def test_ntc_worst_case_ratio_band(mc):
    """NTC tails reach several-x; STC stays mild -- the paper's premise.
    (The background VARIUS sigma alone gives ~3x at NTC; the designated
    strongly-affected population in the chip model pushes to ~20x.)"""
    inv_ntc = mc["NTC"][GateKind.INV]
    inv_stc = mc["STC"][GateKind.INV]
    assert inv_ntc.worst_ratio > 2.2
    assert inv_stc.worst_ratio < 2.0


def test_means_scale_with_cell_delay_coefficients(mc):
    stc = mc["STC"]
    assert stc[GateKind.XOR2].mean > stc[GateKind.INV].mean
    assert stc[GateKind.DBUF].mean > stc[GateKind.BUF].mean


def test_percentiles_ordered(mc):
    for dists in mc.values():
        for dist in dists.values():
            assert dist.p01 < dist.mean < dist.p99


def test_deterministic_for_seed():
    a = characterize_gates(NTC, num_samples=500, seed=3)
    b = characterize_gates(NTC, num_samples=500, seed=3)
    assert a[GateKind.INV].mean == b[GateKind.INV].mean


def test_kind_subset():
    result = characterize_gates(NTC, num_samples=200, kinds=(GateKind.INV,))
    assert set(result) == {GateKind.INV}


def test_too_few_samples_rejected():
    with pytest.raises(ValueError):
        characterize_gates(NTC, num_samples=1)
