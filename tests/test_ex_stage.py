"""Unit tests for EX-stage planning (clocking + hold-buffer insertion)."""

import numpy as np
import pytest

from repro.circuits.alu import AluOp
from repro.circuits.ex_stage import build_ex_stage
from repro.pv.delaymodel import NTC
from repro.timing.sta import arrival_times


def test_clock_period_carries_margin(stage16_ntc):
    assert stage16_ntc.clock_period > stage16_ntc.nominal_critical_delay
    # margin bounded: padding may not push the critical path past the clock
    assert stage16_ntc.nominal_critical_delay < stage16_ntc.clock_period


def test_hold_constraint_is_fraction_of_clock(stage16_ntc):
    assert 0 < stage16_ntc.hold_constraint < 0.25 * stage16_ntc.clock_period


def test_buffered_stage_meets_hold_nominally(stage16_ntc):
    assert stage16_ntc.nominal_min_delay >= stage16_ntc.hold_constraint


def test_bufferless_stage_violates_hold_nominally(stage16_ntc_bufferless):
    stage = stage16_ntc_bufferless
    assert stage.num_pad_cells == 0
    assert stage.nominal_min_delay < stage.hold_constraint


def test_buffered_stage_has_pad_cells(stage16_ntc):
    assert stage16_ntc.num_pad_cells > 0
    assert stage16_ntc.netlist.num_gates > stage16_ntc_gate_floor()


def stage16_ntc_gate_floor():
    return 1000  # the bare 16-bit ALU is ~1.2k gates


def test_pads_identical_across_corners(stage16_ntc, stage16_stc):
    """Pad planning scales with the corner's nominal delay factor on both
    sides, so STC and NTC stages share the same netlist structure."""
    assert stage16_ntc.num_pad_cells == stage16_stc.num_pad_cells
    assert stage16_ntc.netlist.num_nodes == stage16_stc.netlist.num_nodes


def test_stc_clock_is_much_faster(stage16_ntc, stage16_stc):
    assert stage16_stc.clock_period < 0.25 * stage16_ntc.clock_period


def test_parameter_validation():
    with pytest.raises(ValueError):
        build_ex_stage(16, NTC, hold_fraction=0.0)
    with pytest.raises(ValueError):
        build_ex_stage(16, NTC, hold_fraction=1.5)
    with pytest.raises(ValueError):
        build_ex_stage(16, NTC, hold_margin=0.9)


def test_functionality_preserved_with_pads(stage16_ntc):
    """Hold padding must not change the ALU's logic."""
    from repro.circuits.alu import alu_reference
    from repro.timing.logic_eval import evaluate_logic, output_words

    rng = np.random.default_rng(17)
    ops = rng.integers(0, len(AluOp), 30)
    a = rng.integers(0, 1 << 16, 30, dtype=np.uint64)
    b = rng.integers(0, 1 << 16, 30, dtype=np.uint64)
    values = evaluate_logic(
        stage16_ntc.circuit, stage16_ntc.encode_batch(ops, a, b)
    )
    got = output_words(stage16_ntc.circuit, values)
    for i in range(30):
        expected = alu_reference(AluOp(int(ops[i])), int(a[i]), int(b[i]), 16)
        assert int(got[i]) == expected


def test_pads_do_not_break_setup(stage16_ntc):
    """All padded paths stay within the clock headroom."""
    arrivals = arrival_times(stage16_ntc.netlist, stage16_ntc.nominal_delays, "max")
    worst = max(float(arrivals[bit]) for bit in stage16_ntc.alu.output_bits)
    assert worst <= stage16_ntc.clock_period


def test_fabricate_wires_through(stage16_ntc):
    chip = stage16_ntc.fabricate(seed=1)
    assert chip.corner is NTC
    assert chip.num_nodes == stage16_ntc.netlist.num_nodes


def test_timings_wrapper(stage16_ntc, chip16):
    rng = np.random.default_rng(3)
    ops = rng.integers(0, len(AluOp), 20)
    a = rng.integers(0, 1 << 16, 20, dtype=np.uint64)
    b = rng.integers(0, 1 << 16, 20, dtype=np.uint64)
    timings = stage16_ntc.timings(chip16, stage16_ntc.encode_batch(ops, a, b))
    assert len(timings) == 19
    assert (timings.t_late >= 0).all()


def test_pad_cells_are_dbufs(stage16_ntc):
    from repro.gates.celllib import GateKind

    for node in stage16_ntc.alu.pad_gate_ids[:50]:
        assert stage16_ntc.netlist.kind(node) is GateKind.DBUF
