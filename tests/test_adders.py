"""Unit and property tests for the structural adders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.adders import (
    add_sub_unit,
    carry_lookahead_adder,
    full_adder,
    half_adder,
    ripple_carry_adder,
)
from repro.gates.builder import NetlistBuilder

from tests.util import eval_word, int_to_bits

WIDTH = 8
MASK = (1 << WIDTH) - 1


def _run_adder(factory, a, b, cin):
    builder = NetlistBuilder()
    wa = builder.input_word("a", WIDTH)
    wb = builder.input_word("b", WIDTH)
    cin_node = builder.input("cin")
    total, cout = factory(builder, wa, wb, cin_node)
    value = eval_word(builder, total + [cout], int_to_bits(a, WIDTH) + int_to_bits(b, WIDTH) + [cin])
    return value & MASK, value >> WIDTH


@pytest.mark.parametrize("a,b,cin", [(0, 0, 0), (1, 1, 1), (0, 0, 1), (1, 0, 0)])
def test_full_adder_truth(a, b, cin):
    builder = NetlistBuilder()
    ia, ib, ic = builder.input("a"), builder.input("b"), builder.input("c")
    s, c = full_adder(builder, ia, ib, ic)
    value = eval_word(builder, [s, c], [a, b, cin])
    assert value == a + b + cin


@pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
def test_half_adder_truth(a, b):
    builder = NetlistBuilder()
    ia, ib = builder.input("a"), builder.input("b")
    s, c = half_adder(builder, ia, ib)
    assert eval_word(builder, [s, c], [a, b]) == a + b


@settings(max_examples=60, deadline=None)
@given(
    a=st.integers(0, MASK), b=st.integers(0, MASK), cin=st.integers(0, 1)
)
def test_ripple_carry_adder_matches_integer_addition(a, b, cin):
    total, cout = _run_adder(ripple_carry_adder, a, b, cin)
    expected = a + b + cin
    assert total == expected & MASK
    assert cout == expected >> WIDTH


@settings(max_examples=60, deadline=None)
@given(
    a=st.integers(0, MASK), b=st.integers(0, MASK), cin=st.integers(0, 1)
)
def test_lookahead_adder_matches_integer_addition(a, b, cin):
    total, cout = _run_adder(carry_lookahead_adder, a, b, cin)
    expected = a + b + cin
    assert total == expected & MASK
    assert cout == expected >> WIDTH


@settings(max_examples=40, deadline=None)
@given(
    a=st.integers(0, MASK), b=st.integers(0, MASK), cin=st.integers(0, 1),
    group=st.sampled_from([1, 2, 3, 4, 8]),
)
def test_lookahead_group_sizes(a, b, cin, group):
    builder = NetlistBuilder()
    wa = builder.input_word("a", WIDTH)
    wb = builder.input_word("b", WIDTH)
    cin_node = builder.input("cin")
    total, cout = carry_lookahead_adder(builder, wa, wb, cin_node, group_size=group)
    value = eval_word(
        builder, total + [cout], int_to_bits(a, WIDTH) + int_to_bits(b, WIDTH) + [cin]
    )
    assert value == a + b + cin


@settings(max_examples=60, deadline=None)
@given(a=st.integers(0, MASK), b=st.integers(0, MASK), sub=st.integers(0, 1))
def test_add_sub_unit(a, b, sub):
    builder = NetlistBuilder()
    wa = builder.input_word("a", WIDTH)
    wb = builder.input_word("b", WIDTH)
    sub_node = builder.input("sub")
    total, _ = add_sub_unit(builder, wa, wb, sub_node)
    value = eval_word(
        builder, total, int_to_bits(a, WIDTH) + int_to_bits(b, WIDTH) + [sub]
    )
    expected = (a - b) if sub else (a + b)
    assert value == expected & MASK


def test_add_sub_unit_lookahead_variant():
    builder = NetlistBuilder()
    wa = builder.input_word("a", WIDTH)
    wb = builder.input_word("b", WIDTH)
    sub_node = builder.input("sub")
    total, _ = add_sub_unit(builder, wa, wb, sub_node, use_lookahead=True)
    value = eval_word(
        builder, total, int_to_bits(200, WIDTH) + int_to_bits(57, WIDTH) + [1]
    )
    assert value == (200 - 57) & MASK


def test_width_mismatch_rejected():
    builder = NetlistBuilder()
    wa = builder.input_word("a", 4)
    wb = builder.input_word("b", 5)
    with pytest.raises(ValueError):
        ripple_carry_adder(builder, wa, wb)
    with pytest.raises(ValueError):
        carry_lookahead_adder(builder, wa, wb)


def test_lookahead_invalid_group_rejected():
    builder = NetlistBuilder()
    wa = builder.input_word("a", 4)
    wb = builder.input_word("b", 4)
    with pytest.raises(ValueError):
        carry_lookahead_adder(builder, wa, wb, group_size=0)


def test_lookahead_is_shallower_than_ripple():
    def depth(factory):
        builder = NetlistBuilder()
        wa = builder.input_word("a", 16)
        wb = builder.input_word("b", 16)
        total, cout = factory(builder, wa, wb)
        builder.output_word("s", total + [cout])
        return builder.build().logic_depth()

    assert depth(lambda b, x, y: carry_lookahead_adder(b, x, y)) < depth(
        lambda b, x, y: ripple_carry_adder(b, x, y)
    )
