"""Unit tests for circuit levelisation."""

from repro.gates.builder import NetlistBuilder
from repro.gates.celllib import GateKind
from repro.timing.levelize import levelize

from tests.util import random_netlist


def test_levelized_structure_small():
    builder = NetlistBuilder()
    a, b = builder.input("a"), builder.input("b")
    inv = builder.not_(a)
    and_ = builder.and_(inv, b)
    builder.output("y", and_)
    circuit = levelize(builder.build())

    assert circuit.depth == 2
    assert list(circuit.input_ids) == [a, b]
    assert list(circuit.output_ids) == [and_]
    # level 1 holds the INV, level 2 the AND
    assert circuit.levels[0][0].kind is GateKind.INV
    assert circuit.levels[1][0].kind is GateKind.AND2


def test_every_gate_appears_exactly_once(rng):
    netlist = random_netlist(rng, num_gates=60)
    circuit = levelize(netlist)
    seen = []
    for groups in circuit.levels:
        for group in groups:
            seen.extend(group.nodes.tolist())
    gates = [
        node for node, kind, fanins in netlist.iter_nodes() if fanins
    ]
    assert sorted(seen) == sorted(gates)


def test_groups_are_homogeneous_and_leveled(rng):
    netlist = random_netlist(rng, num_gates=80)
    circuit = levelize(netlist)
    node_levels = netlist.levels()
    for level_index, groups in enumerate(circuit.levels, start=1):
        for group in groups:
            for node in group.nodes:
                assert netlist.kind(int(node)) is group.kind
                assert node_levels[node] == level_index


def test_fanin_arrays_match_netlist(rng):
    netlist = random_netlist(rng, num_gates=50)
    circuit = levelize(netlist)
    for groups in circuit.levels:
        for group in groups:
            for i, node in enumerate(group.nodes):
                fanins = netlist.fanins(int(node))
                assert group.in0[i] == fanins[0]
                if len(fanins) > 1:
                    assert group.in1[i] == fanins[1]
                if len(fanins) > 2:
                    assert group.in2[i] == fanins[2]


def test_const_ids_extracted():
    builder = NetlistBuilder()
    a = builder.input("a")
    zero = builder.const(0)
    one = builder.const(1)
    builder.output("y", builder.mux(a, zero, one))
    circuit = levelize(builder.build())
    assert list(circuit.const0_ids) == [zero]
    assert list(circuit.const1_ids) == [one]


def test_depth_matches_logic_depth(alu8):
    circuit = levelize(alu8.netlist)
    assert circuit.depth == max(alu8.netlist.levels())
