"""Tests for the cycle-accurate pipeline and its cross-validation
against the analytic scheme models."""

import numpy as np
import pytest

from repro.arch.cpu import InOrderPipeline, MitigationKind, run_pipeline
from repro.arch.pipeline import DEFAULT_PIPELINE, PipelineConfig
from repro.arch.trace import BENCHMARKS, generate_trace
from repro.circuits.alu import AluOp, alu_reference
from repro.core.dcs import DcsScheme
from repro.core.schemes import RazorScheme
from repro.core.trident import TridentScheme
from repro.timing.dta import ERR_CE, ERR_NONE, ERR_SE_MAX


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(BENCHMARKS["mcf"], 400, width=16)


def _classes(trace, positions=(), value=ERR_SE_MAX):
    classes = np.full(len(trace) - 1, ERR_NONE, dtype=np.int8)
    for pos in positions:
        classes[pos] = value
    return classes


def test_clean_run_is_ideal(small_trace):
    stats = InOrderPipeline(
        small_trace, _classes(small_trace), MitigationKind.NONE
    ).run()
    assert stats.instructions == len(small_trace)
    assert stats.penalty_cycles(DEFAULT_PIPELINE.depth) == 0
    assert stats.flushes == 0


def test_results_are_functionally_correct(small_trace):
    stats = InOrderPipeline(
        small_trace, _classes(small_trace), MitigationKind.NONE
    ).run()
    for index in (0, 57, len(small_trace) - 1):
        expected = alu_reference(
            AluOp(int(small_trace.alu_ops[index])),
            int(small_trace.a_values[index]),
            int(small_trace.b_values[index]),
            16,
        )
        assert stats.results[index] == expected


def test_single_error_costs_one_pipeline_depth(small_trace):
    clean = InOrderPipeline(
        small_trace, _classes(small_trace), MitigationKind.RAZOR
    ).run()
    errant = InOrderPipeline(
        small_trace, _classes(small_trace, positions=(100,)), MitigationKind.RAZOR
    ).run()
    assert errant.flushes == 1
    assert errant.cycles - clean.cycles == DEFAULT_PIPELINE.depth


def test_none_mitigation_ignores_errors(small_trace):
    classes = _classes(small_trace, positions=(10, 20, 30))
    stats = InOrderPipeline(small_trace, classes, MitigationKind.NONE).run()
    assert stats.flushes == 0
    assert stats.penalty_cycles(DEFAULT_PIPELINE.depth) == 0


def test_dcs_learns_and_avoids(small_trace):
    """A recurring errant context flushes once, then gets stall-avoided."""
    # make every occurrence of one static instruction errant
    target = int(small_trace.instrs[50])
    positions = [
        j for j in range(len(small_trace) - 1)
        if int(small_trace.instrs[j + 1]) == target
    ]
    classes = _classes(small_trace, positions=positions)
    razor = InOrderPipeline(small_trace, classes, MitigationKind.RAZOR).run()
    dcs = InOrderPipeline(small_trace, classes, MitigationKind.DCS).run()
    assert dcs.flushes < razor.flushes
    assert dcs.errors_avoided > 0
    assert dcs.cycles < razor.cycles


def test_trident_covers_ce_with_two_stalls(small_trace):
    positions = [j for j in range(10, len(small_trace) - 1, 40)]
    classes = _classes(small_trace, positions=positions, value=ERR_CE)
    trident = InOrderPipeline(small_trace, classes, MitigationKind.TRIDENT).run()
    assert trident.errors_avoided > 0
    # DCS grants only one extra cycle but is blind to the trailing min
    # violation, so it never flushes twice for the same CE
    dcs = InOrderPipeline(small_trace, classes, MitigationKind.DCS).run()
    assert dcs.flushes <= len(positions)


def test_emergent_matches_analytic_razor(error_trace16, mcf_trace16):
    emergent = run_pipeline(mcf_trace16, error_trace16, MitigationKind.RAZOR)
    analytic = RazorScheme().simulate(error_trace16)
    assert emergent.penalty_cycles(DEFAULT_PIPELINE.depth) == analytic.penalty_cycles


def test_emergent_matches_analytic_dcs(error_trace16, mcf_trace16):
    emergent = run_pipeline(mcf_trace16, error_trace16, MitigationKind.DCS)
    analytic = DcsScheme("icslt", 128).simulate(error_trace16)
    assert emergent.flushes == analytic.flushes
    assert emergent.penalty_cycles(DEFAULT_PIPELINE.depth) == pytest.approx(
        analytic.penalty_cycles, rel=0.05
    )


def test_emergent_matches_analytic_trident(error_trace16, mcf_trace16):
    emergent = run_pipeline(mcf_trace16, error_trace16, MitigationKind.TRIDENT)
    analytic = TridentScheme(128).simulate(error_trace16)
    assert emergent.flushes == analytic.flushes
    assert emergent.penalty_cycles(DEFAULT_PIPELINE.depth) == pytest.approx(
        analytic.penalty_cycles, rel=0.05
    )


def test_scheme_ordering_is_emergent(error_trace16, mcf_trace16):
    cycles = {
        kind: run_pipeline(mcf_trace16, error_trace16, kind).cycles
        for kind in (MitigationKind.RAZOR, MitigationKind.DCS, MitigationKind.TRIDENT)
    }
    assert cycles[MitigationKind.DCS] < cycles[MitigationKind.RAZOR]
    assert cycles[MitigationKind.TRIDENT] < cycles[MitigationKind.RAZOR]


def test_validation_errors(small_trace):
    with pytest.raises(ValueError, match="instruction pairs"):
        InOrderPipeline(small_trace, np.zeros(5, dtype=np.int8))
    with pytest.raises(ValueError, match="EX stage"):
        InOrderPipeline(
            small_trace, _classes(small_trace), ex_index=0
        )


def test_progress_guard():
    trace = generate_trace(BENCHMARKS["mcf"], 50, width=16)
    cpu = InOrderPipeline(trace, _classes(trace), MitigationKind.NONE)
    with pytest.raises(RuntimeError):
        cpu.run(max_cycles=3)


def test_shallower_pipeline_costs_less_per_flush(small_trace):
    classes = _classes(small_trace, positions=(100,))
    deep = InOrderPipeline(
        small_trace, classes, MitigationKind.RAZOR,
        pipeline=PipelineConfig(depth=11),
    ).run()
    shallow = InOrderPipeline(
        small_trace, classes, MitigationKind.RAZOR,
        pipeline=PipelineConfig(depth=5),
    ).run()
    assert deep.penalty_cycles(11) > shallow.penalty_cycles(5)
