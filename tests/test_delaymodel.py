"""Unit tests for the trans-regional delay model."""

import numpy as np
import pytest

from repro.gates.celllib import GateKind
from repro.pv.delaymodel import (
    NTC,
    STC,
    VTH_NOMINAL,
    Corner,
    delay_factor,
    drive_strength,
    dynamic_energy_factor,
    leakage_power_factor,
    nominal_delay_factor,
    nominal_gate_delays,
)


def test_reference_normalisation():
    assert delay_factor(STC.vdd, VTH_NOMINAL) == pytest.approx(1.0)
    assert nominal_delay_factor(STC) == pytest.approx(1.0)


def test_ntc_is_several_times_slower_than_stc():
    slowdown = nominal_delay_factor(NTC)
    assert 4.0 < slowdown < 12.0  # the paper cites ~10x


def test_delay_increases_with_vth():
    vths = np.linspace(0.1, 0.6, 40)
    factors = np.asarray(delay_factor(NTC.vdd, vths))
    assert (np.diff(factors) > 0).all()


def test_drive_decreases_with_vth():
    assert drive_strength(0.8, 0.2) > drive_strength(0.8, 0.4)


def test_same_dvth_hurts_ntc_far_more_than_stc():
    """The paper's central mechanism: PV sensitivity amplification at NTC."""
    dvth = 0.10
    stc_ratio = delay_factor(STC.vdd, VTH_NOMINAL + dvth) / nominal_delay_factor(STC)
    ntc_ratio = delay_factor(NTC.vdd, VTH_NOMINAL + dvth) / nominal_delay_factor(NTC)
    assert ntc_ratio > 2.0 * stc_ratio


def test_twenty_x_tail_reachable_at_ntc():
    """A strong (but physical) ΔVth reaches the paper's ~20x deviation at
    NTC while staying below ~3x at STC."""
    dvth = 0.18
    ntc_ratio = delay_factor(NTC.vdd, VTH_NOMINAL + dvth) / nominal_delay_factor(NTC)
    stc_ratio = delay_factor(STC.vdd, VTH_NOMINAL + dvth) / nominal_delay_factor(STC)
    assert ntc_ratio > 15.0
    assert stc_ratio < 3.5


def test_fast_gates_from_negative_dvth():
    ratio = delay_factor(NTC.vdd, VTH_NOMINAL - 0.10) / nominal_delay_factor(NTC)
    assert ratio < 0.5  # the choke-buffer mechanism


def test_vectorised_and_scalar_agree():
    vths = np.array([0.25, 0.33, 0.40])
    vector = np.asarray(delay_factor(0.6, vths))
    for vth, expected in zip(vths, vector):
        assert delay_factor(0.6, float(vth)) == pytest.approx(float(expected))


def test_no_overflow_for_extreme_overdrive():
    assert np.isfinite(delay_factor(5.0, 0.0))
    assert np.isfinite(delay_factor(0.2, 0.6))


def test_nominal_gate_delays(alu8):
    delays_stc = nominal_gate_delays(alu8.netlist, STC)
    delays_ntc = nominal_gate_delays(alu8.netlist, NTC)
    assert len(delays_stc) == alu8.netlist.num_nodes
    # sources have zero delay
    for node in alu8.netlist.input_ids:
        assert delays_stc[node] == 0.0
    # gates: NTC slower by the nominal factor
    gate = alu8.netlist.output_ids[0]
    assert delays_ntc[gate] == pytest.approx(
        delays_stc[gate] * nominal_delay_factor(NTC)
    )
    kind = alu8.netlist.kind(gate)
    assert kind is not GateKind.INPUT


def test_energy_factors():
    assert dynamic_energy_factor(STC) == pytest.approx(1.0)
    assert dynamic_energy_factor(NTC) == pytest.approx((0.45 / 0.8) ** 2)
    assert leakage_power_factor(NTC) < leakage_power_factor(STC) == pytest.approx(1.0)


def test_corner_str():
    assert "NTC" in str(NTC) and "0.45" in str(NTC)
    corner = Corner("X", 0.6)
    assert corner.vdd == 0.6
