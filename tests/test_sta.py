"""Unit tests for static timing analysis."""

import numpy as np
import pytest

from repro.gates.builder import NetlistBuilder
from repro.timing.sta import (
    arrival_times,
    critical_path_delay,
    output_arrivals,
    shortest_path_delay,
)


@pytest.fixture()
def reconvergent():
    """a splits into a 3-gate branch and a 1-gate branch, both into an OR."""
    builder = NetlistBuilder()
    a = builder.input("a")
    slow = builder.buf(builder.buf(builder.buf(a)))
    fast = builder.buf(a)
    out = builder.or_(slow, fast)
    builder.output("y", out)
    netlist = builder.build()
    delays = np.zeros(netlist.num_nodes)
    for node in range(netlist.num_nodes):
        if netlist.fanins(node):
            delays[node] = 10.0
    return netlist, delays, out


def test_longest_arrival(reconvergent):
    netlist, delays, out = reconvergent
    arrivals = arrival_times(netlist, delays, "max")
    assert arrivals[out] == pytest.approx(40.0)  # 3 bufs + or


def test_shortest_arrival(reconvergent):
    netlist, delays, out = reconvergent
    arrivals = arrival_times(netlist, delays, "min")
    assert arrivals[out] == pytest.approx(20.0)  # 1 buf + or


def test_critical_and_shortest_path_delay(reconvergent):
    netlist, delays, _ = reconvergent
    assert critical_path_delay(netlist, delays) == pytest.approx(40.0)
    assert shortest_path_delay(netlist, delays) == pytest.approx(20.0)


def test_sources_arrive_at_zero(reconvergent):
    netlist, delays, _ = reconvergent
    for mode in ("max", "min"):
        assert arrival_times(netlist, delays, mode)[0] == 0.0


def test_output_arrivals_keyed_by_name(reconvergent):
    netlist, delays, _ = reconvergent
    by_name = output_arrivals(netlist, delays, "max")
    assert by_name == {"y": pytest.approx(40.0)}


def test_invalid_mode_rejected(reconvergent):
    netlist, delays, _ = reconvergent
    with pytest.raises(ValueError):
        arrival_times(netlist, delays, "typ")


def test_static_bounds_dynamic(alu8, alu8_circuit):
    """Static max/min arrivals bound every dynamic sensitised delay."""
    from repro.timing.dta import cycle_timings

    rng = np.random.default_rng(30)
    delays = np.where(
        [bool(alu8.netlist.fanins(n)) for n in range(alu8.netlist.num_nodes)],
        rng.uniform(2.0, 20.0, alu8.netlist.num_nodes),
        0.0,
    )
    static_max = critical_path_delay(alu8.netlist, delays)
    static_min = shortest_path_delay(alu8.netlist, delays)

    ops = rng.integers(0, 13, size=40)
    a = rng.integers(0, 256, size=40, dtype=np.uint64)
    b = rng.integers(0, 256, size=40, dtype=np.uint64)
    timings = cycle_timings(alu8_circuit, alu8.encode_batch(ops, a, b), delays)
    assert (timings.t_late <= static_max + 1e-6).all()
    finite = np.isfinite(timings.t_early)
    assert (timings.t_early[finite] >= static_min - 1e-6).all()
