"""Unit tests for the pipeline cost model."""

import pytest

from repro.arch.pipeline import DEFAULT_PIPELINE, PipelineConfig


def test_defaults_match_fabscalar_core1():
    assert DEFAULT_PIPELINE.depth == 11
    assert DEFAULT_PIPELINE.fetch_width == 4


def test_flush_penalty_equals_depth():
    assert PipelineConfig(depth=7).flush_penalty == 7
    assert DEFAULT_PIPELINE.flush_penalty == 11


def test_stall_penalty_is_one():
    assert DEFAULT_PIPELINE.stall_penalty == 1


def test_validation():
    with pytest.raises(ValueError):
        PipelineConfig(depth=1)
    with pytest.raises(ValueError):
        PipelineConfig(depth=5, fetch_width=0)


def test_frozen():
    with pytest.raises(Exception):
        DEFAULT_PIPELINE.depth = 5
