"""Unit tests for the ISA and its ALU mapping."""

from repro.arch.isa import (
    FIG3_4_INSTRS,
    FIG4_2_INSTRS,
    FIG4_3_INSTRS,
    INSTRUCTIONS,
    Instr,
    instr_to_alu,
)
from repro.circuits.alu import AluOp


def test_every_instruction_has_a_spec():
    assert set(INSTRUCTIONS) == set(Instr)


def test_alu_mapping_spot_checks():
    assert instr_to_alu(Instr.ADDU) is AluOp.ADD
    assert instr_to_alu(Instr.ADDIU) is AluOp.ADD
    assert instr_to_alu(Instr.SUBU) is AluOp.SUB
    assert instr_to_alu(Instr.SRL) is AluOp.LSR
    assert instr_to_alu(Instr.SRA) is AluOp.ASR
    assert instr_to_alu(Instr.SRAV) is AluOp.ASR
    assert instr_to_alu(Instr.LUI) is AluOp.SLL
    assert instr_to_alu(Instr.MFLO) is AluOp.BUFFER
    assert instr_to_alu(Instr.NOR) is AluOp.NOR


def test_immediate_flags():
    assert INSTRUCTIONS[Instr.ADDIU].immediate
    assert INSTRUCTIONS[Instr.ANDI].immediate
    assert INSTRUCTIONS[Instr.ORI].immediate
    assert not INSTRUCTIONS[Instr.ADDU].immediate


def test_shift_flags():
    for instr in (Instr.SLL, Instr.SRL, Instr.SRA, Instr.SLLV, Instr.SRAV, Instr.LUI):
        assert INSTRUCTIONS[instr].shift
    assert not INSTRUCTIONS[Instr.XOR].shift


def test_figure_instruction_lists_match_the_paper():
    assert len(FIG3_4_INSTRS) == 8
    assert len(FIG4_2_INSTRS) == 15
    assert len(FIG4_3_INSTRS) == 8
    assert Instr.NOR in FIG3_4_INSTRS
    assert Instr.MFLO in FIG4_2_INSTRS
    assert Instr.SLLV in FIG4_3_INSTRS
    # the figure lists only reference defined instructions
    for group in (FIG3_4_INSTRS, FIG4_2_INSTRS, FIG4_3_INSTRS):
        assert set(group) <= set(Instr)


def test_opcodes_fit_eight_bits():
    assert all(0 <= int(i) < 256 for i in Instr)
