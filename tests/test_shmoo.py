"""Tests for the shmoo / yield analysis."""

import numpy as np
import pytest

from repro.analysis import shmoo_sweep
from repro.arch.trace import BENCHMARKS, generate_trace


@pytest.fixture(scope="module")
def sweep(stage16_ntc):
    trace = generate_trace(BENCHMARKS["gzip"], 600, width=16)
    return shmoo_sweep(
        stage16_ntc,
        trace,
        chip_seeds=range(6),
        margins=np.array([0.0, 0.18, 0.4, 0.8, 1.5]),
    )


def test_shapes(sweep):
    assert sweep.max_error_rates.shape == (6, 5)
    assert sweep.error_rates.shape == (6, 5)
    assert len(sweep.chip_seeds) == 6


def test_max_error_rate_monotone_in_margin(sweep):
    """More clock margin can only reduce setup violations."""
    diffs = np.diff(sweep.max_error_rates, axis=1)
    assert (diffs <= 1e-12).all()


def test_yield_reaches_one_at_large_margin(sweep):
    curve = sweep.yield_curve()
    assert curve[-1] >= curve[0]
    # setup violations must be gone at +150 % margin
    assert (sweep.max_error_rates[:, -1] == 0).all()


def test_chip_variation_is_visible(sweep):
    """Different chips of the batch shmoo differently."""
    at_nominal = sweep.error_rates[:, 1]  # the stage's own margin point
    assert at_nominal.min() != at_nominal.max()


def test_margin_for_yield(sweep):
    margin = sweep.margin_for_yield(target=0.5)
    assert margin is None or margin in sweep.margins
    impossible = sweep.margin_for_yield(target=2.0)
    assert impossible is None


def test_render(sweep):
    text = sweep.render()
    assert "shmoo" in text
    assert "yield" in text
    assert "chip  0" in text or "chip0" in text.replace(" ", "")


def test_empty_population_rejected(stage16_ntc):
    trace = generate_trace(BENCHMARKS["gzip"], 50, width=16)
    with pytest.raises(ValueError):
        shmoo_sweep(stage16_ntc, trace, chip_seeds=())
