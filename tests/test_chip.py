"""Unit tests for fabricated-chip samples."""

import pytest

from repro.pv.chip import fabricate_chip
from repro.pv.delaymodel import NTC, STC


def test_fabricate_deterministic(alu8):
    a = fabricate_chip(alu8.netlist, NTC, seed=3)
    b = fabricate_chip(alu8.netlist, NTC, seed=3)
    assert (a.delays == b.delays).all()
    assert (a.affected_ids == b.affected_ids).all()


def test_different_seeds_differ(alu8):
    a = fabricate_chip(alu8.netlist, NTC, seed=3)
    b = fabricate_chip(alu8.netlist, NTC, seed=4)
    assert not (a.delays == b.delays).all()
    assert set(a.affected_ids) != set(b.affected_ids)


def test_affected_fraction_respected(alu8):
    chip = fabricate_chip(alu8.netlist, NTC, seed=1, affected_fraction=0.05)
    expected = round(0.05 * alu8.netlist.num_gates)
    assert len(chip.affected_ids) == expected


def test_affected_gates_are_gates_not_sources(alu8):
    chip = fabricate_chip(alu8.netlist, NTC, seed=2)
    for node in chip.affected_ids:
        assert alu8.netlist.fanins(int(node))


def test_zero_affected_fraction(alu8):
    chip = fabricate_chip(alu8.netlist, NTC, seed=1, affected_fraction=0.0)
    assert len(chip.affected_ids) == 0


def test_invalid_fraction_rejected(alu8):
    with pytest.raises(ValueError):
        fabricate_chip(alu8.netlist, NTC, seed=1, affected_fraction=1.5)


def test_sources_keep_zero_delay(alu8):
    chip = fabricate_chip(alu8.netlist, NTC, seed=5)
    for node in alu8.netlist.input_ids:
        assert chip.delays[node] == 0.0
        assert chip.nominal_delays[node] == 0.0


def test_delay_ratio_tail_at_ntc(alu8):
    """Strongly-affected gates reach multi-x deviations at NTC."""
    chip = fabricate_chip(alu8.netlist, NTC, seed=6)
    ratios = chip.delay_ratio()[chip.affected_ids]
    assert ratios.max() > 3.0 or ratios.min() < 0.5


def test_stc_deviations_much_milder(alu8):
    ntc = fabricate_chip(alu8.netlist, NTC, seed=7)
    stc = fabricate_chip(alu8.netlist, STC, seed=7)
    # identical ΔVth assignment (same seed), so the ratio spread compares
    # the corner sensitivity directly
    assert (ntc.delta_vth == stc.delta_vth).all()
    assert ntc.delay_ratio().max() > stc.delay_ratio().max()


def test_affected_mask_contains_strong_gates(alu8):
    chip = fabricate_chip(alu8.netlist, NTC, seed=8)
    mask = chip.affected_mask(ratio_threshold=1.5)
    # every designated strongly-affected gate must be flagged
    assert mask[chip.affected_ids].all()


def test_unaffected_ratio_near_one_at_stc(alu8):
    chip = fabricate_chip(alu8.netlist, STC, seed=9, affected_fraction=0.0)
    gates = [n for n in range(alu8.netlist.num_nodes) if alu8.netlist.fanins(n)]
    ratios = chip.delay_ratio()[gates]
    assert 0.6 < ratios.min() and ratios.max() < 2.0


def test_repr(alu8):
    chip = fabricate_chip(alu8.netlist, NTC, seed=10)
    assert "NTC" in repr(chip)
