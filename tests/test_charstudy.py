"""Unit tests for the characterisation-study helpers."""

import numpy as np
import pytest

from repro.arch.isa import Instr
from repro.circuits.alu import AluOp
from repro.experiments.charstudy import (
    characterization_operands,
    collect_choke_events,
    instr_vector_stream,
    op_vector_stream,
)
from repro.pv.chip import fabricate_chip
from repro.pv.delaymodel import NTC, nominal_gate_delays
from repro.timing.sta import critical_path_delay


def test_operand_owm_constraints(rng):
    width = 16
    half = 1 << (width // 2)
    high = characterization_operands(rng, 200, width, "high")
    low = characterization_operands(rng, 200, width, "low")
    assert (high >= half).all()
    assert (low < half).all()


def test_operand_mixed_covers_both_classes(rng):
    width = 16
    half = 1 << (width // 2)
    values = characterization_operands(rng, 400, width, "mixed")
    assert (values < half).any()
    assert (values >= half).any()
    assert (values < (1 << width)).all()


def test_unknown_owm_constraint_rejected(rng):
    with pytest.raises(ValueError):
        characterization_operands(rng, 10, 16, "medium")


def test_op_vector_stream_selects_one_op(alu8, rng):
    inputs = op_vector_stream(alu8, AluOp.XOR, 20, rng)
    assert inputs.shape == (alu8.num_inputs, 20)
    select_rows = inputs[2 * alu8.width :, :]
    assert (select_rows.sum(axis=0) == 1).all()
    assert select_rows[int(AluOp.XOR)].all()


def test_instr_vector_stream_respects_roles(alu8, rng):
    # LUI: fixed shift amount = width/2
    inputs = instr_vector_stream(alu8, Instr.LUI, 10, rng)
    b_bits = inputs[alu8.width : 2 * alu8.width, :]
    b_values = (b_bits * (1 << np.arange(alu8.width))[:, None]).sum(axis=0)
    assert (b_values == alu8.width // 2).all()
    # fixed-shift SRL: b < width
    inputs = instr_vector_stream(alu8, Instr.SRL, 30, rng)
    b_bits = inputs[alu8.width : 2 * alu8.width, :]
    b_values = (b_bits * (1 << np.arange(alu8.width))[:, None]).sum(axis=0)
    assert (b_values < alu8.width).all()


def test_collect_choke_events_structure(alu8, alu8_circuit, rng):
    nominal = nominal_gate_delays(alu8.netlist, NTC)
    critical = critical_path_delay(alu8.netlist, nominal)
    found = []
    for seed in range(8):
        chip = fabricate_chip(alu8.netlist, NTC, seed=seed)
        inputs = op_vector_stream(alu8, AluOp.MULT, 60, rng)
        found.extend(
            collect_choke_events(alu8_circuit, chip, inputs, critical * 0.9)
        )
    assert found, "expected at least one choke event across 8 NTC chips"
    for event in found:
        assert event.cdl_percent > 0
        assert event.num_choke_gates >= 1


def test_collect_choke_events_respects_traceback_cap(alu8, alu8_circuit, rng):
    chip = fabricate_chip(alu8.netlist, NTC, seed=3)
    inputs = op_vector_stream(alu8, AluOp.MULT, 120, rng)
    nominal = nominal_gate_delays(alu8.netlist, NTC)
    # absurdly low baseline: every cycle qualifies, cap must bound work
    events = collect_choke_events(
        alu8_circuit, chip, inputs, nominal.max(), max_tracebacks=5
    )
    assert len(events) <= 5


def test_no_events_when_baseline_unreachable(alu8, alu8_circuit, rng):
    chip = fabricate_chip(alu8.netlist, NTC, seed=3)
    inputs = op_vector_stream(alu8, AluOp.BUFFER, 40, rng)
    events = collect_choke_events(alu8_circuit, chip, inputs, 1e9)
    assert events == []
