"""Unit tests for the Choke Error Table."""

import pytest

from repro.core.tags import EX_STAGE, ErrorId
from repro.core.trident.cet import ChokeErrorTable
from repro.timing.dta import ERR_CE, ERR_SE_MAX, ERR_SE_MIN


def _eid(init=1, sens=2, size_a=True, size_b=False, err_class=ERR_SE_MAX):
    return ErrorId(init, sens, size_a, size_b, err_class)


def test_insert_then_lookup_returns_class():
    cet = ChokeErrorTable(8)
    eid = _eid(err_class=ERR_SE_MIN)
    assert cet.lookup(eid.key) is None
    cet.insert(eid)
    assert cet.lookup(eid.key) == ERR_SE_MIN
    assert len(cet) == 1


def test_key_excludes_class():
    eid = _eid(err_class=ERR_CE)
    assert eid.err_class not in eid.key or True  # key has fixed layout:
    assert eid.key == (1, 2, True, False, EX_STAGE)


def test_class_escalation_updates_payload():
    cet = ChokeErrorTable(8)
    cet.insert(_eid(err_class=ERR_SE_MAX))
    cet.insert(_eid(err_class=ERR_CE))
    assert cet.lookup(_eid().key) == ERR_CE
    assert len(cet) == 1  # same key, updated in place
    assert cet.unique_insertions == 1


def test_capacity_and_eviction():
    cet = ChokeErrorTable(2)
    eids = [_eid(init=i) for i in range(3)]
    for eid in eids:
        cet.insert(eid)
    assert len(cet) == 2
    assert cet.evictions == 1
    hits = sum(cet.lookup(eid.key) is not None for eid in eids)
    assert hits == 2


def test_lookup_protects_entry():
    cet = ChokeErrorTable(2)
    a, b, c = _eid(init=1), _eid(init=2), _eid(init=3)
    cet.insert(a)
    cet.insert(b)
    cet.lookup(a.key)
    cet.insert(c)  # b is the victim
    assert cet.lookup(a.key) is not None
    assert cet.lookup(b.key) is None


def test_capacity_validation():
    with pytest.raises(ValueError):
        ChokeErrorTable(12)


def test_distinct_size_classes_are_distinct_keys():
    cet = ChokeErrorTable(8)
    cet.insert(_eid(size_a=True))
    assert cet.lookup(_eid(size_a=False).key) is None


def test_keys_listing():
    cet = ChokeErrorTable(8)
    cet.insert(_eid(init=1))
    cet.insert(_eid(init=2))
    assert len(cet.keys()) == 2
