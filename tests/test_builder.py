"""Unit tests for the netlist builder."""

import pytest

from repro.gates.builder import NetlistBuilder
from repro.gates.celllib import GateKind
from repro.timing.levelize import levelize
from repro.timing.logic_eval import evaluate_logic

import numpy as np


def _eval_single_output(builder, out_node, input_bits):
    builder.output("y", out_node)
    circuit = levelize(builder.build())
    inputs = np.array([[bit] for bit in input_bits], dtype=bool)
    values = evaluate_logic(circuit, inputs)
    return bool(values[out_node, 0])


@pytest.mark.parametrize(
    "op_name,a,b,expected",
    [
        ("and_", 1, 1, 1), ("and_", 1, 0, 0),
        ("or_", 0, 0, 0), ("or_", 0, 1, 1),
        ("nand_", 1, 1, 0), ("nor_", 0, 0, 1),
        ("xor_", 1, 0, 1), ("xnor_", 1, 0, 0),
    ],
)
def test_binary_helpers(op_name, a, b, expected):
    builder = NetlistBuilder()
    in_a, in_b = builder.input("a"), builder.input("b")
    node = getattr(builder, op_name)(in_a, in_b)
    assert _eval_single_output(builder, node, [a, b]) == bool(expected)


def test_not_and_buf():
    builder = NetlistBuilder()
    a = builder.input("a")
    node = builder.not_(builder.buf(a))
    assert _eval_single_output(builder, node, [1]) is False


def test_dbuf_chain_length():
    builder = NetlistBuilder()
    a = builder.input("a")
    end = builder.dbuf_chain(a, 5)
    netlist = builder.netlist
    assert netlist.num_nodes == 6  # input + 5 DBUFs
    assert netlist.kind(end) is GateKind.DBUF


def test_dbuf_chain_zero_is_identity():
    builder = NetlistBuilder()
    a = builder.input("a")
    assert builder.dbuf_chain(a, 0) == a


def test_const_cached():
    builder = NetlistBuilder()
    assert builder.const(0) == builder.const(0)
    assert builder.const(1) == builder.const(1)
    assert builder.const(0) != builder.const(1)


def test_and_many_matches_python_all(rng):
    for _ in range(10):
        bits = rng.integers(0, 2, size=int(rng.integers(1, 9))).tolist()
        builder = NetlistBuilder()
        nodes = [builder.input(f"i{i}") for i in range(len(bits))]
        node = builder.and_many(nodes)
        assert _eval_single_output(builder, node, bits) == all(bits)


def test_or_many_matches_python_any(rng):
    for _ in range(10):
        bits = rng.integers(0, 2, size=int(rng.integers(1, 9))).tolist()
        builder = NetlistBuilder()
        nodes = [builder.input(f"i{i}") for i in range(len(bits))]
        node = builder.or_many(nodes)
        assert _eval_single_output(builder, node, bits) == any(bits)


def test_xor_many_matches_parity(rng):
    for _ in range(10):
        bits = rng.integers(0, 2, size=int(rng.integers(1, 9))).tolist()
        builder = NetlistBuilder()
        nodes = [builder.input(f"i{i}") for i in range(len(bits))]
        node = builder.xor_many(nodes)
        assert _eval_single_output(builder, node, bits) == bool(sum(bits) % 2)


def test_reduction_over_empty_rejected():
    builder = NetlistBuilder()
    with pytest.raises(ValueError):
        builder.and_many([])


def test_mux_selects_correctly():
    for sel, expected in ((0, 1), (1, 0)):
        builder = NetlistBuilder()
        s = builder.input("s")
        a = builder.const(1)
        b = builder.const(0)
        node = builder.mux(s, a, b)
        assert _eval_single_output(builder, node, [sel]) == bool(expected)


def test_word_width_mismatch_rejected():
    builder = NetlistBuilder()
    a = builder.input_word("a", 4)
    b = builder.input_word("b", 3)
    with pytest.raises(ValueError, match="width mismatch"):
        builder.and_word(a, b)
    with pytest.raises(ValueError, match="width mismatch"):
        builder.mux_word(builder.input("s"), a, b)


def test_input_word_and_output_word():
    builder = NetlistBuilder()
    word = builder.input_word("a", 4)
    builder.output_word("y", word)
    netlist = builder.build()
    assert len(netlist.input_ids) == 4
    assert netlist.output_names == ("y[0]", "y[1]", "y[2]", "y[3]")


def test_zero_word():
    builder = NetlistBuilder()
    word = builder.zero_word(3)
    assert len(word) == 3
    assert len(set(word)) == 1  # all the same cached const node
