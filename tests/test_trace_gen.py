"""Unit tests for the synthetic benchmark trace generators."""

import numpy as np
import pytest

from repro.arch.isa import INSTRUCTIONS, Instr
from repro.arch.trace import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    BenchmarkConfig,
    generate_trace,
)
from repro.circuits.alu import AluOp


def test_all_six_benchmarks_defined():
    assert set(BENCHMARK_ORDER) == set(BENCHMARKS)
    assert BENCHMARK_ORDER == ("bzip", "gap", "gzip", "mcf", "parser", "vortex")


def test_deterministic_for_config():
    a = generate_trace(BENCHMARKS["mcf"], 500, width=16)
    b = generate_trace(BENCHMARKS["mcf"], 500, width=16)
    assert (a.instrs == b.instrs).all()
    assert (a.a_values == b.a_values).all()
    assert (a.b_values == b.b_values).all()


def test_seed_override_changes_stream():
    a = generate_trace(BENCHMARKS["mcf"], 500, width=16)
    b = generate_trace(BENCHMARKS["mcf"], 500, width=16, seed=999)
    assert not (a.a_values == b.a_values).all()


def test_trace_shape_and_dtypes():
    trace = generate_trace(BENCHMARKS["gzip"], 300, width=16)
    assert len(trace) == 300
    assert trace.instrs.dtype == np.int16
    assert trace.a_values.dtype == np.uint64
    assert trace.width == 16
    assert trace.name == "gzip"


def test_operands_within_width():
    trace = generate_trace(BENCHMARKS["parser"], 800, width=16)
    assert (trace.a_values < (1 << 16)).all()
    assert (trace.b_values < (1 << 16)).all()


def test_alu_ops_match_isa_mapping():
    trace = generate_trace(BENCHMARKS["bzip"], 500, width=16)
    for instr_value, alu_value in zip(trace.instrs, trace.alu_ops):
        assert INSTRUCTIONS[Instr(int(instr_value))].alu_op == AluOp(int(alu_value))


def test_only_mix_instructions_appear():
    config = BENCHMARKS["mcf"]
    trace = generate_trace(config, 1000, width=16)
    allowed = {int(i) for i in config.instr_mix}
    assert set(np.unique(trace.instrs).tolist()) <= allowed


def test_shift_operands_bounded():
    trace = generate_trace(BENCHMARKS["gzip"], 2000, width=16)
    shift_instrs = {
        int(i) for i in Instr if INSTRUCTIONS[i].shift
    }
    mask = np.isin(trace.instrs, list(shift_instrs))
    assert (trace.b_values[mask] < 16).all()


def test_lui_shift_amount_is_half_width():
    trace = generate_trace(BENCHMARKS["mcf"], 3000, width=16)
    mask = trace.instrs == int(Instr.LUI)
    if mask.any():
        assert (trace.b_values[mask] == 8).all()


def test_immediates_in_lower_half_word():
    trace = generate_trace(BENCHMARKS["parser"], 3000, width=16)
    imm_instrs = {int(i) for i in Instr if INSTRUCTIONS[i].immediate and not INSTRUCTIONS[i].shift}
    mask = np.isin(trace.instrs, list(imm_instrs))
    if mask.any():
        assert (trace.b_values[mask] < (1 << 8)).all()


def test_static_footprints_ordered_mcf_smallest_vortex_largest():
    mcf = generate_trace(BENCHMARKS["mcf"], 100, width=16)
    vortex = generate_trace(BENCHMARKS["vortex"], 100, width=16)
    assert mcf.num_static < vortex.num_static


def test_value_locality_reuses_pool_values():
    trace = generate_trace(BENCHMARKS["mcf"], 4000, width=16)
    # strong locality -> the distinct (static, operand) pairs per static
    # instruction stay near the pool size
    per_static: dict[int, set] = {}
    for static_id, value in zip(trace.static_ids, trace.a_values):
        per_static.setdefault(int(static_id), set()).add(int(value))
    heavy = [s for s, values in per_static.items() if len(values) > 0]
    median_distinct = float(np.median([len(per_static[s]) for s in heavy]))
    pool = BENCHMARKS["mcf"].value_pool_size
    assert median_distinct <= pool + 3


def test_sequence_locality_repeats_pairs():
    trace = generate_trace(BENCHMARKS["mcf"], 4000, width=16)
    pairs = set(zip(trace.static_ids[:-1].tolist(), trace.static_ids[1:].tolist()))
    # loops mean far fewer distinct consecutive pairs than cycles
    assert len(pairs) < len(trace) / 8


def test_config_validation():
    with pytest.raises(ValueError):
        BenchmarkConfig(
            name="bad", instr_mix={}, num_blocks=2, block_size_min=1,
            block_size_max=2, block_repeat_mean=2.0, value_pool_size=2,
            value_locality=0.5, p_large=0.5, seed=0,
        )
    with pytest.raises(ValueError):
        BenchmarkConfig(
            name="bad", instr_mix={Instr.OR: 1}, num_blocks=2, block_size_min=3,
            block_size_max=2, block_repeat_mean=2.0, value_pool_size=2,
            value_locality=0.5, p_large=0.5, seed=0,
        )
    with pytest.raises(ValueError):
        BenchmarkConfig(
            name="bad", instr_mix={Instr.OR: 1}, num_blocks=2, block_size_min=1,
            block_size_max=2, block_repeat_mean=2.0, value_pool_size=2,
            value_locality=1.5, p_large=0.5, seed=0,
        )


def test_zero_cycles_rejected():
    with pytest.raises(ValueError):
        generate_trace(BENCHMARKS["mcf"], 0)


def test_encode_inputs_roundtrip(alu16, mcf_trace16):
    matrix = mcf_trace16.encode_inputs(alu16)
    assert matrix.shape == (alu16.num_inputs, len(mcf_trace16))
