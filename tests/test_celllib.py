"""Unit tests for the standard-cell library."""

import itertools

import pytest

from repro.gates.celllib import (
    CELL_LIBRARY,
    COMBINATIONAL_KINDS,
    SOURCE_KINDS,
    GateKind,
    evaluate_gate,
    fanin_count,
)


def test_every_kind_has_a_spec():
    assert set(CELL_LIBRARY) == set(GateKind)


def test_source_kinds_have_no_fanins_and_no_delay():
    for kind in SOURCE_KINDS:
        spec = CELL_LIBRARY[kind]
        assert spec.num_inputs == 0
        assert spec.delay_coeff == 0.0
        assert spec.is_source


def test_combinational_kinds_have_positive_delay_and_area():
    for kind in COMBINATIONAL_KINDS:
        spec = CELL_LIBRARY[kind]
        assert spec.delay_coeff > 0
        assert spec.area_um2 > 0
        assert spec.energy_fj > 0
        assert not spec.is_source


def test_source_and_combinational_partition_the_kinds():
    assert SOURCE_KINDS | COMBINATIONAL_KINDS == set(GateKind)
    assert not SOURCE_KINDS & COMBINATIONAL_KINDS


def test_fanin_counts():
    assert fanin_count(GateKind.INPUT) == 0
    assert fanin_count(GateKind.INV) == 1
    assert fanin_count(GateKind.BUF) == 1
    assert fanin_count(GateKind.DBUF) == 1
    assert fanin_count(GateKind.NAND2) == 2
    assert fanin_count(GateKind.MUX2) == 3


def test_relative_cell_delays_are_sane():
    """An inverter is the fastest cell; XOR-family and MUX the slowest."""
    delays = {k: CELL_LIBRARY[k].delay_coeff for k in COMBINATIONAL_KINDS}
    assert min(delays, key=delays.get) == GateKind.INV
    assert delays[GateKind.XOR2] > delays[GateKind.NAND2]
    assert delays[GateKind.DBUF] > delays[GateKind.BUF]


def test_constants_evaluate():
    assert evaluate_gate(GateKind.CONST0) == 0
    assert evaluate_gate(GateKind.CONST1) == 1


@pytest.mark.parametrize("a", (0, 1))
def test_unary_gates(a):
    assert evaluate_gate(GateKind.BUF, a) == a
    assert evaluate_gate(GateKind.DBUF, a) == a
    assert evaluate_gate(GateKind.INV, a) == 1 - a


@pytest.mark.parametrize("a,b", list(itertools.product((0, 1), repeat=2)))
def test_binary_gate_truth_tables(a, b):
    assert evaluate_gate(GateKind.AND2, a, b) == (a & b)
    assert evaluate_gate(GateKind.OR2, a, b) == (a | b)
    assert evaluate_gate(GateKind.NAND2, a, b) == 1 - (a & b)
    assert evaluate_gate(GateKind.NOR2, a, b) == 1 - (a | b)
    assert evaluate_gate(GateKind.XOR2, a, b) == (a ^ b)
    assert evaluate_gate(GateKind.XNOR2, a, b) == 1 - (a ^ b)


@pytest.mark.parametrize("in0,in1,sel", list(itertools.product((0, 1), repeat=3)))
def test_mux_truth_table(in0, in1, sel):
    assert evaluate_gate(GateKind.MUX2, in0, in1, sel) == (in1 if sel else in0)


def test_evaluate_rejects_input_kind():
    with pytest.raises(ValueError):
        evaluate_gate(GateKind.INPUT)
