"""Unit and property tests for the Bloom filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter


def test_empty_filter_contains_nothing():
    bloom = BloomFilter(256, 3)
    assert ("x", 1) not in bloom
    assert bloom.fill_ratio == 0.0


@settings(max_examples=40, deadline=None)
@given(items=st.lists(st.tuples(st.integers(0, 1000), st.booleans()), max_size=40))
def test_no_false_negatives(items):
    bloom = BloomFilter(512, 3)
    for item in items:
        bloom.add(item)
    for item in items:
        assert item in bloom


def test_false_positive_rate_bounded_when_lightly_loaded():
    bloom = BloomFilter(4096, 3)
    for i in range(50):
        bloom.add(("tag", i))
    false_positives = sum(1 for i in range(1000, 3000) if ("tag", i) in bloom)
    assert false_positives < 50  # < 2.5% at ~4% fill


def test_clear():
    bloom = BloomFilter(128, 2)
    bloom.add("a")
    bloom.clear()
    assert "a" not in bloom
    assert bloom.fill_ratio == 0.0


def test_rebuild_keeps_only_given_items():
    bloom = BloomFilter(2048, 3)
    bloom.add("stale")
    bloom.rebuild(["fresh1", "fresh2"])
    assert "fresh1" in bloom and "fresh2" in bloom
    # "stale" is *probably* gone (may survive only as a false positive);
    # with a sparse filter it must be gone
    assert "stale" not in bloom


def test_fill_ratio_grows():
    bloom = BloomFilter(256, 2)
    before = bloom.fill_ratio
    bloom.add("something")
    assert bloom.fill_ratio > before


def test_validation():
    with pytest.raises(ValueError):
        BloomFilter(0, 1)
    with pytest.raises(ValueError):
        BloomFilter(8, 0)
