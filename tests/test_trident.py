"""Unit tests for the Trident controller on synthetic error traces."""

import numpy as np

from repro.arch.pipeline import PipelineConfig
from repro.core.trident import TridentScheme
from repro.timing.dta import ERR_CE, ERR_NONE, ERR_SE_MAX, ERR_SE_MIN

from tests.util import synthetic_error_trace


def _repeating(err_class, repeats=8, period=3):
    n = repeats * period
    classes = np.full(n, ERR_NONE, dtype=np.int8)
    classes[::period] = err_class
    instr = (np.arange(n) % period).astype(np.int16)
    return synthetic_error_trace(classes, instr_sens=instr, instr_init=np.roll(instr, 1))


def test_se_max_learned_then_avoided_with_one_stall_each():
    trace = _repeating(ERR_SE_MAX, repeats=8)
    result = TridentScheme(32).simulate(trace)
    assert result.errors_missed == 1
    assert result.errors_predicted == 7
    assert result.flushes == 1
    # every hit (errant or false positive) inserted one stall
    assert result.stalls == result.errors_predicted + result.false_positives


def test_se_min_is_handled_unlike_dcs():
    trace = _repeating(ERR_SE_MIN, repeats=8)
    result = TridentScheme(32).simulate(trace)
    assert result.errors_total == 8
    assert result.errors_predicted == 7


def test_ce_needs_two_stalls():
    trace = _repeating(ERR_CE, repeats=6)
    result = TridentScheme(32).simulate(trace)
    assert result.errors_predicted == 5
    predicted_hits = result.errors_predicted + result.false_positives
    # CE entries grant two stall cycles per hit
    assert result.stalls == 2 * predicted_hits


def test_understall_escalation():
    """A context first seen as SE then recurring as CE is under-stalled
    once (detection + correction fire again) and its class escalates."""
    classes = np.array([ERR_SE_MAX, ERR_CE, ERR_CE], dtype=np.int8)
    trace = synthetic_error_trace(classes)
    result = TridentScheme(32).simulate(trace)
    assert result.extra["under_stalled"] == 1
    assert result.flushes == 2  # first SE + under-stalled CE
    assert result.errors_predicted == 1  # the final CE, after escalation


def test_penalty_math():
    pipeline = PipelineConfig(depth=11)
    classes = np.array([ERR_SE_MAX, ERR_SE_MAX, ERR_NONE], dtype=np.int8)
    trace = synthetic_error_trace(classes)
    result = TridentScheme(32, pipeline=pipeline).simulate(trace)
    # cycle0: miss -> 11; cycle1: predicted -> 1 stall; cycle2: fp -> 1
    assert result.flushes == 1
    assert result.errors_predicted == 1
    assert result.false_positives == 1
    assert result.penalty_cycles == 11 + 2


def test_trident_vs_razor_on_real_trace(error_trace16):
    from repro.core.schemes import RazorScheme

    trident = TridentScheme(128).simulate(error_trace16)
    razor = RazorScheme().simulate(error_trace16)
    # Trident is responsible for at least as many errors...
    assert trident.errors_total >= razor.errors_total
    # ...and on a trace with errors its penalty relies on cheap stalls
    if razor.errors_total > 50:
        assert trident.penalty_cycles < razor.penalty_cycles + trident.errors_total


def test_capacity_thrash_reduces_accuracy():
    n = 200
    classes = np.full(n, ERR_SE_MAX, dtype=np.int8)
    instr = (np.arange(n) % 64).astype(np.int16)
    trace = synthetic_error_trace(classes, instr_sens=instr, instr_init=instr)
    tiny = TridentScheme(2).simulate(trace)
    big = TridentScheme(128).simulate(trace)
    assert tiny.prediction_accuracy < big.prediction_accuracy


def test_unique_instances_counted():
    trace = _repeating(ERR_SE_MAX, repeats=5, period=4)
    result = TridentScheme(32).simulate(trace)
    assert result.unique_instances == 1
