"""Unit tests for path extraction and trace-back."""

import numpy as np
import pytest

from repro.gates.builder import NetlistBuilder
from repro.gates.celllib import GateKind
from repro.timing.dta import single_transition_arrivals
from repro.timing.levelize import levelize
from repro.timing.paths import trace_critical_path, trace_dynamic_path
from repro.timing.sta import arrival_times


def _branchy():
    builder = NetlistBuilder()
    a = builder.input("a")
    b = builder.input("b")
    slow = builder.buf(builder.buf(builder.buf(a)))
    fast = builder.buf(b)
    out = builder.and_(slow, fast)
    builder.output("y", out)
    netlist = builder.build()
    delays = np.zeros(netlist.num_nodes)
    for node in range(netlist.num_nodes):
        if netlist.fanins(node):
            delays[node] = 10.0
    return netlist, delays, (a, b, slow, fast, out)


def test_trace_critical_path_follows_slow_branch():
    netlist, delays, (a, b, slow, fast, out) = _branchy()
    path = trace_critical_path(netlist, delays)
    assert path.nodes[0] == a
    assert path.nodes[-1] == out
    assert slow in path.nodes
    assert fast not in path.nodes
    assert path.delay == pytest.approx(40.0)
    assert len(path) == 5  # a + 3 bufs + and
    assert path.gate_count(netlist) == 4


def test_path_gate_kinds():
    netlist, delays, _ = _branchy()
    path = trace_critical_path(netlist, delays)
    kinds = path.gate_kinds(netlist)
    assert kinds[0] is GateKind.INPUT
    assert kinds[-1] is GateKind.AND2


def test_path_is_structurally_connected():
    netlist, delays, _ = _branchy()
    path = trace_critical_path(netlist, delays)
    for upstream, downstream in zip(path.nodes, path.nodes[1:]):
        assert upstream in netlist.fanins(downstream)


def test_dynamic_traceback_follows_sensitised_branch():
    netlist, delays, (a, b, slow, fast, out) = _branchy()
    circuit = levelize(netlist)
    # b=1 constant; a toggles -> output toggles via the slow branch only
    late, _early, toggled = single_transition_arrivals(
        circuit, np.array([0, 1]), np.array([1, 1]), delays
    )
    assert toggled[out]
    path = trace_dynamic_path(netlist, late, delays, out, toggled)
    assert path.nodes[0] == a
    assert slow in path.nodes
    assert all(toggled[node] for node in path.nodes)


def test_dynamic_traceback_requires_toggled_endpoint():
    netlist, delays, (_a, _b, _slow, _fast, out) = _branchy()
    circuit = levelize(netlist)
    late, _early, toggled = single_transition_arrivals(
        circuit, np.array([0, 0]), np.array([0, 0]), delays
    )
    with pytest.raises(ValueError):
        trace_dynamic_path(netlist, late, delays, out, toggled)


def test_traceback_consistent_with_arrivals(alu8):
    rng = np.random.default_rng(31)
    delays = np.where(
        [bool(alu8.netlist.fanins(n)) for n in range(alu8.netlist.num_nodes)],
        rng.uniform(2.0, 20.0, alu8.netlist.num_nodes),
        0.0,
    )
    arrivals = arrival_times(alu8.netlist, delays, "max")
    path = trace_critical_path(alu8.netlist, delays)
    # the path delay accumulates to the endpoint arrival
    accumulated = sum(delays[node] for node in path.nodes)
    assert accumulated == pytest.approx(arrivals[path.nodes[-1]], rel=1e-6)
