"""Unit tests for the VARIUS-style variation model."""

import numpy as np
import pytest

from repro.pv.varius import (
    DEFAULT_PARAMS,
    VariusParams,
    place_on_grid,
    sample_delta_vth,
    spherical_correlation,
    systematic_field,
)


def test_params_sigma_total():
    params = VariusParams(sigma_systematic=0.03, sigma_random=0.04)
    assert params.sigma_total == pytest.approx(0.05)


def test_spherical_correlation_boundaries():
    assert spherical_correlation(np.array([0.0]), 0.5)[0] == pytest.approx(1.0)
    assert spherical_correlation(np.array([0.5]), 0.5)[0] == pytest.approx(0.0)
    assert spherical_correlation(np.array([2.0]), 0.5)[0] == 0.0


def test_spherical_correlation_monotone_decreasing():
    distances = np.linspace(0, 0.5, 20)
    rho = spherical_correlation(distances, 0.5)
    assert (np.diff(rho) <= 1e-12).all()


def test_systematic_field_statistics():
    rng = np.random.default_rng(0)
    sigma = 0.02
    fields = [systematic_field(16, 0.5, sigma, rng) for _ in range(40)]
    samples = np.concatenate([f.ravel() for f in fields])
    assert abs(samples.mean()) < 0.002
    assert samples.std() == pytest.approx(sigma, rel=0.15)


def test_systematic_field_is_spatially_correlated():
    rng = np.random.default_rng(1)
    corr_neighbor = []
    corr_far = []
    for _ in range(30):
        field = systematic_field(16, 0.5, 0.02, rng)
        corr_neighbor.append(np.corrcoef(field[:, 0], field[:, 1])[0, 1])
        corr_far.append(np.corrcoef(field[:, 0], field[:, 15])[0, 1])
    assert np.mean(corr_neighbor) > 0.5
    assert np.mean(corr_neighbor) > np.mean(corr_far) + 0.2


def test_zero_sigma_field_is_zero():
    rng = np.random.default_rng(2)
    field = systematic_field(8, 0.5, 0.0, rng)
    assert (field == 0).all()


def test_field_validation():
    rng = np.random.default_rng(3)
    with pytest.raises(ValueError):
        systematic_field(0, 0.5, 0.01, rng)
    with pytest.raises(ValueError):
        systematic_field(8, 0.5, -0.01, rng)


def test_place_on_grid_covers_in_order():
    rows, cols = place_on_grid(100, 8)
    assert len(rows) == 100
    positions = rows * 8 + cols
    assert (np.diff(positions) >= 0).all()
    assert positions[0] == 0
    assert positions[-1] <= 63


def test_place_more_nodes_than_cells():
    rows, cols = place_on_grid(1000, 4)
    assert rows.max() == 3 and cols.max() == 3


def test_sample_delta_vth_shape_and_spread():
    rng = np.random.default_rng(4)
    samples = sample_delta_vth(5000, DEFAULT_PARAMS, rng)
    assert samples.shape == (5000,)
    assert samples.std() == pytest.approx(DEFAULT_PARAMS.sigma_total, rel=0.35)


def test_sample_deterministic_for_seed():
    a = sample_delta_vth(100, DEFAULT_PARAMS, np.random.default_rng(5))
    b = sample_delta_vth(100, DEFAULT_PARAMS, np.random.default_rng(5))
    assert (a == b).all()
