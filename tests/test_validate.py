"""Unit tests for netlist structural validation."""

import pytest

from repro.gates.builder import NetlistBuilder
from repro.gates.celllib import GateKind
from repro.gates.netlist import Netlist
from repro.gates.validate import NetlistValidationError, validate_netlist


def _valid_netlist():
    builder = NetlistBuilder()
    a, b = builder.input("a"), builder.input("b")
    builder.output("y", builder.and_(a, b))
    return builder.build()


def test_valid_netlist_passes():
    report = validate_netlist(_valid_netlist())
    assert report.num_gates == 1
    assert report.num_inputs == 2
    assert report.num_outputs == 1
    assert report.logic_depth == 1
    assert not report.dead_node_ids
    assert report.ok


def test_empty_netlist_rejected():
    with pytest.raises(NetlistValidationError, match="empty"):
        validate_netlist(Netlist())


def test_no_outputs_rejected():
    netlist = Netlist()
    netlist.add(GateKind.INPUT, ())
    with pytest.raises(NetlistValidationError, match="no primary outputs"):
        validate_netlist(netlist)


def test_constant_only_outputs_rejected():
    netlist = Netlist()
    c = netlist.add(GateKind.CONST1, ())
    netlist.mark_output("y", c)
    with pytest.raises(NetlistValidationError, match="constants"):
        validate_netlist(netlist)


def test_dead_logic_reported():
    builder = NetlistBuilder()
    a, b = builder.input("a"), builder.input("b")
    builder.or_(a, b)  # dead gate
    builder.output("y", builder.and_(a, b))
    report = validate_netlist(builder.build())
    assert len(report.dead_node_ids) == 1


def test_dead_logic_rejected_when_strict():
    builder = NetlistBuilder()
    a, b = builder.input("a"), builder.input("b")
    builder.or_(a, b)
    builder.output("y", builder.and_(a, b))
    with pytest.raises(NetlistValidationError, match="dead gates"):
        validate_netlist(builder.build(), allow_dead_logic=False)


def test_unused_inputs_are_not_dead_gates():
    builder = NetlistBuilder()
    a = builder.input("a")
    builder.input("unused")
    builder.output("y", builder.buf(a))
    report = validate_netlist(builder.build(), allow_dead_logic=False)
    assert not report.dead_node_ids


def test_alu_validates(alu16):
    report = validate_netlist(alu16.netlist)
    assert report.num_outputs == 16
    assert report.logic_depth > 10


def test_ex_stage_validates(stage16_ntc):
    report = validate_netlist(stage16_ntc.netlist)
    assert report.num_outputs == 16
