"""Unit tests for choke-point analytics (CDL/CGL, choke paths)."""

import numpy as np
import pytest

from repro.pv.delaymodel import NTC
from repro.timing.choke import (
    CDL_CATEGORIES,
    analyze_choke_event,
    choke_gates_on_path,
    classify_cdl,
    fast_gates_on_path,
)
from repro.timing.paths import Path
from tests.util import forced_choke_chip


def test_classify_cdl_boundaries():
    assert classify_cdl(-1.0) is None
    assert classify_cdl(0.0) is None
    assert classify_cdl(3.0) == "CDL_L"
    assert classify_cdl(5.0) == "CDL_L"
    assert classify_cdl(7.5) == "CDL_ML"
    assert classify_cdl(10.0) == "CDL_ML"
    assert classify_cdl(15.0) == "CDL_MH"
    assert classify_cdl(20.0) == "CDL_MH"
    assert classify_cdl(27.45) == "CDL_H"
    assert classify_cdl(90.0) == "CDL_H"


def test_categories_tuple():
    assert CDL_CATEGORIES == ("CDL_L", "CDL_ML", "CDL_MH", "CDL_H")


def test_forced_choke_event_detected():
    fx = forced_choke_chip()  # deep=4 bufs, short=2 bufs, one choked to 100ps
    # sel=1 selects the short branch (mux computes b-input when sel); toggle b
    prev = np.array([0, 0, 1])
    curr = np.array([0, 1, 1])
    event = analyze_choke_event(
        fx.circuit, fx.chip, prev, curr, fx.nominal_critical
    )
    assert event is not None
    # short branch: 10 + 100 + 10(mux) = 120 -> CDL = 140%
    assert event.cdl_percent == pytest.approx(140.0)
    assert fx.short_arrival == pytest.approx(120.0)
    assert event.category == "CDL_H"
    assert fx.choke_gate in event.choke_gate_ids
    assert event.num_choke_gates == 1
    assert event.cgl_percent == pytest.approx(100.0 / fx.netlist.num_gates)
    assert event.path.nodes[-1] == fx.out
    assert event.path.nodes[0] == fx.b


def test_resolve_gates_and_blame_line_name_the_planted_gate():
    fx = forced_choke_chip()
    event = analyze_choke_event(
        fx.circuit, fx.chip, np.array([0, 0, 1]), np.array([0, 1, 1]),
        fx.nominal_critical,
    )
    labels = event.resolve_gates(fx.netlist)
    assert len(labels) == event.num_choke_gates == 1
    # gate name + cell kind + levelised depth, e.g. "n8[BUF]@L2"
    assert labels[0].startswith(f"{fx.netlist.name_of(fx.choke_gate)}[BUF]@L")
    line = event.blame_line(fx.netlist)
    assert line.startswith("CDL_H (+140.0% over nominal, 1 gate(s)): ")
    assert labels[0] in line


def test_no_event_when_nothing_toggles():
    fx = forced_choke_chip()
    prev = np.array([1, 1, 1])
    curr = np.array([1, 1, 1])
    event = analyze_choke_event(fx.circuit, fx.chip, prev, curr, 50.0)
    assert event is None  # nothing toggles at all


def test_no_event_when_choke_branch_untoggled():
    fx = forced_choke_chip()
    # only the deep branch toggles (b constant, sel=0 selects deep):
    # arrival = 50 = nominal critical, so no choke path is created
    prev = np.array([0, 0, 0])
    curr = np.array([1, 0, 0])
    event = analyze_choke_event(fx.circuit, fx.chip, prev, curr, 50.0)
    assert event is None


def test_invalid_nominal_critical_rejected():
    fx = forced_choke_chip()
    with pytest.raises(ValueError):
        analyze_choke_event(
            fx.circuit, fx.chip, np.array([0, 0, 0]), np.array([0, 1, 0]), 0.0
        )


def test_choke_and_fast_gates_on_path():
    fx = forced_choke_chip()
    fx.chip.delays[4] = 2.0  # make one deep-branch buffer fast (node 4 is a BUF)
    path = Path(nodes=(fx.b, fx.choke_gate, fx.out), delay=120.0)
    assert choke_gates_on_path(path, fx.chip) == (fx.choke_gate,)
    fast_path = Path(nodes=(4,), delay=2.0)
    assert fast_gates_on_path(fast_path, fx.chip) == (4,)


def test_real_chip_choke_events_have_valid_structure(alu8, alu8_circuit):
    """On a fabricated ALU chip, any detected event references real
    affected gates lying on the traced path."""
    from repro.pv.chip import fabricate_chip
    from repro.pv.delaymodel import nominal_gate_delays
    from repro.timing.sta import critical_path_delay

    nominal = nominal_gate_delays(alu8.netlist, NTC)
    critical = critical_path_delay(alu8.netlist, nominal)
    rng = np.random.default_rng(3)
    found = 0
    for seed in range(12):
        chip = fabricate_chip(alu8.netlist, NTC, seed=seed)
        for _ in range(15):
            ops = rng.integers(0, 13, size=2)
            a = rng.integers(0, 256, size=2, dtype=np.uint64)
            b = rng.integers(0, 256, size=2, dtype=np.uint64)
            inputs = alu8.encode_batch(ops, a, b)
            event = analyze_choke_event(
                alu8_circuit, chip, inputs[:, 0], inputs[:, 1], critical
            )
            if event is None:
                continue
            found += 1
            assert event.cdl_percent > 0
            assert 0 < event.cgl_percent <= 100
            assert event.category in CDL_CATEGORIES
            for gate in event.choke_gate_ids:
                assert gate in event.path.nodes
    # with 12 NTC chips and random vectors we expect at least one event
    assert found >= 1
