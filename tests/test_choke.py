"""Unit tests for choke-point analytics (CDL/CGL, choke paths)."""

import numpy as np
import pytest

from repro.gates.builder import NetlistBuilder
from repro.pv.chip import ChipSample
from repro.pv.delaymodel import NTC
from repro.timing.choke import (
    CDL_CATEGORIES,
    analyze_choke_event,
    choke_gates_on_path,
    classify_cdl,
    fast_gates_on_path,
)
from repro.timing.levelize import levelize
from repro.timing.paths import Path


def test_classify_cdl_boundaries():
    assert classify_cdl(-1.0) is None
    assert classify_cdl(0.0) is None
    assert classify_cdl(3.0) == "CDL_L"
    assert classify_cdl(5.0) == "CDL_L"
    assert classify_cdl(7.5) == "CDL_ML"
    assert classify_cdl(10.0) == "CDL_ML"
    assert classify_cdl(15.0) == "CDL_MH"
    assert classify_cdl(20.0) == "CDL_MH"
    assert classify_cdl(27.45) == "CDL_H"
    assert classify_cdl(90.0) == "CDL_H"


def test_categories_tuple():
    assert CDL_CATEGORIES == ("CDL_L", "CDL_ML", "CDL_MH", "CDL_H")


def _chip_with_forced_choke():
    """Two parallel branches into a mux; one branch gets a massive choke.

    The deep branch is driven by input ``a``, the (choked) short branch by
    input ``b``, so tests can sensitise them independently.
    """
    builder = NetlistBuilder()
    a = builder.input("a")
    b = builder.input("b")
    sel = builder.input("sel")
    # nominal critical branch: 4 buffers
    deep = a
    for _ in range(4):
        deep = builder.buf(deep)
    # short branch: 2 buffers (one will be choked)
    short1 = builder.buf(b)
    short2 = builder.buf(short1)
    out = builder.mux(sel, deep, short2)
    builder.output("y", out)
    netlist = builder.build()

    nominal = np.zeros(netlist.num_nodes)
    for node in range(netlist.num_nodes):
        if netlist.fanins(node):
            nominal[node] = 10.0
    delays = nominal.copy()
    delays[short2] = 100.0  # the choke gate: 10x its nominal delay

    chip = ChipSample(
        netlist=netlist,
        corner=NTC,
        seed=0,
        delta_vth=np.zeros(netlist.num_nodes),
        delays=delays,
        nominal_delays=nominal,
        affected_ids=np.array([short2]),
    )
    return chip, levelize(netlist), netlist, (a, b, sel, short2, out)


def test_forced_choke_event_detected():
    chip, circuit, netlist, (a, b, sel, short2, out) = _chip_with_forced_choke()
    nominal_critical = 50.0  # 4 bufs + mux at 10 ps each
    # sel=1 selects the short branch (mux computes b-input when sel); toggle b
    prev = np.array([0, 0, 1])
    curr = np.array([0, 1, 1])
    event = analyze_choke_event(circuit, chip, prev, curr, nominal_critical)
    assert event is not None
    # short branch: 10 + 100 + 10(mux) = 120 -> CDL = 140%
    assert event.cdl_percent == pytest.approx(140.0)
    assert event.category == "CDL_H"
    assert short2 in event.choke_gate_ids
    assert event.num_choke_gates == 1
    assert event.cgl_percent == pytest.approx(100.0 / netlist.num_gates)
    assert event.path.nodes[-1] == out
    assert event.path.nodes[0] == b


def test_no_event_when_nothing_toggles():
    chip, circuit, _netlist, _nodes = _chip_with_forced_choke()
    prev = np.array([1, 1, 1])
    curr = np.array([1, 1, 1])
    event = analyze_choke_event(circuit, chip, prev, curr, 50.0)
    assert event is None  # nothing toggles at all


def test_no_event_when_choke_branch_untoggled():
    chip, circuit, _netlist, _nodes = _chip_with_forced_choke()
    # only the deep branch toggles (b constant, sel=0 selects deep):
    # arrival = 50 = nominal critical, so no choke path is created
    prev = np.array([0, 0, 0])
    curr = np.array([1, 0, 0])
    event = analyze_choke_event(circuit, chip, prev, curr, 50.0)
    assert event is None


def test_invalid_nominal_critical_rejected():
    chip, circuit, _netlist, _nodes = _chip_with_forced_choke()
    with pytest.raises(ValueError):
        analyze_choke_event(
            circuit, chip, np.array([0, 0, 0]), np.array([0, 1, 0]), 0.0
        )


def test_choke_and_fast_gates_on_path():
    chip, _circuit, netlist, (a, b, _sel, short2, out) = _chip_with_forced_choke()
    chip.delays[4] = 2.0  # make one deep-branch buffer fast (node 4 is a BUF)
    path = Path(nodes=(b, short2, out), delay=120.0)
    assert choke_gates_on_path(path, chip) == (short2,)
    fast_path = Path(nodes=(4,), delay=2.0)
    assert fast_gates_on_path(fast_path, chip) == (4,)


def test_real_chip_choke_events_have_valid_structure(alu8, alu8_circuit):
    """On a fabricated ALU chip, any detected event references real
    affected gates lying on the traced path."""
    from repro.pv.chip import fabricate_chip
    from repro.pv.delaymodel import nominal_gate_delays
    from repro.timing.sta import critical_path_delay

    nominal = nominal_gate_delays(alu8.netlist, NTC)
    critical = critical_path_delay(alu8.netlist, nominal)
    rng = np.random.default_rng(3)
    found = 0
    for seed in range(12):
        chip = fabricate_chip(alu8.netlist, NTC, seed=seed)
        for _ in range(15):
            ops = rng.integers(0, 13, size=2)
            a = rng.integers(0, 256, size=2, dtype=np.uint64)
            b = rng.integers(0, 256, size=2, dtype=np.uint64)
            inputs = alu8.encode_batch(ops, a, b)
            event = analyze_choke_event(
                alu8_circuit, chip, inputs[:, 0], inputs[:, 1], critical
            )
            if event is None:
                continue
            found += 1
            assert event.cdl_percent > 0
            assert 0 < event.cgl_percent <= 100
            assert event.category in CDL_CATEGORIES
            for gate in event.choke_gate_ids:
                assert gate in event.path.nodes
    # with 12 NTC chips and random vectors we expect at least one event
    assert found >= 1
