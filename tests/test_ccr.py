"""Unit tests for the Choke Clearance Register."""

import pytest

from repro.core.trident.ccr import ChokeClearanceRegister, InstructionRecord


def _record(pc):
    return InstructionRecord(pc=pc, opcode=pc % 16, size_a=True, size_b=False)


def test_depth_validation():
    with pytest.raises(ValueError):
        ChokeClearanceRegister(1)


def test_push_and_newest():
    ccr = ChokeClearanceRegister(4)
    with pytest.raises(LookupError):
        ccr.newest()
    ccr.push(_record(100))
    ccr.push(_record(104))
    assert ccr.newest().pc == 104
    assert len(ccr) == 2


def test_bounded_depth():
    ccr = ChokeClearanceRegister(3)
    for pc in range(10):
        ccr.push(_record(pc))
    assert len(ccr) == 3
    assert ccr.newest().pc == 9
    assert ccr.at_stage(2).pc == 7


def test_at_stage_bounds():
    ccr = ChokeClearanceRegister(4)
    ccr.push(_record(0))
    with pytest.raises(LookupError):
        ccr.at_stage(1)
    with pytest.raises(LookupError):
        ccr.at_stage(-1)


def test_errant_pair_order():
    """The sensitising instruction is at the EX offset, the initialising
    one entered the pipeline a cycle earlier (deeper in the CCR)."""
    ccr = ChokeClearanceRegister(6)
    for pc in (0, 4, 8, 12):
        ccr.push(_record(pc))
    initialising, sensitising = ccr.errant_pair(ex_offset=1)
    assert sensitising.pc == 8
    assert initialising.pc == 4


def test_replay_address():
    ccr = ChokeClearanceRegister(6)
    for pc in (0, 4, 8):
        ccr.push(_record(pc))
    assert ccr.replay_address(ex_offset=2) == 0


def test_flush_empties():
    ccr = ChokeClearanceRegister(4)
    ccr.push(_record(0))
    ccr.flush()
    assert len(ccr) == 0
