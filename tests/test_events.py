"""Tests for distributed tracing and the structured event stream.

Covers the contracts PR 8 introduces: NTP-style clock-offset
estimation with explicit quality tiers (:class:`repro.obs.ClockSync`),
shard rebasing onto the coordinator timeline
(:func:`repro.obs.correct_shard`), the crash-safe JSONL event log and
its bounded flight recorder (:class:`repro.obs.EventLog`), the
``progress`` CLI's event-stream summarisation, and — end to end — a
traced remote fleet run whose merged trace carries clock-corrected
worker spans under one trace id.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from pathlib import Path

import pytest

from repro import obs
from repro.experiments.progress_cli import (
    progress_main,
    render_summary,
    summarize_events,
)
from repro.obs.schema import check
from repro.obs.tracectx import (
    QUALITY_COARSE,
    QUALITY_SYNCED,
    QUALITY_UNCORRECTED,
    SYNCED_MAX_UNCERTAINTY_US,
)

SCHEMA_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "schemas"
EVENTS_SCHEMA = json.loads((SCHEMA_DIR / "events.schema.json").read_text())


@pytest.fixture(autouse=True)
def observability_off_after_test():
    """Never leak a recorder or event log into the next test."""
    yield
    obs.disable()
    obs.disable_events()


# ----------------------------------------------------------------------
# ClockSync: the NTP-style offset estimator
# ----------------------------------------------------------------------

def test_clock_sync_starts_uncorrected_and_identity():
    sync = obs.ClockSync()
    assert sync.quality == QUALITY_UNCORRECTED
    assert sync.correct_ts(123.4) == 123.4  # identity until a sample lands
    assert sync.describe() == QUALITY_UNCORRECTED


def test_clock_sync_zero_rtt_is_the_best_sample():
    # send and receive at the same instant: uncertainty 0, not an error
    sync = obs.ClockSync()
    assert sync.add_sample(1000.0, 400.0, 1000.0)
    assert sync.samples == 1 and sync.rejected == 0
    assert sync.offset_us == pytest.approx(-600.0)
    assert sync.uncertainty_us == 0.0
    # a later, wider sample must not displace the exact one
    assert sync.add_sample(2000.0, 1500.0, 2100.0)
    assert sync.offset_us == pytest.approx(-600.0)
    assert sync.uncertainty_us == 0.0


def test_clock_sync_rejects_negative_rtt():
    # receive before send is non-causal (chaos replay / clock bug)
    sync = obs.ClockSync()
    assert not sync.add_sample(1000.0, 500.0, 999.0)
    assert sync.samples == 0 and sync.rejected == 1
    assert sync.quality == QUALITY_UNCORRECTED
    assert sync.correct_ts(50.0) == 50.0


def test_clock_sync_single_sample_is_coarse():
    sync = obs.ClockSync()
    sync.add_sample(0.0, 500.0, 100.0)
    assert sync.quality == QUALITY_COARSE
    # two tight samples promote to synced
    sync.add_sample(200.0, 700.0, 300.0)
    assert sync.quality == QUALITY_SYNCED


def test_clock_sync_wide_round_trips_stay_coarse():
    # many samples, all wider than the synced threshold: never promoted
    sync = obs.ClockSync()
    wide = SYNCED_MAX_UNCERTAINTY_US * 4  # rtt/2 = 2x the threshold
    for start in (0.0, 10_000.0, 20_000.0):
        sync.add_sample(start, start + 1.0, start + wide)
    assert sync.samples == 3
    assert sync.quality == QUALITY_COARSE
    assert sync.uncertainty_us == pytest.approx(wide / 2)


def test_clock_sync_min_rtt_sample_wins():
    sync = obs.ClockSync()
    sync.add_sample(0.0, 10_000.0, 8_000.0)     # rtt 8ms, offset 6000
    sync.add_sample(100.0, 5_300.0, 500.0)      # rtt 400µs, offset 5000
    sync.add_sample(600.0, 12_000.0, 7_000.0)   # rtt 6.4ms: ignored
    assert sync.offset_us == pytest.approx(5000.0)
    assert sync.uncertainty_us == pytest.approx(200.0)
    assert sync.quality == QUALITY_SYNCED
    assert sync.describe() == "synced ±0.2ms"


def test_clock_sync_corrects_large_skew_and_clamps_at_zero():
    # a worker whose timeline epoch is ~17 minutes ahead (fresh process
    # vs long-lived coordinator): spans must land near coordinator time
    sync = obs.ClockSync()
    skew = 1e9
    sync.add_sample(1000.0, skew + 1500.0, 2000.0)
    assert sync.offset_us == pytest.approx(skew, rel=1e-6)
    assert sync.correct_ts(skew + 3000.0) == pytest.approx(3000.0, abs=1.0)
    # sub-uncertainty underflow at run start clamps instead of going
    # negative (the trace schema rejects negative timestamps)
    assert sync.correct_ts(skew - 400.0) == 0.0


def test_clock_sync_as_dict_round_trips_the_tier():
    sync = obs.ClockSync()
    sync.add_sample(0.0, 200.0, 100.0)
    info = sync.as_dict()
    assert info["quality"] == QUALITY_COARSE
    assert info["samples"] == 1 and info["rejected"] == 0
    assert info["offset_us"] == pytest.approx(150.0)
    assert info["uncertainty_us"] == pytest.approx(50.0)


# ----------------------------------------------------------------------
# correct_shard: rebasing a worker shard onto the coordinator timeline
# ----------------------------------------------------------------------

def make_shard_doc(tmp_path, span_ts: float):
    recorder = obs.TelemetryRecorder(process="remote-worker",
                                     shard_dir=tmp_path)
    with recorder.span("worker.remote_task", {"experiment": "fig3_4"}):
        recorder.metrics.inc("unit.tasks")
    doc = recorder.snapshot_doc()
    for event in doc["trace_events"]:
        if event["ph"] == "X":
            event["ts"] = span_ts
    return doc


def test_correct_shard_shifts_spans_and_labels_the_lane(tmp_path):
    sync = obs.ClockSync()
    sync.add_sample(0.0, 7_000.0, 200.0)  # offset ~6900µs
    doc = make_shard_doc(tmp_path, span_ts=10_000.0)
    corrected = obs.correct_shard(doc, sync)

    spans = [e for e in corrected["trace_events"] if e["ph"] == "X"]
    assert spans[0]["ts"] == pytest.approx(10_000.0 - sync.offset_us, abs=0.1)
    meta = [e for e in corrected["trace_events"]
            if e["ph"] == "M" and e["name"] == "process_name"]
    assert meta and "[clock: coarse" in meta[0]["args"]["name"]
    assert corrected["clock"]["quality"] == QUALITY_COARSE
    # the original document is untouched (correction is a copy)
    assert doc["trace_events"] != corrected["trace_events"]
    assert "clock" not in doc
    # metrics ride through unshifted: durations are offset-free
    assert corrected["metrics"] == doc["metrics"]


def test_correct_shard_uncorrected_passes_timestamps_through(tmp_path):
    doc = make_shard_doc(tmp_path, span_ts=42.5)
    corrected = obs.correct_shard(doc, obs.ClockSync())
    spans = [e for e in corrected["trace_events"] if e["ph"] == "X"]
    assert spans[0]["ts"] == 42.5
    meta = [e for e in corrected["trace_events"]
            if e["ph"] == "M" and e["name"] == "process_name"]
    assert "[clock: uncorrected]" in meta[0]["args"]["name"]


def test_received_shard_filename_round_trips_through_scan(tmp_path):
    # the coordinator writes corrected remote shards under the same
    # naming scheme scan_shards enforces (version + pid consistency)
    recorder = obs.TelemetryRecorder(process="remote-worker")
    with recorder.span("worker.remote_task", {}):
        pass
    doc = recorder.snapshot_doc()
    name = obs.tracectx.shard_filename(recorder.pid, 1)
    (tmp_path / name).write_text(json.dumps(doc))
    docs, stale = obs.scan_shards(tmp_path)
    assert len(docs) == 1 and stale == 0
    # a shard whose filename pid disagrees with its header is stale
    (tmp_path / obs.tracectx.shard_filename(recorder.pid + 1, 2)).write_text(
        json.dumps(doc)
    )
    docs, stale = obs.scan_shards(tmp_path)
    assert len(docs) == 1 and stale == 1


# ----------------------------------------------------------------------
# EventLog: crash-safe JSONL + bounded flight recorder
# ----------------------------------------------------------------------

def test_event_log_appends_schema_valid_events(tmp_path):
    path = tmp_path / "events.jsonl"
    log = obs.EventLog(path, trace_id="a" * 32)
    log.emit("run_start", backend="remote", jobs=2, experiments=3)
    log.emit("scheduled", experiment="fig3_4", worker="w1")
    log.emit("clock", worker="w1", tier="synced",
             offset_us=12.5, uncertainty_us=3.0)
    log.emit("result", experiment="fig3_4", worker="w1",
             status="ok", elapsed_s=0.25)
    log.emit("run_end", status="ok", ok=3, total=3)
    log.close()

    events = obs.read_events(path)
    assert [e["kind"] for e in events] == [
        "run_start", "scheduled", "clock", "result", "run_end",
    ]
    for index, event in enumerate(events):
        check(event, EVENTS_SCHEMA, label=f"event[{index}]")
        assert event["trace_id"] == "a" * 32
        assert event["v"] == obs.EVENTS_VERSION


def test_event_log_drops_none_fields(tmp_path):
    path = tmp_path / "events.jsonl"
    log = obs.EventLog(path)
    event = log.emit("scheduled", experiment="fig3_4", worker=None)
    assert "worker" not in event and "trace_id" not in event
    log.close()
    (replayed,) = obs.read_events(path)
    check(replayed, EVENTS_SCHEMA, label="event[0]")


def test_read_events_tolerates_truncated_tail_and_garbage(tmp_path):
    path = tmp_path / "events.jsonl"
    log = obs.EventLog(path)
    log.emit("run_start", backend="inproc")
    log.emit("result", experiment="fig3_4", status="ok")
    log.close()
    with open(path, "a") as handle:
        handle.write("not json at all\n")
        handle.write('{"v": 1, "ts": 1.0, "pid": 2, "kind": "run_')  # died
    events = obs.read_events(path)
    assert [e["kind"] for e in events] == ["run_start", "result"]
    # a missing file is an empty replay, not an error
    assert obs.read_events(tmp_path / "nope.jsonl") == []


def test_flight_recorder_is_bounded_and_renders_compactly(tmp_path):
    log = obs.EventLog(None, flight_size=4)  # flight-only: no file
    for index in range(10):
        log.emit("heartbeat", experiment=f"e{index}", worker="w1")
    assert log.count == 10
    assert len(log.flight) == 4
    recent = log.recent(2)
    assert len(recent) == 2
    assert "heartbeat" in recent[-1] and "experiment=e9" in recent[-1]


def test_event_log_survives_unwritable_path(tmp_path):
    # a vanished directory degrades to flight-recorder-only, silently —
    # the event stream is telemetry, never a crash source
    log = obs.EventLog(tmp_path / "no" / "such" / "dir" / "events.jsonl")
    log.emit("run_start", backend="inproc")
    log.emit("run_end", status="ok")
    assert log._dead
    assert len(log.flight) == 2
    log.close()


def test_emit_is_a_noop_until_enabled(tmp_path):
    assert not obs.events_enabled()
    obs.emit("run_start", backend="inproc")  # must not raise
    assert obs.recent_events() == ()
    log = obs.enable_events(obs.EventLog(tmp_path / "events.jsonl"))
    obs.emit("scheduled", experiment="fig3_4")
    assert obs.get_event_log() is log and log.count == 1
    assert any("scheduled" in line for line in obs.recent_events())
    obs.disable_events()
    assert not obs.events_enabled()
    obs.emit("run_end", status="ok")  # off again: dropped
    assert obs.read_events(tmp_path / "events.jsonl") == [log.flight[0]]


def test_ensure_worker_events_keeps_inherited_same_path_log(tmp_path):
    path = str(tmp_path / "events.jsonl")
    inherited = obs.enable_events(obs.EventLog(path))
    assert obs.ensure_worker_events(path) is inherited  # fork worker
    # a remote worker (coordinator owns the file) drops the sink
    assert obs.ensure_worker_events(None) is None
    assert not obs.events_enabled()


def test_disabled_event_stream_is_near_free():
    # same budget rationale as the disabled-telemetry guard: emission
    # from scheduling hot paths must cost one global read when off
    assert not obs.events_enabled()
    iterations = 50_000
    start = time.perf_counter()
    for _ in range(iterations):
        obs.emit("heartbeat", experiment="fig3_4", worker="w1")
    elapsed = time.perf_counter() - start
    assert elapsed < iterations * 20e-6, f"{elapsed:.3f}s for {iterations} no-ops"


# ----------------------------------------------------------------------
# progress: event-stream summarisation and rendering
# ----------------------------------------------------------------------

def make_event(kind, ts=0.0, **fields):
    event = {"v": 1, "ts": ts, "pid": 1, "kind": kind}
    event.update({k: v for k, v in fields.items() if v is not None})
    return event


def test_summarize_events_folds_lifecycle_and_worker_health():
    trace_id = "b" * 32
    events = [
        make_event("run_start", 1.0, backend="remote", experiments=2,
                   trace_id=trace_id),
        make_event("scheduled", 1.1, experiment="fig3_4", worker="w1"),
        make_event("scheduled", 1.1, experiment="tab3_ovh", worker="w2"),
        make_event("claimed", 1.2, experiment="fig3_4", worker="w1"),
        make_event("clock", 1.3, worker="w1", tier="synced"),
        make_event("started", 1.4, experiment="fig3_4", worker="w1"),
        make_event("steal", 1.5, experiment="tab3_ovh", worker="w1",
                   victim="w2"),
        make_event("claimed", 1.5, experiment="tab3_ovh", worker="w1"),
        make_event("result", 2.0, experiment="fig3_4", worker="w1",
                   status="ok", elapsed_s=0.6),
    ]
    summary = summarize_events(events)
    assert summary["run"]["trace_id"] == trace_id
    assert summary["run"]["backend"] == "remote"
    assert not summary["run"]["ended"]
    assert summary["experiments"]["fig3_4"]["status"] == "ok"
    assert summary["experiments"]["fig3_4"]["elapsed_s"] == 0.6
    assert summary["experiments"]["tab3_ovh"]["status"] == "claimed"
    w1 = summary["workers"]["w1"]
    assert w1["completed"] == 1 and w1["steals"] == 1
    assert w1["tier"] == "synced"
    assert w1["inflight"] == {"tab3_ovh"}
    # the steal moved the task off the victim's in-flight set
    assert summary["workers"]["w2"]["inflight"] == set()

    summary = summarize_events(
        events + [make_event("run_end", 2.1, status="ok", ok=2, total=2)]
    )
    assert summary["run"]["ended"] and summary["run"]["status"] == "ok"


def test_render_summary_shows_health_table():
    events = [
        make_event("run_start", 10.0, backend="remote", experiments=1),
        make_event("claimed", 10.1, experiment="fig3_4", worker="w1"),
        make_event("result", 10.9, experiment="fig3_4", worker="w1",
                   status="ok", elapsed_s=0.8),
        make_event("run_end", 11.0, status="ok", ok=1, total=1),
    ]
    text = render_summary(summarize_events(events), now=12.0)
    assert "1/1 experiment(s) finished" in text
    assert "ended (ok)" in text
    assert "worker health" in text
    assert "w1" in text and "1.1" in text  # hb age = now - last_ts


def test_progress_cli_renders_an_event_file(tmp_path, capsys):
    path = tmp_path / "events.jsonl"
    log = obs.EventLog(path)
    log.emit("run_start", backend="inproc", jobs=1, experiments=1)
    log.emit("result", experiment="fig3_4", worker="inproc", status="ok",
             elapsed_s=0.1)
    log.emit("run_end", status="ok", ok=1, total=1)
    log.close()
    assert progress_main(["--events", str(path), "--tail", "2"]) == 0
    out = capsys.readouterr().out
    assert "1/1 experiment(s) finished" in out
    assert "worker health" in out
    assert "run_end" in out  # the --tail raw lines

    assert progress_main(["--events", str(tmp_path / "missing.jsonl")]) == 0
    assert "no events" in capsys.readouterr().out


# ----------------------------------------------------------------------
# end to end: a traced remote fleet run, shards rebased, events streamed
# ----------------------------------------------------------------------

pytest_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fleet test relies on cheap fork workers",
)


@pytest_fork
def test_remote_traced_run_returns_clock_corrected_worker_shards(tmp_path):
    from repro.runtime.backends import RemoteBackend, RemoteOptions
    from tests.test_backends import tiny_spec, worker_fleet

    trace_id = obs.new_trace_id()
    obs.enable(obs.TelemetryRecorder(process="main", trace_id=trace_id))
    events_path = tmp_path / "events.jsonl"
    obs.enable_events(obs.EventLog(events_path, trace_id=trace_id))
    telemetry_dir = tmp_path / "telemetry"
    telemetry_dir.mkdir()
    spec = tiny_spec(
        tmp_path,
        telemetry_dir=str(telemetry_dir),
        trace_id=trace_id,
        parent_span_id=obs.new_span_id(),
        events_path=str(events_path),
    )
    with worker_fleet(2) as addresses:
        backend = RemoteBackend(RemoteOptions(
            workers=tuple(addresses), heartbeat_s=0.1,
        ))
        report, _ = backend.run(["fig3_4", "tab3_ovh"], spec)
    assert all(outcome.ok for outcome in report.outcomes)

    # the workers' telemetry came back over the result frames and was
    # rebased onto the coordinator timeline before being written out
    docs, stale = obs.scan_shards(telemetry_dir)
    assert docs and stale == 0
    for doc in docs:
        assert doc["process"] == "remote-worker"
        assert doc["clock"]["quality"] in (QUALITY_SYNCED, QUALITY_COARSE)
    worker_spans = [
        event
        for doc in docs
        for event in doc["trace_events"]
        if event["ph"] == "X"
    ]
    assert worker_spans
    assert all(e["args"].get("trace_id") == trace_id for e in worker_spans)
    assert all(e["ts"] >= 0 for e in worker_spans)

    # the event stream recorded the full task lifecycle under the run's
    # trace id, and every line conforms to the checked-in schema
    events = obs.read_events(events_path)
    kinds = {event["kind"] for event in events}
    assert {"scheduled", "claimed", "started", "result", "clock"} <= kinds
    for index, event in enumerate(events):
        check(event, EVENTS_SCHEMA, label=f"event[{index}]")
        assert event["trace_id"] == trace_id
