"""Unit and property tests for the tree pseudo-LRU policy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plru import PseudoLRUTree


def test_power_of_two_required():
    for bad in (0, 3, 6, 12):
        with pytest.raises(ValueError):
            PseudoLRUTree(bad)


def test_single_way():
    plru = PseudoLRUTree(1)
    assert plru.victim() == 0
    plru.touch(0)
    assert plru.victim() == 0


def test_touch_out_of_range():
    plru = PseudoLRUTree(4)
    with pytest.raises(ValueError):
        plru.touch(4)


def test_victim_is_never_the_last_touched():
    plru = PseudoLRUTree(8)
    for way in range(8):
        plru.touch(way)
        assert plru.victim() != way


def test_round_robin_behaviour_under_sequential_touches():
    """Touching the current victim repeatedly must cycle through all ways."""
    plru = PseudoLRUTree(8)
    seen = set()
    for _ in range(8):
        victim = plru.victim()
        seen.add(victim)
        plru.touch(victim)
    assert seen == set(range(8))


def test_victim_avoids_recently_used_subtree():
    """Pseudo-LRU is approximate, but it always points away from the
    most recently touched subtree."""
    plru = PseudoLRUTree(4)
    plru.touch(2)
    plru.touch(3)
    assert plru.victim() in (0, 1)
    plru.touch(0)
    plru.touch(1)
    assert plru.victim() in (2, 3)


@settings(max_examples=40, deadline=None)
@given(
    ways=st.sampled_from([2, 4, 8, 16]),
    touches=st.lists(st.integers(0, 15), min_size=1, max_size=60),
)
def test_victim_always_valid_and_not_most_recent(ways, touches):
    plru = PseudoLRUTree(ways)
    last = None
    for touch in touches:
        way = touch % ways
        plru.touch(way)
        last = way
        victim = plru.victim()
        assert 0 <= victim < ways
        if ways > 1:
            assert victim != last


def test_reset():
    plru = PseudoLRUTree(4)
    plru.touch(0)
    plru.reset()
    fresh = PseudoLRUTree(4)
    assert plru.victim() == fresh.victim()
