"""Unit tests for the Transition Detector and Counter."""

import numpy as np
import pytest

from repro.core.trident.tdc import TransitionDetectorCounter
from repro.timing.dta import ERR_CE, ERR_NONE, ERR_SE_MAX, ERR_SE_MIN


@pytest.fixture()
def tdc():
    return TransitionDetectorCounter(clock_period=100.0, hold_constraint=10.0)


def test_validation():
    with pytest.raises(ValueError):
        TransitionDetectorCounter(0.0, 0.0)
    with pytest.raises(ValueError):
        TransitionDetectorCounter(100.0, 100.0)
    with pytest.raises(ValueError):
        TransitionDetectorCounter(100.0, -5.0)


def test_illegal_transition_counts(tdc):
    t_late = np.array([50.0, 120.0, 50.0, 120.0])
    t_early = np.array([40.0, 40.0, 5.0, 5.0])
    counts = tdc.count_illegal(t_late, t_early)
    assert counts.tolist() == [0, 1, 1, 2]


def test_classification_matches_fig_4_6(tdc):
    """One early illegal transition -> SE(Min); one late -> SE(Max); a
    late followed by an early within the cycle -> CE."""
    t_late = np.array([50.0, 50.0, 120.0, 120.0])
    t_early = np.array([40.0, 5.0, 40.0, 5.0])
    classes = tdc.classify(t_late, t_early)
    assert classes.tolist() == [ERR_NONE, ERR_SE_MIN, ERR_SE_MAX, ERR_CE]


def test_classification_agrees_with_cycle_timings(error_trace16):
    tdc = TransitionDetectorCounter(
        error_trace16.clock_period, error_trace16.hold_constraint
    )
    classes = tdc.classify(error_trace16.t_late, error_trace16.t_early)
    assert (classes == error_trace16.err_class).all()


def test_stall_cycles_for_classes():
    assert TransitionDetectorCounter.stall_cycles_for(ERR_NONE) == 0
    assert TransitionDetectorCounter.stall_cycles_for(ERR_SE_MIN) == 1
    assert TransitionDetectorCounter.stall_cycles_for(ERR_SE_MAX) == 1
    assert TransitionDetectorCounter.stall_cycles_for(ERR_CE) == 2
    with pytest.raises(ValueError):
        TransitionDetectorCounter.stall_cycles_for(7)


def test_no_transition_cycles_are_legal(tdc):
    # t_late = 0 and t_early = +inf encode "no output transition"
    counts = tdc.count_illegal(np.array([0.0]), np.array([np.inf]))
    assert counts.tolist() == [0]
