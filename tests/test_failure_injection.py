"""Failure-injection tests: pathological inputs and corrupted state.

A production library must fail loudly and precisely on bad inputs, and
its behavioural models must stay sane under degenerate-but-legal
conditions (empty error populations, saturated tables, extreme delays).
"""

import numpy as np
import pytest

from repro.arch.trace import BENCHMARKS, generate_trace
from repro.core.dcs import DcsScheme
from repro.core.scheme_sim import build_error_trace
from repro.core.schemes import HfgScheme, OcstScheme, RazorScheme
from repro.core.trident import TridentScheme
from repro.timing.dta import ERR_SE_MAX, cycle_timings
from repro.timing.levelize import levelize

from tests.util import synthetic_error_trace


def test_single_cycle_error_trace():
    trace = synthetic_error_trace(np.array([ERR_SE_MAX], dtype=np.int8))
    for scheme in (RazorScheme(), HfgScheme(), OcstScheme(interval=10),
                   DcsScheme("icslt", 32), TridentScheme(32)):
        result = scheme.simulate(trace)
        assert result.base_cycles == 1
        assert result.penalty_cycles >= 0


def test_empty_like_trace_all_clean():
    trace = synthetic_error_trace(np.zeros(3, dtype=np.int8))
    for scheme in (RazorScheme(), DcsScheme("acslt", 16, 8), TridentScheme(32)):
        result = scheme.simulate(trace)
        assert result.penalty_cycles == 0
        assert result.errors_total == 0


def test_every_cycle_errant_saturates_but_terminates():
    n = 500
    classes = np.full(n, ERR_SE_MAX, dtype=np.int8)
    instr = (np.arange(n) % 200).astype(np.int16)  # more tags than capacity
    trace = synthetic_error_trace(classes, instr_sens=instr, instr_init=instr)
    result = DcsScheme("icslt", 32).simulate(trace)
    assert result.errors_total == n
    assert result.errors_predicted + result.errors_missed == n
    # the tiny table thrashes but never crashes or over-counts
    assert result.extra["capacity_misses"] > 0


def test_nan_free_timing_on_extreme_delays(alu8, alu8_circuit):
    rng = np.random.default_rng(0)
    ops = rng.integers(0, 13, size=10)
    a = rng.integers(0, 256, size=10, dtype=np.uint64)
    b = rng.integers(0, 256, size=10, dtype=np.uint64)
    inputs = alu8.encode_batch(ops, a, b)
    delays = np.zeros(alu8.netlist.num_nodes)
    for node in range(alu8.netlist.num_nodes):
        if alu8.netlist.fanins(node):
            delays[node] = 1e9  # absurd but finite
    timings = cycle_timings(alu8_circuit, inputs, delays)
    assert not np.isnan(timings.t_late).any()
    assert (timings.t_late >= 0).all()


def test_zero_delay_chip_is_legal(alu8, alu8_circuit):
    """All-zero delays (a degenerate corner) must yield zero arrivals."""
    rng = np.random.default_rng(1)
    ops = rng.integers(0, 13, size=5)
    a = rng.integers(0, 256, size=5, dtype=np.uint64)
    b = rng.integers(0, 256, size=5, dtype=np.uint64)
    inputs = alu8.encode_batch(ops, a, b)
    timings = cycle_timings(
        alu8_circuit, inputs, np.zeros(alu8.netlist.num_nodes)
    )
    assert (timings.t_late == 0).all()


def test_trace_stage_width_mismatch_raises(stage16_ntc, chip16):
    wrong = generate_trace(BENCHMARKS["gap"], 20, width=32)
    with pytest.raises(ValueError):
        build_error_trace(stage16_ntc, chip16, wrong)


def test_foreign_chip_delays_length_guard(stage16_ntc, alu8):
    """A chip fabricated from a different netlist cannot time this stage."""
    from repro.pv.chip import fabricate_chip
    from repro.pv.delaymodel import NTC

    foreign = fabricate_chip(alu8.netlist, NTC, seed=0)
    trace = generate_trace(BENCHMARKS["gap"], 20, width=16)
    with pytest.raises((ValueError, IndexError)):
        build_error_trace(stage16_ntc, foreign, trace)


def test_ocst_interval_larger_than_trace():
    classes = np.zeros(50, dtype=np.int8)
    classes[::5] = ERR_SE_MAX
    trace = synthetic_error_trace(classes)
    result = OcstScheme(interval=100_000).simulate(trace)
    # never reaches a tuning boundary: behaves exactly like Razor
    razor = RazorScheme().simulate(trace)
    assert result.penalty_cycles == razor.penalty_cycles
    assert result.effective_clock_period == pytest.approx(trace.clock_period)


def test_hfg_on_trace_without_late_arrivals():
    trace = synthetic_error_trace(
        np.zeros(10, dtype=np.int8), t_late=np.full(10, 100.0)
    )
    result = HfgScheme().simulate(trace)
    # guardband never goes below the nominal clock
    assert result.effective_clock_period >= trace.clock_period


def test_levelize_rejects_nothing_but_empty_netlists_work():
    from repro.gates.netlist import Netlist
    from repro.gates.celllib import GateKind

    netlist = Netlist("inputs-only")
    netlist.add(GateKind.INPUT, (), name="a")
    circuit = levelize(netlist)
    assert circuit.depth == 0


# ----------------------------------------------------------------------
# runtime chaos harness: the resilience layer under deliberate faults
# ----------------------------------------------------------------------

def test_corrupt_checkpoint_load_falls_back_to_recompute(tmp_path):
    """A damaged on-disk artefact must mean recomputation, not a crash."""
    from repro.runtime import CheckpointStore
    from repro.runtime.chaos import corrupt_entry

    store = CheckpointStore(tmp_path)
    store.save("etrace-deadbeef", np.arange(32))
    corrupt_entry(store, "etrace-deadbeef", mode="flip")
    assert store.load("etrace-deadbeef") is None
    assert store.stats.corrupt == 1
    recomputed = store.fetch("etrace-deadbeef", lambda: np.arange(32))
    assert (recomputed == np.arange(32)).all()


def test_injected_exception_isolated_from_siblings():
    """One errant experiment yields a FailureRecord; siblings still run."""
    from repro.experiments import FAST_CONFIG, ExperimentContext
    from repro.experiments.report import ExperimentResult
    from repro.runtime import run_many
    from repro.runtime.chaos import failing_run

    bodies = {
        "healthy_a": lambda ctx: ExperimentResult("healthy_a", "t"),
        "errant": failing_run("mid-experiment fault"),
        "healthy_b": lambda ctx: ExperimentResult("healthy_b", "t"),
    }
    report = run_many(
        list(bodies), ExperimentContext(FAST_CONFIG), resolve=bodies.__getitem__
    )
    assert [o.ok for o in report.outcomes] == [True, False, True]
    (failure,) = report.failures
    assert failure.experiment_id == "errant"
    assert "mid-experiment fault" in failure.message
    assert failure.traceback  # full traceback captured for triage


def test_injected_timeout_fails_instead_of_hanging():
    """The watchdog converts an over-budget run into a timeout failure."""
    import time

    from repro.experiments import FAST_CONFIG, ExperimentContext
    from repro.runtime import run_supervised
    from repro.runtime.chaos import hanging_run

    start = time.monotonic()
    outcome = run_supervised(
        "stuck", hanging_run(120.0), ExperimentContext(FAST_CONFIG), timeout_s=0.2
    )
    assert time.monotonic() - start < 30  # the suite itself did not hang
    assert not outcome.ok
    assert outcome.failure.kind == "timeout"
