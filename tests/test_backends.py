"""Tests for the executor backends: frame codec, backoff determinism,
heartbeat/partition detection, resubmission, blame, and the
bit-identical-report contract across inproc / procpool / remote.

The remote tests drive real worker subprocesses over localhost sockets
— the same path the CI fleet smoke exercises — because the failure
modes under test (EOF on a killed worker, heartbeats crossing a process
boundary) only exist with real processes on real sockets.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments import FAST_CONFIG
from repro.runtime import CheckpointStore, WorkerSpec, backoff_delay, jitter_fraction
from repro.runtime.backends import (
    BACKENDS,
    InprocBackend,
    ProcpoolBackend,
    RemoteBackend,
    RemoteOptions,
    SubmissionOrderMerger,
    resolve_backend,
)
from repro.runtime.backends.frames import (
    FrameError,
    FrameStream,
    decode_frame,
    encode_frame,
    pack_pickle,
    unpack_pickle,
)
from repro.runtime.backends.remote import parse_address
from repro.runtime.chaos import ChaosNet
from repro.runtime.executor import RunOutcome

TINY = replace(FAST_CONFIG, cycles=200)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="backend tests rely on cheap fork workers",
)


def tiny_spec(tmp_path=None, **overrides) -> WorkerSpec:
    checkpoint_dir = str(tmp_path / "ckpt") if tmp_path is not None else None
    defaults = dict(config=TINY, checkpoint_dir=checkpoint_dir)
    defaults.update(overrides)
    return WorkerSpec(**defaults)


def report_digest(report) -> str:
    """Wall-clock-free JSON digest of a report, for cross-backend cmp."""
    rows = []
    for outcome in report.outcomes:
        row = {"id": outcome.experiment_id, "ok": outcome.ok}
        if outcome.result is not None:
            row["result"] = outcome.result.to_dict()
        if outcome.failure is not None:
            row["failure"] = {
                "kind": outcome.failure.kind,
                "error_type": outcome.failure.error_type,
            }
        rows.append(row)
    return json.dumps(rows, sort_keys=True)


@contextmanager
def worker_fleet(count: int):
    """``count`` real worker subprocesses; yields their addresses."""
    src = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    procs = []
    try:
        for _ in range(count):
            procs.append(
                subprocess.Popen(
                    [sys.executable, "-m", "repro.experiments", "worker",
                     "--listen", "127.0.0.1:0"],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    text=True,
                    env=env,
                )
            )
        addresses = []
        for proc in procs:
            ready = proc.stdout.readline().split()
            assert ready and ready[0] == "READY", f"worker said {ready!r}"
            addresses.append(f"127.0.0.1:{ready[1]}")
        yield addresses
    finally:
        for proc in procs:
            proc.kill()
            proc.wait()


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------

def test_frame_round_trip():
    payload = {"type": "task", "experiment_id": "fig3_4", "n": 7}
    blob = encode_frame(payload) + b"tail"
    decoded, rest = decode_frame(blob)
    assert decoded == payload and rest == b"tail"


def test_frame_truncation_is_detected():
    blob = encode_frame({"type": "result"})
    for cut in (1, 3, len(blob) - 1):
        with pytest.raises(FrameError):
            decode_frame(blob[:cut])


def test_frame_rejects_garbage_and_oversize():
    with pytest.raises(FrameError):
        decode_frame(b"\x00\x00\x00\x02{]")  # not valid JSON
    with pytest.raises(FrameError):
        decode_frame(b"\x00\x00\x00\x04true")  # JSON but not an object
    with pytest.raises(FrameError):
        decode_frame(b"\xff\xff\xff\xff")  # absurd length claim


def test_pickle_fields_round_trip():
    spec = tiny_spec()
    assert unpack_pickle(pack_pickle(spec)) == spec


def test_frame_stream_over_socketpair():
    left, right = socket.socketpair()
    a, b = FrameStream(left), FrameStream(right)
    a.send({"type": "hello", "k": 1})
    assert b.recv(timeout=5.0) == {"type": "hello", "k": 1}
    with pytest.raises(TimeoutError):
        b.recv(timeout=0.05)
    a.close()
    assert b.recv(timeout=5.0) is None  # clean EOF at a frame boundary
    b.close()


def test_frame_stream_mid_frame_eof_raises():
    left, right = socket.socketpair()
    blob = encode_frame({"type": "result", "data": "x" * 64})
    left.sendall(blob[: len(blob) // 2])
    left.close()
    with pytest.raises(FrameError):
        FrameStream(right).recv(timeout=5.0)


# ----------------------------------------------------------------------
# backoff: deterministic, exponential, capped
# ----------------------------------------------------------------------

def test_backoff_is_deterministic_and_seed_sensitive():
    a = backoff_delay(2, 0.1, seed=("fig3_4",))
    assert a == backoff_delay(2, 0.1, seed=("fig3_4",))
    assert a != backoff_delay(2, 0.1, seed=("fig4_8",))


def test_backoff_envelope_doubles_and_caps():
    base = 0.1
    for attempt in range(1, 8):
        delay = backoff_delay(attempt, base, cap_s=1.0, seed=("x",))
        envelope = min(1.0, base * 2 ** (attempt - 1))
        assert envelope / 2 <= delay < envelope
    assert backoff_delay(50, base, cap_s=1.0, seed=("x",)) < 1.0


def test_backoff_disabled_and_jitter_range():
    assert backoff_delay(3, 0.0) == 0.0
    assert backoff_delay(0, 1.0) == 0.0
    for parts in (("a",), ("a", 1), (("h", 1234),)):
        assert 0.0 <= jitter_fraction(*parts) < 1.0


def test_executor_retries_apply_backoff(tmp_path, monkeypatch):
    from repro.runtime import run_supervised
    from repro.runtime.chaos import flaky_run

    slept = []
    monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))

    class Ctx:
        config = TINY

    def ok(ctx):
        from repro.experiments.report import ExperimentResult

        return ExperimentResult("t", "fine")

    outcome = run_supervised(
        "t", flaky_run(ok, failures=2), Ctx(),
        retries=2, retry_backoff_s=0.1,
    )
    assert outcome.ok and outcome.attempts == 3
    assert slept == [
        backoff_delay(1, 0.1, seed=("t", 2)),
        backoff_delay(2, 0.1, seed=("t", 3)),
    ]


# ----------------------------------------------------------------------
# merger + registry
# ----------------------------------------------------------------------

def test_submission_order_merger_holds_back():
    emitted = []
    merger = SubmissionOrderMerger(["a", "b", "c"], emitted.append)
    merger.add(RunOutcome("b", None, None, 0.0))
    assert emitted == [] and merger.unresolved == ["a", "c"]
    merger.add(RunOutcome("a", None, None, 0.0))
    assert [o.experiment_id for o in emitted] == ["a", "b"]
    merger.add(RunOutcome("c", None, None, 0.0))
    assert merger.complete
    assert [o.experiment_id for o in merger.report().outcomes] == ["a", "b", "c"]


def test_backend_registry():
    assert set(BACKENDS) == {"inproc", "procpool", "remote"}
    assert isinstance(resolve_backend("inproc"), InprocBackend)
    assert isinstance(resolve_backend("procpool"), ProcpoolBackend)
    assert isinstance(
        resolve_backend("remote", workers=("127.0.0.1:1",)), RemoteBackend
    )
    with pytest.raises(ValueError):
        resolve_backend("carrier-pigeon")
    with pytest.raises(ValueError):
        RemoteBackend(RemoteOptions(workers=()))


def test_parse_address():
    assert parse_address("10.0.0.2:7070") == ("10.0.0.2", 7070)
    assert parse_address("7070") == ("127.0.0.1", 7070)
    with pytest.raises(ValueError):
        parse_address("host:notaport")


# ----------------------------------------------------------------------
# cross-backend bit-identity
# ----------------------------------------------------------------------

def test_inproc_and_procpool_reports_identical(tmp_path):
    ids = ["fig3_4", "tab3_ovh", "tab4_ovh"]
    ref, _ = InprocBackend().run(ids, tiny_spec(tmp_path / "a"))
    got, _ = ProcpoolBackend().run(ids, tiny_spec(tmp_path / "b"), jobs=2)
    assert report_digest(ref) == report_digest(got)


def test_remote_report_identical_to_inproc(tmp_path):
    ids = ["fig3_4", "tab3_ovh", "tab4_ovh"]
    ref, _ = InprocBackend().run(ids, tiny_spec(tmp_path / "a"))
    seen = []
    with worker_fleet(2) as addresses:
        backend = RemoteBackend(RemoteOptions(
            workers=tuple(addresses), heartbeat_s=0.1,
        ))
        got, stats = backend.run(
            ids, tiny_spec(tmp_path / "b"),
            on_outcome=lambda o: seen.append(o.experiment_id),
        )
    assert report_digest(ref) == report_digest(got)
    assert seen == ids  # on_outcome fires in submission order
    assert stats.stores > 0  # workers really used the shared store


# ----------------------------------------------------------------------
# failure modes: heartbeat loss, partition blame, crash blame, fallback
# ----------------------------------------------------------------------

def test_dropped_heartbeats_trigger_resubmission(tmp_path):
    # drop mode discards the victim's heartbeats: the worker is alive
    # and computing, but looks dead — the deadline must fire and the
    # task must complete elsewhere with no failure in the report.
    ids = ["fig3_4", "tab3_ovh"]
    ref, _ = InprocBackend().run(ids, tiny_spec(tmp_path / "a"))
    with worker_fleet(2) as addresses:
        backend = RemoteBackend(RemoteOptions(
            workers=tuple(addresses),
            heartbeat_s=0.1,
            heartbeat_deadline_s=1.0,
            reconnect_attempts=0,
            chaos_net=ChaosNet("drop"),
        ))
        got, _ = backend.run(ids, tiny_spec(tmp_path / "b"))
    assert report_digest(ref) == report_digest(got)


def test_partition_blamed_when_budget_exhausted(tmp_path):
    # with crash_retries=0 the first partition must surface as a
    # FailureRecord(kind="partition") instead of hanging the run
    with worker_fleet(1) as addresses:
        backend = RemoteBackend(RemoteOptions(
            workers=tuple(addresses),
            heartbeat_s=0.1,
            heartbeat_deadline_s=1.0,
            reconnect_attempts=0,
            chaos_net=ChaosNet("partition"),
        ))
        start = time.monotonic()
        report, _ = backend.run(
            ["fig3_4"], tiny_spec(tmp_path), crash_retries=0
        )
        elapsed = time.monotonic() - start
    failure = report.outcomes[0].failure
    assert failure is not None and failure.kind == "partition"
    assert failure.error_type == "WorkerPartition"
    assert elapsed < 30.0  # detection bounded by the deadline, not a hang


def test_killed_worker_blamed_as_crash(tmp_path):
    # chaos_kill rides the spec into the remote worker and os._exits it
    # mid-task; with budget 0 that must blame a kind="crash" record
    # while the surviving ids complete via the procpool fallback.
    ids = ["fig3_4", "tab3_ovh"]
    with worker_fleet(1) as addresses:
        backend = RemoteBackend(RemoteOptions(
            workers=tuple(addresses),
            heartbeat_s=0.1,
            reconnect_attempts=0,
        ))
        report, _ = backend.run(
            ids, tiny_spec(tmp_path, chaos_kill=("fig3_4",)), crash_retries=0
        )
    assert [o.experiment_id for o in report.outcomes] == ids
    failure = report.outcomes[0].failure
    assert failure is not None and failure.kind == "crash"
    assert failure.error_type == "WorkerCrash"
    assert report.outcomes[1].ok  # fallback finished the rest


def test_unreachable_fleet_downgrades_to_procpool(tmp_path):
    # nothing listens on these ports: the run must still complete,
    # locally, with a logged downgrade instead of an error
    ids = ["fig3_4"]
    ref, _ = InprocBackend().run(ids, tiny_spec(tmp_path / "a"))
    backend = RemoteBackend(RemoteOptions(
        workers=("127.0.0.1:9", "127.0.0.1:10"),
        connect_timeout_s=0.5,
        connect_attempts=1,
    ))
    got, _ = backend.run(ids, tiny_spec(tmp_path / "b"), jobs=2)
    assert report_digest(ref) == report_digest(got)


# ----------------------------------------------------------------------
# cross-machine claims
# ----------------------------------------------------------------------

def test_claim_records_pid_and_hostname(tmp_path):
    store = CheckpointStore(tmp_path, claims=True)
    assert store.try_claim("artefact")
    pid, host = store.claim_path("artefact").read_text().split()
    assert int(pid) == os.getpid() and host == socket.gethostname()


def test_foreign_host_claim_falls_back_to_age_rule(tmp_path):
    # a dead-looking pid from another machine says nothing about our
    # pid space: the claim must NOT be broken by the liveness probe
    child = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True, text=True, check=True,
    )
    dead_pid = int(child.stdout)
    store = CheckpointStore(tmp_path, claims=True, claim_stale_s=60.0)
    store.claim_path("artefact").write_text(f"{dead_pid} elsewhere.example\n")
    assert not store.try_claim("artefact")  # age rule still protects it
    # the same dead pid from THIS host is provably orphaned: broken and
    # (on the next attempt) re-claimable
    store.claim_path("artefact").write_text(
        f"{dead_pid} {socket.gethostname()}\n"
    )
    assert not store.try_claim("artefact")  # this call breaks it...
    assert store.try_claim("artefact")  # ...freeing this one to win


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------

def test_cli_backend_flag_validation(capsys):
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["fig3_4", "--fast", "--backend", "remote"])
    assert "--workers" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["fig3_4", "--fast", "--chaos-net", "partition"])
    assert "--chaos-net" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["fig3_4", "--fast", "--backend", "remote",
              "--workers", "127.0.0.1:1", "--chaos-net", "smoke-signals"])
    assert "smoke-signals" in capsys.readouterr().err


def test_cli_explicit_backend_selection(tmp_path, capsys):
    from repro.experiments.__main__ import main

    out_a = tmp_path / "a.json"
    out_b = tmp_path / "b.json"
    argv = ["fig3_4", "--fast", "--cycles", "200", "--format", "json"]
    assert main([*argv, "--backend", "inproc", "--out", str(out_a)]) == 0
    assert main([*argv, "--backend", "procpool", "--jobs", "2",
                 "--out", str(out_b)]) == 0
    assert out_a.read_text() == out_b.read_text()
