"""Hypothesis property tests on the table structures and scheme math."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cslt import AssociativeCSLT, IndependentCSLT
from repro.core.dcs import DcsScheme
from repro.core.schemes import RazorScheme
from repro.core.tags import DcsTag, ErrorId
from repro.core.trident import TridentScheme
from repro.core.trident.cet import ChokeErrorTable

from tests.util import synthetic_error_trace

tags = st.builds(
    DcsTag,
    st.integers(0, 15),
    st.booleans(),
    st.integers(0, 15),
    st.booleans(),
)


@settings(max_examples=50, deadline=None)
@given(sequence=st.lists(tags, max_size=60))
def test_icslt_never_exceeds_capacity_and_remembers_last(sequence):
    table = IndependentCSLT(8)
    for tag in sequence:
        table.insert(tag)
        assert len(table) <= 8
        assert table.lookup(tag)  # just-inserted is always present


@settings(max_examples=50, deadline=None)
@given(sequence=st.lists(tags, max_size=60))
def test_acslt_never_exceeds_geometry(sequence):
    table = AssociativeCSLT(4, 4)
    for tag in sequence:
        table.insert(tag)
        assert len(table) <= 16
        assert table.lookup(tag)


@settings(max_examples=50, deadline=None)
@given(
    sequence=st.lists(
        st.builds(
            ErrorId,
            st.integers(0, 15),
            st.integers(0, 15),
            st.booleans(),
            st.booleans(),
            st.integers(1, 3),
        ),
        max_size=50,
    )
)
def test_cet_capacity_and_payload(sequence):
    cet = ChokeErrorTable(8)
    for eid in sequence:
        cet.insert(eid)
        assert len(cet) <= 8
        assert cet.lookup(eid.key) == eid.err_class


@settings(max_examples=30, deadline=None)
@given(
    classes=st.lists(st.integers(0, 3), min_size=2, max_size=120),
    capacity=st.sampled_from([16, 64, 256]),
)
def test_scheme_accounting_identities(classes, capacity):
    """Penalty bookkeeping identities hold on arbitrary error traces."""
    trace = synthetic_error_trace(
        np.array(classes, dtype=np.int8),
        instr_sens=np.arange(len(classes), dtype=np.int16) % 7,
        instr_init=np.arange(len(classes), dtype=np.int16) % 5,
    )
    for scheme in (DcsScheme("icslt", capacity), TridentScheme(capacity)):
        result = scheme.simulate(trace)
        assert result.errors_predicted + result.errors_missed == result.errors_total
        assert result.penalty_cycles == (
            result.stalls + result.flushes * 11
        )
        assert result.errors_missed <= result.flushes  # flush per miss (+escalations)
        assert 0.0 <= result.prediction_accuracy <= 1.0


@settings(max_examples=30, deadline=None)
@given(classes=st.lists(st.integers(0, 3), min_size=2, max_size=120))
def test_razor_penalty_is_linear_in_max_errors(classes):
    trace = synthetic_error_trace(np.array(classes, dtype=np.int8))
    result = RazorScheme().simulate(trace)
    max_errors = sum(1 for c in classes if c in (2, 3))
    assert result.penalty_cycles == 11 * max_errors


@settings(max_examples=20, deadline=None)
@given(classes=st.lists(st.integers(0, 3), min_size=2, max_size=80))
def test_larger_dcs_table_never_predicts_less(classes):
    trace = synthetic_error_trace(
        np.array(classes, dtype=np.int8),
        instr_sens=np.arange(len(classes), dtype=np.int16) % 11,
        instr_init=np.arange(len(classes), dtype=np.int16) % 3,
    )
    small = DcsScheme("icslt", 2).simulate(trace)
    large = DcsScheme("icslt", 256).simulate(trace)
    assert large.errors_predicted >= small.errors_predicted
