"""Integration tests: the full flow from netlist to scheme comparison."""

import numpy as np
import pytest

from repro.arch.trace import BENCHMARKS, generate_trace
from repro.core.dcs import DcsScheme
from repro.core.scheme_sim import build_error_trace
from repro.core.schemes import HfgScheme, OcstScheme, RazorScheme
from repro.core.trident import TridentScheme
from repro.energy.metrics import normalize_to
from repro.energy.overheads import dcs_overheads, trident_overheads
from repro.pv.delaymodel import NTC


@pytest.fixture(scope="module")
def all_scheme_results(error_trace16):
    schemes = (
        RazorScheme(),
        HfgScheme(),
        OcstScheme(interval=400),
        DcsScheme("icslt", 128),
        DcsScheme("acslt", 32, 16),
        TridentScheme(128),
    )
    return {s.name: s.simulate(error_trace16) for s in schemes}


def test_all_schemes_produce_consistent_results(all_scheme_results, error_trace16):
    for name, result in all_scheme_results.items():
        assert result.base_cycles == len(error_trace16)
        assert result.penalty_cycles >= 0
        assert 0.0 <= result.prediction_accuracy <= 1.0
        assert result.effective_clock_period >= error_trace16.clock_period * 0.999
        assert result.errors_predicted + result.errors_missed == result.errors_total


def test_dcs_beats_razor_on_penalties(all_scheme_results):
    razor = all_scheme_results["Razor"]
    if razor.errors_total < 20:
        pytest.skip("reference chip produced too few errors for comparison")
    for name in ("DCS-ICSLT", "DCS-ACSLT"):
        assert all_scheme_results[name].penalty_cycles < razor.penalty_cycles


def test_dcs_and_trident_predict_most_errors(all_scheme_results):
    for name in ("DCS-ICSLT", "DCS-ACSLT", "Trident"):
        result = all_scheme_results[name]
        if result.errors_total >= 50:
            assert result.prediction_accuracy > 0.5


def test_trident_covers_min_errors_razor_does_not(all_scheme_results, error_trace16):
    counts = error_trace16.error_counts()
    razor = all_scheme_results["Razor"]
    trident = all_scheme_results["Trident"]
    assert razor.errors_total == counts["se_max"] + counts["ce"]
    assert trident.errors_total == (
        counts["se_max"] + counts["se_min"] + counts["ce"]
    )


def test_normalized_reports_are_finite(all_scheme_results):
    overheads = {
        "DCS-ICSLT": dcs_overheads("icslt", 128),
        "DCS-ACSLT": dcs_overheads("acslt", 32, 16),
        "Trident": trident_overheads(128),
    }
    reports = normalize_to(all_scheme_results, NTC, overheads)
    for report in reports.values():
        assert np.isfinite(report.normalized_performance)
        assert np.isfinite(report.normalized_efficiency)
        assert report.normalized_performance > 0


def test_hfg_never_pays_penalties_but_runs_slower(all_scheme_results):
    hfg = all_scheme_results["HFG"]
    razor = all_scheme_results["Razor"]
    assert hfg.penalty_cycles == 0
    if razor.errors_total > 0:
        assert hfg.effective_clock_period > razor.effective_clock_period


def test_end_to_end_determinism(stage16_ntc, chip16):
    trace = generate_trace(BENCHMARKS["gzip"], 600, width=16)
    results = []
    for _ in range(2):
        errors = build_error_trace(stage16_ntc, chip16, trace)
        results.append(DcsScheme("icslt", 64).simulate(errors))
    assert results[0].penalty_cycles == results[1].penalty_cycles
    assert results[0].errors_total == results[1].errors_total


def test_different_chips_learn_different_signatures(stage16_ntc, mcf_trace16):
    """Two fabricated chips of the same design show different choke
    signatures -- the per-chip adaptivity the paper motivates."""
    outcomes = []
    for seed in (0, 2, 3, 8, 10):
        chip = stage16_ntc.fabricate(seed=seed)
        errors = build_error_trace(stage16_ntc, chip, mcf_trace16)
        result = DcsScheme("icslt", 128).simulate(errors)
        outcomes.append((result.errors_total, result.unique_instances))
    assert len(set(outcomes)) > 1


def test_stc_chip_is_nearly_error_free(stage16_stc, mcf_trace16):
    """The same ΔVth that chokes NTC chips leaves STC timing intact."""
    chip = stage16_stc.fabricate(seed=10)
    errors = build_error_trace(stage16_stc, chip, mcf_trace16)
    counts = errors.error_counts()
    ntc_like_errors = counts["se_max"] + counts["se_min"] + counts["ce"]
    assert ntc_like_errors < 0.01 * len(errors)
