"""The documented top-level API surface stays importable and complete."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_documented_quickstart_names_present():
    for name in (
        "build_ex_stage", "NTC", "STC", "BENCHMARKS", "generate_trace",
        "build_error_trace", "DcsScheme", "TridentScheme", "RazorScheme",
        "HfgScheme", "OcstScheme", "fabricate_chip", "build_alu",
        "alu_reference", "run_pipeline", "shmoo_sweep", "timing_report",
    ):
        assert name in repro.__all__, name


def test_experiments_package_importable():
    from repro.experiments import EXPERIMENTS, run_experiment

    assert "fig3_2" in EXPERIMENTS
    assert callable(run_experiment)


def test_corners_are_singletons():
    from repro.pv.delaymodel import NTC as ntc2

    assert repro.NTC is ntc2
    assert repro.NTC.vdd == 0.45
    assert repro.STC.vdd == 0.80
