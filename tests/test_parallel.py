"""Tests for the parallel runtime: determinism, shared-store safety,
crash containment, and worker-side watchdog semantics.

Mirrors the chaos-driven style of test_runtime.py: every guarantee the
fan-out layer claims is proven by injecting the corresponding fault —
a murdered worker, two processes racing on one store, a queue so long
that a submission-measured timeout would misfire.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import time
from dataclasses import replace

import pytest

from repro.experiments import FAST_CONFIG
from repro.experiments.runner import prefetch_plan
from repro.runtime import (
    CheckpointStore,
    WorkerSpec,
    prefetch_artefacts,
    run_many_parallel,
)

TINY = replace(FAST_CONFIG, cycles=200)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel tests rely on cheap fork workers",
)


def tiny_spec(tmp_path=None, **overrides) -> WorkerSpec:
    checkpoint_dir = str(tmp_path / "ckpt") if tmp_path is not None else None
    defaults = dict(config=TINY, checkpoint_dir=checkpoint_dir)
    defaults.update(overrides)
    return WorkerSpec(**defaults)


# ----------------------------------------------------------------------
# (a) determinism: serial and parallel runs produce identical reports
# ----------------------------------------------------------------------

def run_cli(argv, tmp_path, name):
    from repro.experiments.__main__ import main

    out = tmp_path / f"{name}.json"
    code = main([*argv, "--out", str(out), "--format", "json"])
    return code, out.read_text()


def test_serial_and_parallel_reports_are_identical(tmp_path, capsys):
    argv = ["fig3_4", "tab3_ovh", "tab4_ovh", "--fast", "--cycles", "200"]
    code_s, serial = run_cli([*argv, "--jobs", "1"], tmp_path, "serial")
    code_p, parallel = run_cli([*argv, "--jobs", "2"], tmp_path, "parallel")
    assert code_s == 0 and code_p == 0
    # bit-identical: the report JSON carries no wall-clock fields
    assert serial == parallel
    # incremental output is flushed in submission order in both modes
    out = capsys.readouterr().out
    assert out.index("fig3_4:") < out.index("tab3_ovh:") < out.index("tab4_ovh:")


def test_parallel_run_shares_user_checkpoint_store(tmp_path, capsys):
    from repro.experiments.__main__ import main

    ckpt = str(tmp_path / "ckpt")
    argv = ["fig3_4", "--fast", "--cycles", "200", "--checkpoint-dir", ckpt]
    assert main([*argv, "--jobs", "2"]) == 0
    first = capsys.readouterr().out
    assert "stored" in first
    # the second parallel run must resume from the store: its workers
    # report hits and nothing new is stored
    assert main([*argv, "--jobs", "2"]) == 0
    second = capsys.readouterr().out
    assert ", 0 stored" in second and "0 hits" not in second


# ----------------------------------------------------------------------
# (b) two processes sharing one store never corrupt an entry
# ----------------------------------------------------------------------

def _hammer_store(root, keys, results):
    store = CheckpointStore(root, claims=True, claim_stale_s=30.0)
    values = {}
    for key in keys:
        values[key] = store.fetch(key, lambda k=key: {"key": k, "blob": list(range(2000))})
    results.put((store.stats.as_dict(), {k: v["key"] for k, v in values.items()}))


def test_concurrent_processes_never_corrupt_shared_store(tmp_path):
    keys = [f"artefact-{i}" for i in range(8)]
    mp = multiprocessing.get_context("fork")
    results = mp.Queue()
    workers = [
        mp.Process(target=_hammer_store, args=(tmp_path, keys, results))
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    collected = [results.get(timeout=60) for _ in workers]
    for worker in workers:
        worker.join(timeout=60)
        assert worker.exitcode == 0
    # both processes saw every value, uncorrupted
    for stats, values in collected:
        assert stats["corrupt"] == 0
        assert values == {k: k for k in keys}
    # the store on disk is fully intact and claim files were cleaned up
    verify = CheckpointStore(tmp_path)
    for key in keys:
        assert verify.load(key)["key"] == key
    assert verify.stats.corrupt == 0
    assert not list(tmp_path.glob("*.claim"))


def test_claim_is_exclusive_and_stale_claims_break(tmp_path):
    store = CheckpointStore(tmp_path, claims=True, claim_stale_s=0.2)
    assert store.try_claim("k")
    other = CheckpointStore(tmp_path, claims=True, claim_stale_s=0.2)
    assert not other.try_claim("k")  # held, and fresh
    time.sleep(0.3)
    assert not other.try_claim("k")  # this attempt breaks the stale claim
    assert other.stats.claims_broken == 1
    assert other.try_claim("k")  # ...so the next one wins


def test_claim_of_dead_process_breaks_immediately(tmp_path):
    # A SIGKILL'd worker leaves its claim file behind; waiting out
    # claim_stale_s (10 min default) would wedge the retry.  The claim
    # records the owner pid, so a liveness probe must break it at once.
    child = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True,
        text=True,
        check=True,
    )
    dead_pid = int(child.stdout)
    store = CheckpointStore(tmp_path, claims=True, claim_stale_s=600.0)
    store.claim_path("k").write_text(f"{dead_pid}\n")
    assert not store.try_claim("k")  # this attempt breaks the orphan
    assert store.stats.claims_broken == 1
    assert store.try_claim("k")  # ...and the next one wins immediately

    # a claim held by a live process is NOT broken by the probe
    store.release("k")
    store.claim_path("k").write_text(f"{os.getpid()}\n")
    other = CheckpointStore(tmp_path, claims=True, claim_stale_s=600.0)
    assert not other.try_claim("k")
    assert other.stats.claims_broken == 0

    # garbage in the claim file falls back to the age rule
    store.claim_path("k").write_text("not-a-pid\n")
    assert not other.try_claim("k")
    assert other.stats.claims_broken == 0


def test_waiter_adopts_entry_computed_by_claim_holder(tmp_path):
    store = CheckpointStore(tmp_path, claims=True, claim_poll_s=0.01)
    holder = CheckpointStore(tmp_path, claims=True)
    assert holder.try_claim("k")

    computed = []

    def compute():
        computed.append(1)
        return "duplicate"

    import threading

    results: list = []
    waiter = threading.Thread(target=lambda: results.append(store.fetch("k", compute)))
    waiter.start()
    time.sleep(0.1)  # waiter is now polling behind the claim
    holder.save("k", "from-holder")
    holder.release("k")
    waiter.join(timeout=10)
    assert results == ["from-holder"]
    assert not computed  # the waiter never duplicated the work


# ----------------------------------------------------------------------
# (c) a chaos-killed worker yields a FailureRecord and exit code 1
# ----------------------------------------------------------------------

def test_killed_worker_becomes_crash_record_not_dead_run(tmp_path):
    spec = tiny_spec(tmp_path, chaos_kill=("tab4_ovh",))
    report, _ = run_many_parallel(
        ["tab3_ovh", "tab4_ovh", "fig3_4"], spec, jobs=2
    )
    assert [o.experiment_id for o in report.outcomes] == [
        "tab3_ovh", "tab4_ovh", "fig3_4",
    ]
    assert [o.ok for o in report.outcomes] == [True, False, True]
    failure = report.outcomes[1].failure
    assert failure.kind == "crash"
    assert failure.error_type == "WorkerCrash"
    assert report.exit_code() == 1
    assert "CRASH" in report.summary_text()


def test_cli_chaos_kill_exits_nonzero_and_isolates(tmp_path, capsys):
    from repro.experiments.__main__ import main

    code = main(["tab3_ovh", "tab4_ovh", "--fast", "--cycles", "200",
                 "--jobs", "2", "--chaos-kill", "tab4_ovh"])
    assert code == 1
    out = capsys.readouterr().out
    assert "1/2 experiments ok" in out
    assert "CRASH" in out and "WorkerCrash" in out


def test_cli_chaos_kill_requires_parallel_jobs(capsys):
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit) as excinfo:
        main(["tab3_ovh", "--fast", "--jobs", "1", "--chaos-kill", "tab3_ovh"])
    assert excinfo.value.code == 2
    assert "--jobs >= 2" in capsys.readouterr().err


def test_chaos_fail_propagates_into_workers(tmp_path):
    spec = tiny_spec(tmp_path, chaos_fail=("tab3_ovh",))
    report, _ = run_many_parallel(["tab3_ovh", "tab4_ovh"], spec, jobs=2)
    assert [o.ok for o in report.outcomes] == [False, True]
    failure = report.outcomes[0].failure
    assert failure.error_type == "InjectedFailure"
    assert "chaos-injected" in failure.message


# ----------------------------------------------------------------------
# watchdog semantics: the clock starts at worker start, not submission
# ----------------------------------------------------------------------

def test_timeout_measured_from_worker_start_not_submission(tmp_path):
    # Three 0.6s experiments queued on ONE worker: the last starts
    # ~1.2s after submission.  A submission-measured 1.0s watchdog
    # would kill it; the worker-start watchdog must not.
    slow = tuple((eid, 0.6) for eid in ("tab3_ovh", "tab4_ovh", "fig3_4"))
    spec = tiny_spec(tmp_path, chaos_slow=slow, timeout_s=1.0)
    report, _ = run_many_parallel(
        ["tab3_ovh", "tab4_ovh", "fig3_4"], spec, jobs=1
    )
    assert report.ok, report.summary_text()


def test_timeout_still_fires_inside_workers(tmp_path):
    spec = tiny_spec(tmp_path, chaos_slow=(("tab3_ovh", 30.0),), timeout_s=0.3)
    report, _ = run_many_parallel(["tab3_ovh", "tab4_ovh"], spec, jobs=2)
    assert [o.ok for o in report.outcomes] == [False, True]
    assert report.outcomes[0].failure.kind == "timeout"


# ----------------------------------------------------------------------
# prefetch plan + artefact fan-out
# ----------------------------------------------------------------------

def test_prefetch_plan_covers_selected_experiments():
    chips, traces = prefetch_plan(TINY, ["fig3_4"])
    assert chips == (("stage", TINY.ch3_chip_seed, "NTC", True),)
    assert traces == (("vortex", TINY.ch3_chip_seed, "NTC", True),)

    chips, traces = prefetch_plan(TINY, ["fig3_8", "fig4_8"])
    assert ("stage", TINY.ch3_chip_seed, "NTC", True) in chips
    assert ("stage", TINY.ch4_chip_seed, "NTC", True) in chips
    assert len(traces) == 2 * len(TINY.benchmarks)
    # every trace's chip is staged by the chip phase
    chip_keys = {(seed, corner, buffered) for _, seed, corner, buffered in chips}
    for _, chip_seed, corner, buffered in traces:
        assert (chip_seed, corner, buffered) in chip_keys

    chips, traces = prefetch_plan(TINY, ["fig3_2"])
    assert not traces
    assert len(chips) == 2 * TINY.characterization_chips  # STC and NTC
    assert all(kind == "alu" for kind, *_ in chips)

    assert prefetch_plan(TINY, ["tab3_ovh"]) == ((), ())


def test_prefetch_fills_store_and_experiments_hit_it(tmp_path):
    spec = tiny_spec(tmp_path)
    stats = prefetch_artefacts(spec, ["fig3_4"], jobs=2)
    assert stats.stores >= 2  # the chip and its vortex error trace
    store = CheckpointStore(tmp_path / "ckpt")
    assert len(store) >= 2

    report, run_stats = run_many_parallel(["fig3_4"], spec, jobs=2)
    assert report.ok
    assert run_stats.hits >= 1  # the experiment resumed from the prefetch
    assert run_stats.stores == 0  # nothing was recomputed
