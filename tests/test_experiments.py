"""Tests for the experiment harness (registry, cheap figures, CLI)."""

from dataclasses import replace

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentContext,
    FAST_CONFIG,
    get_experiment,
    run_experiment,
)
from repro.experiments.report import ExperimentResult, Table


@pytest.fixture(scope="module")
def ctx():
    config = replace(FAST_CONFIG, cycles=800, characterization_chips=2,
                     characterization_vectors=40)
    return ExperimentContext(config)


def test_registry_covers_all_paper_artifacts():
    figures = {
        "fig3_2", "fig3_3", "fig3_4", "fig3_8", "fig3_9", "fig3_10",
        "fig3_11", "fig3_12", "tab3_ovh", "fig4_2", "fig4_3", "fig4_4",
        "fig4_8", "fig4_9", "fig4_10", "fig4_11", "fig4_12", "tab4_ovh",
    }
    ablations = {"abl_tags", "abl_hold", "abl_dbuf", "abl_adder"}
    assert set(EXPERIMENTS) == figures | ablations


def test_unknown_experiment_rejected():
    with pytest.raises(KeyError):
        get_experiment("fig9_99")


def test_fig3_4_structure(ctx):
    result = get_experiment("fig3_4")(ctx)
    table = result.tables[0]
    assert table.headers[0] == "instr"
    assert len(table.rows) == 8
    for row in table.rows:
        error_pct, error_free_pct = row[2], row[3]
        assert error_pct + error_free_pct == pytest.approx(100.0, abs=0.1)


def test_fig3_8_accuracy_monotone_in_table_size(ctx):
    result = get_experiment("fig3_8")(ctx)
    table = result.tables[0]
    for row in table.rows:
        accuracies = row[1:]
        assert all(0 <= a <= 100 for a in accuracies)
        # accuracy never drops as the table grows
        assert all(b >= a - 1e-9 for a, b in zip(accuracies, accuracies[1:]))


def test_fig3_10_dcs_penalty_not_above_razor(ctx):
    result = get_experiment("fig3_10")(ctx)
    table = result.tables[0]
    for row in table.rows:
        assert row[2] <= 1.0 + 1e-9  # ICSLT
        assert row[3] <= 1.0 + 1e-9  # ACSLT


def test_fig3_11_dcs_beats_hfg(ctx):
    """At the scaled-down test config the error rates are hotter than the
    full run, so HFG's relative position vs Razor can shift; what must
    hold at any scale is that the DCS variants beat the guardbanding."""
    result = get_experiment("fig3_11")(ctx)
    table = result.tables[0]
    for row in table.rows:
        benchmark, razor, hfg, icslt, acslt = row
        assert razor == 1.0
        assert max(icslt, acslt) > hfg * 0.999
        assert max(icslt, acslt) >= razor - 1e-9


def test_fig4_8_shares_sum_to_100(ctx):
    result = get_experiment("fig4_8")(ctx)
    table = result.tables[0]
    for row in table.rows:
        if row[4] > 0:  # total_errors
            assert row[1] + row[2] + row[3] == pytest.approx(100.0, abs=0.1)


def test_fig4_9_runs(ctx):
    result = get_experiment("fig4_9")(ctx)
    table = result.tables[0]
    assert len(table.headers) == 6  # benchmark + 5 sizes
    assert len(table.rows) == 6


def test_tab_overheads(ctx):
    for experiment_id in ("tab3_ovh", "tab4_ovh"):
        result = get_experiment(experiment_id)(ctx)
        assert isinstance(result, ExperimentResult)
        assert result.tables[0].rows


def test_run_experiment_with_default_context_shortcut():
    # only the overhead tables are cheap enough for a fresh default context
    result = run_experiment("tab3_ovh")
    assert result.experiment_id == "tab3_ovh"


def test_context_memoises_error_traces(ctx):
    first = ctx.ch3_error_trace("mcf")
    second = ctx.ch3_error_trace("mcf")
    assert first is second


def test_table_rendering_and_columns():
    table = Table("demo", ["x", "y"])
    table.add_row("a", 1.0)
    table.add_row("b", 2.5)
    text = table.render()
    assert "demo" in text and "2.500" in text
    assert table.column("y") == [1.0, 2.5]
    with pytest.raises(ValueError):
        table.add_row("only-one-cell")
    with pytest.raises(ValueError):
        table.column  # property-like misuse guard (attribute exists)
        table.column("z")


def test_experiment_result_table_lookup():
    result = ExperimentResult("id", "title")
    table = Table("t1", ["a"])
    result.tables.append(table)
    assert result.table("t1") is table
    with pytest.raises(KeyError):
        result.table("missing")
    assert "id" in result.to_text()


def test_cli_main(tmp_path, capsys):
    from repro.experiments.__main__ import main

    out_file = tmp_path / "report.txt"
    code = main(["tab3_ovh", "tab4_ovh", "--fast", "--out", str(out_file)])
    assert code == 0
    assert out_file.exists()
    text = out_file.read_text()
    assert "tab3_ovh" in text and "tab4_ovh" in text


def test_cli_rejects_unknown(capsys):
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["not_a_figure"])


def test_result_export_formats():
    result = ExperimentResult("exp", "title")
    table = Table("t", ["a", "b"])
    table.add_row("x", 1.5)
    result.tables.append(table)
    result.notes.append("a note")

    payload = result.to_dict()
    assert payload["experiment_id"] == "exp"
    assert payload["tables"][0]["rows"] == [["x", 1.5]]

    import json

    assert json.loads(result.to_json())["notes"] == ["a note"]

    csv_text = result.to_csv()
    assert "a,b" in csv_text
    assert "x,1.5" in csv_text


def test_cli_json_and_csv_output(tmp_path):
    from repro.experiments.__main__ import main

    json_file = tmp_path / "r.json"
    assert main(["tab4_ovh", "--fast", "--out", str(json_file), "--format", "json"]) == 0
    import json

    data = json.loads(json_file.read_text())
    assert data[0]["experiment_id"] == "tab4_ovh"

    csv_file = tmp_path / "r.csv"
    assert main(["tab4_ovh", "--fast", "--out", str(csv_file), "--format", "csv"]) == 0
    assert "Trident" in csv_file.read_text()
