"""Property tests: the vectorised logic evaluator agrees with the scalar
reference semantics on random netlists and random vector batches."""

import numpy as np
import pytest

from repro.gates.celllib import GateKind, evaluate_gate
from repro.timing.levelize import levelize
from repro.timing.logic_eval import evaluate_logic, output_values, output_words

from tests.util import random_netlist


def _reference_eval(netlist, input_vector):
    values = {}
    inputs = iter(input_vector)
    for node, kind, fanins in netlist.iter_nodes():
        if kind is GateKind.INPUT:
            values[node] = int(next(inputs))
        else:
            values[node] = evaluate_gate(kind, *(values[f] for f in fanins))
    return values


@pytest.mark.parametrize("trial", range(8))
def test_vectorised_matches_scalar_reference(trial):
    rng = np.random.default_rng(100 + trial)
    netlist = random_netlist(rng, num_inputs=5, num_gates=60)
    circuit = levelize(netlist)
    batch = rng.integers(0, 2, size=(5, 16), dtype=np.int8).astype(bool)
    values = evaluate_logic(circuit, batch)
    for column in range(batch.shape[1]):
        reference = _reference_eval(netlist, batch[:, column])
        for node, expected in reference.items():
            assert bool(values[node, column]) == bool(expected), (
                f"node {node} ({netlist.kind(node).name}) column {column}"
            )


def test_input_shape_validation(alu8, alu8_circuit):
    with pytest.raises(ValueError):
        evaluate_logic(alu8_circuit, np.zeros((3, 4), dtype=bool))
    with pytest.raises(ValueError):
        evaluate_logic(alu8_circuit, np.zeros(alu8.num_inputs, dtype=bool))


def test_constants_forced():
    from repro.gates.builder import NetlistBuilder

    builder = NetlistBuilder()
    a = builder.input("a")
    one = builder.const(1)
    zero = builder.const(0)
    builder.output("or", builder.or_(a, one))   # always 1
    builder.output("and", builder.and_(a, zero))  # always 0
    circuit = levelize(builder.build())
    values = evaluate_logic(circuit, np.array([[False, True]]))
    out = output_values(circuit, values)
    assert out[0].all()      # OR with const1
    assert not out[1].any()  # AND with const0


def test_output_words_packs_lsb_first():
    from repro.gates.builder import NetlistBuilder

    builder = NetlistBuilder()
    word = builder.input_word("a", 4)
    builder.output_word("y", [builder.buf(bit) for bit in word])
    circuit = levelize(builder.build())
    # input value 0b1010 = 10
    inputs = np.array([[0], [1], [0], [1]], dtype=bool)
    values = evaluate_logic(circuit, inputs)
    assert int(output_words(circuit, values)[0]) == 0b1010


def test_batched_evaluation_matches_single(alu8, alu8_circuit):
    rng = np.random.default_rng(9)
    ops = rng.integers(0, 13, size=12)
    a = rng.integers(0, 256, size=12, dtype=np.uint64)
    b = rng.integers(0, 256, size=12, dtype=np.uint64)
    batch = alu8.encode_batch(ops, a, b)
    whole = evaluate_logic(alu8_circuit, batch)
    for i in range(12):
        single = evaluate_logic(alu8_circuit, batch[:, i : i + 1])
        assert (whole[:, i] == single[:, 0]).all()
