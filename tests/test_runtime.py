"""Tests for the resilient runtime: checkpoint store, executor, CLI.

The chaos module is the test fixture here: every resilience claim the
runtime makes (corrupt entries fall back to recomputation, writes are
atomic under mid-flight crashes, one crashing experiment never takes
down the batch, timeouts cannot hang a run) is proven by injecting the
corresponding fault on purpose.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments import FAST_CONFIG, ExperimentContext
from repro.experiments.report import ExperimentResult
from repro.runtime import (
    CheckpointStore,
    ExperimentTimeout,
    RunReport,
    artefact_key,
    config_fingerprint,
    run_many,
    run_supervised,
)
from repro.runtime import chaos
from repro.runtime.checkpoint import FORMAT_VERSION

TINY = replace(FAST_CONFIG, cycles=200)


def ok_run(experiment_id="exp_ok"):
    def run(ctx):
        return ExperimentResult(experiment_id, "a result")

    return run


# ----------------------------------------------------------------------
# checkpoint store
# ----------------------------------------------------------------------

def test_store_roundtrip(tmp_path):
    store = CheckpointStore(tmp_path / "ck")
    payload = {"a": np.arange(5), "b": "text"}
    assert store.save("chip-abc", payload)
    loaded = store.load("chip-abc")
    np.testing.assert_array_equal(loaded["a"], payload["a"])
    assert loaded["b"] == "text"
    assert store.stats.stores == 1 and store.stats.hits == 1
    assert "chip-abc" in store and len(store) == 1


def test_store_miss_counts(tmp_path):
    store = CheckpointStore(tmp_path)
    assert store.load("nope") is None
    assert store.stats.misses == 1 and store.stats.hits == 0


@pytest.mark.parametrize("mode", ["flip", "truncate", "garbage"])
def test_corrupt_entry_falls_back_to_recompute(tmp_path, mode):
    store = CheckpointStore(tmp_path)
    store.save("k", list(range(100)))
    chaos.corrupt_entry(store, "k", mode=mode)
    assert store.load("k") is None  # never raises
    assert store.stats.corrupt == 1
    # fetch transparently recomputes and heals the entry
    assert store.fetch("k", lambda: "recomputed") == "recomputed"
    assert store.load("k") == "recomputed"


def test_version_mismatch_is_a_miss_not_an_error(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save("k", 42)
    blob = store.path("k").read_bytes()
    header, _, payload = blob.partition(b"\n")
    magic, _, checksum = header.split(b" ")
    future = b"%s v%d %s" % (magic, FORMAT_VERSION + 1, checksum)
    store.path("k").write_bytes(future + b"\n" + payload)
    assert store.load("k") is None
    assert store.stats.corrupt == 0  # clean miss, not corruption


def test_no_resume_forces_recompute_but_still_saves(tmp_path):
    CheckpointStore(tmp_path).save("k", "old")
    store = CheckpointStore(tmp_path, resume=False)
    calls = []
    assert store.fetch("k", lambda: calls.append(1) or "new") == "new"
    assert calls and store.stats.hits == 0
    # the store was refreshed; a resuming store sees the new value
    assert CheckpointStore(tmp_path).load("k") == "new"


def test_aborted_write_leaves_no_torn_entry(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save("stable", "v1")
    chaos.abort_writes(store, fraction=0.5)
    assert not store.save("stable", "v2")  # reported, not raised
    assert store.stats.write_errors == 1
    # atomicity: the previous entry is still intact, never torn
    fresh = CheckpointStore(tmp_path)
    assert fresh.load("stable") == "v1"


def test_fingerprints_track_config_and_parts():
    a = config_fingerprint(TINY)
    assert a == config_fingerprint(replace(TINY))
    assert a != config_fingerprint(replace(TINY, cycles=300))
    key = artefact_key("chip", TINY, 8, "NTC")
    assert key.startswith("chip-")
    assert key != artefact_key("chip", TINY, 9, "NTC")
    assert key != artefact_key("etrace", TINY, 8, "NTC")


# ----------------------------------------------------------------------
# supervised executor
# ----------------------------------------------------------------------

def test_failure_is_contained_and_structured():
    ctx = ExperimentContext(TINY)
    outcome = run_supervised("boom", chaos.failing_run("kaboom"), ctx)
    assert not outcome.ok and outcome.result is None
    failure = outcome.failure
    assert failure.experiment_id == "boom"
    assert failure.kind == "exception"
    assert failure.error_type == "InjectedFailure"
    assert "kaboom" in failure.message
    assert "InjectedFailure" in failure.traceback
    assert failure.config_fingerprint == config_fingerprint(TINY)
    assert failure.elapsed_s >= 0


def test_timeout_yields_failure_not_hang():
    ctx = ExperimentContext(TINY)
    outcome = run_supervised(
        "sleepy", chaos.hanging_run(60.0), ctx, timeout_s=0.2
    )
    assert not outcome.ok
    assert outcome.failure.kind == "timeout"
    assert outcome.failure.error_type == ExperimentTimeout.__name__
    assert outcome.elapsed_s < 10  # returned promptly, did not wait out the sleep


def test_retries_recover_from_transient_failures():
    ctx = ExperimentContext(TINY)
    outcome = run_supervised(
        "flaky", chaos.flaky_run(ok_run("flaky"), failures=2), ctx, retries=2
    )
    assert outcome.ok and outcome.attempts == 3
    # not enough retries -> the last failure is reported with its attempts
    outcome = run_supervised(
        "flaky", chaos.flaky_run(ok_run("flaky"), failures=2), ctx, retries=1
    )
    assert not outcome.ok and outcome.failure.attempts == 2


def test_keyboard_interrupt_is_not_contained():
    def interrupted(ctx):
        raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        run_supervised("ctrl_c", interrupted, ExperimentContext(TINY))


def test_run_many_completes_despite_failures():
    ctx = ExperimentContext(TINY)
    bodies = {
        "first": ok_run("first"),
        "boom": chaos.failing_run(),
        "last": ok_run("last"),
    }
    seen = []
    report = run_many(
        list(bodies), ctx, resolve=bodies.__getitem__,
        on_outcome=lambda outcome: seen.append(outcome.experiment_id),
    )
    assert seen == ["first", "boom", "last"]
    assert [o.ok for o in report.outcomes] == [True, False, True]
    assert len(report.results) == 2 and len(report.failures) == 1
    assert report.exit_code() == 1
    summary = report.summary_text()
    assert "2/3 experiments ok" in summary
    assert "FAIL" in summary and "InjectedFailure" in summary


def test_run_report_all_ok():
    report = RunReport()
    ctx = ExperimentContext(TINY)
    report.outcomes.append(run_supervised("a", ok_run("a"), ctx))
    assert report.ok and report.exit_code() == 0


# ----------------------------------------------------------------------
# context + store integration (resume without recomputation)
# ----------------------------------------------------------------------

def test_resume_skips_error_trace_recomputation(tmp_path, monkeypatch):
    store = CheckpointStore(tmp_path / "ck")
    first = ExperimentContext(TINY, store=store)
    trace = first.error_trace("vortex", TINY.ch3_chip_seed)
    assert store.stats.stores >= 1

    # a fresh context on a fresh store handle must load, never recompute:
    # make any recomputation attempt explode.
    monkeypatch.setattr(
        "repro.experiments.runner.build_error_trace",
        lambda *a, **k: pytest.fail("build_error_trace recomputed despite store"),
    )
    resumed_store = CheckpointStore(tmp_path / "ck")
    second = ExperimentContext(TINY, store=resumed_store)
    resumed = second.error_trace("vortex", TINY.ch3_chip_seed)
    assert resumed_store.stats.hits >= 1
    np.testing.assert_array_equal(resumed.err_class, trace.err_class)
    np.testing.assert_array_equal(resumed.t_late, trace.t_late)


def test_corrupt_chip_checkpoint_recomputes_identical_chip(tmp_path):
    store = CheckpointStore(tmp_path)
    ctx = ExperimentContext(TINY, store=store)
    chip = ctx.chip(TINY.ch3_chip_seed)
    (key,) = [p.stem for p in store.root.glob("chip-*.ckpt")]
    chaos.corrupt_entry(store, key, mode="truncate")

    recovered_store = CheckpointStore(tmp_path)
    recovered = ExperimentContext(TINY, store=recovered_store).chip(TINY.ch3_chip_seed)
    assert recovered_store.stats.corrupt == 1
    np.testing.assert_allclose(recovered.delays, chip.delays)


# ----------------------------------------------------------------------
# CLI end to end
# ----------------------------------------------------------------------

def test_cli_chaos_fail_isolates_and_exits_nonzero(capsys):
    from repro.experiments.__main__ import main

    code = main(["fig3_4", "tab3_ovh", "--fast", "--cycles", "200",
                 "--chaos-fail", "fig3_4"])
    assert code == 1
    out = capsys.readouterr().out
    # the sibling still ran and the summary names both outcomes
    assert "tab3_ovh" in out and "1/2 experiments ok" in out
    assert "FAIL" in out and "chaos-injected" in out


def test_cli_checkpoint_resume_skips_recompute(tmp_path, monkeypatch, capsys):
    from repro.experiments.__main__ import main

    # --jobs 1: this probes the serial in-process resume path (the
    # parallel equivalent lives in test_parallel.py)
    ckpt = str(tmp_path / "ckpt")
    assert main(["fig3_4", "--fast", "--cycles", "200", "--jobs", "1",
                 "--checkpoint-dir", ckpt]) == 0
    capsys.readouterr()

    monkeypatch.setattr(
        "repro.experiments.runner.build_error_trace",
        lambda *a, **k: pytest.fail("resumed run recomputed the error trace"),
    )
    assert main(["fig3_4", "--fast", "--cycles", "200", "--jobs", "1",
                 "--checkpoint-dir", ckpt]) == 0
    out = capsys.readouterr().out
    assert "1 hits" in out


def test_cli_no_resume_recomputes(tmp_path, capsys):
    from repro.experiments.__main__ import main

    ckpt = str(tmp_path / "ckpt")
    assert main(["fig3_4", "--fast", "--cycles", "200", "--jobs", "1",
                 "--checkpoint-dir", ckpt]) == 0
    capsys.readouterr()
    assert main(["fig3_4", "--fast", "--cycles", "200", "--jobs", "1",
                 "--checkpoint-dir", ckpt, "--no-resume"]) == 0
    assert "0 hits" in capsys.readouterr().out


def test_cli_explicit_zero_overrides_are_validated(capsys):
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit) as excinfo:
        main(["tab3_ovh", "--fast", "--cycles", "0"])
    assert excinfo.value.code == 2
    assert "cycles must be at least 100" in capsys.readouterr().err


def test_cli_explicit_bad_width_is_validated(capsys):
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit) as excinfo:
        main(["tab3_ovh", "--fast", "--width", "0"])
    assert excinfo.value.code == 2
    assert "power of two" in capsys.readouterr().err


def test_cli_unwritable_out_reports_instead_of_crashing(tmp_path, capsys):
    from repro.experiments.__main__ import main

    code = main(["tab3_ovh", "--fast",
                 "--out", str(tmp_path / "missing-dir" / "r.txt")])
    assert code == 1
    out = capsys.readouterr().out
    # the run itself succeeded and still reported; only the write failed
    assert "report NOT written" in out and "1/1 experiments ok" in out


def test_cli_rejects_unknown_chaos_target():
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["tab3_ovh", "--fast", "--chaos-fail", "fig9_99"])


def test_cli_out_written_atomically(tmp_path, monkeypatch):
    from repro.experiments.__main__ import _atomic_write_text

    target = tmp_path / "report.txt"
    _atomic_write_text(str(target), "complete report\n")
    assert target.read_text() == "complete report\n"
    assert list(tmp_path.iterdir()) == [target]  # no temp litter

    # a crash mid-publish must leave the previous report untouched
    def exploding_replace(src, dst):
        raise OSError("chaos: replace failed")

    monkeypatch.setattr("os.replace", exploding_replace)
    with pytest.raises(OSError):
        _atomic_write_text(str(target), "truncated repo")
    assert target.read_text() == "complete report\n"
    assert list(tmp_path.iterdir()) == [target]


def test_cli_out_includes_failure_summary(tmp_path, capsys):
    from repro.experiments.__main__ import main

    out_file = tmp_path / "report.txt"
    code = main(["tab3_ovh", "tab4_ovh", "--fast", "--chaos-fail", "tab4_ovh",
                 "--out", str(out_file)])
    assert code == 1
    text = out_file.read_text()
    assert "tab3_ovh" in text and "run summary" in text


# ----------------------------------------------------------------------
# logging lifecycle: configure replaces handlers, reset restores defaults
# ----------------------------------------------------------------------

def test_configure_logging_replaces_and_closes_previous_handler():
    import io
    import logging

    from repro.runtime.log import ROOT_LOGGER, configure, reset

    try:
        first_stream, second_stream = io.StringIO(), io.StringIO()
        configure(verbosity=1, stream=first_stream)
        logger = logging.getLogger(ROOT_LOGGER)
        first_handler = logger.handlers[-1]

        configure(verbosity=1, stream=second_stream)
        # repeat configuration must not stack handlers...
        assert first_handler not in logger.handlers
        assert sum(h.stream is second_stream
                   for h in logger.handlers
                   if isinstance(h, logging.StreamHandler)) == 1
        # ...and the replaced handler is closed, so a stale capture
        # buffer can never be written to again
        logger.info("goes to the second stream only")
        assert first_stream.getvalue() == ""
        assert "second stream" in second_stream.getvalue()
    finally:
        reset()


def test_reset_logging_restores_import_time_state():
    import io
    import logging

    from repro.runtime import reset_logging
    from repro.runtime.log import ROOT_LOGGER, configure

    stream = io.StringIO()
    handler = configure(verbosity=2, stream=stream)
    logger = logging.getLogger(ROOT_LOGGER)
    assert not logger.propagate and logger.level == logging.DEBUG

    reset_logging()
    assert logger.propagate
    assert logger.level == logging.NOTSET
    assert all(h.stream is not stream for h in logger.handlers
               if isinstance(h, logging.StreamHandler))
    del handler
    reset_logging()  # idempotent: a second reset is a no-op
