"""Tests for the telemetry subsystem (:mod:`repro.obs`).

Covers the guarantees the observability layer claims: near-zero cost
while disabled, exact histogram quantiles, order-independent shard
merging (the same ``metrics.json`` regardless of worker scheduling),
Perfetto-loadable trace documents, opt-in span profiling, and the
schema validator the CI telemetry job runs.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from pathlib import Path

import pytest

from repro import obs
from repro.obs.metrics import MAX_HISTOGRAM_SAMPLES, Histogram, MetricsRegistry
from repro.obs.schema import check, validate

SCHEMA_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "schemas"


def load_schema(name: str) -> dict:
    return json.loads((SCHEMA_DIR / name).read_text())


@pytest.fixture(autouse=True)
def telemetry_off_after_test():
    """Never leak a process-global recorder into the next test."""
    yield
    obs.disable()


# ----------------------------------------------------------------------
# metric names and quantiles
# ----------------------------------------------------------------------

def test_labelled_sorts_keys_canonically():
    assert obs.labelled("hits") == "hits"
    assert obs.labelled("out", b=2, a="x") == "out{a=x,b=2}"
    # the same labels in any kwarg order produce the same key
    assert obs.labelled("out", a="x", b=2) == obs.labelled("out", b=2, a="x")


def test_quantile_linear_interpolation():
    values = [1.0, 2.0, 3.0, 4.0]
    assert obs.quantile(values, 0.0) == 1.0
    assert obs.quantile(values, 1.0) == 4.0
    assert obs.quantile(values, 0.5) == pytest.approx(2.5)
    assert obs.quantile([7.0], 0.9) == 7.0
    with pytest.raises(ValueError):
        obs.quantile([], 0.5)
    with pytest.raises(ValueError):
        obs.quantile(values, 1.5)


def test_histogram_summary_statistics():
    histogram = Histogram()
    for value in [5.0, 1.0, 3.0, 2.0, 4.0]:
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["count"] == 5
    assert summary["min"] == 1.0 and summary["max"] == 5.0
    assert summary["sum"] == pytest.approx(15.0)
    assert summary["mean"] == pytest.approx(3.0)
    assert summary["p50"] == pytest.approx(3.0)
    expected_p99 = obs.quantile(sorted(histogram.values), 0.99)
    assert summary["p99"] == pytest.approx(expected_p99)


def test_histogram_thinning_bounds_memory():
    histogram = Histogram()
    for index in range(MAX_HISTOGRAM_SAMPLES + 1):
        histogram.observe(float(index))
    assert len(histogram.values) <= MAX_HISTOGRAM_SAMPLES
    # thinning keeps the distribution representative, not truncated
    assert histogram.quantile(0.5) == pytest.approx(
        MAX_HISTOGRAM_SAMPLES / 2, rel=0.01
    )


# ----------------------------------------------------------------------
# merge semantics: order independence is what makes shards deterministic
# ----------------------------------------------------------------------

def make_registry(counter: float, gauge: float, samples: list[float]) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("runs", counter)
    registry.gauge("peak", gauge)
    for sample in samples:
        registry.observe("latency_s", sample)
    return registry


def test_merge_is_order_independent():
    shards = [
        make_registry(2, 5.0, [0.3, 0.1]).snapshot(include_values=True),
        make_registry(1, 9.0, [0.2]).snapshot(include_values=True),
        make_registry(4, 1.0, [0.5, 0.4, 0.6]).snapshot(include_values=True),
    ]
    forward = MetricsRegistry()
    backward = MetricsRegistry()
    for shard in shards:
        forward.merge(shard)
    for shard in reversed(shards):
        backward.merge(shard)
    assert forward.snapshot() == backward.snapshot()
    snapshot = forward.snapshot()
    assert snapshot["counters"]["runs"] == 7
    assert snapshot["gauges"]["peak"] == 9.0
    assert snapshot["histograms"]["latency_s"]["count"] == 6


def test_merge_skips_summary_only_histograms():
    source = make_registry(1, 1.0, [0.1, 0.2])
    target = MetricsRegistry()
    target.merge(source.snapshot(include_values=False))
    assert target.counters["runs"] == 1
    assert "latency_s" not in target.histograms  # samples were dropped


def test_merge_shards_sorts_events_and_processes(tmp_path):
    docs = []
    for pid, process in [(30, "worker"), (10, "main"), (20, "worker")]:
        recorder = obs.TelemetryRecorder(process=process, shard_dir=tmp_path)
        recorder.pid = pid  # simulate distinct processes in one test
        with recorder.span("unit.phase", {"pid": pid}):
            pass
        docs.append(recorder.snapshot_doc())
    registry, events, profiles, processes = obs.merge_shards(docs)
    assert processes == [
        {"pid": 10, "process": "main"},
        {"pid": 20, "process": "worker"},
        {"pid": 30, "process": "worker"},
    ]
    timestamps = [event["ts"] for event in events]
    assert timestamps == sorted(timestamps)
    assert registry.counters["span.count{span=unit.phase}"] == 3


def test_shard_flush_and_load_round_trip(tmp_path):
    recorder = obs.TelemetryRecorder(process="worker", shard_dir=tmp_path)
    with recorder.span("unit.work", {"part": 1}):
        recorder.metrics.inc("unit.tasks")
    path = recorder.flush()
    assert path is not None and path.exists()
    # flushing again rewrites the same shard (cumulative, idempotent)
    assert recorder.flush() == path

    (tmp_path / "shard-9999-1.json").write_text("{ truncated")  # dead worker
    docs = obs.load_shards(tmp_path)
    assert len(docs) == 1  # the corrupt shard is skipped, not fatal
    registry, _, _, _ = obs.merge_shards(docs)
    assert registry.counters["unit.tasks"] == 1
    assert registry.histograms["span.unit.work.s"].count == 1


def test_determinism_view_drops_schedule_dependent_families():
    doc = {
        "counters": {
            "experiment.ok": 3,
            "dta.evaluations": 1,
            "checkpoint.hits": 5,
            "worker.tasks": 4,
            "span.count{span=worker.task}": 4,
            "sta.analyses": 2,
        },
        "gauges": {"parallel.jobs": 4},
        "histograms": {"span.experiment.run.s": {"count": 3}},
    }
    view = obs.determinism_view(doc)
    assert view == {"counters": {"experiment.ok": 3, "dta.evaluations": 1}}


# ----------------------------------------------------------------------
# recorder: spans, trace events, profiling
# ----------------------------------------------------------------------

def test_span_records_event_histogram_and_counter():
    recorder = obs.enable(obs.TelemetryRecorder(process="main"))
    with obs.span("unit.step", attempt=1, mode=None):
        obs.inc("unit.seen")
    events = [e for e in recorder.events if e["ph"] == "X"]
    assert len(events) == 1
    event = events[0]
    assert event["name"] == "unit.step"
    assert event["cat"] == "unit"
    assert event["args"] == {"attempt": 1, "mode": None}
    assert event["dur"] >= 0
    assert recorder.metrics.counters["span.count{span=unit.step}"] == 1
    assert recorder.metrics.histograms["span.unit.step.s"].count == 1


def test_trace_document_conforms_to_checked_in_schema():
    recorder = obs.enable(obs.TelemetryRecorder(process="main"))
    with obs.span("unit.outer", label="x"):
        with obs.span("unit.inner"):
            pass
    doc = obs.trace_document(recorder.events)
    check(doc, load_schema("trace.schema.json"), label="trace.json")
    # the metadata event names the process for Perfetto's track labels
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert meta and meta[0]["args"]["name"].startswith("main-")


def test_metrics_document_conforms_to_checked_in_schema():
    recorder = obs.enable(obs.TelemetryRecorder(process="main"))
    with obs.span("unit.step"):
        obs.inc("unit.seen", experiment="fig3_4")
        obs.gauge("unit.peak", 3.5)
    doc = obs.metrics_document(
        recorder.metrics, [{"pid": recorder.pid, "process": "main"}]
    )
    check(doc, load_schema("metrics.schema.json"), label="metrics.json")


def test_profiling_keeps_top_n_outermost_spans():
    recorder = obs.enable(
        obs.TelemetryRecorder(process="main", profile=True, profile_top=2)
    )
    for duration in (0.03, 0.01, 0.02):
        with obs.span("unit.timed", ms=duration):
            with obs.span("unit.nested"):  # must not be profiled
                time.sleep(duration)
    assert len(recorder.profiles) == 2
    durations = [entry["duration_s"] for entry in recorder.profiles]
    assert durations == sorted(durations, reverse=True)
    assert all(entry["span"] == "unit.timed" for entry in recorder.profiles)
    assert "cumulative" in recorder.profiles[0]["stats"]


def test_profiling_off_keeps_nothing():
    recorder = obs.enable(obs.TelemetryRecorder(process="main"))
    with obs.span("unit.step"):
        pass
    assert recorder.profiles == []


# ----------------------------------------------------------------------
# worker lifecycle
# ----------------------------------------------------------------------

def test_ensure_worker_replaces_inherited_recorder(tmp_path):
    inherited = obs.enable(obs.TelemetryRecorder(process="main"))
    inherited.pid = inherited.pid + 1  # simulate a fork-inherited parent
    fresh = obs.ensure_worker(str(tmp_path))
    assert fresh is not inherited
    assert fresh is obs.get_recorder()
    assert fresh.process == "worker"
    # a second call in the same process is a no-op
    assert obs.ensure_worker(str(tmp_path)) is fresh


def test_ensure_worker_discards_foreign_recorder_when_off(tmp_path):
    inherited = obs.enable(obs.TelemetryRecorder(process="main"))
    inherited.pid = inherited.pid + 1
    assert obs.ensure_worker(None) is None
    assert obs.get_recorder() is None
    obs.flush_worker()  # must be safe with no recorder installed


# ----------------------------------------------------------------------
# disabled-path overhead: the reason instrumentation can stay always-on
# ----------------------------------------------------------------------

def test_disabled_telemetry_is_near_free():
    assert not obs.enabled()
    iterations = 50_000
    start = time.perf_counter()
    for _ in range(iterations):
        with obs.span("unit.hot", index=0):
            obs.inc("unit.hot")
    elapsed = time.perf_counter() - start
    # budget: 20µs per span+counter pair — an order of magnitude above
    # what the None-check fast path costs, so only a real regression
    # (e.g. allocating per-call spans while off) trips it.
    assert elapsed < iterations * 20e-6, f"{elapsed:.3f}s for {iterations} no-ops"
    assert obs.span("unit.hot") is obs.span("unit.hot")  # shared singleton


# ----------------------------------------------------------------------
# schema validator
# ----------------------------------------------------------------------

def test_validator_reports_each_violation():
    schema = {
        "type": "object",
        "required": ["version"],
        "properties": {"version": {"type": "integer", "minimum": 1}},
        "additionalProperties": False,
    }
    assert validate({"version": 1}, schema) == []
    errors = validate({"version": 0, "extra": True}, schema)
    assert any("minimum" in error for error in errors)
    assert any("extra" in error for error in errors)
    errors = validate({}, schema)
    assert any("version" in error for error in errors)


def test_validator_rejects_bool_as_number_and_bad_enum():
    assert validate(True, {"type": "number"})
    assert validate(2, {"type": "number"}) == []
    assert validate("ns", {"enum": ["ms", "ns"]}) == []
    assert validate("us", {"enum": ["ms", "ns"]})
    assert validate([1], {"type": "array", "minItems": 2})


def test_validator_refuses_unsupported_schema_keys():
    with pytest.raises(ValueError, match="unsupported schema keys"):
        validate({}, {"patternProperties": {}})


def test_check_raises_with_label():
    with pytest.raises(ValueError, match="metrics.json fails"):
        check([], {"type": "object"}, label="metrics.json")


# ----------------------------------------------------------------------
# end-to-end: the CLI's telemetry artifacts are deterministic and valid
# ----------------------------------------------------------------------

pytest_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel telemetry relies on cheap fork workers",
)


def run_cli_with_telemetry(tmp_path, name, jobs):
    from repro.experiments.__main__ import main

    metrics = tmp_path / f"metrics-{name}.json"
    trace = tmp_path / f"trace-{name}.json"
    code = main([
        "fig3_4", "tab3_ovh", "tab4_ovh", "--fast", "--cycles", "200",
        "--jobs", str(jobs), "--checkpoint-dir", str(tmp_path / f"ckpt-{name}"),
        "--metrics-out", str(metrics), "--trace-out", str(trace),
    ])
    assert code == 0
    return json.loads(metrics.read_text()), json.loads(trace.read_text())


@pytest_fork
def test_cli_metrics_are_schedule_invariant_and_schema_valid(tmp_path, capsys):
    serial_metrics, serial_trace = run_cli_with_telemetry(tmp_path, "serial", 1)
    fleet_metrics, fleet_trace = run_cli_with_telemetry(tmp_path, "fleet", 4)

    # the documented determinism guarantee: --jobs 1 and --jobs 4 agree
    # on every schedule-invariant counter, bit for bit
    assert obs.determinism_view(serial_metrics) == obs.determinism_view(fleet_metrics)
    assert serial_metrics["counters"]["experiment.ok"] == 3

    for doc in (serial_metrics, fleet_metrics):
        check(doc, load_schema("metrics.schema.json"), label="metrics.json")
    for doc in (serial_trace, fleet_trace):
        check(doc, load_schema("trace.schema.json"), label="trace.json")

    # the fleet run really merged worker shards: >1 process contributed
    assert len(fleet_metrics["processes"]) > 1
    assert {p["process"] for p in fleet_metrics["processes"]} == {"main", "worker"}

    # the terminal summary table rendered for the human
    out = capsys.readouterr().out
    assert "telemetry: spans by total wall-clock" in out
    assert "[checkpoints:" in out

    # telemetry off again after main() returns
    assert not obs.enabled()


def test_cli_profile_writes_slowest_spans(tmp_path, capsys):
    from repro.experiments.__main__ import main

    profile = tmp_path / "profile.txt"
    code = main([
        "tab3_ovh", "--fast", "--cycles", "200", "--jobs", "1",
        "--profile", str(profile), "--profile-top", "2",
    ])
    assert code == 0
    text = profile.read_text()
    assert "== profile 1/" in text
    assert "cumulative" in text
