"""Unit and property tests for the array multiplier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.multiplier import array_multiplier, half_width_multiplier
from repro.gates.builder import NetlistBuilder

from tests.util import eval_word, int_to_bits


def _multiply(width_a, width_b, a, b):
    builder = NetlistBuilder()
    wa = builder.input_word("a", width_a)
    wb = builder.input_word("b", width_b)
    product = array_multiplier(builder, wa, wb)
    assert len(product) == width_a + width_b
    return eval_word(
        builder, product, int_to_bits(a, width_a) + int_to_bits(b, width_b)
    )


@settings(max_examples=80, deadline=None)
@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_8x8_multiplication(a, b):
    assert _multiply(8, 8, a, b) == a * b


@settings(max_examples=40, deadline=None)
@given(a=st.integers(0, 15), b=st.integers(0, 127))
def test_asymmetric_widths(a, b):
    assert _multiply(4, 7, a, b) == a * b


@pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (255, 255), (255, 1), (128, 2)])
def test_corner_values(a, b):
    assert _multiply(8, 8, a, b) == a * b


def test_one_bit_operands():
    for a in (0, 1):
        for b in (0, 1):
            assert _multiply(1, 1, a, b) == a * b


def test_empty_operands_rejected():
    builder = NetlistBuilder()
    with pytest.raises(ValueError):
        array_multiplier(builder, [], [builder.input("b")])


@settings(max_examples=60, deadline=None)
@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_half_width_multiplier_semantics(a, b):
    width = 8
    builder = NetlistBuilder()
    wa = builder.input_word("a", width)
    wb = builder.input_word("b", width)
    product = half_width_multiplier(builder, wa, wb)
    assert len(product) == width
    value = eval_word(
        builder, product, int_to_bits(a, width) + int_to_bits(b, width)
    )
    half_mask = (1 << (width // 2)) - 1
    assert value == ((a & half_mask) * (b & half_mask)) & ((1 << width) - 1)


def test_half_width_multiplier_width_mismatch_rejected():
    builder = NetlistBuilder()
    with pytest.raises(ValueError):
        half_width_multiplier(
            builder, builder.input_word("a", 8), builder.input_word("b", 4)
        )


def test_multiplier_is_the_deepest_unit():
    """The MULT path should dominate the ALU's logic depth (the paper's
    'computation-heavy operations sensitise the most paths')."""
    builder = NetlistBuilder()
    wa = builder.input_word("a", 8)
    wb = builder.input_word("b", 8)
    product = array_multiplier(builder, wa, wb)
    builder.output_word("p", product)
    depth_mult = builder.build().logic_depth()

    from repro.circuits.adders import ripple_carry_adder

    builder2 = NetlistBuilder()
    wa2 = builder2.input_word("a", 8)
    wb2 = builder2.input_word("b", 8)
    total, cout = ripple_carry_adder(builder2, wa2, wb2)
    builder2.output_word("s", total + [cout])
    depth_add = builder2.build().logic_depth()

    assert depth_mult > depth_add
