"""Smoke tests: the example scripts run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_examples_directory_has_the_documented_scripts():
    names = {path.name for path in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "choke_characterization.py",
        "scheme_tournament.py",
        "chip_lottery.py",
        "choke_buffers.py",
    } <= names


def test_quickstart_runs():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "scheme comparison" in result.stdout
    assert "DCS" in result.stdout


@pytest.mark.slow
def test_chip_lottery_runs():
    result = _run("chip_lottery.py")
    assert result.returncode == 0, result.stderr
    assert "chips of this batch" in result.stdout
