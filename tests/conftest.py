"""Session-scoped fixtures shared across the test suite.

The 8- and 16-bit artefacts are cheap to build but not free, so anything
immutable is built once per session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.trace import BENCHMARKS, generate_trace
from repro.circuits.alu import build_alu
from repro.circuits.ex_stage import build_ex_stage
from repro.core.scheme_sim import build_error_trace
from repro.pv.delaymodel import NTC, STC
from repro.timing.levelize import levelize


@pytest.fixture(scope="session")
def alu8():
    return build_alu(8)


@pytest.fixture(scope="session")
def alu8_circuit(alu8):
    return levelize(alu8.netlist)


@pytest.fixture(scope="session")
def alu16():
    return build_alu(16)


@pytest.fixture(scope="session")
def stage16_ntc():
    return build_ex_stage(16, NTC, buffered=True)


@pytest.fixture(scope="session")
def stage16_ntc_bufferless():
    return build_ex_stage(16, NTC, buffered=False)


@pytest.fixture(scope="session")
def stage16_stc():
    return build_ex_stage(16, STC, buffered=True)


@pytest.fixture(scope="session")
def chip16(stage16_ntc):
    """A W=16 chip with both max and min errors (FAST ch4 reference)."""
    return stage16_ntc.fabricate(seed=10)


@pytest.fixture(scope="session")
def chip16_max_only(stage16_ntc):
    """A W=16 chip with max-timing errors only (FAST ch3 reference)."""
    return stage16_ntc.fabricate(seed=8)


@pytest.fixture(scope="session")
def mcf_trace16():
    return generate_trace(BENCHMARKS["mcf"], 1500, width=16)


@pytest.fixture(scope="session")
def vortex_trace16():
    return generate_trace(BENCHMARKS["vortex"], 1500, width=16)


@pytest.fixture(scope="session")
def error_trace16(stage16_ntc, chip16, mcf_trace16):
    return build_error_trace(stage16_ntc, chip16, mcf_trace16)


@pytest.fixture(scope="session")
def error_trace16_vortex(stage16_ntc, chip16, vortex_trace16):
    return build_error_trace(stage16_ntc, chip16, vortex_trace16)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
