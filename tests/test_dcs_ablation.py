"""Tests for the DCS tag-granularity ablation knobs."""

import numpy as np

from repro.core.dcs import DcsScheme
from repro.timing.dta import ERR_SE_MAX

from tests.util import synthetic_error_trace


def test_names_reflect_knobs():
    assert DcsScheme("icslt").name == "DCS-ICSLT"
    assert DcsScheme("icslt", use_owm=False).name == "DCS-ICSLT[noOWM]"
    assert DcsScheme("icslt", use_prev=False).name == "DCS-ICSLT[noPrev]"
    assert (
        DcsScheme("acslt", use_owm=False, use_prev=False).name
        == "DCS-ACSLT[noOWM,noPrev]"
    )


def _owm_split_trace():
    """One opcode errs only with OWM set; occurs both ways."""
    n = 40
    classes = np.zeros(n, dtype=np.int8)
    owm = np.zeros(n, dtype=bool)
    owm[::2] = True
    classes[::2] = ERR_SE_MAX  # errs exactly when OWM set
    return synthetic_error_trace(classes, owm=owm)


def test_full_tag_separates_owm_contexts():
    trace = _owm_split_trace()
    result = DcsScheme("icslt", 32).simulate(trace)
    # OWM-reset occurrences form a different tag: never falsely stalled
    assert result.false_positives == 0
    assert result.errors_predicted == result.errors_total - 1


def test_no_owm_tag_aliases_contexts():
    trace = _owm_split_trace()
    result = DcsScheme("icslt", 32, use_owm=False).simulate(trace)
    # the clean OWM-reset occurrences now alias the errant tag
    assert result.false_positives > 0


def _prev_split_trace():
    """Errs only after initialising opcode 7; both predecessors occur."""
    n = 60
    classes = np.zeros(n, dtype=np.int8)
    init = np.where(np.arange(n) % 2 == 0, 7, 3).astype(np.int16)
    classes[init == 7] = ERR_SE_MAX
    return synthetic_error_trace(classes, instr_init=init)


def test_prev_half_of_tag_matters():
    trace = _prev_split_trace()
    full = DcsScheme("icslt", 32).simulate(trace)
    coarse = DcsScheme("icslt", 32, use_prev=False).simulate(trace)
    assert full.false_positives == 0
    assert coarse.false_positives > 0


def test_coarse_tags_trade_misses_for_stalls(error_trace16_vortex):
    """On a real trace, dropping tag bits cannot reduce wasted stalls."""
    full = DcsScheme("icslt", 128).simulate(error_trace16_vortex)
    coarse = DcsScheme(
        "icslt", 128, use_owm=False, use_prev=False
    ).simulate(error_trace16_vortex)
    if full.errors_total >= 20:
        assert coarse.false_positives >= full.false_positives
        assert coarse.unique_instances <= full.unique_instances
