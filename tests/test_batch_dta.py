"""Batched DTA kernel: batch/scalar parity and the shared-memory hand-off.

The batch kernel's contract is *bit-identity*: ``batch_cycle_timings``
row ``i`` must equal the pre-batching scalar path on chip ``i`` exactly,
for every chunking, population size, and degenerate shape.  The
shared-memory tests pin the lifecycle rules: a crashing worker must
never take the parent's segments down with it, and readers must degrade
to ``None`` instead of raising when a segment is gone.
"""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.pv.chip import delay_matrix
from repro.pv.delaymodel import NTC
from repro.pv.montecarlo import fabricate_population
from repro.runtime.shm import ArraySpec, ShmCatalog, ShmPublisher, ShmReader
from repro.timing.dta import batch_cycle_timings, cycle_timings, scalar_cycle_timings
from repro.timing.levelize import levelize
from tests.util import chain_circuit as _chain_circuit
from tests.util import random_gate_delays, random_netlist


def _random_inputs(netlist, num_vectors, seed):
    rng = np.random.default_rng(seed)
    num_inputs = len(netlist.input_ids)
    return rng.integers(0, 2, size=(num_inputs, num_vectors)).astype(bool)


def _assert_chip_equal(batch, index, reference):
    view = batch.chip(index)
    np.testing.assert_array_equal(view.t_late, reference.t_late)
    np.testing.assert_array_equal(view.t_early, reference.t_early)
    np.testing.assert_array_equal(view.output_toggles, reference.output_toggles)


# ----------------------------------------------------------------------
# batch vs scalar parity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batch_matches_scalar_on_random_population(seed):
    netlist = random_netlist(seed, num_inputs=5, num_gates=30, num_outputs=3)
    circuit = levelize(netlist)
    inputs = _random_inputs(netlist, 40, seed + 100)
    delay_rng = np.random.default_rng(seed + 200)
    rows = [random_gate_delays(netlist, delay_rng) for _ in range(4)]

    batch = batch_cycle_timings(circuit, inputs, np.stack(rows), chunk=16)
    assert batch.t_late.shape == (4, 39)
    assert batch.t_early.shape == (4, 39)
    for i, delays in enumerate(rows):
        _assert_chip_equal(batch, i, scalar_cycle_timings(circuit, inputs, delays))


def test_batch_matches_scalar_on_fabricated_population(alu8, alu8_circuit):
    pop = fabricate_population(alu8.netlist, NTC, seeds=(11, 12, 13))
    inputs = _random_inputs(alu8.netlist, 25, 7)
    batch = batch_cycle_timings(alu8_circuit, inputs, pop.delay_matrix, chunk=64)
    for i in range(pop.num_chips):
        reference = scalar_cycle_timings(alu8_circuit, inputs, pop.chip(i).delays)
        _assert_chip_equal(batch, i, reference)


def test_single_chip_view_is_batch_kernel():
    """cycle_timings is a population-of-one view and agrees with scalar."""
    netlist = random_netlist(5)
    circuit = levelize(netlist)
    inputs = _random_inputs(netlist, 20, 5)
    delays = random_gate_delays(netlist, 5)

    thin = cycle_timings(circuit, inputs, delays, chunk=8)
    reference = scalar_cycle_timings(circuit, inputs, delays, chunk=8)
    np.testing.assert_array_equal(thin.t_late, reference.t_late)
    np.testing.assert_array_equal(thin.t_early, reference.t_early)
    np.testing.assert_array_equal(thin.output_toggles, reference.output_toggles)


# ----------------------------------------------------------------------
# degenerate shapes and no-toggle cycles
# ----------------------------------------------------------------------


def test_no_toggle_cycles_across_population():
    circuit, delays = _chain_circuit(3)
    # identical vectors -> no transition anywhere, for every chip
    inputs = np.ones((1, 5), dtype=bool)
    matrix = np.stack([delays, delays * 2.0, delays * 0.5])
    batch = batch_cycle_timings(circuit, inputs, matrix)
    assert np.all(batch.t_late == 0.0)
    assert np.all(np.isposinf(batch.t_early))
    assert np.all(batch.output_toggles == 0)


def test_single_chip_single_cycle_degenerate_shapes():
    circuit, delays = _chain_circuit(3)
    inputs = np.array([[0, 1]], dtype=bool)  # one transition
    batch = batch_cycle_timings(circuit, inputs, delays[None, :])
    assert batch.num_chips == 1
    assert batch.t_late.shape == (1, 1)
    assert batch.chip(0).t_late[0] == pytest.approx(30.0)
    assert batch.chip(0).t_early[0] == pytest.approx(30.0)
    assert batch.output_toggles[0] == 1


def test_batch_rejects_bad_shapes():
    circuit, delays = _chain_circuit(2)
    inputs = np.array([[0, 1]], dtype=bool)
    with pytest.raises(ValueError):
        batch_cycle_timings(circuit, inputs, delays)  # 1-D matrix
    with pytest.raises(ValueError):
        batch_cycle_timings(circuit, inputs, np.empty((0, len(delays))))
    with pytest.raises(ValueError):
        batch_cycle_timings(circuit, np.array([[0]], dtype=bool), delays[None, :])
    with pytest.raises(ValueError):
        batch_cycle_timings(circuit, inputs, delays[None, :], chunk=0)


@pytest.mark.parametrize("chunk", [1, 2, 3, 7, 1000])
def test_chunk_boundaries_never_change_results(chunk):
    """Every chunking, including window=1 seams, gives identical arrays."""
    netlist = random_netlist(9, num_inputs=4, num_gates=25, num_outputs=2)
    circuit = levelize(netlist)
    inputs = _random_inputs(netlist, 23, 9)
    matrix = np.stack(
        [random_gate_delays(netlist, 90 + i) for i in range(3)]
    )
    reference = batch_cycle_timings(circuit, inputs, matrix, chunk=10_000)
    chunked = batch_cycle_timings(circuit, inputs, matrix, chunk=chunk)
    np.testing.assert_array_equal(chunked.t_late, reference.t_late)
    np.testing.assert_array_equal(chunked.t_early, reference.t_early)
    np.testing.assert_array_equal(chunked.output_toggles, reference.output_toggles)


# ----------------------------------------------------------------------
# shared-memory hand-off lifecycle
# ----------------------------------------------------------------------


def _attach_and_crash(catalog):
    """Child body: attach a view, then die without any cleanup."""
    reader = ShmReader(catalog)
    view = reader.get("delays")
    assert view is not None and view.shape == (2, 3)
    os.kill(os.getpid(), signal.SIGKILL)  # simulated worker crash


def _attach_and_verify(catalog):
    """Sibling-worker body: attach after the crash and check the data.

    Runs in its own process (like a real fleet worker) so the attach
    path exercises the untracked-attach rules rather than the parent's
    own bookkeeping; any assertion failure surfaces as a non-zero
    exitcode.
    """
    reader = ShmReader(catalog)
    view = reader.get("delays")
    assert view is not None
    np.testing.assert_array_equal(view, np.arange(6, dtype=np.float32).reshape(2, 3))
    assert not view.flags.writeable
    assert reader.meta["seeds"] == (1, 2)
    reader.close()


def test_worker_crash_leaves_parent_segments_alive():
    """A dying worker must not unlink the parent's segments (the
    resource-tracker trap); siblings keep attaching, and only the
    parent's unlink() destroys them."""
    publisher = ShmPublisher()
    try:
        publisher.put("delays", np.arange(6, dtype=np.float32).reshape(2, 3))
        publisher.put_meta("seeds", (1, 2))
        catalog = publisher.catalog()

        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_attach_and_crash, args=(catalog,))
        child.start()
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL

        # a sibling worker attaching after the crash still sees the array
        sibling = ctx.Process(target=_attach_and_verify, args=(catalog,))
        sibling.start()
        sibling.join(timeout=30)
        assert sibling.exitcode == 0
    finally:
        publisher.unlink()

    # after unlink the segment is really gone: attach degrades to None
    late = ShmReader(catalog)
    assert late.get("delays") is None
    late.close()


def test_reader_returns_none_for_missing_segments():
    catalog = ShmCatalog(
        arrays=(("ghost", ArraySpec(segment="repro-none-999999", shape=(2,), dtype="float32")),),
    )
    reader = ShmReader(catalog)
    assert "ghost" in reader
    assert reader.get("ghost") is None
    assert reader.get("ghost") is None  # cached failure, still quiet
    assert reader.get("unknown-key") is None
    reader.close()


def test_publisher_unlink_is_idempotent():
    publisher = ShmPublisher()
    publisher.put("a", np.zeros(4))
    catalog = publisher.catalog()
    assert len(catalog) == 1
    publisher.unlink()
    publisher.unlink()  # double unlink must not raise
    reader = ShmReader(catalog)
    assert reader.get("a") is None
    reader.close()
