"""Tests for the cycle-audit flight recorder (:mod:`repro.obs.audit`).

Covers the guarantees the audit layer claims: near-zero cost while
disabled, seed-deterministic (schedule-independent) sampling, shard
round-trips whose merge is order-independent and deduplicating,
``--jobs 1`` == ``--jobs 2`` streams, Perfetto-loadable exports,
cycle-level blame on the forced-choke fixture, and reports that stay
byte-identical whether audit is on or off.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from pathlib import Path

import numpy as np
import pytest

from repro.obs import audit
from repro.obs.schema import check
from repro.qa.circuits import synthetic_error_trace

SCHEMA_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "schemas"

pytest_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel audit tests rely on cheap fork workers",
)


def load_schema(name: str) -> dict:
    return json.loads((SCHEMA_DIR / name).read_text())


@pytest.fixture(autouse=True)
def audit_off_after_test():
    """Never leak a process-global audit sink into the next test."""
    yield
    audit.disable()


def record_run(policy: str, n: int = 500, seed: int = 1, scheme: str = "unit"):
    """One finished scheme run with a deterministic pseudo-random load."""
    sink = audit.AuditRecorder(policy=policy)
    run = sink.begin_run(
        kind="scheme", scheme=scheme, benchmark="synthetic", corner="NTC",
        base_cycles=n, clock_period=1000.0, hold_constraint=120.0,
    )
    rng = np.random.default_rng(seed)
    for cycle in np.flatnonzero(rng.random(n) < 0.2):
        run.decision(int(cycle), 2, audit.DEC_DETECT, penalty=11)
    run.finish()
    return run.to_block()


# ----------------------------------------------------------------------
# sampling policies
# ----------------------------------------------------------------------

def test_policy_parse_normalises_and_rejects():
    assert audit.SamplePolicy("full").text == "full"
    assert audit.SamplePolicy("window:10:5").text == "window:10:5"
    assert audit.SamplePolicy("reservoir:64").text == "reservoir:64:0"
    assert audit.SamplePolicy("reservoir:64:7").text == "reservoir:64:7"
    for bad in ("full:1", "window:10", "window:-1:5", "window:0:0",
                "reservoir:0", "reservoir", "ring:4", ""):
        with pytest.raises(ValueError):
            audit.SamplePolicy(bad)


def test_window_policy_keeps_only_the_window():
    block = record_run("window:100:50")
    cycles = block["columns"]["cycle"]
    assert len(cycles)
    assert cycles.min() >= 100 and cycles.max() < 150
    # events_seen still counts everything the run produced
    assert block["events_seen"] > len(cycles)


def test_reservoir_is_capped_sorted_and_seed_deterministic():
    first = record_run("reservoir:32:7")
    second = record_run("reservoir:32:7")
    cycles = first["columns"]["cycle"]
    assert len(cycles) == 32
    assert (np.diff(cycles) > 0).all()  # re-sorted by cycle at finish
    np.testing.assert_array_equal(cycles, second["columns"]["cycle"])
    assert first["digest"] == second["digest"]
    # a different policy seed picks a different sample
    other = record_run("reservoir:32:8")
    assert other["digest"] != first["digest"]


def test_full_policy_replays_counters_exactly():
    block = record_run("full")
    counters = audit.replay_counters(block)
    assert counters["flushes"] == block["events_seen"]
    assert counters["penalty_cycles"] == 11 * block["events_seen"]


def test_replay_counters_guards():
    block = record_run("reservoir:8")
    with pytest.raises(ValueError):
        audit.replay_counters(block)  # sampled: not exact
    etrace = dict(record_run("full"), kind="etrace")
    with pytest.raises(ValueError):
        audit.replay_counters(etrace)  # no scheme decisions to replay


# ----------------------------------------------------------------------
# shard round-trip and merge determinism
# ----------------------------------------------------------------------

def test_shard_roundtrip_and_order_independent_merge(tmp_path):
    blocks = [record_run("full", seed=s, scheme=f"s{s}") for s in (1, 2, 3)]
    audit.write_audit(str(tmp_path / "a.npz"), blocks, trace_id="t-1")
    loaded = audit.load_audit(str(tmp_path / "a.npz"))
    assert [run["digest"] for run in loaded["runs"]] == [
        block["digest"] for block in blocks
    ]
    for run, block in zip(loaded["runs"], blocks):
        for name, _dtype in audit.COLUMNS:
            np.testing.assert_array_equal(run["columns"][name],
                                          block["columns"][name])

    # merge is insensitive to document order and collapses duplicates
    doc_a = {"runs": blocks[:2]}
    doc_b = {"runs": blocks[1:]}
    forward = audit.merge_audit([doc_a, doc_b])
    reverse = audit.merge_audit([doc_b, doc_a])
    assert [audit._run_key(r) for r in forward] == [
        audit._run_key(r) for r in reverse
    ]
    assert len(forward) == 3


def test_worker_shard_scan_skips_stale(tmp_path):
    sink = audit.enable(audit.AuditRecorder(
        policy="full", shard_dir=str(tmp_path), trace_id="t-2"
    ))
    run = sink.begin_run(
        kind="scheme", scheme="unit", benchmark="b", corner="NTC",
        base_cycles=8, clock_period=1000.0, hold_constraint=120.0,
    )
    run.decision(3, 2, audit.DEC_DETECT, penalty=5)
    run.finish()
    sink.flush()
    # a stale shard from an older layout version must be skipped
    (tmp_path / "audit-v0-1-1.npz").write_bytes(b"junk")
    documents, stale = audit.scan_audit_shards(str(tmp_path))
    assert len(documents) == 1 and stale == 1
    merged = audit.merge_audit(documents)
    assert len(merged) == 1
    assert audit.replay_counters(merged[0])["flushes"] == 1


def test_ensure_worker_lifecycle(tmp_path):
    inherited = audit.enable(audit.AuditRecorder(policy="full"))
    inherited.pid += 1  # simulate a fork-inherited parent sink
    assert audit.ensure_worker(None) is None  # audit off drops it
    assert audit.get() is None

    fresh = audit.ensure_worker(str(tmp_path), policy="reservoir:8", trace_id="t")
    assert fresh is not None and fresh.pid != inherited.pid
    assert audit.ensure_worker(str(tmp_path)) is fresh  # idempotent
    audit.flush_worker()
    documents, stale = audit.scan_audit_shards(str(tmp_path))
    assert documents == [] or documents[0]["runs"] == []  # nothing recorded
    assert stale == 0
    audit.disable()
    audit.flush_worker()  # must be safe with no sink installed


# ----------------------------------------------------------------------
# export, rollup, and the checked-in schema
# ----------------------------------------------------------------------

def test_trace_export_conforms_to_checked_in_schema():
    blocks = [record_run("full", n=60, seed=4)]
    doc = audit.audit_trace_document(blocks, trace_id="t-3")
    check(doc, load_schema("trace.schema.json"), label="audit trace")
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert instants and all(e["cat"] == "audit" for e in instants)
    with pytest.raises(ValueError):
        audit.audit_trace_document([])


def test_audit_document_conforms_to_checked_in_schema():
    blocks = [record_run("full", n=60, seed=4),
              dict(record_run("full", n=60, seed=5), kind="etrace", scheme="")]
    doc = audit.audit_document(blocks, policy="full", trace_id="t-4")
    check(doc, load_schema("audit.schema.json"), label="audit.json")
    assert doc["runs"][0]["decisions"]["detect"] == blocks[0]["events_seen"]


def test_timeline_and_rollup():
    block = record_run("full", n=960, seed=6)
    line = audit.decision_timeline(block)
    assert len(line) == audit.TIMELINE_BUCKETS
    assert "D" in line
    rollup = audit.audit_rollup([block])
    entry = rollup["schemes"]["unit"]
    assert entry["detect"] == block["events_seen"]
    assert entry["penalty_cycles"] == 11 * block["events_seen"]
    assert entry["timeline"] == line


# ----------------------------------------------------------------------
# cycle-level blame: the forced-choke acceptance fixture
# ----------------------------------------------------------------------

def test_audit_why_fixture_names_planted_gate(capsys):
    from repro.experiments.audit_cli import audit_main

    assert audit_main(["why", "--fixture"]) == 0
    out = capsys.readouterr().out
    # the blame line names the planted choke gate with its CDL class...
    assert "blame: CDL_" in out
    assert "n8[BUF]" in out
    # ...and the decision chain shows the rollback each scheme recorded
    assert "detect" in out
    assert "Razor" in out
    assert not audit.enabled()  # the fixture run restores the sink state


# ----------------------------------------------------------------------
# disabled-path overhead: the reason schemes can stay instrumented
# ----------------------------------------------------------------------

def test_disabled_audit_is_near_free():
    assert not audit.enabled()
    iterations = 50_000
    start = time.perf_counter()
    for _ in range(iterations):
        if audit.get() is not None:  # the per-run hoisted guard
            raise AssertionError("sink must be off")
    t_checks = time.perf_counter() - start
    # absolute budget, mirroring test_obs: 2µs per check is an order of
    # magnitude above what a module-global read costs
    assert t_checks < iterations * 2e-6, f"{t_checks:.3f}s for {iterations} checks"

    # comparative budget: a loop scheme pays one hoisted get() per
    # simulate() plus a local None check per decision event (vectorised
    # schemes skip even that), so event-count guard checks must cost
    # well under 2% of the cycle loop they ride in.
    from repro.core.dcs import DcsScheme

    n = 50_000
    rng = np.random.default_rng(0)
    err = np.where(rng.random(n) < 0.05, 2, 0).astype(np.int8)
    trace = synthetic_error_trace(err, benchmark="overhead")
    scheme = DcsScheme("icslt", capacity=64, associativity=4)
    t_sim = min(_timed(lambda: scheme.simulate(trace)) for _ in range(3))
    events = int((err != 0).sum())
    t_guard = min(_timed(lambda: _guard_loop(events)) for _ in range(3))
    assert t_guard < 0.02 * t_sim + 1e-4, (
        f"audit-off guards cost {t_guard:.5f}s vs {t_sim:.5f}s sim"
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _guard_loop(n: int) -> None:
    rec = None if audit.get() is None else object()
    for _ in range(n):
        if rec is not None:
            raise AssertionError


# ----------------------------------------------------------------------
# end-to-end: streams are schedule-independent, reports untouched
# ----------------------------------------------------------------------

def run_cli(tmp_path, name, jobs, audit_out=None, policy=None):
    from repro.experiments.__main__ import main

    report = tmp_path / f"report-{name}.txt"
    argv = [
        "fig3_10", "--fast", "--cycles", "200",
        "--jobs", str(jobs), "--checkpoint-dir", str(tmp_path / f"ckpt-{name}"),
        "--out", str(report),
    ]
    if audit_out is not None:
        argv.extend(["--audit-out", str(audit_out)])
    if policy is not None:
        argv.extend(["--audit-policy", policy])
    assert main(argv) == 0
    return report.read_bytes()


def test_audited_report_is_byte_identical_serial(tmp_path, capsys):
    plain = run_cli(tmp_path, "plain", 1)
    stream = tmp_path / "audit-serial.npz"
    audited = run_cli(tmp_path, "audited", 1, audit_out=stream)
    assert audited == plain
    document = audit.load_audit(str(stream))
    assert document["runs"]
    assert any(run["kind"] == "scheme" for run in document["runs"])
    assert not audit.enabled()  # sink off again after main() returns
    assert "audit stream written" in capsys.readouterr().out


@pytest_fork
def test_sampled_streams_identical_jobs1_vs_jobs2(tmp_path):
    stream1 = tmp_path / "audit-j1.npz"
    stream2 = tmp_path / "audit-j2.npz"
    report1 = run_cli(tmp_path, "j1", 1, audit_out=stream1,
                      policy="reservoir:64:7")
    report2 = run_cli(tmp_path, "j2", 2, audit_out=stream2,
                      policy="reservoir:64:7")
    assert report1 == report2  # reports untouched by audit or schedule
    doc1 = audit.load_audit(str(stream1))
    doc2 = audit.load_audit(str(stream2))
    keys1 = [audit._run_key(run) for run in doc1["runs"]]
    keys2 = [audit._run_key(run) for run in doc2["runs"]]
    assert keys1 == keys2  # same runs, same digests, same order
    for run1, run2 in zip(doc1["runs"], doc2["runs"]):
        for name, _dtype in audit.COLUMNS:
            np.testing.assert_array_equal(run1["columns"][name],
                                          run2["columns"][name])
