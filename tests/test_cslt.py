"""Unit tests for the CSLT organisations (ICSLT / ACSLT)."""

import pytest

from repro.core.cslt import AssociativeCSLT, IndependentCSLT
from repro.core.tags import DcsTag


def _tag(e, owm_e=True, p=0, owm_p=False):
    return DcsTag(e, owm_e, p, owm_p)


# ---------------------------------------------------------------------------
# ICSLT
# ---------------------------------------------------------------------------


def test_icslt_insert_then_lookup():
    table = IndependentCSLT(8)
    tag = _tag(1)
    assert not table.lookup(tag)
    table.insert(tag)
    assert table.lookup(tag)
    assert len(table) == 1
    assert tag in table


def test_icslt_capacity_power_of_two():
    with pytest.raises(ValueError):
        IndependentCSLT(12)


def test_icslt_eviction_at_capacity():
    table = IndependentCSLT(4)
    tags = [_tag(i) for i in range(5)]
    for tag in tags:
        table.insert(tag)
    assert len(table) == 4
    assert table.evictions == 1
    # exactly one of the five is gone
    assert sum(1 for tag in tags if table.lookup(tag)) == 4


def test_icslt_lookup_protects_entry():
    table = IndependentCSLT(2)
    a, b, c = _tag(1), _tag(2), _tag(3)
    table.insert(a)
    table.insert(b)
    table.lookup(a)  # protect a
    table.insert(c)  # evicts b
    assert table.lookup(a)
    assert not table.lookup(b)
    assert table.lookup(c)


def test_icslt_reinsert_is_idempotent():
    table = IndependentCSLT(4)
    tag = _tag(7)
    table.insert(tag)
    table.insert(tag)
    assert len(table) == 1
    assert table.unique_insertions == 1


def test_icslt_stores_redundant_errant_pairs():
    """The ICSLT redundancy the paper calls out: the same errant pair
    with different previous pairs occupies multiple tuples."""
    table = IndependentCSLT(8)
    for prev in range(4):
        table.insert(_tag(1, True, prev, False))
    assert len(table) == 4


def test_icslt_tags_listing():
    table = IndependentCSLT(4)
    table.insert(_tag(1))
    table.insert(_tag(2))
    assert len(table.tags()) == 2


# ---------------------------------------------------------------------------
# ACSLT
# ---------------------------------------------------------------------------


def test_acslt_insert_then_lookup():
    table = AssociativeCSLT(4, 4)
    tag = _tag(1, True, 9, True)
    assert not table.lookup(tag)
    table.insert(tag)
    assert table.lookup(tag)


def test_acslt_geometry_validation():
    with pytest.raises(ValueError):
        AssociativeCSLT(6, 4)
    with pytest.raises(ValueError):
        AssociativeCSLT(4, 6)


def test_acslt_eliminates_errant_pair_redundancy():
    """Multiple previous pairs for one errant pair share a single tuple."""
    table = AssociativeCSLT(4, 8)
    for prev in range(5):
        table.insert(_tag(1, True, prev, False))
    assert table.unique_insertions == 1  # one set tuple
    assert len(table) == 5  # five ways inside it
    for prev in range(5):
        assert table.lookup(_tag(1, True, prev, False))


def test_acslt_way_eviction_within_set():
    table = AssociativeCSLT(2, 2)
    for prev in range(3):
        table.insert(_tag(1, True, prev, False))
    hits = sum(table.lookup(_tag(1, True, prev, False)) for prev in range(3))
    assert hits == 2  # one way evicted


def test_acslt_set_eviction():
    table = AssociativeCSLT(2, 2)
    for errant in range(3):
        table.insert(_tag(errant))
    assert table.evictions == 1
    hits = sum(table.lookup(_tag(errant)) for errant in range(3))
    assert hits == 2


def test_acslt_distinguishes_owm():
    table = AssociativeCSLT(4, 4)
    table.insert(_tag(1, True, 2, False))
    assert not table.lookup(_tag(1, False, 2, False))  # different set key
    assert not table.lookup(_tag(1, True, 2, True))  # different way key


def test_acslt_holds_more_pairs_than_equal_tuple_icslt():
    """The space argument for ACSLT: 32 tuples x 16 ways cover far more
    unique (errant, previous) combinations than a 32-tuple ICSLT."""
    icslt = IndependentCSLT(32)
    acslt = AssociativeCSLT(32, 16)
    tags = [_tag(e, True, p, False) for e in range(8) for p in range(10)]
    for tag in tags:
        icslt.insert(tag)
        acslt.insert(tag)
    icslt_hits = sum(icslt.lookup(t) for t in tags)
    acslt_hits = sum(acslt.lookup(t) for t in tags)
    assert acslt_hits == len(tags)
    assert icslt_hits < acslt_hits
