"""Unit tests for the Razor, HFG, and OCST baseline schemes."""

import numpy as np
import pytest

from repro.arch.pipeline import PipelineConfig
from repro.core.schemes import HfgScheme, OcstScheme, RazorScheme
from repro.core.schemes.hfg import pvta_guardband_factor
from repro.timing.dta import ERR_NONE, ERR_SE_MAX, ERR_SE_MIN

from tests.util import synthetic_error_trace


def test_razor_pays_flush_per_max_error():
    classes = np.array([ERR_SE_MAX, ERR_NONE, ERR_SE_MAX, ERR_SE_MIN], dtype=np.int8)
    trace = synthetic_error_trace(classes)
    result = RazorScheme(PipelineConfig(depth=11)).simulate(trace)
    assert result.errors_total == 2  # min violation invisible to Razor
    assert result.penalty_cycles == 22
    assert result.errors_missed == 2
    assert result.prediction_accuracy == 0.0
    assert result.effective_clock_period == trace.clock_period


def test_razor_clean_trace():
    trace = synthetic_error_trace(np.zeros(10, dtype=np.int8))
    result = RazorScheme().simulate(trace)
    assert result.penalty_cycles == 0
    assert result.prediction_accuracy == 1.0  # vacuous


def test_hfg_has_no_penalties_but_stretches_clock():
    classes = np.array([ERR_SE_MAX] * 3 + [ERR_NONE] * 7, dtype=np.int8)
    trace = synthetic_error_trace(classes)
    result = HfgScheme().simulate(trace)
    assert result.penalty_cycles == 0
    assert result.effective_clock_period > trace.clock_period
    assert result.errors_predicted == result.errors_total == 3


def test_hfg_guardband_far_larger_at_ntc_than_stc():
    """The paper's argument: PVTA guardbands explode near threshold."""
    ntc = pvta_guardband_factor(0.45)
    stc = pvta_guardband_factor(0.80)
    assert ntc > 2.0
    assert stc < 1.6
    assert ntc > 1.5 * stc


def test_hfg_guardband_validation():
    with pytest.raises(ValueError):
        pvta_guardband_factor(0.45, droop=1.0)
    with pytest.raises(ValueError):
        pvta_guardband_factor(0.45, aging_delta_vth=-0.1)
    with pytest.raises(ValueError):
        HfgScheme(sensor_margin=-0.1)


def test_hfg_corner_sensitivity_through_trace():
    classes = np.array([ERR_SE_MAX] + [ERR_NONE] * 9, dtype=np.int8)
    ntc_trace = synthetic_error_trace(classes, corner_vdd=0.45)
    stc_trace = synthetic_error_trace(classes, corner_vdd=0.80)
    ntc = HfgScheme().simulate(ntc_trace)
    stc = HfgScheme().simulate(stc_trace)
    assert (
        ntc.effective_clock_period / ntc_trace.clock_period
        > stc.effective_clock_period / stc_trace.clock_period
    )


def _marginal_error_trace(n=4000, overshoot=1.05):
    """Max errors whose delay sits just above the clock (tunable)."""
    classes = np.zeros(n, dtype=np.int8)
    classes[::10] = ERR_SE_MAX
    t_late = np.where(classes == ERR_SE_MAX, 1000.0 * overshoot, 800.0)
    return synthetic_error_trace(classes, t_late=t_late)


def test_ocst_tunes_away_marginal_errors():
    trace = _marginal_error_trace(overshoot=1.05)
    result = OcstScheme(interval=500).simulate(trace)
    razor = RazorScheme().simulate(trace)
    # after a few tuning intervals the skew covers the overshoot
    assert result.errors_predicted > 0
    assert result.penalty_cycles < razor.penalty_cycles
    assert result.effective_clock_period > trace.clock_period


def test_ocst_cannot_reach_choke_errors():
    """Choke errors far beyond the skew range stay penalised; the tuner
    must not burn period on them permanently."""
    trace = _marginal_error_trace(overshoot=1.5)
    result = OcstScheme(interval=500, max_skew_fraction=0.12).simulate(trace)
    assert result.errors_predicted == 0
    assert result.flushes == result.errors_total
    # the revert logic bounds the average period inflation
    assert result.effective_clock_period < trace.clock_period * 1.08


def test_ocst_clean_trace_keeps_nominal_period():
    trace = synthetic_error_trace(np.zeros(2000, dtype=np.int8))
    result = OcstScheme(interval=500).simulate(trace)
    assert result.penalty_cycles == 0
    assert result.effective_clock_period == pytest.approx(trace.clock_period)


def test_ocst_validation():
    with pytest.raises(ValueError):
        OcstScheme(interval=0)
    with pytest.raises(ValueError):
        OcstScheme(skew_step_fraction=0.0)


def test_scheme_result_properties():
    classes = np.array([ERR_SE_MAX, ERR_NONE], dtype=np.int8)
    result = RazorScheme(PipelineConfig(depth=5)).simulate(
        synthetic_error_trace(classes)
    )
    assert result.total_cycles == 2 + 5
    assert result.execution_time_ps == pytest.approx(7 * 1000.0)
