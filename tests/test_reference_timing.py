"""Equivalence properties: vectorised engines vs scalar reference.

The vectorised logic evaluator and dynamic timing analysis must agree
with the deliberately-simple per-node reference implementations on
random netlists, random delays, and random vector pairs.
"""

import math

import numpy as np
import pytest

from repro.timing.dta import cycle_timings, single_transition_arrivals
from repro.timing.levelize import levelize
from repro.timing.reference import (
    reference_cycle_timing,
    reference_logic_eval,
    reference_transition_arrivals,
)

from tests.util import random_netlist


def _random_setup(seed, num_inputs=6, num_gates=50):
    rng = np.random.default_rng(seed)
    netlist = random_netlist(rng, num_inputs=num_inputs, num_gates=num_gates)
    delays = np.zeros(netlist.num_nodes)
    for node in range(netlist.num_nodes):
        if netlist.fanins(node):
            delays[node] = float(rng.uniform(1.0, 20.0))
    vec_prev = rng.integers(0, 2, num_inputs).astype(bool)
    vec_curr = rng.integers(0, 2, num_inputs).astype(bool)
    return netlist, delays, vec_prev, vec_curr


@pytest.mark.parametrize("seed", range(12))
def test_transition_arrivals_match_reference(seed):
    netlist, delays, vec_prev, vec_curr = _random_setup(seed)
    circuit = levelize(netlist)
    late_v, early_v, toggled_v = single_transition_arrivals(
        circuit, vec_prev, vec_curr, delays
    )
    late_r, early_r, toggled_r = reference_transition_arrivals(
        netlist, vec_prev, vec_curr, delays
    )
    for node in range(netlist.num_nodes):
        assert bool(toggled_v[node]) == toggled_r[node], f"toggle @ {node}"
        if math.isfinite(late_r[node]):
            assert late_v[node] == pytest.approx(late_r[node], rel=1e-5)
            assert early_v[node] == pytest.approx(early_r[node], rel=1e-5)
        else:
            assert not np.isfinite(late_v[node])
            assert not np.isfinite(early_v[node])


@pytest.mark.parametrize("seed", range(8))
def test_cycle_aggregates_match_reference(seed):
    netlist, delays, vec_prev, vec_curr = _random_setup(seed, num_gates=70)
    circuit = levelize(netlist)
    inputs = np.stack([vec_prev, vec_curr], axis=1)
    batch = cycle_timings(circuit, inputs, delays)
    t_late, t_early, toggles = reference_cycle_timing(
        netlist, vec_prev, vec_curr, delays
    )
    assert batch.t_late[0] == pytest.approx(t_late, rel=1e-5)
    if math.isfinite(t_early):
        assert batch.t_early[0] == pytest.approx(t_early, rel=1e-5)
    else:
        assert np.isinf(batch.t_early[0])
    assert batch.output_toggles[0] == toggles


def test_reference_logic_eval_on_alu(alu8):
    rng = np.random.default_rng(5)
    from repro.circuits.alu import AluOp, alu_reference

    for _ in range(5):
        op = AluOp(int(rng.integers(13)))
        a = int(rng.integers(256))
        b = int(rng.integers(256))
        vector = alu8.encode(op, a, b)
        values = reference_logic_eval(alu8.netlist, vector)
        got = sum(values[bit] << i for i, bit in enumerate(alu8.output_bits))
        assert got == alu_reference(op, a, b, 8)


def test_no_transition_when_vectors_equal():
    netlist, delays, vec, _ = _random_setup(99)
    late, early, toggled = reference_transition_arrivals(
        netlist, vec, vec, delays
    )
    assert not any(toggled.values())
    assert all(v == -math.inf for k, v in late.items())


def test_late_never_below_early_per_node():
    """Per node, the latest transition arrival bounds the earliest."""
    for seed in range(6):
        netlist, delays, vec_prev, vec_curr = _random_setup(100 + seed)
        late, early, toggled = reference_transition_arrivals(
            netlist, vec_prev, vec_curr, delays
        )
        for node, toggles in toggled.items():
            if toggles:
                assert late[node] >= early[node] - 1e-9
