"""Unit tests for the netlist data structure."""

import numpy as np
import pytest

from repro.gates.celllib import GateKind
from repro.gates.netlist import Netlist

from tests.util import random_netlist


@pytest.fixture()
def small():
    """in0 -> INV -> AND(in1) -> out, plus an unused OR gate."""
    netlist = Netlist("small")
    a = netlist.add(GateKind.INPUT, (), name="a")
    b = netlist.add(GateKind.INPUT, (), name="b")
    inv = netlist.add(GateKind.INV, (a,))
    and_ = netlist.add(GateKind.AND2, (inv, b))
    netlist.add(GateKind.OR2, (a, b))  # dead
    netlist.mark_output("y", and_)
    return netlist


def test_counts(small):
    assert small.num_nodes == 5
    assert small.num_gates == 3
    assert small.input_ids == (0, 1)
    assert small.output_ids == (3,)
    assert small.output_names == ("y",)
    assert len(small) == 5


def test_kind_and_fanins(small):
    assert small.kind(2) is GateKind.INV
    assert small.fanins(3) == (2, 1)
    assert small.fanins(0) == ()


def test_wrong_arity_rejected():
    netlist = Netlist()
    a = netlist.add(GateKind.INPUT, ())
    with pytest.raises(ValueError, match="expects 2 fanins"):
        netlist.add(GateKind.AND2, (a,))


def test_forward_reference_rejected():
    netlist = Netlist()
    netlist.add(GateKind.INPUT, ())
    with pytest.raises(ValueError, match="not an existing node"):
        netlist.add(GateKind.INV, (5,))


def test_self_reference_rejected():
    netlist = Netlist()
    netlist.add(GateKind.INPUT, ())
    with pytest.raises(ValueError):
        netlist.add(GateKind.INV, (1,))  # node 1 is being created


def test_duplicate_output_name_rejected(small):
    with pytest.raises(ValueError, match="duplicate output"):
        small.mark_output("y", 2)


def test_output_unknown_node_rejected(small):
    with pytest.raises(ValueError, match="unknown node"):
        small.mark_output("z", 99)


def test_levels(small):
    levels = small.levels()
    assert levels[0] == levels[1] == 0
    assert levels[2] == 1
    assert levels[3] == 2
    assert small.logic_depth() == 2


def test_fanouts(small):
    fanouts = small.fanouts()
    assert fanouts[0] == [2, 4]
    assert fanouts[1] == [3, 4]
    assert fanouts[2] == [3]
    assert fanouts[3] == []


def test_transitive_fanin(small):
    cone = small.transitive_fanin([3])
    assert cone == {0, 1, 2, 3}


def test_dead_nodes(small):
    assert small.dead_nodes() == {4}


def test_fanin_arrays(small):
    in0, in1, in2 = small.fanin_arrays()
    assert in0[2] == 0 and in1[2] == -1 and in2[2] == -1
    assert in0[3] == 2 and in1[3] == 1
    assert in0[0] == -1  # inputs have no fanins


def test_kinds_array(small):
    kinds = small.kinds_array()
    assert kinds.dtype == np.int8
    assert kinds[2] == int(GateKind.INV)


def test_gate_count_by_kind(small):
    counts = small.gate_count_by_kind()
    assert counts[GateKind.INPUT] == 2
    assert counts[GateKind.INV] == 1


def test_name_of(small):
    assert small.name_of(0) == "a"
    assert small.name_of(3) == "n3"


def test_total_area_positive(small):
    assert small.total_area_um2() > 0


def test_to_networkx(small):
    graph = small.to_networkx()
    assert graph.number_of_nodes() == 5
    assert graph.has_edge(2, 3)
    import networkx as nx

    assert nx.is_directed_acyclic_graph(graph)


def test_random_netlists_are_acyclic_by_construction(rng):
    import networkx as nx

    for _ in range(5):
        netlist = random_netlist(rng)
        assert nx.is_directed_acyclic_graph(netlist.to_networkx())


def test_repr(small):
    text = repr(small)
    assert "small" in text and "gates=3" in text
