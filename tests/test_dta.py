"""Unit tests for dynamic timing analysis on hand-built circuits."""

import numpy as np
import pytest

from repro.gates.builder import NetlistBuilder
from repro.timing.dta import (
    ERR_CE,
    ERR_NONE,
    ERR_SE_MAX,
    ERR_SE_MIN,
    CycleTimings,
    cycle_timings,
    single_transition_arrivals,
)
from repro.timing.levelize import levelize
from tests.util import chain_circuit as _chain_circuit  # canonical builder


def test_chain_arrival_time():
    circuit, delays = _chain_circuit(3)
    inputs = np.array([[0, 1]], dtype=bool)  # one toggle
    timings = cycle_timings(circuit, inputs, delays)
    assert timings.t_late[0] == pytest.approx(30.0)
    assert timings.t_early[0] == pytest.approx(30.0)
    assert timings.output_toggles[0] == 1


def test_no_toggle_means_no_transition():
    circuit, delays = _chain_circuit(3)
    inputs = np.array([[1, 1]], dtype=bool)
    timings = cycle_timings(circuit, inputs, delays)
    assert timings.t_late[0] == 0.0
    assert np.isinf(timings.t_early[0])
    assert timings.output_toggles[0] == 0


def test_diamond_takes_slowest_and_fastest_sensitised_branch():
    """a feeds both a slow and a fast branch into an XOR: when 'a'
    toggles, the XOR output transitions arrive through both branches --
    earliest via the fast one, latest via the slow one."""
    builder = NetlistBuilder()
    a = builder.input("a")
    b = builder.input("b")
    slow = builder.buf(builder.buf(a))  # 2 bufs
    fast = builder.buf(a)
    # OR them with b to keep both branches sensitisable
    left = builder.or_(slow, b)
    right = builder.or_(fast, b)
    out = builder.xor_(left, right)
    builder.output("y", out)
    netlist = builder.build()
    delays = np.zeros(netlist.num_nodes)
    for node in range(netlist.num_nodes):
        if netlist.fanins(node):
            delays[node] = 10.0

    circuit = levelize(netlist)
    # b stays 0; a toggles 0->1: left goes through 2 bufs + or (30 ps),
    # right through 1 buf + or (20 ps)
    inputs = np.array([[0, 1], [0, 0]], dtype=bool)
    late, early, toggled = single_transition_arrivals(
        circuit, inputs[:, 0], inputs[:, 1], delays
    )
    assert not toggled[out]  # XOR of two equal transitions ends equal
    # but left/right each transitioned:
    assert late[left] == pytest.approx(30.0)
    assert late[right] == pytest.approx(20.0)
    assert early[left] == pytest.approx(30.0)
    assert early[right] == pytest.approx(20.0)


def test_untoggled_nodes_carry_infinities():
    circuit, delays = _chain_circuit(2)
    late, early, toggled = single_transition_arrivals(
        circuit, np.array([1]), np.array([1]), delays
    )
    assert not toggled.any()
    assert np.isneginf(late[circuit.output_ids[0]])
    assert np.isposinf(early[circuit.output_ids[0]])


def test_chunked_equals_unchunked(alu8, alu8_circuit):
    rng = np.random.default_rng(21)
    ops = rng.integers(0, 13, size=64)
    a = rng.integers(0, 256, size=64, dtype=np.uint64)
    b = rng.integers(0, 256, size=64, dtype=np.uint64)
    inputs = alu8.encode_batch(ops, a, b)
    delays = np.where(
        [bool(alu8.netlist.fanins(n)) for n in range(alu8.netlist.num_nodes)],
        7.0,
        0.0,
    )
    big = cycle_timings(alu8_circuit, inputs, delays, chunk=1024)
    small = cycle_timings(alu8_circuit, inputs, delays, chunk=5)
    assert np.allclose(big.t_late, small.t_late)
    assert np.allclose(big.t_early, small.t_early, equal_nan=True)
    assert (big.output_toggles == small.output_toggles).all()


def test_single_transition_matches_batch(alu8, alu8_circuit):
    rng = np.random.default_rng(22)
    ops = rng.integers(0, 13, size=6)
    a = rng.integers(0, 256, size=6, dtype=np.uint64)
    b = rng.integers(0, 256, size=6, dtype=np.uint64)
    inputs = alu8.encode_batch(ops, a, b)
    delays = np.full(alu8.netlist.num_nodes, 5.0)
    for node in alu8.netlist.input_ids:
        delays[node] = 0.0
    batch = cycle_timings(alu8_circuit, inputs, delays)
    for t in range(5):
        late, early, _ = single_transition_arrivals(
            alu8_circuit, inputs[:, t], inputs[:, t + 1], delays
        )
        out = alu8_circuit.output_ids
        finite = np.isfinite(late[out])
        expected_late = late[out][finite].max() if finite.any() else 0.0
        assert batch.t_late[t] == pytest.approx(expected_late)


def test_requires_two_vectors(alu8_circuit, alu8):
    inputs = alu8.encode(0, 1, 2).reshape(-1, 1)
    with pytest.raises(ValueError):
        cycle_timings(alu8_circuit, inputs, np.zeros(alu8.netlist.num_nodes))


def test_invalid_chunk_rejected(alu8, alu8_circuit):
    inputs = alu8.encode_batch(
        np.array([0, 1]), np.array([1, 2], dtype=np.uint64), np.array([3, 4], dtype=np.uint64)
    )
    with pytest.raises(ValueError):
        cycle_timings(alu8_circuit, inputs, np.zeros(alu8.netlist.num_nodes), chunk=0)


# ---------------------------------------------------------------------------
# CycleTimings classification
# ---------------------------------------------------------------------------


def _timings(t_late, t_early):
    n = len(t_late)
    return CycleTimings(
        t_late=np.array(t_late, dtype=np.float32),
        t_early=np.array(t_early, dtype=np.float32),
        output_toggles=np.ones(n, dtype=np.int32),
    )


def test_classify_all_classes():
    timings = _timings(
        t_late=[50.0, 50.0, 120.0, 120.0],
        t_early=[40.0, 5.0, 40.0, 5.0],
    )
    classes = timings.classify(clock_period=100.0, hold_constraint=10.0)
    assert list(classes) == [ERR_NONE, ERR_SE_MIN, ERR_SE_MAX, ERR_CE]


def test_violation_masks():
    timings = _timings([120.0, 80.0], [50.0, 2.0])
    assert list(timings.max_violations(100.0)) == [True, False]
    assert list(timings.min_violations(10.0)) == [False, True]
    assert len(timings) == 2


def test_boundary_is_not_a_violation():
    timings = _timings([100.0], [10.0])
    assert not timings.max_violations(100.0)[0]
    assert not timings.min_violations(10.0)[0]
