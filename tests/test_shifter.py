"""Unit and property tests for the barrel shifters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.shifter import (
    barrel_shift_left,
    barrel_shift_right,
    shift_amount_bits,
)
from repro.gates.builder import NetlistBuilder

from tests.util import eval_word, int_to_bits

WIDTH = 16
MASK = (1 << WIDTH) - 1


def _shift(mode, value, amount, left=False):
    builder = NetlistBuilder()
    word = builder.input_word("v", WIDTH)
    stages = shift_amount_bits(WIDTH)
    amt = builder.input_word("s", stages)
    if left:
        out = barrel_shift_left(builder, word, amt)
    else:
        out = barrel_shift_right(builder, word, amt, mode)
    return eval_word(
        builder, out, int_to_bits(value, WIDTH) + int_to_bits(amount, stages)
    )


def _ref_lsr(v, s):
    return v >> s


def _ref_asr(v, s):
    sign = v >> (WIDTH - 1)
    out = v >> s
    if sign and s:
        out |= (MASK << (WIDTH - s)) & MASK
    return out


def _ref_ror(v, s):
    if s == 0:
        return v
    return ((v >> s) | (v << (WIDTH - s))) & MASK


@settings(max_examples=80, deadline=None)
@given(v=st.integers(0, MASK), s=st.integers(0, WIDTH - 1))
def test_logical_right_shift(v, s):
    assert _shift("logical", v, s) == _ref_lsr(v, s)


@settings(max_examples=80, deadline=None)
@given(v=st.integers(0, MASK), s=st.integers(0, WIDTH - 1))
def test_arithmetic_right_shift(v, s):
    assert _shift("arith", v, s) == _ref_asr(v, s)


@settings(max_examples=80, deadline=None)
@given(v=st.integers(0, MASK), s=st.integers(0, WIDTH - 1))
def test_rotate_right(v, s):
    assert _shift("rotate", v, s) == _ref_ror(v, s)


@settings(max_examples=80, deadline=None)
@given(v=st.integers(0, MASK), s=st.integers(0, WIDTH - 1))
def test_left_shift(v, s):
    assert _shift(None, v, s, left=True) == (v << s) & MASK


def test_zero_shift_is_identity():
    for mode in ("logical", "arith", "rotate"):
        assert _shift(mode, 0xBEEF, 0) == 0xBEEF
    assert _shift(None, 0xBEEF, 0, left=True) == 0xBEEF


def test_rotate_is_a_permutation():
    value = 0x8421
    seen = {_shift("rotate", value, s) for s in range(WIDTH)}
    # all rotations of a value have the same popcount
    assert all(bin(v).count("1") == bin(value).count("1") for v in seen)


def test_shift_amount_bits():
    assert shift_amount_bits(16) == 4
    assert shift_amount_bits(32) == 5
    with pytest.raises(ValueError):
        shift_amount_bits(12)
    with pytest.raises(ValueError):
        shift_amount_bits(1)


def test_unknown_mode_rejected():
    builder = NetlistBuilder()
    word = builder.input_word("v", 4)
    amt = builder.input_word("s", 2)
    with pytest.raises(ValueError, match="unknown shift mode"):
        barrel_shift_right(builder, word, amt, "bogus")


def test_insufficient_amount_bits_rejected():
    builder = NetlistBuilder()
    word = builder.input_word("v", 16)
    amt = builder.input_word("s", 2)
    with pytest.raises(ValueError, match="shift-amount bits"):
        barrel_shift_right(builder, word, amt, "logical")
    with pytest.raises(ValueError, match="shift-amount bits"):
        barrel_shift_left(builder, word, amt)
