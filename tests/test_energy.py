"""Unit tests for the energy/EDP models and hardware-overhead estimator."""

import numpy as np
import pytest

from repro.core.schemes import RazorScheme
from repro.energy.metrics import energy_report, normalize_to
from repro.energy.overheads import (
    acslt_gate_count,
    cet_gate_count,
    dcs_overheads,
    icslt_gate_count,
    trident_overheads,
)
from repro.energy.power import core_power_mw, scheme_energy
from repro.pv.delaymodel import NTC, STC
from repro.timing.dta import ERR_SE_MAX

from tests.util import synthetic_error_trace


def test_core_power_ntc_far_below_stc():
    assert core_power_mw(NTC) < 0.25 * core_power_mw(STC)
    assert core_power_mw(STC) > 0


def test_scheme_energy_basics():
    trace = synthetic_error_trace(np.zeros(100, dtype=np.int8))
    result = RazorScheme().simulate(trace)
    energy = scheme_energy(result, NTC)
    assert energy.execution_time_ns == pytest.approx(100 * 1.0)  # 1000 ps cycles
    assert energy.energy_nj > 0
    assert energy.edp == pytest.approx(energy.energy_nj * energy.execution_time_ns)
    assert energy.efficiency == pytest.approx(1.0 / energy.edp)


def test_overhead_increases_power():
    trace = synthetic_error_trace(np.zeros(100, dtype=np.int8))
    result = RazorScheme().simulate(trace)
    bare = scheme_energy(result, NTC)
    loaded = scheme_energy(result, NTC, overhead=dcs_overheads("icslt", 128))
    assert loaded.average_power_mw > bare.average_power_mw
    assert loaded.edp > bare.edp


def test_energy_report_normalisation():
    classes = np.zeros(200, dtype=np.int8)
    classes[::10] = ERR_SE_MAX
    trace = synthetic_error_trace(classes)
    razor = RazorScheme().simulate(trace)
    report = energy_report(razor, razor, NTC)
    assert report.normalized_performance == pytest.approx(1.0)
    assert report.normalized_efficiency == pytest.approx(1.0)
    assert report.normalized_penalty == pytest.approx(1.0)


def test_energy_report_rejects_cross_benchmark():
    a = RazorScheme().simulate(synthetic_error_trace(np.zeros(10, dtype=np.int8), ))
    b_trace = synthetic_error_trace(np.zeros(10, dtype=np.int8))
    b_trace.benchmark = "other"
    b = RazorScheme().simulate(b_trace)
    with pytest.raises(ValueError):
        energy_report(a, b, NTC)


def test_normalize_to_requires_baseline():
    result = RazorScheme().simulate(synthetic_error_trace(np.zeros(10, dtype=np.int8)))
    with pytest.raises(KeyError):
        normalize_to({"Razor": result}, NTC, baseline="HFG")


# ---------------------------------------------------------------------------
# overhead estimator calibration (against the paper's reported numbers)
# ---------------------------------------------------------------------------


def test_icslt_gate_count_calibration():
    assert icslt_gate_count(128) == pytest.approx(567, abs=3)


def test_acslt_gate_count_calibration():
    assert acslt_gate_count(32, 16) == pytest.approx(2255, abs=10)


def test_dcs_icslt_overheads_match_paper():
    report = dcs_overheads("icslt", 128)
    assert report.total_gates == pytest.approx(1553, abs=5)
    assert report.area_percent == pytest.approx(0.23, abs=0.01)
    assert report.wirelength_percent == pytest.approx(0.77, abs=0.05)
    assert report.power_percent == pytest.approx(0.85, abs=0.05)


def test_dcs_acslt_overheads_match_paper():
    report = dcs_overheads("acslt", 32, 16)
    assert report.total_gates == pytest.approx(3241, abs=10)
    assert report.area_percent == pytest.approx(0.48, abs=0.01)
    assert report.power_percent == pytest.approx(1.20, abs=0.05)


def test_trident_overheads_match_paper():
    report = trident_overheads(128)
    assert report.area_percent == pytest.approx(0.97, abs=0.06)
    assert report.wirelength_percent == pytest.approx(1.12, abs=0.06)
    assert report.power_percent == pytest.approx(1.58, abs=0.06)


def test_overheads_scale_with_table_size():
    small = dcs_overheads("icslt", 32)
    big = dcs_overheads("icslt", 256)
    assert big.storage_gates > small.storage_gates
    assert big.area_percent > small.area_percent
    assert cet_gate_count(256) > cet_gate_count(64)


def test_overhead_validation():
    with pytest.raises(ValueError):
        icslt_gate_count(0)
    with pytest.raises(ValueError):
        acslt_gate_count(4, 0)
    with pytest.raises(ValueError):
        dcs_overheads("bogus")


def test_power_fraction():
    report = dcs_overheads("icslt", 128)
    assert report.power_fraction == pytest.approx(report.power_percent / 100.0)
