"""Unit tests for the DCS scheme on synthetic error traces."""

import numpy as np
import pytest

from repro.arch.pipeline import PipelineConfig
from repro.core.dcs import DcsScheme
from repro.timing.dta import ERR_NONE, ERR_SE_MAX

from tests.util import synthetic_error_trace


def _trace_with_repeating_error(repeats=10, period=4):
    """One errant context recurring every ``period`` cycles."""
    n = repeats * period
    classes = np.full(n, ERR_NONE, dtype=np.int8)
    classes[::period] = ERR_SE_MAX
    instr = np.arange(n, dtype=np.int16) % period  # unique per position
    return synthetic_error_trace(
        classes, instr_sens=instr, instr_init=np.roll(instr, 1)
    )


def test_first_occurrence_missed_then_predicted():
    trace = _trace_with_repeating_error(repeats=10)
    result = DcsScheme("icslt", 32).simulate(trace)
    assert result.errors_total == 10
    assert result.errors_missed == 1  # only the learning occurrence
    assert result.errors_predicted == 9
    assert result.unique_instances == 1
    assert result.prediction_accuracy == pytest.approx(0.9)


def test_penalty_accounting_math():
    pipeline = PipelineConfig(depth=11)
    trace = _trace_with_repeating_error(repeats=10)
    result = DcsScheme("icslt", 32, pipeline=pipeline).simulate(trace)
    # 1 flush (11) + 9 predicted stalls (1 each); the non-errant cycles of
    # the same tag also hit the table -> false-positive stalls
    expected = 11 + result.stalls
    assert result.penalty_cycles == expected
    assert result.flushes == 1


def test_error_free_trace_costs_nothing():
    trace = synthetic_error_trace(np.zeros(50, dtype=np.int8))
    result = DcsScheme("icslt", 32).simulate(trace)
    assert result.penalty_cycles == 0
    assert result.errors_total == 0
    assert result.prediction_accuracy == 1.0


def test_false_positives_counted():
    # context errs once, then repeats clean: every later occurrence is a
    # false-positive stall
    classes = np.zeros(10, dtype=np.int8)
    classes[0] = ERR_SE_MAX
    trace = synthetic_error_trace(classes)  # same context every cycle
    result = DcsScheme("icslt", 32).simulate(trace)
    assert result.errors_missed == 1
    assert result.false_positives == 9
    assert result.stalls == 9


def test_capacity_misses_with_tiny_table():
    # 8 distinct errant contexts cycling, table of 2 -> constant thrash
    n = 80
    classes = np.full(n, ERR_SE_MAX, dtype=np.int8)
    instr = (np.arange(n) % 8).astype(np.int16)
    trace = synthetic_error_trace(classes, instr_sens=instr, instr_init=instr)
    small = DcsScheme("icslt", 2).simulate(trace)
    large = DcsScheme("icslt", 32).simulate(trace)
    assert small.extra["capacity_misses"] > 0
    assert large.extra["capacity_misses"] == 0
    assert small.prediction_accuracy < large.prediction_accuracy


def test_dcs_only_handles_max_errors():
    classes = np.array([1, 1, 1, 1], dtype=np.int8)  # all SE_MIN
    trace = synthetic_error_trace(classes)
    result = DcsScheme("icslt", 32).simulate(trace)
    assert result.errors_total == 0  # blind to min violations
    assert result.flushes == 0


def test_variant_names_and_validation():
    assert DcsScheme("icslt").name == "DCS-ICSLT"
    assert DcsScheme("acslt").name == "DCS-ACSLT"
    with pytest.raises(ValueError):
        DcsScheme("bogus")


def test_acslt_variant_runs_and_matches_on_small_case():
    trace = _trace_with_repeating_error(repeats=6)
    icslt = DcsScheme("icslt", 32).simulate(trace)
    acslt = DcsScheme("acslt", 32, 16).simulate(trace)
    # with ample capacity both variants behave identically
    assert icslt.errors_predicted == acslt.errors_predicted
    assert icslt.penalty_cycles == acslt.penalty_cycles


def test_owm_distinguishes_tags():
    """Identical opcodes with different OWM must be distinct error tags."""
    n = 20
    classes = np.zeros(n, dtype=np.int8)
    classes[0] = ERR_SE_MAX  # errs with OWM set
    owm = np.zeros(n, dtype=bool)
    owm[0] = True
    trace = synthetic_error_trace(classes, owm=owm)
    result = DcsScheme("icslt", 32).simulate(trace)
    # the later (OWM reset) occurrences are different tags: no stalls
    assert result.false_positives == 0
    assert result.stalls == 0


def test_result_metadata(error_trace16):
    result = DcsScheme("icslt", 128).simulate(error_trace16)
    assert result.scheme == "DCS-ICSLT"
    assert result.benchmark == "mcf"
    assert result.base_cycles == len(error_trace16)
    assert 0.0 <= result.prediction_accuracy <= 1.0
    assert result.total_cycles == result.base_cycles + result.penalty_cycles
