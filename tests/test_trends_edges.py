"""Edge-case tests for the trend engine (:mod:`repro.obs.trends`).

The happy paths live in ``test_ledger.py``; here we pin the behaviours
that only bite on degenerate inputs: histories shorter than the drift
window's ``min_history``, all-identical series (MAD collapses to 0),
and NaN / missing metric values arriving from partial telemetry.
"""

from __future__ import annotations

import math

import pytest

from repro.obs import trends
from repro.obs.ledger import LEDGER_VERSION


def make_record(run_id="run", **counters):
    return {
        "version": LEDGER_VERSION,
        "run_id": run_id,
        "counters": dict(counters),
    }


# ----------------------------------------------------------------------
# histories shorter than the window
# ----------------------------------------------------------------------


def test_drift_needs_two_records_at_all():
    assert trends.detect_drift([]) == []
    assert trends.detect_drift([make_record(metric=1.0)]) == []


def test_drift_skips_metrics_below_min_history():
    # three records = two prior points < min_history(3): nothing scored
    records = [make_record(run_id=f"r{i}", metric=float(i)) for i in range(3)]
    assert trends.detect_drift(records) == []
    # one more record crosses the threshold and the metric is scored
    records.append(make_record(run_id="r3", metric=3.0))
    findings = trends.detect_drift(records)
    assert [f["metric"] for f in findings] == ["counter.metric"]


def test_drift_window_one_is_degenerate_but_defined():
    # window=1 leaves a single prior point per score once min_history
    # allows any scoring at all; min_history still gates it off.
    records = [make_record(run_id=f"r{i}", metric=5.0) for i in range(4)]
    assert trends.detect_drift(records, window=1) == []


def test_metric_appearing_mid_history_waits_for_its_own_history():
    # 'late' only exists in the last two records: 1 prior point < 3
    records = [make_record(run_id=f"r{i}", metric=1.0) for i in range(4)]
    records.append(make_record(run_id="r4", metric=1.0, late=7.0))
    records.append(make_record(run_id="r5", metric=1.0, late=9.0))
    names = [f["metric"] for f in trends.detect_drift(records)]
    assert "counter.late" not in names
    assert "counter.metric" in names


# ----------------------------------------------------------------------
# all-identical series: MAD == 0
# ----------------------------------------------------------------------


def test_identical_series_never_drifts_and_scores_zero():
    records = [make_record(run_id=f"r{i}", metric=42.0) for i in range(8)]
    findings = trends.detect_drift(records)
    assert findings and all(not f["drifted"] for f in findings)
    assert all(f["z"] == 0.0 for f in findings)


def test_any_jump_off_identical_series_is_infinite_z():
    records = [make_record(run_id=f"r{i}", metric=42.0) for i in range(8)]
    records[-1] = make_record(run_id="spike", metric=42.0000001)
    (finding,) = trends.detect_drift(records)
    assert finding["drifted"]
    assert math.isinf(finding["z"])


def test_mad_zero_semantics_direct():
    window = [7.0] * 5
    assert trends.mad(window) == 0.0
    assert trends.robust_z(7.0, window) == 0.0
    assert trends.robust_z(7.0 + 1e-9, window) == math.inf


# ----------------------------------------------------------------------
# NaN / missing metric values
# ----------------------------------------------------------------------


def test_flatten_drops_nan_inf_and_non_numeric():
    record = make_record(
        good=1.5, bad_nan=math.nan, bad_inf=math.inf, bad_bool=True, bad_str="x"
    )
    flat = trends.flatten(record)
    assert flat["counter.good"] == 1.5
    assert not any(name.startswith("counter.bad") for name in flat)


def test_nan_values_do_not_poison_drift_detection():
    records = [
        make_record(run_id=f"r{i}", metric=10.0, flaky=math.nan) for i in range(8)
    ]
    findings = trends.detect_drift(records)
    names = [f["metric"] for f in findings]
    assert "counter.flaky" not in names  # dropped at flatten, not scored as 0
    assert "counter.metric" in names
    assert all(not f["drifted"] for f in findings)


def test_metric_missing_from_some_records_uses_present_values_only():
    # 'gappy' is absent (not zero) in half the records; history must be
    # the present values, so an unchanged value scores clean.
    records = []
    for i in range(8):
        extra = {"gappy": 3.0} if i % 2 == 0 else {}
        records.append(make_record(run_id=f"r{i}", metric=1.0, **extra))
    findings = {f["metric"]: f for f in trends.detect_drift(records)}
    gappy = findings.get("counter.gappy")
    if gappy is not None:  # enough history to score: must be clean
        assert not gappy["drifted"]
        assert gappy["z"] == 0.0


def test_diff_records_reports_nan_as_missing_not_changed():
    a = make_record(run_id="a", metric=1.0, flaky=math.nan)
    b = make_record(run_id="b", metric=1.0, flaky=2.0)
    diff = trends.diff_records(a, b)
    assert diff["only_in_b"] == ["counter.flaky"]  # NaN side dropped
    assert diff["changed"] == {}


def test_median_empty_raises():
    with pytest.raises(ValueError):
        trends.median([])
