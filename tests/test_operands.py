"""Unit and property tests for OWM / operand-size classification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.operands import operand_size_class, owm_flag, significant_width


def test_significant_width_examples():
    assert significant_width(0) == 0
    assert significant_width(1) == 1
    assert significant_width(0x8000) == 16
    assert significant_width(0xFFFF) == 16
    assert significant_width(0x10000) == 17


def test_significant_width_rejects_negative():
    with pytest.raises(ValueError):
        significant_width(-1)


@settings(max_examples=100, deadline=None)
@given(value=st.integers(0, 2**32 - 1))
def test_size_class_matches_significant_width(value):
    assert operand_size_class(value, 32) == (significant_width(value) > 16)


def test_owm_set_when_either_operand_high():
    width = 32
    assert owm_flag(0x10000, 0, width) is True
    assert owm_flag(0, 0x10000, width) is True
    assert owm_flag(0xFFFF, 0xFFFF, width) is False
    assert owm_flag(0, 0, width) is False


@settings(max_examples=60, deadline=None)
@given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
def test_owm_is_or_of_size_classes(a, b):
    expected = operand_size_class(a, 32) or operand_size_class(b, 32)
    assert owm_flag(a, b, 32) == expected


def test_vectorised_owm():
    a = np.array([0, 0x10000, 5], dtype=np.uint64)
    b = np.array([0, 0, 0x20000], dtype=np.uint64)
    flags = owm_flag(a, b, 32)
    assert flags.tolist() == [False, True, True]


def test_vectorised_size_class():
    values = np.array([0, 0xFFFF, 0x10000, 0xFFFFFFFF], dtype=np.uint64)
    classes = operand_size_class(values, 32)
    assert classes.tolist() == [False, False, True, True]


def test_boundary_exactly_half_width():
    # leftmost set bit at position width/2 + 1 -> "high"
    assert operand_size_class(1 << 16, 32) is True
    assert operand_size_class((1 << 16) - 1, 32) is False
    assert operand_size_class(1 << 8, 16) is True


def test_narrow_width():
    assert operand_size_class(4, 4) is True  # leftmost bit at pos 3 of 4
    assert operand_size_class(3, 4) is False  # significant width 2 = half
    assert operand_size_class(1, 4) is False
