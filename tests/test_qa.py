"""Tests for the generative QA subsystem (:mod:`repro.qa`).

The subsystem's own guarantees are what's under test here: campaign
determinism (budget is a planning input, not a stopwatch), greedy
shrinking to a stable minimum, artifact round-trips through JSON, the
seed corpus staying green, the mutation self-test killing every
planted defect without false alarms, and the seed-hygiene lint.
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.qa import corpus as qa_corpus
from repro.qa.engine import fuzz_oracle, plan_rounds, run_campaign, run_check
from repro.qa.gen import Param, case_rng, case_seed, draw_case, validate_case
from repro.qa.mutants import MUTANTS, run_mutation_test
from repro.qa.oracles import ORACLES, get_oracle
from repro.qa.shrink import shrink_case

REPO = Path(__file__).resolve().parent.parent
FAST_ORACLES = ["classify_partition", "scheme_learning", "trends_invariants"]


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------


def test_param_draw_in_range_and_validation():
    p = Param(3, 9)
    rng_values = {p.draw(case_rng({"s": i})) for i in range(50)}
    assert rng_values <= set(range(3, 10))
    assert p.clamp(99) == 9 and p.clamp(-1) == 3
    with pytest.raises(ValueError):
        Param(5, 4)


def test_draw_case_is_deterministic_and_name_sorted():
    params = {"b": Param(0, 100), "a": Param(0, 100)}
    seed = case_seed(0, "oracle", 7)
    assert draw_case(params, seed) == draw_case(params, seed)
    # insertion order must not matter
    flipped = {"a": Param(0, 100), "b": Param(0, 100)}
    assert draw_case(params, seed) == draw_case(flipped, seed)


def test_validate_case_rejects_unknown_missing_and_out_of_range():
    params = {"n": Param(1, 10)}
    assert validate_case(params, {"n": 5}) == {"n": 5}
    with pytest.raises(ValueError):
        validate_case(params, {"n": 5, "extra": 1})
    with pytest.raises(ValueError):
        validate_case(params, {})
    with pytest.raises(ValueError):
        validate_case(params, {"n": 11})


def test_case_rng_depends_on_case_contents_not_identity():
    a = case_rng({"x": 1, "y": 2}).integers(0, 1 << 30)
    b = case_rng({"y": 2, "x": 1}).integers(0, 1 << 30)
    c = case_rng({"x": 1, "y": 3}).integers(0, 1 << 30)
    assert a == b
    assert a != c


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------


def test_shrink_reaches_the_minimal_failing_corner():
    params = {"n": Param(1, 100), "m": Param(0, 50)}
    shrunk, evals = shrink_case(
        {"n": 80, "m": 33},
        params,
        lambda case: case["n"] >= 10 and case["m"] >= 5,
    )
    assert shrunk == {"n": 10, "m": 5}
    assert evals > 0


def test_shrink_is_deterministic_and_respects_budget():
    params = {"n": Param(1, 1 << 20)}
    first = shrink_case({"n": 1 << 19}, params, lambda c: c["n"] % 7 == 0)
    second = shrink_case({"n": 1 << 19}, params, lambda c: c["n"] % 7 == 0)
    assert first == second
    _, evals = shrink_case({"n": 1 << 19}, params, lambda c: c["n"] % 7 == 0, max_evals=5)
    assert evals <= 5


# ----------------------------------------------------------------------
# planning and campaigns
# ----------------------------------------------------------------------


def test_plan_rounds_is_arithmetic_in_the_budget():
    small = plan_rounds(5.0)
    large = plan_rounds(120.0)
    assert set(small) == set(ORACLES)
    assert all(large[name] >= small[name] for name in small)
    assert small["parallel_vs_serial"] == 0  # deep tier gated off
    assert large["parallel_vs_serial"] >= 1
    assert plan_rounds(120.0, include_deep=False)["parallel_vs_serial"] == 0
    with pytest.raises(ValueError):
        plan_rounds(0.0)
    with pytest.raises(KeyError):
        plan_rounds(10.0, ["no_such_oracle"])


def test_campaign_is_deterministic_across_invocations():
    a = run_campaign(0, 4.0, oracle_names=FAST_ORACLES)
    b = run_campaign(0, 4.0, oracle_names=FAST_ORACLES)
    assert a.as_dict() == b.as_dict()
    assert a.as_dict()["failed_oracles"] == []
    assert a.total_cases > 0


def test_campaign_seed_changes_the_cases():
    o = get_oracle("classify_partition")
    cases_a = [draw_case(o.params, case_seed(0, o.name, i)) for i in range(5)]
    cases_b = [draw_case(o.params, case_seed(1, o.name, i)) for i in range(5)]
    assert cases_a != cases_b


def test_failing_oracle_produces_shrunk_replayable_artifact(tmp_path):
    # Plant a real defect, let the fuzzer find/shrink it, then replay
    # the artifact: same oracle, same case, same verdict.
    mutant = MUTANTS["classify-drop-ce"]
    with mutant.applied():
        report = run_campaign(
            0,
            6.0,
            oracle_names=["classify_partition"],
            artifact_dir=str(tmp_path),
        )
        outcome = report.outcomes["classify_partition"]
        assert outcome.failure is not None
        path = Path(outcome.failure["artifact_path"])
        assert path.exists()
        artifact = qa_corpus.load_artifact(path)
        # shrunk case is minimal-ish: strictly no larger than the original
        original = outcome.failure.get("original_case", artifact["case"])
        assert all(artifact["case"][k] <= original[k] for k in artifact["case"])
        assert qa_corpus.replay(artifact)  # still fails under the mutant
    assert qa_corpus.replay(artifact) == []  # fixed once the defect is gone


def test_oracle_exception_is_a_failure_not_a_crash():
    oracle = get_oracle("classify_partition")
    broken = type(oracle)(
        name=oracle.name,
        description=oracle.description,
        params=oracle.params,
        check=lambda case: (_ for _ in ()).throw(RuntimeError("boom")),
    )
    violations = run_check(broken, {"n": 1, "seed": 0})
    assert violations and "RuntimeError" in violations[0]
    outcome = fuzz_oracle(broken, 0, 2)
    assert outcome.failure is not None


# ----------------------------------------------------------------------
# artifacts and corpus
# ----------------------------------------------------------------------


def test_artifact_write_is_atomic_canonical_and_validated(tmp_path):
    artifact = qa_corpus.make_artifact(
        "classify_partition", {"n": 3, "seed": 5}, ["v"], engine_seed=0
    )
    path = qa_corpus.write_artifact(tmp_path, artifact)
    assert path.name.startswith("classify_partition-")
    assert not list(tmp_path.glob("*.tmp"))
    assert qa_corpus.load_artifact(path)["case"] == {"n": 3, "seed": 5}
    # same content -> same filename (content-addressed, no duplicates)
    assert qa_corpus.write_artifact(tmp_path, artifact) == path
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_load_artifact_rejects_malformed_files(tmp_path):
    bad_version = tmp_path / "v.json"
    bad_version.write_text(json.dumps({"version": 99, "oracle": "x", "case": {}}))
    with pytest.raises(ValueError):
        qa_corpus.load_artifact(bad_version)
    bad_oracle = tmp_path / "o.json"
    bad_oracle.write_text(json.dumps({"version": 1, "oracle": "nope", "case": {}}))
    with pytest.raises(KeyError):
        qa_corpus.load_artifact(bad_oracle)
    bad_case = tmp_path / "c.json"
    bad_case.write_text(
        json.dumps(
            {"version": 1, "oracle": "classify_partition", "case": {"n": 10_000, "seed": 0}}
        )
    )
    with pytest.raises(ValueError):
        qa_corpus.load_artifact(bad_case)


def test_seed_corpus_is_deterministic_and_green(tmp_path):
    written = qa_corpus.seed_corpus(tmp_path, engine_seed=0, per_oracle=1)
    fast = [o for o in ORACLES.values() if o.tier == "fast"]
    assert len(written) == len(fast)
    report = qa_corpus.replay_corpus(tmp_path)
    assert report["regressed"] == []
    again = qa_corpus.seed_corpus(tmp_path, engine_seed=0, per_oracle=1)
    assert sorted(written) == sorted(again)  # content-addressed: no churn


def test_checked_in_corpus_replays_green():
    corpus_dir = REPO / "benchmarks" / "qa_corpus"
    # replay the cheap entries here; CI replays the full corpus
    cheap = [
        p
        for p in qa_corpus.corpus_paths(corpus_dir)
        if not p.name.startswith(("etrace_", "dta_vs_reference"))
    ]
    assert len(cheap) >= 10
    for path in cheap:
        artifact = qa_corpus.load_artifact(path)
        assert qa_corpus.replay(artifact) == [], path.name


# ----------------------------------------------------------------------
# mutation self-test
# ----------------------------------------------------------------------


def test_mutant_patching_is_scoped_and_reversible():
    import repro.timing.choke as choke

    original = choke.analyze_choke_event
    with MUTANTS["choke-event-dropped"].applied():
        assert choke.analyze_choke_event is not original
    assert choke.analyze_choke_event is original


def test_mutation_selftest_kills_every_mutant_without_false_alarms():
    report = run_mutation_test(seed=0)
    assert report["baseline_clean"], report["baseline_violation"]
    assert len(report["mutants"]) >= 8  # the acceptance floor
    assert report["survivors"] == []
    assert report["ok"]
    # every kill names the oracle and the violation that did it
    for result in report["mutants"].values():
        assert result["kill"]["oracle"] in result["oracles"]
        assert result["kill"]["violation"]


def test_mutation_selftest_subset_and_unknown_mutant():
    report = run_mutation_test(seed=0, mutant_names=["classify-drop-ce"])
    assert list(report["mutants"]) == ["classify-drop-ce"]
    with pytest.raises(KeyError):
        run_mutation_test(mutant_names=["not-a-mutant"])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def run_cli(argv, capsys):
    from repro.experiments.__main__ import main

    code = main(argv)
    return code, capsys.readouterr().out


def test_cli_fuzz_and_list(capsys):
    argv = (
        "qa fuzz --budget-s 3 --seed 0 --no-deep "
        "--oracle classify_partition --oracle scheme_learning --format json"
    ).split()
    code, out = run_cli(argv, capsys)
    assert code == 0
    doc = json.loads(out)
    assert doc["failed_oracles"] == []
    code, out = run_cli(["qa", "list"], capsys)
    assert code == 0
    assert "classify_partition" in out and "checkpoint-skip-checksum" in out


def test_cli_mutate_single(capsys):
    code, out = run_cli(["qa", "mutate", "--seed", "0", "--mutant", "classify-drop-ce"], capsys)
    assert code == 0
    assert "1/1 mutant(s) killed" in out


def test_cli_corpus_seed_and_replay(tmp_path, capsys):
    code, _ = run_cli(["qa", "corpus", "seed", "--dir", str(tmp_path), "--per-oracle", "1"], capsys)
    assert code == 0
    code, out = run_cli(["qa", "corpus", "replay", "--dir", str(tmp_path), "-q"], capsys)
    assert code == 0
    assert "0 regressed" in out
    # a corpus entry that starts failing must flip the exit code
    entry = sorted(tmp_path.glob("classify_partition-*.json"))[0]
    with MUTANTS["classify-drop-ce"].applied():
        code, _ = run_cli(["qa", "corpus", "replay", "--dir", str(tmp_path), "-q"], capsys)
    assert code == 1
    assert entry.exists()


def test_cli_repro_exit_codes(tmp_path, capsys):
    artifact = qa_corpus.make_artifact("classify_partition", {"n": 4, "seed": 1}, ["recorded"])
    path = qa_corpus.write_artifact(tmp_path, artifact)
    code, out = run_cli(["qa", "repro", str(path)], capsys)
    assert code == 0  # healthy tree: the recorded failure is fixed
    assert "fixed" in out
    with MUTANTS["classify-drop-ce"].applied():
        code, out = run_cli(["qa", "repro", str(path)], capsys)
    assert code == 1
    assert "REPRODUCES" in out


def test_cli_empty_corpus_is_an_error(tmp_path, capsys):
    code, _ = run_cli(["qa", "corpus", "replay", "--dir", str(tmp_path)], capsys)
    assert code == 1


# ----------------------------------------------------------------------
# seed-hygiene lint
# ----------------------------------------------------------------------


def load_check_regression():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO / "benchmarks" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_lint_flags_builtin_hash_calls_only(tmp_path):
    cr = load_check_regression()
    (tmp_path / "dirty.py").write_text(
        '"""Uses hash() in a docstring, which is fine."""\n'
        "def f(x):\n"
        "    return hash((1, x)) % 64\n"
    )
    (tmp_path / "clean.py").write_text(
        "import zlib\n"
        "def f(x):\n"
        "    h = {}.get('hash')\n"  # the name without a call is fine
        "    return zlib.crc32(repr(x).encode())\n"
    )
    findings = cr.lint_seed_hygiene(str(tmp_path))
    assert len(findings) == 1
    assert "dirty.py:3" in findings[0]


def test_lint_cli_mode_passes_on_this_repo():
    cmd = [
        sys.executable,
        str(REPO / "benchmarks" / "check_regression.py"),
        "--lint",
        "--lint-root",
        str(REPO / "src"),
    ]
    result = subprocess.run(cmd, capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
    assert "no builtin hash()" in result.stdout
