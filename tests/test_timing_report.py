"""Unit tests for the text timing-report utility."""

import numpy as np
import pytest

from repro.gates.builder import NetlistBuilder
from repro.timing.report import timing_report


def _reportable():
    builder = NetlistBuilder()
    a = builder.input("a")
    b = builder.input("b")
    slow = builder.buf(builder.buf(builder.buf(a)))
    fast = builder.buf(b)
    builder.output("slow_out", builder.and_(slow, fast))
    builder.output("fast_out", builder.buf(b))
    netlist = builder.build()
    delays = np.zeros(netlist.num_nodes)
    for node in range(netlist.num_nodes):
        if netlist.fanins(node):
            delays[node] = 10.0
    return netlist, delays


def test_report_contains_endpoints_and_summary():
    netlist, delays = _reportable()
    text = timing_report(netlist, delays, clock_period=100.0)
    assert "slow_out" in text
    assert "Summary:" in text
    assert "MET" in text
    assert "worst arrival 40.0" in text


def test_violation_flagged():
    netlist, delays = _reportable()
    text = timing_report(netlist, delays, clock_period=30.0)
    assert "VIOLATED" in text
    assert "1/" in text or "2/" in text  # violating endpoints counted


def test_num_paths_limits_endpoints():
    netlist, delays = _reportable()
    text = timing_report(netlist, delays, clock_period=100.0, num_paths=1)
    assert "slow_out" in text
    assert "fast_out" not in text


def test_choke_annotation_with_nominal_reference():
    netlist, nominal = _reportable()
    delays = nominal.copy()
    # make one gate on the slow path a 5x choke
    choke_node = 4  # a BUF on the slow branch
    delays[choke_node] = 50.0
    text = timing_report(
        netlist, delays, clock_period=200.0, nominal_delays=nominal
    )
    assert "choke gate" in text
    assert "5.0x nominal" in text


def test_fast_gate_annotation():
    netlist, nominal = _reportable()
    delays = nominal.copy()
    delays[4] = 2.0
    text = timing_report(
        netlist, delays, clock_period=200.0, nominal_delays=nominal
    )
    assert "fast gate" in text


def test_validation():
    netlist, delays = _reportable()
    with pytest.raises(ValueError):
        timing_report(netlist, delays, clock_period=0.0)
    with pytest.raises(ValueError):
        timing_report(netlist, delays, clock_period=10.0, num_paths=0)


def test_report_on_fabricated_ex_stage(stage16_ntc, chip16):
    text = timing_report(
        stage16_ntc.netlist,
        chip16.delays,
        clock_period=stage16_ntc.clock_period,
        num_paths=2,
        nominal_delays=chip16.nominal_delays,
    )
    assert "Timing report" in text
    assert "result[" in text
