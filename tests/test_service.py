"""Tests for the simulation service: lifecycle, dedup, SSE, shutdown.

Covers the service-layer guarantees end to end over real HTTP (the
:class:`~repro.service.server.ServiceThread` harness boots the asyncio
server on an ephemeral port; every request goes through
:class:`~repro.service.client.ServiceClient`, no shortcuts through the
job table):

* submit -> queued -> running -> done lifecycle, and the core
  invariant — the fetched report is **byte-identical** to the CLI's
  ``--out`` for the same request;
* request-digest dedup (hit serves recorded bytes without recompute,
  format/id changes miss) and single-flight coalescing of concurrent
  duplicate submissions;
* SSE progress streaming: replay ordering, live tailing, truncated-tail
  tolerance, dedup jobs replaying the original run;
* malformed requests answered with 4xx, never a hang or a 500;
* graceful shutdown mid-job (the running job drains, queued jobs are
  blamed ``kind="shutdown"``) and boot recovery (jobs left in flight by
  a dead process are blamed ``kind="lost"``) — no job is ever silently
  lost.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.experiments.config import FAST_CONFIG
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobTable, normalize_request, request_digest
from repro.service.server import ServiceThread

#: the cheap request used throughout: fig3_4 at 200 cycles is ~0.6 s.
REQUEST = {"experiments": ["fig3_4"], "fast": True, "cycles": 200,
           "format": "json"}


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    svc = ServiceThread(str(tmp_path_factory.mktemp("service-state")))
    try:
        yield svc
    finally:
        svc.stop()


@pytest.fixture(scope="module")
def client(service):
    return ServiceClient(port=service.port)


def submit_and_wait(client, **overrides):
    payload = {**REQUEST, **overrides}
    doc = client.submit(
        payload["experiments"], fast=payload["fast"], fmt=payload["format"],
        cycles=payload.get("cycles"), width=payload.get("width"),
    )
    return client.wait(doc["id"], timeout_s=120), doc["disposition"]


# ----------------------------------------------------------------------
# lifecycle + byte identity
# ----------------------------------------------------------------------


def test_healthz_and_stats_shape(client):
    health = client.healthz()
    assert health["status"] == "ok" and health["uptime_s"] >= 0
    stats = client.stats()
    assert set(stats) == {"counters", "states"}
    assert "dedup_hits" in stats["counters"]


def test_submit_lifecycle_to_done(client):
    doc, disposition = submit_and_wait(client)
    assert disposition in ("queued", "dedup_hit")  # first caller queues
    assert doc["state"] == "done"
    assert doc["summary"] == {"ok": 1, "total": 1}
    assert doc["error"] is None
    assert doc["created_ts"] <= doc["finished_ts"]
    listed = {j["id"]: j["state"] for j in client.jobs()}
    assert listed[doc["id"]] == "done"


def test_report_byte_identical_to_cli(client, tmp_path):
    """THE invariant: service bytes == CLI ``--out`` bytes."""
    from repro.experiments.__main__ import main

    doc, _ = submit_and_wait(client)
    served = client.report(doc["id"])

    out = tmp_path / "cli.json"
    assert main(["fig3_4", "--fast", "--cycles", "200",
                 "--format", "json", "--out", str(out)]) == 0
    assert served == out.read_bytes()


def test_report_byte_identical_to_cli_text_format(client, tmp_path):
    from repro.experiments.__main__ import main

    doc, _ = submit_and_wait(client, format="text")
    served = client.report(doc["id"])
    out = tmp_path / "cli.txt"
    assert main(["fig3_4", "--fast", "--cycles", "200",
                 "--format", "text", "--out", str(out)]) == 0
    assert served == out.read_bytes()


# ----------------------------------------------------------------------
# dedup + single flight
# ----------------------------------------------------------------------


def test_dedup_hit_serves_recorded_bytes_without_recompute(client):
    first, _ = submit_and_wait(client)
    executed_before = client.stats()["counters"]["executed"]
    hits_before = client.stats()["counters"]["dedup_hits"]

    second = client.submit(["fig3_4"], fast=True, fmt="json", cycles=200)
    assert second["disposition"] == "dedup_hit"
    assert second["state"] == "done"  # born done: no recompute
    assert second["id"] != first["id"]
    assert second["dedup_of"] == (first["dedup_of"] or first["id"])

    counters = client.stats()["counters"]
    assert counters["executed"] == executed_before  # nothing recomputed
    assert counters["dedup_hits"] == hits_before + 1
    assert client.report(second["id"]) == client.report(first["id"])


def test_dedup_misses_on_different_format(client):
    json_doc, _ = submit_and_wait(client)
    csv_doc = client.submit(["fig3_4"], fast=True, fmt="csv", cycles=200)
    assert csv_doc["digest"] != json_doc["digest"]  # format is in the key
    done = client.wait(csv_doc["id"], timeout_s=120)
    assert done["state"] == "done"


def test_dedup_misses_on_different_experiment_list(client):
    submit_and_wait(client)
    doc = client.submit(["fig3_4", "tab3_ovh"], fast=True, fmt="json",
                        cycles=200)
    assert doc["disposition"] == "queued"
    done = client.wait(doc["id"], timeout_s=120)
    assert done["state"] == "done" and done["summary"]["total"] == 2


def test_concurrent_duplicate_submissions_coalesce(client):
    """Single flight: N racing identical submissions, ONE execution."""
    cycles = 444  # unique request: nothing in the store yet
    results = []

    def post():
        results.append(
            client.submit(["fig3_4"], fast=True, fmt="json", cycles=cycles)
        )

    threads = [threading.Thread(target=post) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    digests = {doc["digest"] for doc in results}
    assert len(digests) == 1  # same request -> same digest, all 4
    client.wait(results[0]["id"], timeout_s=120)
    # exactly one job actually executed this digest; everyone else
    # joined it in flight or reused its bytes
    executed = [
        j for j in client.jobs()
        if j["digest"] in digests and j["dedup_of"] is None
    ]
    assert len(executed) == 1
    assert sum(1 for doc in results if doc["disposition"] == "queued") == 1
    assert all(doc["disposition"] in ("queued", "joined", "dedup_hit")
               for doc in results)


def test_request_digest_covers_ids_and_format():
    config = FAST_CONFIG
    base = request_digest(config, ("fig3_4",), "json")
    assert request_digest(config, ("fig3_4",), "text") != base
    assert request_digest(config, ("fig3_4", "tab3_ovh"), "json") != base
    assert request_digest(config, ("fig3_4",), "json") == base


def test_normalize_request_is_spelling_insensitive():
    a = normalize_request({"experiments": ["fig3_4"], "cycles": 200})
    b = normalize_request({"cycles": 200, "fast": True,
                           "experiments": ["fig3_4"], "format": "json"})
    assert a == b
    config, ids, _ = normalize_request({"experiments": ["all"]})
    assert len(ids) > 10  # "all" expands to the full registry


# ----------------------------------------------------------------------
# SSE progress stream
# ----------------------------------------------------------------------


def test_sse_replay_is_ordered_and_terminates(client):
    doc, _ = submit_and_wait(client)
    frames = list(client.events(doc["id"], timeout_s=60))
    assert "__done__" in frames[-1]
    assert frames[-1]["__done__"]["state"] == "done"
    kinds = [f["kind"] for f in frames[:-1]]
    assert kinds[0] == "run_start"
    assert kinds[-1] == "run_end"
    assert "result" in kinds
    stamps = [f["ts"] for f in frames[:-1]]
    assert stamps == sorted(stamps)  # replay preserves file order


def test_sse_streams_live_during_the_run(client):
    doc = client.submit(["fig3_4"], fast=True, fmt="json", cycles=555)
    # attach immediately — the stream must tail the run as it happens
    frames = list(client.events(doc["id"], timeout_s=120))
    assert "__done__" in frames[-1]
    kinds = [f.get("kind") for f in frames[:-1]]
    assert "run_start" in kinds and "run_end" in kinds


def test_sse_tolerates_truncated_tail(service, client):
    doc, _ = submit_and_wait(client)
    source = doc["dedup_of"] or doc["id"]
    events_path = service.table.events_path(source)
    original = events_path.read_bytes()
    try:
        with open(events_path, "ab") as handle:
            handle.write(b'not json at all\n{"cut mid-app')  # crashed writer
        frames = list(client.events(doc["id"], timeout_s=60))
        assert "__done__" in frames[-1]  # still terminates cleanly
        assert all("kind" in f for f in frames[:-1])  # only parseable events
    finally:
        events_path.write_bytes(original)


def test_sse_for_dedup_job_replays_the_original_run(client):
    first, _ = submit_and_wait(client)
    second = client.submit(["fig3_4"], fast=True, fmt="json", cycles=200)
    assert second["disposition"] == "dedup_hit"
    frames = list(client.events(second["id"], timeout_s=60))
    kinds = [f.get("kind") for f in frames[:-1]]
    assert "run_start" in kinds  # the original execution's stream
    assert frames[-1]["__done__"]["id"] == second["id"]


# ----------------------------------------------------------------------
# malformed requests -> 4xx
# ----------------------------------------------------------------------


@pytest.mark.parametrize("body", [
    b"not json{",
    b'"a bare string"',
    b"{}",
    b'{"experiments": []}',
    b'{"experiments": ["no_such_experiment"]}',
    b'{"experiments": ["fig3_4"], "format": "yaml"}',
    b'{"experiments": ["fig3_4"], "cycles": "many"}',
    b'{"experiments": ["fig3_4"], "cycles": 1}',
    b'{"experiments": ["fig3_4"], "surprise": 1}',
    b'{"experiments": [42]}',
])
def test_malformed_submissions_get_400(client, body):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", client.port, timeout=30)
    try:
        conn.request("POST", "/jobs", body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        doc = json.loads(response.read().decode())
    finally:
        conn.close()
    assert response.status == 400
    assert doc["error"]


def test_unknown_job_and_path_get_404(client):
    with pytest.raises(ServiceError) as exc:
        client.job("j99999")
    assert exc.value.status == 404
    with pytest.raises(ServiceError) as exc:
        client._json("GET", "/no/such/path")
    assert exc.value.status == 404


def test_wrong_method_gets_405(client):
    with pytest.raises(ServiceError) as exc:
        client._json("POST", "/stats", {"x": 1})
    assert exc.value.status == 405


# ----------------------------------------------------------------------
# ledger / dashboard / why over HTTP
# ----------------------------------------------------------------------


def test_ledger_records_service_runs(client):
    submit_and_wait(client)
    doc = client.ledger()
    assert doc["total"] >= 1
    assert all(r["notes"].startswith("service:") for r in doc["records"])
    assert client.ledger(limit=1)["records"][-1] == doc["records"][-1]


def test_ledger_diff_over_http(client):
    submit_and_wait(client)
    submit_and_wait(client, format="csv")
    result = client.ledger_diff("0", "-1")
    assert {"run_a", "run_b", "changed", "counter_drift"} <= set(result)
    with pytest.raises(ServiceError) as exc:
        client.ledger_diff("zzz", "-1")
    assert exc.value.status == 404


def test_dashboard_served_as_html(client):
    submit_and_wait(client)
    status, payload, content_type = client._request("GET", "/dashboard")
    assert status == 200
    assert content_type.startswith("text/html")
    assert b"<html" in payload or b"<!doctype" in payload.lower()


def test_why_over_http(client):
    doc, _ = submit_and_wait(client)
    result = client.why(doc["id"], cycle=5)
    assert result["experiment"] == "fig3_4"
    assert result["lines"] and "blame" in result["lines"][0]
    with pytest.raises(ServiceError) as exc:  # cycle is mandatory
        client._json("GET", f"/jobs/{doc['id']}/why")
    assert exc.value.status == 400
    with pytest.raises(ServiceError) as exc:  # foreign experiment
        client.why(doc["id"], cycle=5, experiment="fig4_8")
    assert exc.value.status == 400


# ----------------------------------------------------------------------
# failure containment, shutdown, recovery — no job silently lost
# ----------------------------------------------------------------------


def test_broken_machinery_blames_the_job(tmp_path, monkeypatch):
    import repro.service.scheduler as scheduler_mod

    def explode(*_args, **_kwargs):
        raise RuntimeError("backend resolution broke")

    monkeypatch.setattr(scheduler_mod, "resolve_backend", explode)
    svc = ServiceThread(str(tmp_path))
    try:
        client = ServiceClient(port=svc.port)
        doc = client.submit(["fig3_4"], fast=True, fmt="json", cycles=200)
        done = client.wait(doc["id"], timeout_s=60)
        assert done["state"] == "failed"
        assert done["error"]["kind"] == "exception"
        assert done["error"]["error_type"] == "RuntimeError"
        assert "backend resolution broke" in done["error"]["message"]
        with pytest.raises(ServiceError) as exc:
            client.report(doc["id"])
        assert exc.value.status == 409  # failed, not merely pending
    finally:
        svc.stop()


def test_graceful_shutdown_drains_running_and_blames_queued(
    tmp_path, monkeypatch
):
    from repro.service.scheduler import JobRunner

    release = threading.Event()
    original = JobRunner._execute

    def slow_execute(self, job):
        release.wait(timeout=30)
        original(self, job)

    monkeypatch.setattr(JobRunner, "_execute", slow_execute)
    svc = ServiceThread(str(tmp_path))
    stopper = threading.Thread(target=svc.stop)
    try:
        client = ServiceClient(port=svc.port)
        running = client.submit(["fig3_4"], fast=True, fmt="json", cycles=200)
        queued = client.submit(["tab3_ovh"], fast=True, fmt="json", cycles=200)
        assert queued["disposition"] == "queued"
        # initiate the graceful shutdown while the first job is mid-run,
        # and only release the run once the stop is definitely underway —
        # so the second job is deterministically still queued at drain
        stopper.start()
        runner = svc.server.runner
        for _ in range(200):
            if runner._stopping.is_set():
                break
            time.sleep(0.05)
        assert runner._stopping.is_set()
        release.set()
    finally:
        release.set()
        stopper.join(timeout=120)
        svc.stop()  # idempotent no-op once the stopper finished

    drained = svc.table.get(running["id"])
    blamed = svc.table.get(queued["id"])
    assert drained.state == "done"  # the running job survived shutdown
    assert blamed.state == "failed"  # ... and the queued one was blamed,
    assert blamed.error["kind"] == "shutdown"  # never silently dropped
    assert blamed.error["error_type"] == "ServiceShutdown"


def test_boot_recovery_blames_jobs_lost_by_a_dead_process(tmp_path):
    table = JobTable(tmp_path)
    config, ids, fmt = normalize_request(REQUEST)
    job, disposition = table.submit(config, ids, fmt)
    assert disposition == "queued"
    table.mark_running(job.id)
    # simulate the process dying here: a fresh table folds the journal
    reborn = JobTable(tmp_path)
    recovered = reborn.get(job.id)
    assert recovered.state == "failed"
    assert recovered.error["kind"] == "lost"
    assert reborn.counters["recovered_lost"] == 1
    # the blame itself was journaled: a third boot sees a settled job
    third = JobTable(tmp_path)
    assert third.get(job.id).state == "failed"
    assert third.counters["recovered_lost"] == 0


def test_job_journal_tolerates_truncated_tail(tmp_path):
    table = JobTable(tmp_path)
    config, ids, fmt = normalize_request(REQUEST)
    job, _ = table.submit(config, ids, fmt)
    table.mark_running(job.id)
    table.mark_done(job.id, {"ok": 1, "total": 1})
    with open(table.path, "ab") as handle:
        handle.write(b'{"kind": "state", "cut mid')  # crashed appender
    reborn = JobTable(tmp_path)
    assert reborn.get(job.id).state == "done"  # history intact
    # and the next append repairs the fragment instead of extending it
    second, _ = reborn.submit(config, ids, "csv")
    assert JobTable(tmp_path).get(second.id) is not None
