"""Unit and property tests for the ALU: netlist vs reference semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.alu import CH3_OPS, AluOp, alu_reference, build_alu
from repro.timing.levelize import levelize
from repro.timing.logic_eval import evaluate_logic, output_words


@pytest.fixture(scope="module")
def alu8_pack():
    alu = build_alu(8)
    return alu, levelize(alu.netlist)


def _run(alu, circuit, op, a, b):
    inputs = alu.encode(op, a, b).reshape(-1, 1)
    values = evaluate_logic(circuit, inputs)
    return int(output_words(circuit, values)[0])


@settings(max_examples=150, deadline=None)
@given(
    op=st.sampled_from(list(AluOp)),
    a=st.integers(0, 255),
    b=st.integers(0, 255),
)
def test_alu_netlist_matches_reference(alu8_pack, op, a, b):
    alu, circuit = alu8_pack
    assert _run(alu, circuit, op, a, b) == alu_reference(op, a, b, 8)


@pytest.mark.parametrize("op", list(AluOp))
def test_each_op_on_corner_operands(alu8_pack, op):
    alu, circuit = alu8_pack
    for a, b in ((0, 0), (255, 255), (255, 0), (1, 128), (0x55, 0xAA)):
        assert _run(alu, circuit, op, a, b) == alu_reference(op, a, b, 8)


def test_ch3_ops_are_the_paper_characterisation_set():
    names = {op.name for op in CH3_OPS}
    assert names == {
        "ADD", "SUB", "MULT", "OR", "AND", "XOR", "LOAD", "ASR", "LSR",
        "ROR", "BUFFER",
    }
    assert len(CH3_OPS) == 11


def test_reference_semantics_spot_checks():
    assert alu_reference(AluOp.ADD, 200, 100, 8) == 44  # wraps mod 256
    assert alu_reference(AluOp.SUB, 5, 10, 8) == 251
    assert alu_reference(AluOp.MULT, 0xFF, 0xFF, 8) == (15 * 15)  # low nibbles
    assert alu_reference(AluOp.NOR, 0, 0, 8) == 255
    assert alu_reference(AluOp.ASR, 0x80, 1, 8) == 0xC0
    assert alu_reference(AluOp.ROR, 0x01, 1, 8) == 0x80
    assert alu_reference(AluOp.SLL, 0x81, 1, 8) == 0x02
    assert alu_reference(AluOp.BUFFER, 123, 7, 8) == 123
    assert alu_reference(AluOp.LOAD, 3, 4, 8) == 7


def test_reference_rejects_unknown_op():
    with pytest.raises(ValueError):
        alu_reference("nope", 1, 2, 8)


def test_build_rejects_bad_widths():
    for width in (0, 3, 6, 12):
        with pytest.raises(ValueError):
            build_alu(width)


def test_encode_shapes(alu8_pack):
    alu, _ = alu8_pack
    ops = np.array([int(AluOp.ADD), int(AluOp.XOR)])
    a = np.array([1, 2], dtype=np.uint64)
    b = np.array([3, 4], dtype=np.uint64)
    matrix = alu.encode_batch(ops, a, b)
    assert matrix.shape == (alu.num_inputs, 2)
    # one-hot select rows: exactly one select set per column
    select_rows = matrix[2 * alu.width :, :]
    assert (select_rows.sum(axis=0) == 1).all()


def test_encode_batch_length_mismatch_rejected(alu8_pack):
    alu, _ = alu8_pack
    with pytest.raises(ValueError):
        alu.encode_batch(np.array([1]), np.array([1, 2], dtype=np.uint64), np.array([3], dtype=np.uint64))


def test_input_ordering_is_a_then_b_then_selects(alu8_pack):
    alu, _ = alu8_pack
    netlist = alu.netlist
    names = [netlist.name_of(node) for node in netlist.input_ids]
    assert names[0] == "a[0]"
    assert names[alu.width] == "b[0]"
    assert names[2 * alu.width] == "sel_ADD"


def test_unit_outputs_recorded(alu8_pack):
    alu, _ = alu8_pack
    assert set(alu.unit_output_bits) == set(AluOp)
    for word in alu.unit_output_bits.values():
        assert len(word) == alu.width


def test_lookahead_variant_matches_reference():
    alu = build_alu(8, use_lookahead_adder=True)
    circuit = levelize(alu.netlist)
    for a, b in ((17, 200), (255, 1)):
        assert _run(alu, circuit, AluOp.ADD, a, b) == (a + b) & 0xFF
        assert _run(alu, circuit, AluOp.SUB, a, b) == (a - b) & 0xFF


def test_branch_pads_do_not_change_function():
    pads = {(AluOp.BUFFER, i): 3 for i in range(8)}
    sel_pads = {AluOp.BUFFER: 2}
    alu = build_alu(8, branch_pads=pads, sel_pads=sel_pads)
    assert len(alu.pad_gate_ids) == 8 * 3 + 2
    circuit = levelize(alu.netlist)
    for a in (0, 0xA5, 255):
        assert _run(alu, circuit, AluOp.BUFFER, a, 0) == a
        assert _run(alu, circuit, AluOp.ADD, a, 1) == (a + 1) & 0xFF


def test_wider_alu_matches_reference_spot(alu16):
    circuit = levelize(alu16.netlist)
    rng = np.random.default_rng(7)
    for _ in range(25):
        op = AluOp(int(rng.integers(len(AluOp))))
        a = int(rng.integers(0, 1 << 16))
        b = int(rng.integers(0, 1 << 16))
        assert _run(alu16, circuit, op, a, b) == alu_reference(op, a, b, 16)
