#!/usr/bin/env python3
"""Post-silicon choke characterisation of a fabricated chip.

The scenario from the paper's motivation (Section 3.2): a batch of
identical NTC chips comes back from the fab; each one hides a different
set of choke points that no design-time analysis could have predicted.
This script plays the role of the characterisation bench: it drives each
ALU operation with random operand vectors, finds the cycles whose
sensitised path exceeds the PV-free critical path, traces the choke
paths, and reports CDL / CGL per operation -- the raw material of the
paper's Fig. 3.2.

Run:  python examples/choke_characterization.py
"""

import numpy as np

from repro import NTC, build_alu, fabricate_chip
from repro.circuits.alu import CH3_OPS
from repro.experiments.charstudy import collect_choke_events, op_vector_stream
from repro.pv.delaymodel import nominal_gate_delays
from repro.timing.levelize import levelize
from repro.timing.sta import arrival_times


def main() -> None:
    width = 16
    alu = build_alu(width)
    circuit = levelize(alu.netlist)
    nominal = nominal_gate_delays(alu.netlist, NTC)
    arrivals = arrival_times(alu.netlist, nominal, "max")
    critical = max(float(arrivals[bit]) for bit in alu.output_bits)
    print(
        f"{width}-bit ALU: {alu.netlist.num_gates} gates, "
        f"PV-free critical path {critical:.0f} ps at {NTC}"
    )

    for chip_seed in (3, 9, 14):
        chip = fabricate_chip(alu.netlist, NTC, seed=chip_seed)
        print(
            f"\nchip #{chip_seed}: {len(chip.affected_ids)} strongly "
            f"PV-affected gates (worst slow ratio "
            f"{chip.delay_ratio().max():.1f}x)"
        )
        header = f"  {'op':8s} {'events':>6s} {'worst CDL%':>10s} {'min CGL%':>9s}"
        print(header)
        for op in CH3_OPS:
            rng = np.random.default_rng(1000 + int(op))
            inputs = op_vector_stream(alu, op, 120, rng)
            events = collect_choke_events(circuit, chip, inputs, critical)
            if not events:
                print(f"  {op.name:8s} {'-':>6s}")
                continue
            worst = max(events, key=lambda e: e.cdl_percent)
            smallest = min(events, key=lambda e: e.cgl_percent)
            print(
                f"  {op.name:8s} {len(events):6d} {worst.cdl_percent:10.1f} "
                f"{smallest.cgl_percent:9.3f}"
            )
        # show one concrete choke path
        for op in CH3_OPS:
            rng = np.random.default_rng(1000 + int(op))
            inputs = op_vector_stream(alu, op, 120, rng)
            events = collect_choke_events(circuit, chip, inputs, critical)
            if events:
                event = max(events, key=lambda e: e.cdl_percent)
                kinds = [
                    alu.netlist.kind(node).name for node in event.choke_gate_ids
                ]
                print(
                    f"  example: a {op.name} choke path of "
                    f"{len(event.path)} nodes, dominated by "
                    f"{event.num_choke_gates} PV-affected gate(s) {kinds} "
                    f"-> CDL {event.cdl_percent:.1f}%"
                )
                break


if __name__ == "__main__":
    main()
