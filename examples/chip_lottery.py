#!/usr/bin/env python3
"""The chip lottery: why choke mitigation must be learned per chip.

Fabricates a batch of identical NTC designs and shows how wildly the
choke signature varies across the batch -- error rates, the split of
maximum vs minimum timing violations, and the unique error instances a
DCS table would have to learn.  This is the paper's motivation for
*dynamic, adaptive* techniques: nothing about a specific chip's choke
population is knowable at design time.

Run:  python examples/chip_lottery.py
"""

from repro import BENCHMARKS, DcsScheme, NTC, build_error_trace, build_ex_stage, generate_trace


def main() -> None:
    width, cycles = 16, 3000
    stage = build_ex_stage(width=width, corner=NTC)
    trace = generate_trace(BENCHMARKS["gzip"], cycles, width=width)

    print(
        f"fabricating 12 instances of the same {width}-bit EX stage "
        f"({stage.netlist.num_gates} gates) and running gzip on each:\n"
    )
    print(
        f"  {'chip':>4s} {'max errs':>9s} {'min errs':>9s} {'CE':>4s} "
        f"{'unique tags':>12s} {'DCS accuracy':>13s}"
    )
    error_free = 0
    for seed in range(12):
        chip = stage.fabricate(seed=seed)
        errors = build_error_trace(stage, chip, trace)
        counts = errors.error_counts()
        result = DcsScheme("icslt", 128).simulate(errors)
        total = counts["se_max"] + counts["se_min"] + counts["ce"]
        if total == 0:
            error_free += 1
            print(f"  {seed:4d} {'-':>9s} {'-':>9s} {'-':>4s} {'-':>12s} {'-':>13s}")
            continue
        accuracy = (
            f"{result.prediction_accuracy:.1%}" if result.errors_total else "n/a"
        )
        print(
            f"  {seed:4d} {counts['se_max']:9d} {counts['se_min']:9d} "
            f"{counts['ce']:4d} {result.unique_instances:12d} {accuracy:>13s}"
        )

    print(
        f"\n{error_free}/12 chips of this batch are error-free at the "
        "speculative clock; the rest each need their own learned choke "
        "table -- no static guardband or design-time fix covers them all."
    )


if __name__ == "__main__":
    main()
