#!/usr/bin/env python3
"""Watching the penalties emerge: the cycle-accurate pipeline.

The scheme comparisons elsewhere use analytic penalty accounting (flush
= 11 cycles, stall = 1).  This example runs the actual 11-stage in-order
pipeline simulator -- instructions occupy latches, the Choke Controller
grants real extra execute cycles, recoveries physically squash the pipe
-- and shows the emergent cycle counts landing on the analytic model's
numbers.  It also prints a fabricated chip's timing report so you can
see exactly which gates choke the worst paths.

Run:  python examples/pipeline_mechanics.py
"""

from repro import (
    BENCHMARKS,
    DcsScheme,
    NTC,
    RazorScheme,
    TridentScheme,
    build_error_trace,
    build_ex_stage,
    generate_trace,
)
from repro.arch.cpu import MitigationKind, run_pipeline
from repro.arch.pipeline import DEFAULT_PIPELINE
from repro.timing import timing_report


def main() -> None:
    width, cycles = 16, 2000
    stage = build_ex_stage(width=width, corner=NTC)
    chip = stage.fabricate(seed=10)
    trace = generate_trace(BENCHMARKS["mcf"], cycles, width=width)
    errors = build_error_trace(stage, chip, trace)
    depth = DEFAULT_PIPELINE.depth

    print("chip timing report (worst path, with choke annotations):\n")
    print(
        timing_report(
            stage.netlist,
            chip.delays,
            clock_period=stage.clock_period,
            num_paths=1,
            nominal_delays=chip.nominal_delays,
        )
    )

    analytic = {
        "razor": RazorScheme().simulate(errors),
        "dcs": DcsScheme("icslt", 128).simulate(errors),
        "trident": TridentScheme(128).simulate(errors),
    }
    print("\nemergent (pipeline simulation) vs analytic penalty cycles:")
    print(f"  {'scheme':8s} {'emergent':>9s} {'analytic':>9s} {'flushes':>8s} {'stalls':>7s}")
    for kind in (MitigationKind.RAZOR, MitigationKind.DCS, MitigationKind.TRIDENT):
        stats = run_pipeline(trace, errors, kind)
        model = analytic[kind.value]
        print(
            f"  {kind.value:8s} {stats.penalty_cycles(depth):9d} "
            f"{model.penalty_cycles:9d} {stats.flushes:8d} {stats.stall_cycles:7d}"
        )
    print(
        "\nRazor matches exactly; DCS/Trident differ only by in-flight "
        "window effects the analytic model abstracts away."
    )


if __name__ == "__main__":
    main()
