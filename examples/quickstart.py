#!/usr/bin/env python3
"""Quickstart: one chip, one benchmark, DCS vs Razor.

Builds the NTC execute stage, fabricates a chip instance, runs the mcf
benchmark trace through dynamic timing analysis, and compares Razor's
detect-and-recover penalties against DCS' sense-and-avoid flow.

Run:  python examples/quickstart.py
"""

from repro import (
    BENCHMARKS,
    DcsScheme,
    NTC,
    RazorScheme,
    build_error_trace,
    build_ex_stage,
    generate_trace,
)


def main() -> None:
    width = 16  # use 32 for the full-scale experiments (slower)
    print(f"building the {width}-bit EX stage at {NTC} ...")
    stage = build_ex_stage(width=width, corner=NTC)
    print(
        f"  {stage.netlist.num_gates} gates, clock {stage.clock_period:.0f} ps, "
        f"hold constraint {stage.hold_constraint:.0f} ps, "
        f"{stage.num_pad_cells} hold-fix buffers"
    )

    chip = stage.fabricate(seed=10)
    print(f"fabricated chip: {len(chip.affected_ids)} strongly PV-affected gates")

    trace = generate_trace(BENCHMARKS["mcf"], 4000, width=width)
    errors = build_error_trace(stage, chip, trace)
    counts = errors.error_counts()
    print(
        f"mcf on this chip: {counts['se_max']} max errors, "
        f"{counts['se_min']} min errors, {counts['ce']} consecutive errors "
        f"over {len(errors)} cycles"
    )

    razor = RazorScheme().simulate(errors)
    dcs = DcsScheme("icslt", capacity=128).simulate(errors)
    print("\nscheme comparison (maximum timing errors):")
    print(
        f"  Razor : {razor.penalty_cycles:6d} penalty cycles "
        f"({razor.flushes} flush+replay recoveries)"
    )
    print(
        f"  DCS   : {dcs.penalty_cycles:6d} penalty cycles "
        f"({dcs.flushes} recoveries, {dcs.stalls} stalls, "
        f"prediction accuracy {dcs.prediction_accuracy:.1%})"
    )
    if razor.penalty_cycles:
        saving = 1 - dcs.penalty_cycles / razor.penalty_cycles
        print(f"  -> DCS removed {saving:.0%} of the recovery penalty")


if __name__ == "__main__":
    main()
