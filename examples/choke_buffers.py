#!/usr/bin/env python3
"""Choke buffers: when the hold fix becomes the hazard.

Chapter 4's twist: the delay buffers inserted to satisfy minimum-path
(hold) constraints are themselves gates, and at NTC a fast-fabricated
buffer ("choke buffer") can collapse the very padding it provides.  This
script compares buffered and bufferless EX stages at STC and NTC,
measures the minimum-path droop on fabricated chips, and shows Trident
detecting and avoiding the resulting SE(Min)/CE errors that Razor cannot
even see.

Run:  python examples/choke_buffers.py
"""

import numpy as np

from repro import (
    BENCHMARKS,
    NTC,
    RazorScheme,
    STC,
    TridentScheme,
    build_error_trace,
    build_ex_stage,
    generate_trace,
)
from repro.timing.dta import cycle_timings


def main() -> None:
    width, cycles, chip_seed = 16, 3000, 10
    trace = generate_trace(BENCHMARKS["mcf"], cycles, width=width)

    print("minimum-path delay droop (fabricated vs PV-free), per configuration:")
    for corner in (STC, NTC):
        for buffered in (False, True):
            stage = build_ex_stage(width=width, corner=corner, buffered=buffered)
            chip = stage.fabricate(seed=chip_seed)
            inputs = trace.encode_inputs(stage.alu)
            pv = cycle_timings(stage.circuit, inputs, chip.delays)
            nominal = cycle_timings(stage.circuit, inputs, stage.nominal_delays)
            mask = np.isfinite(pv.t_early) & np.isfinite(nominal.t_early)
            droop = (pv.t_early[mask] / nominal.t_early[mask]).min()
            label = "buffered " if buffered else "bufferless"
            print(
                f"  {corner.name} {label}: deepest min-path droop to "
                f"{droop:.2f}x nominal "
                f"({stage.num_pad_cells} hold-fix cells in the netlist)"
            )

    stage = build_ex_stage(width=width, corner=NTC, buffered=True)
    chip = stage.fabricate(seed=chip_seed)
    errors = build_error_trace(stage, chip, trace)
    counts = errors.error_counts()
    print(
        f"\non the buffered NTC chip, mcf triggers {counts['se_min']} minimum "
        f"timing errors, {counts['se_max']} maximum, {counts['ce']} consecutive."
    )

    razor = RazorScheme().simulate(errors)
    trident = TridentScheme(128).simulate(errors)
    silent = counts["se_min"]
    print(
        f"Razor corrects only the {razor.errors_total} maximum violations -- "
        f"the {silent} minimum violations corrupt data silently."
    )
    print(
        f"Trident covers all {trident.errors_total} errors, predicting "
        f"{trident.prediction_accuracy:.1%} of them with "
        f"{trident.stalls} stall cycles instead of "
        f"{trident.errors_total * 11} recovery cycles."
    )


if __name__ == "__main__":
    main()
