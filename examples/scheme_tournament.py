#!/usr/bin/env python3
"""The paper's headline comparison: every scheme on every benchmark.

Replays all six SPEC-like benchmark traces on one choke-afflicted NTC
chip through Razor, HFG, OCST, both DCS variants, and Trident, then
prints normalised performance and energy efficiency (Razor = 1.0) --
the combined view behind Figs. 3.11/3.12 and 4.11/4.12.

Run:  python examples/scheme_tournament.py
"""

from repro import (
    BENCHMARKS,
    DcsScheme,
    HfgScheme,
    NTC,
    OcstScheme,
    RazorScheme,
    TridentScheme,
    build_error_trace,
    build_ex_stage,
    generate_trace,
)
from repro.arch.trace import BENCHMARK_ORDER
from repro.energy import dcs_overheads, normalize_to, trident_overheads


def main() -> None:
    width, cycles, chip_seed = 16, 4000, 10
    stage = build_ex_stage(width=width, corner=NTC)
    chip = stage.fabricate(seed=chip_seed)
    schemes = (
        RazorScheme(),
        HfgScheme(),
        OcstScheme(interval=1000),
        DcsScheme("icslt", 128),
        DcsScheme("acslt", 32, 16),
        TridentScheme(128),
    )
    overheads = {
        "DCS-ICSLT": dcs_overheads("icslt", 128),
        "DCS-ACSLT": dcs_overheads("acslt", 32, 16),
        "Trident": trident_overheads(128),
    }

    names = [s.name for s in schemes]
    print("normalised performance (top) and energy efficiency (bottom),")
    print(f"Razor = 1.0, chip #{chip_seed}, {cycles} cycles per benchmark\n")
    print("  " + "".join(f"{n:>11s}" for n in ["bench", *names]))
    perf_rows, eff_rows = [], []
    for benchmark in BENCHMARK_ORDER:
        trace = generate_trace(BENCHMARKS[benchmark], cycles, width=width)
        errors = build_error_trace(stage, chip, trace)
        results = {s.name: s.simulate(errors) for s in schemes}
        reports = normalize_to(results, NTC, overheads)
        perf_rows.append(
            (benchmark, [reports[n].normalized_performance for n in names])
        )
        eff_rows.append(
            (benchmark, [reports[n].normalized_efficiency for n in names])
        )
    for benchmark, values in perf_rows:
        print("  " + f"{benchmark:>11s}" + "".join(f"{v:11.2f}" for v in values))
    print()
    for benchmark, values in eff_rows:
        print("  " + f"{benchmark:>11s}" + "".join(f"{v:11.2f}" for v in values))

    averages = [
        sum(values[i] for _, values in perf_rows) / len(perf_rows)
        for i in range(len(names))
    ]
    print("\naverage performance: " + ", ".join(
        f"{n}={v:.2f}" for n, v in zip(names, averages)
    ))


if __name__ == "__main__":
    main()
