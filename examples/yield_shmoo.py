#!/usr/bin/env python3
"""Shmoo / yield study: what a static guardband costs a whole batch.

Sweeps the clock margin over a fabricated batch of NTC chips and plots
(in ASCII) which chips run clean at which margin.  The punchline is the
paper's economic argument: covering the whole batch with one static
clock margin costs tens of percent of performance on *every* chip, while
DCS/Trident cover each chip's own choke signature with a small learned
table at the aggressive margin.

Run:  python examples/yield_shmoo.py
"""

import numpy as np

from repro import BENCHMARKS, DcsScheme, NTC, RazorScheme, build_error_trace, build_ex_stage, generate_trace
from repro.analysis import shmoo_sweep


def main() -> None:
    width, cycles = 16, 2500
    stage = build_ex_stage(width=width, corner=NTC)
    trace = generate_trace(BENCHMARKS["parser"], cycles, width=width)
    margins = np.array([0.10, 0.18, 0.30, 0.45, 0.65, 0.90, 1.20])

    print("sweeping clock margins over a 10-chip batch (parser trace)...\n")
    result = shmoo_sweep(stage, trace, chip_seeds=range(10), margins=margins)
    print(result.render())

    full_yield = result.margin_for_yield(target=1.0)
    design_margin = stage.clock_period / stage.nominal_critical_delay - 1.0
    if full_yield is None:
        min_stuck = (result.max_error_rates[:, -1] == 0) & (
            result.min_error_rates[:, -1] > 0
        )
        print(
            f"\nno swept margin runs the whole batch clean: "
            f"{int(min_stuck.sum())} chip(s) suffer *minimum-timing* "
            "violations (choke buffers), which no amount of extra clock "
            "period can fix -- the exact blind spot Trident targets."
        )
    else:
        print(
            f"\nthe whole batch runs clean only at a +{full_yield:.0%} margin "
            f"-- versus the +{design_margin:.0%} speculative design point."
        )
        slowdown = (1 + full_yield) / (1 + design_margin)
        print(
            f"a static guardband therefore costs every chip {slowdown:.2f}x "
            "in clock period, including the chips that never err."
        )

    # what the adaptive alternative costs on the worst chip of the batch
    rates = result.error_rates[:, 1]
    worst = int(np.argmax(rates))
    chip = stage.fabricate(seed=result.chip_seeds[worst])
    errors = build_error_trace(stage, chip, trace)
    razor = RazorScheme().simulate(errors)
    dcs = DcsScheme("icslt", 128).simulate(errors)
    print(
        f"\nworst chip (#{result.chip_seeds[worst]}) at the design point: "
        f"Razor loses {razor.penalty_cycles} cycles; DCS loses "
        f"{dcs.penalty_cycles} (accuracy {dcs.prediction_accuracy:.0%}) -- "
        "per-chip learning beats batch-wide guardbanding."
    )


if __name__ == "__main__":
    main()
