"""Process-variation substrate: delay physics, VARIUS-style ΔVth fields,
Monte Carlo gate characterisation, and fabricated-chip samples.

This package replaces the paper's device layer (HSPICE on 16 nm PTM
multigate models, with VARIUS / VARIUS-NTV statistical parameters).
"""

from repro.pv.delaymodel import (
    NTC,
    STC,
    Corner,
    VTH_NOMINAL,
    delay_factor,
    drive_strength,
    nominal_gate_delays,
    nominal_delay_factor,
)
from repro.pv.varius import VariusParams, sample_delta_vth, systematic_field
from repro.pv.chip import ChipSample, fabricate_chip
from repro.pv.montecarlo import DelayDistribution, characterize_gates

__all__ = [
    "ChipSample",
    "Corner",
    "DelayDistribution",
    "NTC",
    "STC",
    "VTH_NOMINAL",
    "VariusParams",
    "characterize_gates",
    "delay_factor",
    "drive_strength",
    "fabricate_chip",
    "nominal_delay_factor",
    "nominal_gate_delays",
    "sample_delta_vth",
    "systematic_field",
]
