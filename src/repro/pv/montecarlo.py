"""Monte Carlo characterisation of per-gate-type delay distributions.

The paper runs 10 000-instance HSPICE Monte Carlo simulations of the basic
gates at STC and NTC to obtain the mean and standard deviation of each
gate type's propagation delay.  This module performs the equivalent
sampling on our trans-regional delay model: draw ΔVth instances, map them
through :func:`repro.pv.delaymodel.delay_factor`, and summarise.

The characterisation is also where the paper's headline observation shows
up quantitatively: at NTC the relative spread (σ/μ) and the worst-case
delay ratio are an order of magnitude beyond their STC values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.gates.celllib import CELL_LIBRARY, COMBINATIONAL_KINDS, GateKind
from repro.pv.delaymodel import VTH_NOMINAL, Corner, delay_factor
from repro.pv.varius import DEFAULT_PARAMS, VariusParams


@dataclass(frozen=True)
class DelayDistribution:
    """Summary statistics of one gate type's delay at one corner (ps)."""

    kind: GateKind
    corner: Corner
    mean: float
    std: float
    p01: float
    p99: float
    worst_ratio: float  # max sampled delay / nominal delay

    @property
    def relative_spread(self) -> float:
        """Coefficient of variation σ/μ."""
        return self.std / self.mean if self.mean else 0.0


def characterize_gates(
    corner: Corner,
    num_samples: int = 10_000,
    params: VariusParams = DEFAULT_PARAMS,
    seed: int = 2017,
    kinds: tuple[GateKind, ...] | None = None,
) -> dict[GateKind, DelayDistribution]:
    """Monte Carlo delay characterisation of the cell library at a corner.

    ΔVth is sampled i.i.d. with the combined VARIUS σ (the spatial
    structure does not matter for single-gate characterisation).
    """
    if num_samples < 2:
        raise ValueError("num_samples must be at least 2")
    with obs.span(
        "pv.characterize_gates", corner=corner.name, samples=num_samples
    ):
        obs.inc("pv.characterizations")
        rng = np.random.default_rng(seed)
        if kinds is None:
            kinds = tuple(sorted(COMBINATIONAL_KINDS))

        delta_vth = rng.normal(0.0, params.sigma_total, size=num_samples)
        factors = np.asarray(delay_factor(corner.vdd, VTH_NOMINAL + delta_vth))
        nominal_factor = float(delay_factor(corner.vdd, VTH_NOMINAL))

        result: dict[GateKind, DelayDistribution] = {}
        for kind in kinds:
            coeff = CELL_LIBRARY[kind].delay_coeff
            delays = coeff * factors
            nominal = coeff * nominal_factor
            result[kind] = DelayDistribution(
                kind=kind,
                corner=corner,
                mean=float(delays.mean()),
                std=float(delays.std()),
                p01=float(np.percentile(delays, 1)),
                p99=float(np.percentile(delays, 99)),
                worst_ratio=float(delays.max() / nominal) if nominal else 0.0,
            )
        return result
