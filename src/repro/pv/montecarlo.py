"""Monte Carlo characterisation and population fabrication.

The paper runs 10 000-instance HSPICE Monte Carlo simulations of the basic
gates at STC and NTC to obtain the mean and standard deviation of each
gate type's propagation delay.  This module performs the equivalent
sampling on our trans-regional delay model: draw ΔVth instances, map them
through :func:`repro.pv.delaymodel.delay_factor`, and summarise.

It also fabricates whole Monte Carlo *populations* at once:
:func:`fabricate_population` samples each seed's ΔVth field exactly like
:func:`repro.pv.chip.fabricate_chip` (same per-seed RNG stream, so every
row is bit-identical to the corresponding single-chip fabrication) and
then maps the stacked ``(num_chips, num_nodes)`` ΔVth matrix through the
delay model in one vectorised pass -- the delay matrix the batched DTA
kernel (:func:`repro.timing.dta.batch_cycle_timings`) consumes directly.

The characterisation is also where the paper's headline observation shows
up quantitatively: at NTC the relative spread (σ/μ) and the worst-case
delay ratio are an order of magnitude beyond their STC values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.gates.celllib import CELL_LIBRARY, COMBINATIONAL_KINDS, GateKind
from repro.gates.netlist import Netlist
from repro.pv.chip import ChipSample, delay_coeffs, sample_chip_vth
from repro.pv.delaymodel import VTH_NOMINAL, Corner, delay_factor, nominal_gate_delays
from repro.pv.varius import DEFAULT_PARAMS, VariusParams


@dataclass(frozen=True)
class DelayDistribution:
    """Summary statistics of one gate type's delay at one corner (ps)."""

    kind: GateKind
    corner: Corner
    mean: float
    std: float
    p01: float
    p99: float
    worst_ratio: float  # max sampled delay / nominal delay

    @property
    def relative_spread(self) -> float:
        """Coefficient of variation σ/μ."""
        return self.std / self.mean if self.mean else 0.0


@dataclass
class ChipPopulation:
    """A Monte Carlo population of fabricated chips, stored chip-major.

    ``delta_vth`` and ``delays`` are ``(num_chips, num_nodes)`` matrices;
    row ``i`` is bit-identical to ``fabricate_chip(netlist, corner,
    seeds[i], ...)`` because sampling runs one seed at a time on the same
    RNG stream and the delay model is element-wise.  ``delays`` is exactly
    the delay matrix :func:`repro.timing.dta.batch_cycle_timings` takes.
    """

    netlist: Netlist
    corner: Corner
    seeds: tuple[int, ...]
    delta_vth: np.ndarray  # (num_chips, num_nodes) volts
    delays: np.ndarray  # (num_chips, num_nodes) ps
    nominal_delays: np.ndarray  # (num_nodes,) shared PV-free delays, ps
    affected_ids: tuple[np.ndarray, ...]  # per chip, sorted int64

    @property
    def num_chips(self) -> int:
        return self.delays.shape[0]

    @property
    def num_nodes(self) -> int:
        return self.delays.shape[1]

    @property
    def delay_matrix(self) -> np.ndarray:
        """The batch-kernel input: one per-node delay row per chip."""
        return self.delays

    def __len__(self) -> int:
        return self.num_chips

    def chip(self, index: int) -> ChipSample:
        """Row view of population member ``index`` as a :class:`ChipSample`."""
        return ChipSample(
            netlist=self.netlist,
            corner=self.corner,
            seed=self.seeds[index],
            delta_vth=self.delta_vth[index],
            delays=self.delays[index],
            nominal_delays=self.nominal_delays,
            affected_ids=self.affected_ids[index],
        )

    def chips(self) -> list[ChipSample]:
        """All members as single-chip views (shared storage, no copies)."""
        return [self.chip(i) for i in range(self.num_chips)]


def fabricate_population(
    netlist: Netlist,
    corner: Corner,
    seeds: "list[int] | tuple[int, ...] | range",
    params: VariusParams = DEFAULT_PARAMS,
    affected_fraction: float = 0.02,
    affected_vth_min: float = 0.10,
    affected_vth_max: float = 0.20,
    dbuf_sigma_factor: float = 1.0,
) -> ChipPopulation:
    """Fabricate one chip per seed, delay-modelled in a single pass.

    Sampling is per-seed (each chip's RNG stream matches
    :func:`repro.pv.chip.fabricate_chip` exactly); only the deterministic
    ΔVth → delay mapping is batched.  :func:`delay_factor` is a pure
    element-wise function, so row ``i`` of the resulting delay matrix is
    bit-identical to the single-chip fabrication for ``seeds[i]``.
    """
    seeds = tuple(int(seed) for seed in seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    if not 0.0 <= affected_fraction <= 1.0:
        raise ValueError("affected_fraction must be within [0, 1]")
    with obs.span(
        "pv.fabricate_population",
        netlist=netlist.name,
        corner=corner.name,
        chips=len(seeds),
    ):
        obs.inc("pv.chips_fabricated", len(seeds))
        obs.inc("pv.populations_fabricated")
        coeffs = delay_coeffs(netlist)
        vth_rows = []
        affected: list[np.ndarray] = []
        for seed in seeds:
            delta_vth, affected_ids = sample_chip_vth(
                netlist,
                seed,
                params=params,
                affected_fraction=affected_fraction,
                affected_vth_min=affected_vth_min,
                affected_vth_max=affected_vth_max,
                dbuf_sigma_factor=dbuf_sigma_factor,
                coeffs=coeffs,
            )
            vth_rows.append(delta_vth)
            affected.append(affected_ids)
        vth_matrix = np.stack(vth_rows)
        factors = np.asarray(delay_factor(corner.vdd, VTH_NOMINAL + vth_matrix))
        delays = coeffs[None, :] * factors
        return ChipPopulation(
            netlist=netlist,
            corner=corner,
            seeds=seeds,
            delta_vth=vth_matrix,
            delays=delays,
            nominal_delays=nominal_gate_delays(netlist, corner),
            affected_ids=tuple(affected),
        )


def characterize_gates(
    corner: Corner,
    num_samples: int = 10_000,
    params: VariusParams = DEFAULT_PARAMS,
    seed: int = 2017,
    kinds: tuple[GateKind, ...] | None = None,
) -> dict[GateKind, DelayDistribution]:
    """Monte Carlo delay characterisation of the cell library at a corner.

    ΔVth is sampled i.i.d. with the combined VARIUS σ (the spatial
    structure does not matter for single-gate characterisation).
    """
    if num_samples < 2:
        raise ValueError("num_samples must be at least 2")
    with obs.span(
        "pv.characterize_gates", corner=corner.name, samples=num_samples
    ):
        obs.inc("pv.characterizations")
        rng = np.random.default_rng(seed)
        if kinds is None:
            kinds = tuple(sorted(COMBINATIONAL_KINDS))

        delta_vth = rng.normal(0.0, params.sigma_total, size=num_samples)
        factors = np.asarray(delay_factor(corner.vdd, VTH_NOMINAL + delta_vth))
        nominal_factor = float(delay_factor(corner.vdd, VTH_NOMINAL))

        result: dict[GateKind, DelayDistribution] = {}
        for kind in kinds:
            coeff = CELL_LIBRARY[kind].delay_coeff
            delays = coeff * factors
            nominal = coeff * nominal_factor
            result[kind] = DelayDistribution(
                kind=kind,
                corner=corner,
                mean=float(delays.mean()),
                std=float(delays.std()),
                p01=float(np.percentile(delays, 1)),
                p99=float(np.percentile(delays, 99)),
                worst_ratio=float(delays.max() / nominal) if nominal else 0.0,
            )
        return result
