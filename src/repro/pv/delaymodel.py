"""Trans-regional gate-delay model (the HSPICE/PTM substitute).

The paper obtains gate delay distributions from HSPICE Monte Carlo runs on
16 nm PTM multigate models at STC (0.8 V) and NTC (0.45 V).  We replace
the transistor-level simulation with an EKV-style drive-current model that
interpolates smoothly between the super-threshold (alpha-power-like) and
sub-threshold (exponential) regimes:

    drive(Vdd, Vth)  ∝  ln(1 + exp((Vdd - Vth) / (2 n vT)))²
    delay(Vdd, Vth)  ∝  Vdd / drive(Vdd, Vth)

This captures the single mechanism every result in the paper rests on:
near threshold, (Vdd − Vth) is small, so the same ΔVth that perturbs an
STC gate delay by tens of percent perturbs an NTC gate delay by up to
~20x -- the paper's headline PV-sensitivity figure.  Delay factors are
normalised so a nominal gate at STC has factor 1.0; the cell library's
``delay_coeff`` carries the per-cell picosecond scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gates.celllib import CELL_LIBRARY, GateKind
from repro.gates.netlist import Netlist

#: Nominal threshold voltage of the (FinFET-like) devices, volts.
VTH_NOMINAL = 0.33
#: Sub-threshold slope factor n.
SUBTHRESHOLD_SLOPE = 1.5
#: Thermal voltage kT/q at ~300 K, volts.
THERMAL_VOLTAGE = 0.026


@dataclass(frozen=True)
class Corner:
    """An operating corner (supply voltage regime)."""

    name: str
    vdd: float

    def __str__(self) -> str:
        return f"{self.name}({self.vdd:.2f}V)"


#: Super-threshold computing corner used throughout the paper.
STC = Corner("STC", 0.80)
#: Near-threshold computing corner used throughout the paper.
NTC = Corner("NTC", 0.45)


def drive_strength(vdd: float, vth: np.ndarray | float) -> np.ndarray | float:
    """Normalised drive current of a device at (vdd, vth).

    Smoothly interpolates between ((Vdd-Vth)/(2 n vT))² above threshold and
    exp((Vdd-Vth)/(n vT)) below it.
    """
    overdrive = (vdd - np.asarray(vth, dtype=float)) / (
        2.0 * SUBTHRESHOLD_SLOPE * THERMAL_VOLTAGE
    )
    soft = np.log1p(np.exp(np.minimum(overdrive, 50.0)))
    # For large overdrive log1p(exp(x)) == x exactly to float precision;
    # the clamp above only avoids overflow in exp.
    soft = np.where(overdrive > 50.0, overdrive, soft)
    result = soft * soft
    if np.isscalar(vth) or (isinstance(vth, np.ndarray) and vth.ndim == 0):
        return float(result)
    return result


#: Reference drive: a nominal device at the STC corner.
_REFERENCE_DELAY = STC.vdd / drive_strength(STC.vdd, VTH_NOMINAL)


def delay_factor(vdd: float, vth: np.ndarray | float) -> np.ndarray | float:
    """Delay multiplier relative to a nominal gate at STC.

    ``delay_factor(STC.vdd, VTH_NOMINAL) == 1.0`` by construction; larger
    values mean slower.  Vectorised over ``vth``.
    """
    drive = drive_strength(vdd, vth)
    result = (vdd / drive) / _REFERENCE_DELAY
    if np.isscalar(vth) or (isinstance(vth, np.ndarray) and vth.ndim == 0):
        return float(result)
    return result


def nominal_delay_factor(corner: Corner) -> float:
    """Delay multiplier of a PV-free gate at ``corner`` (1.0 at STC)."""
    return float(delay_factor(corner.vdd, VTH_NOMINAL))


def nominal_gate_delays(netlist: Netlist, corner: Corner) -> np.ndarray:
    """Per-node PV-free propagation delays (ps) at ``corner``.

    Source nodes (inputs, constants) have zero delay.
    """
    factor = nominal_delay_factor(corner)
    coeffs = np.array(
        [CELL_LIBRARY[kind].delay_coeff for kind in _kinds(netlist)],
        dtype=np.float64,
    )
    return coeffs * factor


def _kinds(netlist: Netlist) -> list[GateKind]:
    return [netlist.kind(node_id) for node_id in range(netlist.num_nodes)]


def dynamic_energy_factor(corner: Corner) -> float:
    """Dynamic switching-energy multiplier vs the STC corner (CV² scaling)."""
    return (corner.vdd / STC.vdd) ** 2


def leakage_power_factor(corner: Corner) -> float:
    """Leakage-power multiplier vs the STC corner.

    Leakage current drops roughly with DIBL as Vdd scales; a simple
    linear-voltage x reduced-current model is enough for the EDP trends.
    """
    return (corner.vdd / STC.vdd) ** 2.5
