"""VARIUS / VARIUS-NTV style threshold-voltage variation fields.

VARIUS models within-die process variation of Vth (and Leff) as the sum of

* a *systematic* component: a spatially-correlated Gaussian random field
  over the die, with a spherical correlogram of range ``phi`` (expressed as
  a fraction of the die edge), and
* a *random* component: i.i.d. Gaussian per device.

We reproduce that statistical structure.  Gates are placed on a square
grid in netlist order -- construction order follows circuit structure, so
structurally-related gates land in nearby cells, a reasonable proxy for a
placed layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class VariusParams:
    """Parameters of the ΔVth variation model (volts / fractions)."""

    sigma_systematic: float = 0.015
    sigma_random: float = 0.015
    correlation_range: float = 0.5  # phi, fraction of die edge
    grid_size: int = 32

    @property
    def sigma_total(self) -> float:
        """Standard deviation of the combined ΔVth."""
        return float(np.hypot(self.sigma_systematic, self.sigma_random))


#: Default parameters (σ_total ≈ 21 mV, φ = 0.5 -- VARIUS' canonical choice).
DEFAULT_PARAMS = VariusParams()


def spherical_correlation(distance: np.ndarray, phi: float) -> np.ndarray:
    """VARIUS' spherical correlogram ρ(r); 1 at r=0, 0 beyond r=phi."""
    r = np.asarray(distance, dtype=float) / max(phi, 1e-12)
    rho = 1.0 - 1.5 * r + 0.5 * r**3
    return np.where(r < 1.0, rho, 0.0)


def systematic_field(
    grid_size: int, phi: float, sigma: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample one spatially-correlated Gaussian field over the die grid.

    Returns a (grid_size, grid_size) array with marginal std ``sigma`` and
    spherical correlogram of range ``phi`` (fraction of die edge).  Uses a
    dense Cholesky factorisation, which is exact and fast for the grid
    sizes used here (≤ 64x64).
    """
    if grid_size < 1:
        raise ValueError("grid_size must be positive")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0.0:
        return np.zeros((grid_size, grid_size))

    chol = _cholesky_factor(grid_size, phi, sigma)
    sample = chol @ rng.standard_normal(chol.shape[0])
    return sample.reshape(grid_size, grid_size)


_CHOLESKY_CACHE: dict[tuple[int, float, float], np.ndarray] = {}


def _cholesky_factor(grid_size: int, phi: float, sigma: float) -> np.ndarray:
    """Cached Cholesky factor of the field covariance (chips share it)."""
    key = (grid_size, round(phi, 9), round(sigma, 9))
    cached = _CHOLESKY_CACHE.get(key)
    if cached is not None:
        return cached
    coords = np.stack(
        np.meshgrid(np.arange(grid_size), np.arange(grid_size), indexing="ij"),
        axis=-1,
    ).reshape(-1, 2) / max(grid_size - 1, 1)
    diff = coords[:, None, :] - coords[None, :, :]
    distance = np.sqrt((diff**2).sum(axis=-1))
    cov = spherical_correlation(distance, phi) * sigma**2
    # Jitter keeps the matrix numerically positive definite.
    cov[np.diag_indices_from(cov)] += 1e-10
    chol = np.linalg.cholesky(cov)
    _CHOLESKY_CACHE[key] = chol
    return chol


def place_on_grid(num_nodes: int, grid_size: int) -> tuple[np.ndarray, np.ndarray]:
    """Row-major placement of ``num_nodes`` onto the die grid.

    Returns (row, col) integer arrays of length ``num_nodes``.  Multiple
    gates share a cell when the netlist is larger than the grid, which
    matches VARIUS' view of the systematic component as locally constant.
    """
    cells = grid_size * grid_size
    positions = (np.arange(num_nodes) * cells) // max(num_nodes, 1)
    positions = np.minimum(positions, cells - 1)
    return positions // grid_size, positions % grid_size


def sample_delta_vth(
    num_nodes: int,
    params: VariusParams,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-node ΔVth samples (volts): systematic field + random component."""
    field = systematic_field(
        params.grid_size, params.correlation_range, params.sigma_systematic, rng
    )
    rows, cols = place_on_grid(num_nodes, params.grid_size)
    systematic = field[rows, cols]
    random_part = rng.normal(0.0, params.sigma_random, size=num_nodes)
    return systematic + random_part
