"""Fabricated-chip samples: per-gate delays of one post-silicon instance.

A :class:`ChipSample` is one fabricated instance of a netlist at one
operating corner.  It combines

* the background VARIUS ΔVth field applied to every gate, and
* a small population of *strongly PV-affected* gates (candidate choke
  points) drawn from the distribution tail -- the paper limits these to
  ~2 % of the gate count (§4.2.4) and notes their sign can go either way
  (slow gates create choke paths; fast gates create choke buffers).

Choke points are an artefact of fabrication: two chips built from the
same netlist (different seeds) have different choke signatures, which is
exactly the property DCS and Trident exploit by learning per-chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.gates.celllib import CELL_LIBRARY
from repro.gates.netlist import Netlist
from repro.pv.delaymodel import VTH_NOMINAL, Corner, delay_factor, nominal_gate_delays
from repro.pv.varius import DEFAULT_PARAMS, VariusParams, sample_delta_vth


@dataclass
class ChipSample:
    """One fabricated instance of a netlist at a given corner."""

    netlist: Netlist
    corner: Corner
    seed: int
    delta_vth: np.ndarray  # per-node ΔVth, volts
    delays: np.ndarray  # per-node propagation delay, ps
    nominal_delays: np.ndarray  # PV-free per-node delay at this corner, ps
    affected_ids: np.ndarray = field(default_factory=lambda: np.array([], dtype=np.int64))

    @property
    def num_nodes(self) -> int:
        return len(self.delays)

    def delay_ratio(self) -> np.ndarray:
        """Per-node delay relative to nominal (1.0 = unaffected); sources 1."""
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(self.nominal_delays > 0, self.delays / self.nominal_delays, 1.0)
        return ratio

    def affected_mask(self, ratio_threshold: float = 1.5) -> np.ndarray:
        """Gates whose delay deviates notably from nominal, either way.

        A gate counts as PV-affected when it is slower than
        ``ratio_threshold`` x nominal or faster than 1/``ratio_threshold``.
        """
        ratio = self.delay_ratio()
        return (ratio >= ratio_threshold) | (
            (self.nominal_delays > 0) & (ratio <= 1.0 / ratio_threshold)
        )

    def __repr__(self) -> str:
        return (
            f"ChipSample({self.netlist.name!r}, corner={self.corner.name}, "
            f"seed={self.seed}, strongly_affected={len(self.affected_ids)})"
        )


def fabricate_chip(
    netlist: Netlist,
    corner: Corner,
    seed: int,
    params: VariusParams = DEFAULT_PARAMS,
    affected_fraction: float = 0.02,
    affected_vth_min: float = 0.10,
    affected_vth_max: float = 0.20,
    dbuf_sigma_factor: float = 1.0,
) -> ChipSample:
    """Fabricate one chip instance.

    ``affected_fraction`` of the combinational gates are designated as
    strongly PV-affected: their |ΔVth| is redrawn uniformly from the
    absolute tail [``affected_vth_min``, ``affected_vth_max``] volts with
    a random sign (positive ΔVth = slow gate, the classic choke point;
    negative = fast gate, a potential choke buffer).  The default range
    produces the paper's headline deviations: roughly 4-25x delay at NTC
    but only 1.5-3x at STC for the *same* ΔVth.  All other gates keep the
    background VARIUS sample.

    ``dbuf_sigma_factor`` scales the ΔVth of hold-fix delay cells (DBUF)
    relative to regular cells -- delay cells are built from weak, stacked
    devices whose matching is poorer, which amplifies the paper's "choke
    buffer" threat.  It defaults to 1.0 (delay cells match regular cells)
    and exists for ablation studies; the scaling is applied
    deterministically after sampling, so a chip's non-DBUF delay
    assignment is independent of the factor.
    """
    if not 0.0 <= affected_fraction <= 1.0:
        raise ValueError("affected_fraction must be within [0, 1]")
    with obs.span(
        "pv.fabricate_chip", netlist=netlist.name, corner=corner.name, seed=seed
    ):
        obs.inc("pv.chips_fabricated")
        return _fabricate_chip(
            netlist, corner, seed, params, affected_fraction,
            affected_vth_min, affected_vth_max, dbuf_sigma_factor,
        )


def delay_coeffs(netlist: Netlist) -> np.ndarray:
    """Per-node cell-library delay coefficients (0 for sources/consts)."""
    return np.array(
        [CELL_LIBRARY[netlist.kind(node_id)].delay_coeff for node_id in range(netlist.num_nodes)],
        dtype=np.float64,
    )


def sample_chip_vth(
    netlist: Netlist,
    seed: int,
    params: VariusParams = DEFAULT_PARAMS,
    affected_fraction: float = 0.02,
    affected_vth_min: float = 0.10,
    affected_vth_max: float = 0.20,
    dbuf_sigma_factor: float = 1.0,
    coeffs: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample one chip's per-node ΔVth field and strongly-affected set.

    This is the *entire* random part of fabrication -- it consumes the
    seed's RNG stream exactly like :func:`fabricate_chip` always has, so
    population fabrication (one sampling pass per seed, one vectorised
    delay computation for all of them) stays bit-identical per chip.
    Returns ``(delta_vth, affected_ids)``.
    """
    rng = np.random.default_rng(seed)
    num_nodes = netlist.num_nodes
    delta_vth = sample_delta_vth(num_nodes, params, rng)

    if coeffs is None:
        coeffs = delay_coeffs(netlist)
    gate_ids = np.flatnonzero(coeffs > 0)

    num_affected = int(round(affected_fraction * len(gate_ids)))
    if num_affected > 0:
        affected_ids = rng.choice(gate_ids, size=num_affected, replace=False)
        magnitudes = rng.uniform(affected_vth_min, affected_vth_max, size=num_affected)
        signs = np.where(rng.random(num_affected) < 0.5, -1.0, 1.0)
        delta_vth[affected_ids] = signs * magnitudes
    else:
        affected_ids = np.array([], dtype=np.int64)

    if dbuf_sigma_factor != 1.0:
        from repro.gates.celllib import GateKind

        dbuf_ids = np.array(
            [
                node_id
                for node_id in range(num_nodes)
                if netlist.kind(node_id) is GateKind.DBUF
            ],
            dtype=np.int64,
        )
        if len(dbuf_ids):
            delta_vth[dbuf_ids] *= dbuf_sigma_factor

    return delta_vth, np.sort(affected_ids.astype(np.int64))


def _fabricate_chip(
    netlist: Netlist,
    corner: Corner,
    seed: int,
    params: VariusParams,
    affected_fraction: float,
    affected_vth_min: float,
    affected_vth_max: float,
    dbuf_sigma_factor: float,
) -> ChipSample:
    coeffs = delay_coeffs(netlist)
    delta_vth, affected_ids = sample_chip_vth(
        netlist,
        seed,
        params=params,
        affected_fraction=affected_fraction,
        affected_vth_min=affected_vth_min,
        affected_vth_max=affected_vth_max,
        dbuf_sigma_factor=dbuf_sigma_factor,
        coeffs=coeffs,
    )

    factors = np.asarray(delay_factor(corner.vdd, VTH_NOMINAL + delta_vth))
    delays = coeffs * factors
    nominal = nominal_gate_delays(netlist, corner)

    return ChipSample(
        netlist=netlist,
        corner=corner,
        seed=seed,
        delta_vth=delta_vth,
        delays=delays,
        nominal_delays=nominal,
        affected_ids=affected_ids,
    )


def delay_matrix(chips: "list[ChipSample] | tuple[ChipSample, ...]") -> np.ndarray:
    """Stack per-chip delay vectors into the batch kernel's input matrix.

    Returns a ``(num_chips, num_nodes)`` float64 matrix; every chip must
    come from the same netlist (same node count).
    """
    if not chips:
        raise ValueError("need at least one chip")
    num_nodes = chips[0].num_nodes
    for chip in chips[1:]:
        if chip.num_nodes != num_nodes:
            raise ValueError(
                "chips in a population must share one netlist "
                f"({chip.num_nodes} vs {num_nodes} nodes)"
            )
    return np.stack([chip.delays for chip in chips])
