"""Counters, gauges, and histograms for the experiment telemetry.

The registry is deliberately tiny and dependency-free: metric names are
plain strings (optionally carrying ``{key=value}`` labels rendered by
:func:`labelled`), counters and gauges are dict entries, and histograms
keep their raw observations so shard merging is exact — a merged
quantile is computed over the union of samples, not approximated from
per-shard summaries.

Merge semantics (the shard protocol relies on these being order-free):

* counters **add**,
* gauges take the **max** (they record high-water marks),
* histograms **concatenate** their samples (and re-sort on snapshot).

Everything serialises to plain JSON through :meth:`MetricsRegistry.snapshot`
and reloads through :meth:`MetricsRegistry.merge`, so a worker's shard
file round-trips losslessly into the parent's registry.
"""

from __future__ import annotations

from typing import Any

#: bump when the snapshot layout changes; shards with another version
#: are still merged best-effort (unknown fields are ignored).
METRICS_VERSION = 1

#: histogram memory bound: past this many samples the reservoir is
#: deterministically thinned (every other sample dropped), which keeps
#: quantiles representative without unbounded growth.
MAX_HISTOGRAM_SAMPLES = 65_536


def labelled(name: str, **labels: Any) -> str:
    """Canonical labelled metric name: ``name{a=1,b=x}`` (sorted keys)."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def quantile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sample list."""
    if not sorted_values:
        raise ValueError("quantile of an empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


class Histogram:
    """A sample-keeping histogram with exact quantiles."""

    __slots__ = ("values",)

    def __init__(self, values: list[float] | None = None) -> None:
        self.values: list[float] = list(values) if values else []

    def observe(self, value: float) -> None:
        self.values.append(float(value))
        if len(self.values) > MAX_HISTOGRAM_SAMPLES:
            # deterministic thinning: keep every other sample
            self.values = self.values[::2]

    def extend(self, values: list[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def quantile(self, q: float) -> float:
        return quantile(sorted(self.values), q)

    def summary(self) -> dict[str, float]:
        """JSON-able summary statistics (what ``metrics.json`` carries)."""
        if not self.values:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p95": 0.0, "p99": 0.0}
        ordered = sorted(self.values)
        return {
            "count": len(ordered),
            "sum": round(sum(ordered), 9),
            "min": round(ordered[0], 9),
            "max": round(ordered[-1], 9),
            "mean": round(sum(ordered) / len(ordered), 9),
            "p50": round(quantile(ordered, 0.50), 9),
            "p90": round(quantile(ordered, 0.90), 9),
            "p95": round(quantile(ordered, 0.95), 9),
            "p99": round(quantile(ordered, 0.99), 9),
        }


class MetricsRegistry:
    """Process-local metric store; one per recorder."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        key = labelled(name, **labels)
        self.counters[key] = self.counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        key = labelled(name, **labels)
        self.gauges[key] = max(self.gauges.get(key, value), value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = labelled(name, **labels)
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram()
        histogram.observe(value)

    # ------------------------------------------------------------------
    def snapshot(self, include_values: bool = False) -> dict[str, Any]:
        """JSON-able state; ``include_values`` keeps raw histogram samples
        (required for lossless shard merging)."""
        histograms: dict[str, Any] = {}
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            entry = histogram.summary()
            if include_values:
                entry["values"] = list(histogram.values)
            histograms[name] = entry
        return {
            "version": METRICS_VERSION,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: round(self.gauges[k], 9) for k in sorted(self.gauges)},
            "histograms": histograms,
        }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's snapshot in (order-independent)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauges[name] = max(self.gauges.get(name, value), value)
        for name, entry in snapshot.get("histograms", {}).items():
            values = entry.get("values")
            if values is None:
                continue  # summary-only snapshot: samples were dropped
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.extend(values)
