"""Structured run/task lifecycle events: crash-safe JSONL + flight recorder.

Metrics answer "how much"; the event stream answers "what happened,
when, on which worker".  Every scheduling decision the fleet makes —
scheduling, dispatch, task start, heartbeats, steals, resubmissions,
partitions, crashes, downgrades, results — becomes one JSON object
appended to the run's ``--events-out`` file.

Durability follows the run ledger exactly: each event is a single
``write()`` of one newline-terminated line on an ``O_APPEND``
descriptor, so concurrent writers (the coordinator plus fork workers
sharing the inherited log) interleave whole lines, and a crash leaves
at most one truncated final line, which :func:`read_events` tolerates.
Unlike the ledger there is no per-event fsync — events are a telemetry
stream, not the artefact of record, and must stay cheap enough to emit
from scheduling hot paths.

Every :class:`EventLog` also keeps a bounded in-memory **flight
recorder** of the most recent events.  When the runtime blames a crash
or partition, the last few events are dumped into the
:class:`~repro.runtime.executor.FailureRecord` context — the "what was
the fleet doing just before it died" answer that aggregate counters
cannot give.

Events are *schedule-dependent by design* (steal counts, heartbeat
cadence, worker assignment all vary run to run) and are therefore
excluded from determinism comparisons, like the ``worker.``/``backend.``
counter families.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterator

#: bump when the event layout changes incompatibly.
EVENTS_VERSION = 1

#: the closed set of event kinds (mirrored in events.schema.json).
EVENT_KINDS = (
    "run_start",
    "scheduled",
    "claimed",
    "started",
    "heartbeat",
    "steal",
    "resubmit",
    "partition",
    "crash",
    "downgrade",
    "result",
    "clock",
    "run_end",
)

#: how many recent events the in-memory flight recorder retains.
FLIGHT_RECORDER_SIZE = 64


class EventLog:
    """One append-only event sink (file plus bounded flight recorder).

    ``path=None`` keeps only the flight recorder — used when the
    runtime wants crash context without an ``--events-out`` file.
    Emission never raises: a full disk degrades to in-memory-only
    events, exactly like a failing telemetry flush.
    """

    def __init__(
        self,
        path: str | os.PathLike | None,
        trace_id: str = "",
        flight_size: int = FLIGHT_RECORDER_SIZE,
    ) -> None:
        self.path = str(path) if path is not None else None
        self.trace_id = trace_id
        self.count = 0
        self.flight: deque[dict[str, Any]] = deque(maxlen=flight_size)
        self._fd: int | None = None
        self._dead = False

    def emit(self, kind: str, **fields: Any) -> dict[str, Any]:
        event: dict[str, Any] = {
            "v": EVENTS_VERSION,
            "ts": round(time.time(), 6),
            "pid": os.getpid(),
            "kind": kind,
        }
        if self.trace_id:
            event["trace_id"] = self.trace_id
        for key, value in fields.items():
            if value is not None:
                event[key] = value
        self.flight.append(event)
        self.count += 1
        if self.path is not None and not self._dead:
            try:
                if self._fd is None:
                    self._fd = os.open(
                        self.path,
                        os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                        0o644,
                    )
                line = json.dumps(event, sort_keys=True)
                os.write(self._fd, line.encode() + b"\n")
            except (OSError, ValueError, TypeError):
                self._dead = True  # keep the flight recorder, stop writing
        return event

    def recent(self, n: int = 16) -> list[str]:
        """The last ``n`` events, compactly rendered for failure context."""
        return [format_event(event) for event in list(self.flight)[-n:]]

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None


def format_event(event: dict[str, Any]) -> str:
    """One event as a compact single line (flight dumps, ``progress``)."""
    parts = [f"{event.get('ts', 0):.3f}", str(event.get("kind", "?"))]
    for key in ("experiment", "worker", "status", "tier", "reason"):
        value = event.get(key)
        if value is not None:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def iter_events(path: str | os.PathLike) -> Iterator[dict[str, Any]]:
    """Parseable events in file order; malformed lines are skipped.

    In practice the only malformed line is a truncated tail from a
    writer that died mid-append — replay must shrug it off, exactly
    like :meth:`RunLedger.records`.
    """
    try:
        text = Path(path).read_text()
    except OSError:
        return
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            continue
        if isinstance(event, dict):
            yield event


def read_events(path: str | os.PathLike) -> list[dict[str, Any]]:
    return list(iter_events(path))
