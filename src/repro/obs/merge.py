"""Deterministic shard merging and telemetry document rendering.

A telemetry run produces one in-memory recorder in the parent plus zero
or more ``shard-<pid>-<tag>.json`` files written by workers.  This
module folds them into the two artefacts the CLI emits:

* ``metrics.json`` — merged counters/gauges/histogram summaries, keys
  sorted, values rounded; identical regardless of the order shards are
  merged in (counters add, gauges max, histogram samples re-sort).
* ``trace.json`` — a Chrome trace-event document (``traceEvents`` +
  ``displayTimeUnit``) that loads in ``chrome://tracing`` / Perfetto,
  events sorted on a stable key.

:func:`determinism_view` defines which part of ``metrics.json`` is
*schedule-invariant*: the same experiment set must produce the same
view at ``--jobs 1`` and ``--jobs 4``.  Timing histograms, gauges, and
counter families that legitimately depend on scheduling (checkpoint
hit/miss patterns, claim traffic, per-worker queue stats, STA reruns in
per-process stage builds) are excluded; domain counters (experiment
outcomes, artefact computations, DTA evaluations) are kept.  The CI
determinism test and ``benchmarks/check_regression.py`` both consume
this view.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import SHARD_VERSION

#: counter/gauge families that legitimately differ between schedules
#: (``--jobs 1`` vs ``--jobs N``) and are therefore excluded from the
#: determinism view.  ``span.`` is excluded because worker/prefetch
#: spans only exist in parallel runs; the domain families (``scheme.``,
#: ``choke.``, ``etrace.``) are excluded because serial runs memoise
#: scheme sweeps across experiments while parallel workers rebuild a
#: fresh context per task, so emission counts differ by schedule even
#: though the science does not.  The run ledger still records the
#: domain families, in its separate ``domain`` section.  The
#: shared-memory hand-off families (``shm.``, ``runner.chips_``,
#: ``runner.inputs_``, ``pv.populations_``) only exist in fleet runs —
#: serial runs fabricate the chip locally (``runner.chips_computed``)
#: while fleets publish a population once and attach per worker — so
#: the *mechanism* counters are schedule-dependent even though the
#: chips delivered are bit-identical.
SCHEDULE_DEPENDENT_PREFIXES = (
    "checkpoint.",
    "worker.",
    "prefetch.",
    "parallel.",
    "backend.",
    "executor.backoff",
    "span.",
    "sta.",
    "runner.trace",
    "cli.",
    "scheme.",
    "choke.",
    "etrace.",
    "obs.",
    "shm.",
    "runner.chips_",
    "runner.inputs_",
    "pv.populations_",
    # RPC frame traffic and event emission scale with heartbeat cadence,
    # steals, and resubmissions — schedule-dependent by definition; clock
    # samples depend on network round trips.
    "frames.",
    "events.",
    "clock.",
    # audit.* counters track how many runs/records the audit sink saw in
    # *this process* — parallel workers re-simulate what a serial run
    # memoises, so the counts are schedule-dependent (the merged audit
    # stream itself is deduplicated and schedule-independent).
    "audit.",
)

_SHARD_NAME = re.compile(r"^shard-v(\d+)-(\d+)-\d+\.json$")


def scan_shards(directory: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Shard documents under ``directory`` plus a stale-shard count.

    Three kinds of file are *not* merged:

    * unreadable/truncated shards (a worker died mid-write before its
      atomic replace) — skipped silently, as before;
    * shards whose filename lacks the ``shard-v<version>-<pid>-`` form
      or carries a foreign :data:`SHARD_VERSION` — leftovers from an
      older telemetry schema in a reused directory;
    * shards whose document header (version/pid) disagrees with their
      filename — renamed or cross-run leftovers.

    The latter two are **stale** and counted, so the CLI can surface an
    ``obs.stale_shards_skipped`` counter instead of silently merging a
    previous run's numbers into this one.
    """
    docs: list[dict[str, Any]] = []
    stale = 0
    for path in sorted(Path(directory).glob("shard-*.json")):
        match = _SHARD_NAME.match(path.name)
        if match is None or int(match.group(1)) != SHARD_VERSION:
            stale += 1
            continue
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if (doc.get("version") != SHARD_VERSION
                or doc.get("pid") != int(match.group(2))):
            stale += 1
            continue
        docs.append(doc)
    return docs, stale


def load_shards(directory: str | Path) -> list[dict[str, Any]]:
    """:func:`scan_shards` without the stale count (compatibility shim)."""
    return scan_shards(directory)[0]


def merge_shards(
    docs: Iterable[dict[str, Any]],
) -> tuple[MetricsRegistry, list[dict[str, Any]], list[dict[str, Any]],
           list[dict[str, Any]]]:
    """Fold shard documents into (registry, trace events, profiles, processes)."""
    registry = MetricsRegistry()
    events: list[dict[str, Any]] = []
    profiles: list[dict[str, Any]] = []
    processes: list[dict[str, Any]] = []
    for doc in docs:
        registry.merge(doc.get("metrics", {}))
        events.extend(doc.get("trace_events", []))
        profiles.extend(doc.get("profiles", []))
        processes.append({
            "pid": doc.get("pid", 0),
            "process": doc.get("process", "unknown"),
        })
    events.sort(key=lambda e: (e.get("ts", 0), e.get("pid", 0),
                               e.get("tid", 0), e.get("name", "")))
    profiles.sort(key=lambda p: (-p.get("duration_s", 0.0), p.get("span", "")))
    processes.sort(key=lambda p: (p["process"], p["pid"]))
    return registry, events, profiles, processes


def metrics_document(
    registry: MetricsRegistry, processes: list[dict[str, Any]] | None = None
) -> dict[str, Any]:
    """The ``metrics.json`` payload: summaries only, keys sorted."""
    snapshot = registry.snapshot(include_values=False)
    return {
        "version": snapshot["version"],
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": snapshot["histograms"],
        "processes": processes or [],
    }


def trace_document(
    events: list[dict[str, Any]], trace_id: str | None = None
) -> dict[str, Any]:
    """A Chrome trace-event JSON document (Perfetto-loadable).

    ``trace_id`` (when the run has one) rides in the top-level
    ``metadata`` object — Perfetto ignores unknown top-level keys, and
    it lets tooling link a trace file back to its ledger record and
    event stream.
    """
    doc: dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if trace_id:
        doc["metadata"] = {"trace_id": trace_id}
    return doc


def determinism_view(metrics_doc: dict[str, Any]) -> dict[str, Any]:
    """The schedule-invariant slice of a metrics document.

    Drops every histogram and gauge (they carry timing values) and every
    counter in a :data:`SCHEDULE_DEPENDENT_PREFIXES` family; what is left
    must be bit-identical between ``--jobs 1`` and ``--jobs N`` runs of
    the same experiment set.
    """
    counters = {
        name: value
        for name, value in metrics_doc.get("counters", {}).items()
        if not name.startswith(SCHEDULE_DEPENDENT_PREFIXES)
    }
    return {"counters": counters}


def summary_table(metrics_doc: dict[str, Any], top: int = 12) -> str:
    """Human terminal summary: spans ranked by total wall-clock."""
    rows = []
    for name, entry in metrics_doc.get("histograms", {}).items():
        if not (name.startswith("span.") and name.endswith(".s")):
            continue
        rows.append((entry["sum"], name[len("span."):-len(".s")], entry))
    rows.sort(key=lambda row: (-row[0], row[1]))
    lines = ["== telemetry: spans by total wall-clock =="]
    if not rows:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)
    width = max(len(name) for _, name, _ in rows[:top])
    header = (f"  {'span'.ljust(width)}  {'count':>6}  {'total_s':>9}"
              f"  {'mean_s':>9}  {'p95_s':>9}")
    lines.append(header)
    for total, name, entry in rows[:top]:
        lines.append(
            f"  {name.ljust(width)}  {entry['count']:>6d}  {total:>9.3f}"
            f"  {entry['mean']:>9.4f}  {entry['p95']:>9.4f}"
        )
    if len(rows) > top:
        lines.append(f"  ... and {len(rows) - top} more span(s)")
    return "\n".join(lines)


def profile_report(profiles: list[dict[str, Any]], top: int = 5) -> str:
    """Plain-text report of the slowest profiled spans."""
    if not profiles:
        return "no spans were profiled (was --profile set and any span run?)\n"
    sections = []
    for rank, entry in enumerate(profiles[:top], start=1):
        sections.append(
            f"== profile {rank}/{min(top, len(profiles))}: "
            f"{entry['span']} ({entry['duration_s']:.3f}s) ==\n"
            f"{entry['stats']}"
        )
    return "\n".join(sections)
