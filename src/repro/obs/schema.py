"""Dependency-free validation of telemetry JSON against checked-in schemas.

The CI telemetry job validates ``metrics.json`` and ``trace.json``
against the schemas under ``benchmarks/schemas/`` before uploading them
as artifacts.  The container and CI images are not guaranteed to have
``jsonschema``, so this implements the small JSON-Schema subset those
schemas use: ``type`` (single or list), ``required``, ``properties``,
``additionalProperties`` (bool or schema), ``items``, ``enum``,
``minimum``, ``minItems``.  Anything outside that subset in a schema is
a programming error and raises immediately.
"""

from __future__ import annotations

from typing import Any

_SUPPORTED_KEYS = {
    "type", "required", "properties", "additionalProperties", "items",
    "enum", "minimum", "minItems", "description", "$schema", "title",
}

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(instance: Any, type_name: str) -> bool:
    expected = _TYPES[type_name]
    if type_name in ("number", "integer") and isinstance(instance, bool):
        return False  # bool is an int in Python; JSON Schema says it is not
    return isinstance(instance, expected)


def validate(instance: Any, schema: dict[str, Any], path: str = "$") -> list[str]:
    """All violations of ``schema`` by ``instance`` (empty = valid)."""
    unknown = set(schema) - _SUPPORTED_KEYS
    if unknown:
        raise ValueError(f"unsupported schema keys at {path}: {sorted(unknown)}")
    errors: list[str] = []

    type_spec = schema.get("type")
    if type_spec is not None:
        names = [type_spec] if isinstance(type_spec, str) else list(type_spec)
        if not any(_type_ok(instance, name) for name in names):
            errors.append(
                f"{path}: expected {' or '.join(names)}, "
                f"got {type(instance).__name__}"
            )
            return errors  # structural checks below would just cascade

    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']!r}")

    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) and instance < schema["minimum"]:
        errors.append(f"{path}: {instance!r} below minimum {schema['minimum']}")

    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for name, value in instance.items():
            child_path = f"{path}.{name}"
            if name in properties:
                errors.extend(validate(value, properties[name], child_path))
            elif isinstance(additional, dict):
                errors.extend(validate(value, additional, child_path))
            elif additional is False:
                errors.append(f"{path}: unexpected property {name!r}")

    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            errors.append(
                f"{path}: {len(instance)} item(s), need >= {schema['minItems']}"
            )
        items = schema.get("items")
        if isinstance(items, dict):
            for index, value in enumerate(instance):
                errors.extend(validate(value, items, f"{path}[{index}]"))

    return errors


def check(instance: Any, schema: dict[str, Any], label: str = "document") -> None:
    """Raise ``ValueError`` listing every violation (or return silently)."""
    errors = validate(instance, schema)
    if errors:
        shown = "\n  ".join(errors[:20])
        more = f"\n  ... and {len(errors) - 20} more" if len(errors) > 20 else ""
        raise ValueError(f"{label} fails schema validation:\n  {shown}{more}")
