"""Append-only run ledger: one JSONL record per experiment run.

Every PR-3 run produced rich telemetry that died with the process; the
ledger is the durable tail end of the pipeline.  One record per run
captures everything cross-run analysis needs — git revision, config
digest, per-experiment status and wall-clock, the schedule-invariant
counter slice (:func:`repro.obs.merge.determinism_view`), the
scheme/choke domain counters, checkpoint hit-rate, span wall-clock
totals, and the headline scientific quantities of every figure table —
as one JSON line appended to ``<dir>/ledger.jsonl``.

Durability model:

* **Appends are crash-safe.**  A record is a single ``write()`` of one
  ``\\n``-terminated line on an ``O_APPEND`` descriptor, fsynced before
  the handle closes.  A crash mid-append leaves at most one truncated
  final line, which :meth:`RunLedger.records` tolerates (and the next
  append repairs by prefixing a newline), so earlier history is never
  at risk.
* **Rewrites are atomic.**  Retention (:meth:`RunLedger.prune`) and
  compaction rewrite through a temp file + ``os.replace`` in the same
  directory, so readers always see either the old or the new ledger,
  never a torn one.

The record schema is versioned (:data:`LEDGER_VERSION`) and checked in
at ``benchmarks/schemas/ledger.schema.json``; records with an unknown
version are still listed but excluded from trend analysis.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import tempfile
import time
from pathlib import Path
from typing import Any, Iterable

from repro.obs.merge import determinism_view

#: bump when the record layout changes incompatibly.
LEDGER_VERSION = 1

#: the ledger file inside a ``--ledger-dir``.
LEDGER_FILENAME = "ledger.jsonl"

#: counter families carrying the paper's domain quantities (scheme
#: errors/rollbacks/replays, choke events, error-trace class counts).
#: They are schedule-dependent (memoisation and checkpoint hits change
#: how often the emitting code runs), so they live in the record's
#: ``domain`` section rather than the gated ``counters`` section.
DOMAIN_COUNTER_PREFIXES = ("scheme.", "choke.", "etrace.")


def _slug(text: str) -> str:
    """Metric-name-safe slug: lowercase, word runs joined by ``_``."""
    return re.sub(r"[^a-z0-9]+", "_", str(text).lower()).strip("_")


def git_revision(cwd: str | os.PathLike | None = None) -> str:
    """The current ``git rev-parse HEAD`` (or ``"unknown"`` outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def new_run_id() -> str:
    """A sortable, collision-resistant run id (UTC time + pid + nanos)."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-{os.getpid()}-{time.time_ns() % 0xFFFF:04x}"


# ----------------------------------------------------------------------
# record assembly
# ----------------------------------------------------------------------

def headline_metrics(results: Iterable[Any]) -> dict[str, float]:
    """The scientific outputs of a run, flattened to metric -> value.

    For every numeric column of every figure table the mean over the
    rows is recorded under ``<experiment_id>.<table_slug>.<col_slug>``
    — e.g. fig3_10's Razor-normalised penalty per DCS variant, fig4
    energy deltas, choke-point counts.  Means keep the key space
    bounded and benchmark-order-free while preserving exactly the
    trajectory a drift check needs.
    """
    metrics: dict[str, float] = {}
    for result in results:
        for table in getattr(result, "tables", []):
            rows = table.rows
            if not rows:
                continue
            for index, header in enumerate(table.headers):
                values = [row[index] for row in rows]
                if not all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in values
                ):
                    continue
                key = f"{result.experiment_id}.{_slug(table.title)}.{_slug(header)}"
                metrics[key] = round(sum(values) / len(values), 9)
    return metrics


def headline_metrics_from_dicts(result_dicts: Iterable[dict]) -> dict[str, float]:
    """:func:`headline_metrics` over ``ExperimentResult.to_dict()`` payloads."""

    class _Table:
        def __init__(self, doc: dict) -> None:
            self.title = doc.get("title", "")
            self.headers = doc.get("headers", [])
            self.rows = doc.get("rows", [])

    class _Result:
        def __init__(self, doc: dict) -> None:
            self.experiment_id = doc.get("experiment_id", "unknown")
            self.tables = [_Table(t) for t in doc.get("tables", [])]

    return headline_metrics(_Result(doc) for doc in result_dicts)


def _span_totals(metrics_doc: dict[str, Any]) -> dict[str, float]:
    """Per-span total wall-clock seconds from a metrics document."""
    totals: dict[str, float] = {}
    for name, entry in metrics_doc.get("histograms", {}).items():
        if name.startswith("span.") and name.endswith(".s"):
            totals[name[len("span."):-len(".s")]] = round(entry.get("sum", 0.0), 6)
    return totals


def build_record(
    report: Any = None,
    metrics_doc: dict[str, Any] | None = None,
    config: Any = None,
    rev: str | None = None,
    run_id: str | None = None,
    notes: str | None = None,
    trace_id: str | None = None,
    audit_doc: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble one ledger record from a run's report + telemetry.

    Every argument is optional so partial sources (``ledger record``
    from a bare ``metrics.json``) still yield a valid record; missing
    sections are empty, never absent.
    """
    from repro.runtime.checkpoint import config_fingerprint

    metrics_doc = metrics_doc or {}
    counters = metrics_doc.get("counters", {})
    hits = counters.get("checkpoint.hits", 0)
    misses = counters.get("checkpoint.misses", 0)
    span_totals = _span_totals(metrics_doc)

    experiments: dict[str, Any] = {}
    results = []
    if report is not None:
        results = report.results
        for outcome in report.outcomes:
            experiments[outcome.experiment_id] = {
                "status": "ok" if outcome.ok else outcome.failure.kind,
                "elapsed_s": round(outcome.elapsed_s, 3),
                "attempts": outcome.attempts,
            }

    return {
        "version": LEDGER_VERSION,
        "run_id": run_id or new_run_id(),
        "timestamp": round(time.time(), 3),
        "git_rev": rev if rev is not None else git_revision(),
        "config_digest": config_fingerprint(config),
        "experiments": experiments,
        "counters": determinism_view(metrics_doc)["counters"],
        "domain": {
            name: value
            for name, value in counters.items()
            if name.startswith(DOMAIN_COUNTER_PREFIXES)
        },
        "checkpoint": {
            "hits": int(hits),
            "misses": int(misses),
            "hit_rate": round(hits / (hits + misses), 6) if hits + misses else None,
        },
        "spans": span_totals,
        "span_total_s": round(sum(span_totals.values()), 6),
        "science": headline_metrics(results),
        "notes": notes or "",
        # links this record to the run's trace/event artefacts ("" for
        # uninstrumented runs and pre-tracing records)
        "trace_id": trace_id or "",
        # per-scheme decision rollup of the run's cycle-audit stream
        # (see repro.obs.audit.audit_rollup; {} for unaudited runs)
        "audit": audit_doc or {},
    }


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------

def append_jsonl_line(
    path: str | os.PathLike, record: dict[str, Any], fsync: bool = True
) -> None:
    """Crash-safely append one record as a single JSON line.

    The shared ``O_APPEND`` tail-repair path used by the run ledger and
    the service job journal: the record is one ``write()`` of one
    ``\\n``-terminated line, and if a previous append was cut short (the
    file ends mid-line) a leading newline terminates the fragment first,
    so the fragment is skipped on read instead of corrupting this record
    too.  Readers (:meth:`RunLedger.records`,
    :func:`repro.obs.events.iter_events`) never need coordination with
    an appender: they see whole lines plus at most one truncated tail.
    """
    line = json.dumps(record, sort_keys=True)
    if "\n" in line:
        raise ValueError("journal records must serialise to one line")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        prefix = b""
        size = os.fstat(fd).st_size
        if size > 0:
            with open(path, "rb") as handle:
                handle.seek(size - 1)
                if handle.read(1) != b"\n":
                    prefix = b"\n"
        os.write(fd, prefix + line.encode() + b"\n")
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)


class RunLedger:
    """The append-only JSONL store under one ``--ledger-dir``."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.root = Path(directory)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / LEDGER_FILENAME

    def __len__(self) -> int:
        return len(self.records())

    # -- writing -------------------------------------------------------
    def append(self, record: dict[str, Any]) -> Path:
        """Crash-safely append one record (see :func:`append_jsonl_line`)."""
        append_jsonl_line(self.path, record)
        return self.path

    def rewrite(self, records: Iterable[dict[str, Any]]) -> None:
        """Atomically replace the whole ledger (compaction/retention)."""
        payload = "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=".ledger-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def prune(self, keep: int) -> int:
        """Retention: atomically keep only the newest ``keep`` records."""
        if keep < 0:
            raise ValueError("keep must be >= 0")
        records = self.records()
        dropped = max(0, len(records) - keep)
        if dropped:
            self.rewrite(records[dropped:])
        return dropped

    # -- reading -------------------------------------------------------
    def records(self) -> list[dict[str, Any]]:
        """All parseable records in file (= chronological) order.

        Malformed lines — in practice only a truncated final line from
        a crashed append — are skipped, never fatal.
        """
        try:
            text = self.path.read_text()
        except OSError:
            return []
        records = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def resolve(self, selector: str) -> dict[str, Any]:
        """One record by run-id, run-id prefix, or (negative) index.

        ``"-1"`` is the newest run, ``"0"`` the oldest, anything else a
        ``run_id`` (unique prefixes accepted).
        """
        records = self.records()
        if not records:
            raise LookupError("ledger is empty")
        try:
            return records[int(selector)]
        except (ValueError, IndexError):
            pass
        matches = [r for r in records if str(r.get("run_id", "")).startswith(selector)]
        if not matches:
            raise LookupError(f"no ledger record matches {selector!r}")
        if len(matches) > 1 and not any(r.get("run_id") == selector for r in matches):
            raise LookupError(f"ambiguous run selector {selector!r} "
                              f"({len(matches)} matches)")
        exact = [r for r in matches if r.get("run_id") == selector]
        return exact[0] if exact else matches[0]
