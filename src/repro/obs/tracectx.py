"""Trace-context propagation and per-worker clock-offset correction.

The telemetry layer (PR 3) merges per-process shards into one Chrome
trace, which works because fork workers inherit the parent's
``perf_counter`` epoch — every shard shares one timeline.  Remote
workers do not: each worker process has its own epoch, so its span
timestamps are meaningless on the coordinator's timeline (the PR 6
span-loss bug).  This module supplies the two missing pieces:

* **Trace identity.**  :func:`new_trace_id` / :func:`new_span_id` mint
  the ids a run propagates: the coordinator stamps its ``trace_id``
  into every task frame, workers stamp it into every span they record,
  and the merged trace carries it as document metadata — one id links
  the report, the ledger record, the event stream, and the trace.

* **Clock-offset estimation.**  :class:`ClockSync` estimates each
  worker's timeline offset NTP-style from request/response round
  trips (the hello handshake and every task-ack heartbeat carry the
  worker's timeline clock): for coordinator send/receive times ``t1``
  / ``t4`` and worker time ``tw``, one sample estimates

      offset = tw - (t1 + t4) / 2        (worker minus coordinator)

  with uncertainty ``rtt / 2 = (t4 - t1) / 2`` — the worker's reading
  could sit anywhere inside the round trip.  The minimum-RTT sample
  wins (shorter round trip = tighter bound), mirroring how NTP filters
  its sample clique.  Correction quality is an explicit tier, modelled
  on the signal-recorder GPS_LOCKED -> WALL_CLOCK hierarchy:

  ========== ====================================================
  tier        meaning
  ========== ====================================================
  synced      >= 2 accepted samples, uncertainty <= 5 ms
  coarse      >= 1 accepted sample (wide or lone round trip)
  uncorrected no usable sample; timestamps pass through unshifted
  ========== ====================================================

  :func:`correct_shard` applies the offset to a worker shard's trace
  events and labels the worker's process lane with its tier, so a
  Perfetto view of a fleet run states its own timestamp trustworthiness
  instead of silently interleaving incomparable clocks.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.obs.recorder import _EPOCH, SHARD_VERSION

#: quality tiers, best to worst (the signal-recorder tiering model).
QUALITY_SYNCED = "synced"
QUALITY_COARSE = "coarse"
QUALITY_UNCORRECTED = "uncorrected"

#: promotion thresholds for :attr:`ClockSync.quality`.
SYNCED_MIN_SAMPLES = 2
SYNCED_MAX_UNCERTAINTY_US = 5000.0


def new_trace_id() -> str:
    """A 128-bit run-scoped trace id (hex, W3C traceparent sized)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A 64-bit span id for parent linkage across the wire."""
    return os.urandom(8).hex()


def timeline_now_us() -> float:
    """Now on this process's trace timeline (µs since the obs epoch).

    The same clock :class:`~repro.obs.recorder.TelemetryRecorder` stamps
    span events with, so round-trip samples and span timestamps are
    directly comparable.
    """
    return (time.perf_counter() - _EPOCH) * 1e6


class ClockSync:
    """Min-RTT NTP-style offset estimator for one remote worker clock.

    Feed it round-trip samples with :meth:`add_sample`; read
    ``offset_us`` / ``uncertainty_us`` / ``quality``.  Degrades
    gracefully: with no accepted samples the quality is
    ``uncorrected`` and :meth:`correct_ts` is the identity.
    """

    __slots__ = ("samples", "rejected", "offset_us", "uncertainty_us")

    def __init__(self) -> None:
        self.samples = 0
        self.rejected = 0
        self.offset_us: float | None = None
        self.uncertainty_us: float | None = None

    def add_sample(
        self, t_send_us: float, t_worker_us: float, t_recv_us: float
    ) -> bool:
        """Fold one round trip in; False if the sample was rejected.

        A negative RTT (receive before send) is non-causal — a clock
        bug or a chaos filter replaying frames — and is dropped rather
        than poisoning the estimate.  Zero RTT is accepted: it is the
        best possible sample (uncertainty 0), not an error.
        """
        rtt = t_recv_us - t_send_us
        if rtt < 0:
            self.rejected += 1
            return False
        self.samples += 1
        uncertainty = rtt / 2.0
        if self.uncertainty_us is None or uncertainty <= self.uncertainty_us:
            self.offset_us = t_worker_us - (t_send_us + t_recv_us) / 2.0
            self.uncertainty_us = uncertainty
        return True

    @property
    def quality(self) -> str:
        if self.offset_us is None:
            return QUALITY_UNCORRECTED
        if (self.samples >= SYNCED_MIN_SAMPLES
                and self.uncertainty_us is not None
                and self.uncertainty_us <= SYNCED_MAX_UNCERTAINTY_US):
            return QUALITY_SYNCED
        return QUALITY_COARSE

    def correct_ts(self, ts_us: float) -> float:
        """A worker timestamp mapped onto the coordinator timeline.

        Clamped at 0 because the trace schema (and Perfetto) treat
        negative timestamps as malformed; sub-uncertainty underflow at
        the very start of a run is the only way to get below zero.
        """
        if self.offset_us is None:
            return ts_us
        return max(0.0, ts_us - self.offset_us)

    def describe(self) -> str:
        """Human lane label suffix, e.g. ``"synced ±0.4ms"``."""
        if self.offset_us is None:
            return QUALITY_UNCORRECTED
        return f"{self.quality} ±{(self.uncertainty_us or 0.0) / 1000.0:.1f}ms"

    def as_dict(self) -> dict[str, Any]:
        return {
            "quality": self.quality,
            "samples": self.samples,
            "rejected": self.rejected,
            "offset_us": round(self.offset_us, 1)
            if self.offset_us is not None else None,
            "uncertainty_us": round(self.uncertainty_us, 1)
            if self.uncertainty_us is not None else None,
        }


def correct_shard(doc: dict[str, Any], sync: ClockSync) -> dict[str, Any]:
    """A worker shard document rebased onto the coordinator timeline.

    Only complete-span (``"ph": "X"``) events carry worker wall-clock
    timestamps; metadata events (process names, pinned at ts 0) and
    every metric pass through untouched — durations and histograms are
    offset-free by construction.  The worker's process lane is
    relabelled with the correction tier so the merged trace is honest
    about each lane's timestamp quality, and the applied correction is
    recorded under a ``clock`` key for tooling.
    """
    corrected = dict(doc)
    corrected["clock"] = sync.as_dict()
    events = []
    for event in doc.get("trace_events", []):
        event = dict(event)
        if event.get("ph") == "X":
            event["ts"] = round(sync.correct_ts(float(event.get("ts", 0.0))), 1)
        elif event.get("ph") == "M" and event.get("name") == "process_name":
            args = dict(event.get("args", {}))
            args["name"] = f"{args.get('name', 'worker')} [clock: {sync.describe()}]"
            event["args"] = args
        events.append(event)
    corrected["trace_events"] = events
    return corrected


def shard_filename(pid: int, tag: int) -> str:
    """A shard filename ``scan_shards`` accepts for a received shard."""
    return f"shard-v{SHARD_VERSION}-{pid}-{tag}.json"
