"""Span recording, Chrome trace events, and opt-in span profiling.

A :class:`TelemetryRecorder` is the live end of the telemetry
subsystem: instrumented code opens spans through the module-level
helpers in :mod:`repro.obs`, and each completed span becomes

* one ``"ph": "X"`` (complete) Chrome trace event — the ``trace.json``
  the CLI writes loads directly in ``chrome://tracing`` / Perfetto,
* one sample in the ``span.<name>.s`` histogram, and
* one increment of the ``span.count{span=<name>}`` counter.

When profiling is enabled (the CLI's ``--profile``), the recorder
additionally wraps each *outermost* span in a ``cProfile`` session and
keeps the stats of the top-N slowest spans.  Nested spans are never
profiled (``cProfile`` cannot nest), and profiling is strictly opt-in
because its overhead is far beyond the telemetry budget.

Workers serialise their recorder with :meth:`TelemetryRecorder.flush`
into per-process shard files; :mod:`repro.obs.merge` folds the shards
back together.  Timestamps come from ``time.perf_counter`` against a
module-import epoch — under the fork start method every worker inherits
the parent's epoch, so all shards share one trace timeline.
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import pstats
import tempfile
import threading
import time
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry

#: bump when the shard document layout changes.
SHARD_VERSION = 1

#: common timeline origin for trace timestamps; fork workers inherit it.
_EPOCH = time.perf_counter()


class NullSpan:
    """The shared do-nothing span returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


NULL_SPAN = NullSpan()


class Span:
    """One live span; records a trace event + duration sample on exit."""

    __slots__ = ("_recorder", "name", "args", "_start", "_profile")

    def __init__(self, recorder: "TelemetryRecorder", name: str,
                 args: dict[str, Any]) -> None:
        self._recorder = recorder
        self.name = name
        self.args = args
        self._start = 0.0
        self._profile: cProfile.Profile | None = None

    def __enter__(self) -> "Span":
        recorder = self._recorder
        if recorder.profile and not recorder._profiling:
            recorder._profiling = True
            self._profile = cProfile.Profile()
            self._profile.enable()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        end = time.perf_counter()
        if self._profile is not None:
            self._profile.disable()
            self._recorder._profiling = False
        self._recorder._finish_span(
            self.name, self.args, self._start, end, self._profile
        )
        return False


class TelemetryRecorder:
    """Metrics + trace events + profiles for one process."""

    def __init__(
        self,
        process: str = "main",
        profile: bool = False,
        profile_top: int = 5,
        shard_dir: str | os.PathLike | None = None,
        trace_id: str = "",
    ) -> None:
        self.metrics = MetricsRegistry()
        self.events: list[dict[str, Any]] = []
        self.profiles: list[dict[str, Any]] = []
        self.process = process
        self.trace_id = trace_id
        self.pid = os.getpid()
        self.profile = profile
        self.profile_top = profile_top
        self.shard_dir = Path(shard_dir) if shard_dir is not None else None
        self._profiling = False
        #: distinguishes shards when a pid is ever reused across pools
        self._shard_tag = time.time_ns()
        self.events.append({
            "name": "process_name", "ph": "M", "ts": 0, "pid": self.pid,
            "tid": 0, "args": {"name": f"{process}-{self.pid}"},
        })

    # ------------------------------------------------------------------
    def span(self, name: str, attrs: dict[str, Any]) -> Span:
        return Span(self, name, attrs)

    def _finish_span(
        self,
        name: str,
        attrs: dict[str, Any],
        start: float,
        end: float,
        profile: cProfile.Profile | None,
    ) -> None:
        duration = end - start
        args = {key: _jsonable(value) for key, value in attrs.items()}
        if self.trace_id:
            args.setdefault("trace_id", self.trace_id)
        self.events.append({
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "X",
            "ts": round((start - _EPOCH) * 1e6, 1),
            "dur": round(duration * 1e6, 1),
            "pid": self.pid,
            "tid": threading.get_native_id(),
            "args": args,
        })
        self.metrics.observe(f"span.{name}.s", duration)
        self.metrics.inc("span.count", span=name)
        if profile is not None:
            self._keep_profile(name, duration, profile)

    def _keep_profile(self, name: str, duration: float,
                      profile: cProfile.Profile) -> None:
        """Retain the profile iff it ranks among the top-N slowest spans."""
        if (len(self.profiles) >= self.profile_top
                and duration <= self.profiles[-1]["duration_s"]):
            return
        buffer = io.StringIO()
        stats = pstats.Stats(profile, stream=buffer)
        stats.sort_stats("cumulative").print_stats(25)
        self.profiles.append({
            "span": name,
            "duration_s": round(duration, 6),
            "stats": buffer.getvalue(),
        })
        self.profiles.sort(key=lambda entry: -entry["duration_s"])
        del self.profiles[self.profile_top:]

    # ------------------------------------------------------------------
    def snapshot_doc(self) -> dict[str, Any]:
        """The full shard document (metrics with raw samples included)."""
        return {
            "version": SHARD_VERSION,
            "process": self.process,
            "pid": self.pid,
            "trace_id": self.trace_id,
            "metrics": self.metrics.snapshot(include_values=True),
            "trace_events": list(self.events),
            "profiles": list(self.profiles),
        }

    def shard_path(self) -> Path:
        """Shard filename carrying schema version and writer pid.

        Both also live in the document header; ``scan_shards`` treats a
        mismatch between the two (or an unknown version) as a stale
        leftover from a previous run in a reused directory and skips it
        rather than merging it.
        """
        if self.shard_dir is None:
            raise ValueError("recorder has no shard directory")
        return (self.shard_dir
                / f"shard-v{SHARD_VERSION}-{self.pid}-{self._shard_tag}.json")

    def flush(self) -> Path | None:
        """Atomically (re)write this process's shard file.

        Called after every worker task; the snapshot is cumulative, so
        rewriting is idempotent and a crash between tasks loses at most
        the unfinished task's telemetry.  Failures are swallowed —
        telemetry must never take an experiment down.
        """
        if self.shard_dir is None:
            return None
        path = self.shard_path()
        try:
            payload = json.dumps(self.snapshot_doc())
            fd, tmp = tempfile.mkstemp(dir=self.shard_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            return None
        return path


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
