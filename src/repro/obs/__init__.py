"""Experiment telemetry: metrics, phase tracing, and profiling hooks.

The instrumented layers (``pv``, ``timing``, ``runtime``,
``experiments``) call the module-level helpers below unconditionally;
whether anything is recorded depends on the process-global recorder:

* **Off (default).**  ``span()`` returns a shared no-op context manager
  and ``inc``/``observe``/``gauge`` return after one ``None`` check —
  instrumented code paths cost ~nothing, guarded by the overhead tests
  in ``tests/test_obs.py``.
* **On** (the CLI's ``--metrics-out`` / ``--trace-out`` / ``--profile``,
  or :func:`enable` in tests).  A :class:`TelemetryRecorder` accumulates
  counters/gauges/histograms, emits Chrome trace events per span, and —
  with profiling on — captures ``cProfile`` stats for the slowest spans.

Parallel runs give every worker process its own recorder
(:func:`ensure_worker`) flushing to a per-process shard file
(:func:`flush_worker`); :mod:`repro.obs.merge` folds the shards into one
``metrics.json`` + ``trace.json`` deterministically.

Typical instrumentation::

    from repro import obs

    with obs.span("dta.cycle_timings", cycles=total):
        ...
    obs.inc("dta.evaluations")
    obs.observe("worker.queue_wait_s", waited)
"""

from __future__ import annotations

import os
from typing import Any

from repro.obs.dashboard import render_dashboard
from repro.obs.ledger import (
    LEDGER_FILENAME,
    LEDGER_VERSION,
    RunLedger,
    build_record,
    headline_metrics,
)
from repro.obs.merge import (
    SCHEDULE_DEPENDENT_PREFIXES,
    determinism_view,
    load_shards,
    merge_shards,
    metrics_document,
    profile_report,
    scan_shards,
    summary_table,
    trace_document,
)
from repro.obs.metrics import Histogram, MetricsRegistry, labelled, quantile
from repro.obs.recorder import (
    NULL_SPAN,
    SHARD_VERSION,
    NullSpan,
    Span,
    TelemetryRecorder,
)
from repro.obs.trends import detect_drift, diff_records, flatten, history, robust_z

__all__ = [
    "Histogram",
    "LEDGER_FILENAME",
    "LEDGER_VERSION",
    "MetricsRegistry",
    "NullSpan",
    "RunLedger",
    "SCHEDULE_DEPENDENT_PREFIXES",
    "SHARD_VERSION",
    "Span",
    "TelemetryRecorder",
    "build_record",
    "determinism_view",
    "detect_drift",
    "diff_records",
    "disable",
    "enable",
    "enabled",
    "ensure_worker",
    "flatten",
    "flush_worker",
    "gauge",
    "get_recorder",
    "headline_metrics",
    "history",
    "inc",
    "labelled",
    "load_shards",
    "merge_shards",
    "metrics_document",
    "observe",
    "profile_report",
    "quantile",
    "render_dashboard",
    "robust_z",
    "scan_shards",
    "span",
    "summary_table",
    "trace_document",
]

#: the process-global recorder; ``None`` means telemetry is off.
_recorder: TelemetryRecorder | None = None


def enable(recorder: TelemetryRecorder) -> TelemetryRecorder:
    """Install ``recorder`` as this process's telemetry sink."""
    global _recorder
    _recorder = recorder
    return recorder


def disable() -> None:
    """Turn telemetry off (the default state)."""
    global _recorder
    _recorder = None


def enabled() -> bool:
    return _recorder is not None


def get_recorder() -> TelemetryRecorder | None:
    return _recorder


# ----------------------------------------------------------------------
# hot-path helpers: one global read + None check when telemetry is off
# ----------------------------------------------------------------------

def span(name: str, **attrs: Any):
    """A phase-tracing context manager (no-op while telemetry is off)."""
    recorder = _recorder
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, attrs)


def inc(name: str, value: float = 1, **labels: Any) -> None:
    recorder = _recorder
    if recorder is not None:
        recorder.metrics.inc(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    recorder = _recorder
    if recorder is not None:
        recorder.metrics.observe(name, value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    recorder = _recorder
    if recorder is not None:
        recorder.metrics.gauge(name, value, **labels)


# ----------------------------------------------------------------------
# worker-process lifecycle (used by repro.runtime.parallel)
# ----------------------------------------------------------------------

def ensure_worker(
    shard_dir: str | None, process: str = "worker", profile: bool = False
) -> TelemetryRecorder | None:
    """Give a worker process its own recorder writing to ``shard_dir``.

    Fork workers inherit the parent's recorder object; recording into it
    would double-count the parent's history into the worker's shard, so
    a recorder whose pid is not ours is replaced with a fresh one.  With
    ``shard_dir=None`` (telemetry off) any inherited recorder is
    discarded instead.
    """
    global _recorder
    if shard_dir is None:
        if _recorder is not None and _recorder.pid != os.getpid():
            _recorder = None
        return None
    recorder = _recorder
    if recorder is not None and recorder.pid == os.getpid():
        return recorder
    return enable(TelemetryRecorder(
        process=process, profile=profile, shard_dir=shard_dir
    ))


def flush_worker() -> None:
    """Rewrite the current worker's shard file (idempotent, never raises)."""
    recorder = _recorder
    if recorder is not None and recorder.shard_dir is not None:
        recorder.flush()
