"""Experiment telemetry: metrics, phase tracing, and profiling hooks.

The instrumented layers (``pv``, ``timing``, ``runtime``,
``experiments``) call the module-level helpers below unconditionally;
whether anything is recorded depends on the process-global recorder:

* **Off (default).**  ``span()`` returns a shared no-op context manager
  and ``inc``/``observe``/``gauge`` return after one ``None`` check —
  instrumented code paths cost ~nothing, guarded by the overhead tests
  in ``tests/test_obs.py``.
* **On** (the CLI's ``--metrics-out`` / ``--trace-out`` / ``--profile``,
  or :func:`enable` in tests).  A :class:`TelemetryRecorder` accumulates
  counters/gauges/histograms, emits Chrome trace events per span, and —
  with profiling on — captures ``cProfile`` stats for the slowest spans.

Parallel runs give every worker process its own recorder
(:func:`ensure_worker`) flushing to a per-process shard file
(:func:`flush_worker`); :mod:`repro.obs.merge` folds the shards into one
``metrics.json`` + ``trace.json`` deterministically.

Typical instrumentation::

    from repro import obs

    with obs.span("dta.cycle_timings", cycles=total):
        ...
    obs.inc("dta.evaluations")
    obs.observe("worker.queue_wait_s", waited)
"""

from __future__ import annotations

import os
from typing import Any

from repro.obs.dashboard import render_dashboard
from repro.obs.events import (
    EVENT_KINDS,
    EVENTS_VERSION,
    EventLog,
    format_event,
    iter_events,
    read_events,
)
from repro.obs.ledger import (
    LEDGER_FILENAME,
    LEDGER_VERSION,
    RunLedger,
    build_record,
    headline_metrics,
)
from repro.obs.merge import (
    SCHEDULE_DEPENDENT_PREFIXES,
    determinism_view,
    load_shards,
    merge_shards,
    metrics_document,
    profile_report,
    scan_shards,
    summary_table,
    trace_document,
)
from repro.obs.metrics import Histogram, MetricsRegistry, labelled, quantile
from repro.obs.recorder import (
    NULL_SPAN,
    SHARD_VERSION,
    NullSpan,
    Span,
    TelemetryRecorder,
)
from repro.obs.tracectx import (
    ClockSync,
    correct_shard,
    new_span_id,
    new_trace_id,
    timeline_now_us,
)
from repro.obs.trends import detect_drift, diff_records, flatten, history, robust_z

__all__ = [
    "ClockSync",
    "EVENT_KINDS",
    "EVENTS_VERSION",
    "EventLog",
    "Histogram",
    "LEDGER_FILENAME",
    "LEDGER_VERSION",
    "MetricsRegistry",
    "NullSpan",
    "RunLedger",
    "SCHEDULE_DEPENDENT_PREFIXES",
    "SHARD_VERSION",
    "Span",
    "TelemetryRecorder",
    "build_record",
    "correct_shard",
    "determinism_view",
    "detect_drift",
    "diff_records",
    "disable",
    "disable_events",
    "emit",
    "enable",
    "enable_events",
    "enabled",
    "ensure_worker",
    "ensure_worker_events",
    "events_enabled",
    "flatten",
    "flush_worker",
    "format_event",
    "gauge",
    "get_event_log",
    "get_recorder",
    "headline_metrics",
    "history",
    "inc",
    "iter_events",
    "labelled",
    "load_shards",
    "merge_shards",
    "metrics_document",
    "new_span_id",
    "new_trace_id",
    "observe",
    "profile_report",
    "quantile",
    "read_events",
    "recent_events",
    "render_dashboard",
    "robust_z",
    "scan_shards",
    "span",
    "summary_table",
    "timeline_now_us",
    "trace_document",
]

#: the process-global recorder; ``None`` means telemetry is off.
_recorder: TelemetryRecorder | None = None

#: the process-global event log; ``None`` means the event stream is off.
_events: EventLog | None = None


def enable(recorder: TelemetryRecorder) -> TelemetryRecorder:
    """Install ``recorder`` as this process's telemetry sink."""
    global _recorder
    _recorder = recorder
    return recorder


def disable() -> None:
    """Turn telemetry off (the default state)."""
    global _recorder
    _recorder = None


def enabled() -> bool:
    return _recorder is not None


def get_recorder() -> TelemetryRecorder | None:
    return _recorder


# ----------------------------------------------------------------------
# hot-path helpers: one global read + None check when telemetry is off
# ----------------------------------------------------------------------

def span(name: str, **attrs: Any):
    """A phase-tracing context manager (no-op while telemetry is off)."""
    recorder = _recorder
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, attrs)


def inc(name: str, value: float = 1, **labels: Any) -> None:
    recorder = _recorder
    if recorder is not None:
        recorder.metrics.inc(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    recorder = _recorder
    if recorder is not None:
        recorder.metrics.observe(name, value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    recorder = _recorder
    if recorder is not None:
        recorder.metrics.gauge(name, value, **labels)


def emit(kind: str, **fields: Any) -> None:
    """Record one lifecycle event (no-op while the event stream is off)."""
    log = _events
    if log is not None:
        log.emit(kind, **fields)


# ----------------------------------------------------------------------
# event-stream lifecycle
# ----------------------------------------------------------------------

def enable_events(log: EventLog) -> EventLog:
    """Install ``log`` as this process's event sink."""
    global _events
    _events = log
    return log


def disable_events() -> None:
    global _events
    if _events is not None:
        _events.close()
    _events = None


def events_enabled() -> bool:
    return _events is not None


def get_event_log() -> EventLog | None:
    return _events


def recent_events(n: int = 16) -> tuple[str, ...]:
    """The flight recorder's last ``n`` events (crash/partition context)."""
    log = _events
    if log is None:
        return ()
    return tuple(log.recent(n))


def ensure_worker_events(path: str | None, trace_id: str = "") -> EventLog | None:
    """Point a worker process's event sink at the run's event file.

    Fork workers inherit the parent's :class:`EventLog` (same path, a
    shared ``O_APPEND`` descriptor — whole-line appends interleave
    safely), so an inherited log targeting the same file is kept.
    ``path=None`` (events off, or a remote worker whose coordinator
    owns the file) drops any inherited log.
    """
    global _events
    if path is None:
        _events = None
        return None
    log = _events
    if log is not None and log.path == str(path):
        return log
    return enable_events(EventLog(path, trace_id=trace_id))


# ----------------------------------------------------------------------
# worker-process lifecycle (used by repro.runtime.parallel)
# ----------------------------------------------------------------------

def ensure_worker(
    shard_dir: str | None,
    process: str = "worker",
    profile: bool = False,
    trace_id: str = "",
) -> TelemetryRecorder | None:
    """Give a worker process its own recorder writing to ``shard_dir``.

    Fork workers inherit the parent's recorder object; recording into it
    would double-count the parent's history into the worker's shard, so
    a recorder whose pid is not ours is replaced with a fresh one.  With
    ``shard_dir=None`` (telemetry off) any inherited recorder is
    discarded instead.
    """
    global _recorder
    if shard_dir is None:
        if _recorder is not None and _recorder.pid != os.getpid():
            _recorder = None
        return None
    recorder = _recorder
    if recorder is not None and recorder.pid == os.getpid():
        return recorder
    return enable(TelemetryRecorder(
        process=process, profile=profile, shard_dir=shard_dir,
        trace_id=trace_id,
    ))


def flush_worker() -> None:
    """Rewrite the current worker's shard file (idempotent, never raises)."""
    recorder = _recorder
    if recorder is not None and recorder.shard_dir is not None:
        recorder.flush()
