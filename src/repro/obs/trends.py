"""Cross-run trend analysis over ledger records.

The ledger (:mod:`repro.obs.ledger`) gives every metric a history; this
module turns histories into decisions.  Three consumers:

* ``ledger list`` / the dashboard want per-metric series —
  :func:`flatten` + :func:`history`.
* ``ledger diff A B`` wants a structural comparison of two records that
  copes with disjoint metric sets — :func:`diff_records`.
* ``check_regression.py --ledger`` and CI want drift detection that is
  robust to the odd slow run — :func:`detect_drift`, a
  median-absolute-deviation z-score of the newest value against the
  trailing window.  MAD-based z-scores tolerate up to half the window
  being outliers, which a mean/stddev gate does not.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.obs.ledger import LEDGER_VERSION

#: consistency constant making MAD comparable to a standard deviation
#: for normally distributed data.
MAD_SCALE = 1.4826

#: flattened-metric prefixes whose values are wall-clock measurements;
#: noisy by nature, so drift gating treats them leniently (see
#: :func:`detect_drift`'s ``timing_z_threshold``).
TIMING_PREFIXES = ("span.", "wall.", "run.wall_clock_s", "checkpoint.hit_rate")


def flatten(record: dict[str, Any]) -> dict[str, float]:
    """One ledger record -> flat ``metric name -> numeric value``.

    Namespaces keep provenance visible: ``counter.*`` is the
    determinism view, ``domain.*`` the scheme/choke counters, ``sci.*``
    the figure headline numbers, ``span.*`` per-span seconds and
    ``wall.*`` per-experiment seconds.
    """
    flat: dict[str, float] = {}

    def put(name: str, value: Any) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        if isinstance(value, float) and not math.isfinite(value):
            return
        flat[name] = float(value)

    for name, value in record.get("counters", {}).items():
        put(f"counter.{name}", value)
    for name, value in record.get("domain", {}).items():
        put(f"domain.{name}", value)
    for name, value in record.get("science", {}).items():
        put(f"sci.{name}", value)
    for name, value in record.get("spans", {}).items():
        put(f"span.{name}", value)
    put("span.total_s", record.get("span_total_s"))
    put("checkpoint.hit_rate", record.get("checkpoint", {}).get("hit_rate"))

    experiments = record.get("experiments", {})
    ok = sum(1 for e in experiments.values() if e.get("status") == "ok")
    if experiments:
        put("run.experiments_ok", ok)
        put("run.experiments_failed", len(experiments) - ok)
        put("run.wall_clock_s", sum(e.get("elapsed_s", 0.0) for e in experiments.values()))
    for experiment_id, entry in experiments.items():
        put(f"wall.{experiment_id}_s", entry.get("elapsed_s"))
    return flat


def history(records: Iterable[dict[str, Any]]) -> dict[str, list[float]]:
    """Per-metric value series, oldest first, over current-version records.

    A metric absent from a run simply contributes no point — series may
    have different lengths, which every consumer here tolerates.
    """
    series: dict[str, list[float]] = {}
    for record in records:
        if record.get("version") != LEDGER_VERSION:
            continue
        for name, value in flatten(record).items():
            series.setdefault(name, []).append(value)
    return series


# ----------------------------------------------------------------------
# robust statistics
# ----------------------------------------------------------------------

def median(values: list[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: list[float], center: float | None = None) -> float:
    """Median absolute deviation about ``center`` (default: the median)."""
    if center is None:
        center = median(values)
    return median([abs(v - center) for v in values])


def robust_z(value: float, window: list[float]) -> float:
    """MAD z-score of ``value`` against ``window``.

    A zero MAD means the window is (half-)constant: identical values
    score 0, any deviation scores ``inf`` — exactly the behaviour the
    zero-drift determinism gate needs.
    """
    center = median(window)
    spread = mad(window, center)
    if spread == 0.0:
        return 0.0 if value == center else math.inf
    return (value - center) / (MAD_SCALE * spread)


# ----------------------------------------------------------------------
# drift detection
# ----------------------------------------------------------------------

def detect_drift(
    records: list[dict[str, Any]],
    window: int = 8,
    z_threshold: float = 3.5,
    timing_z_threshold: float = 6.0,
    min_history: int = 3,
) -> list[dict[str, Any]]:
    """Score the newest run against its trailing window, per metric.

    Returns one entry per metric present in the newest record with at
    least ``min_history`` prior points: ``{metric, value, baseline_median,
    z, threshold, drifted}``, drifted entries first, then by |z|.
    Wall-clock metrics (:data:`TIMING_PREFIXES`) use the looser
    ``timing_z_threshold`` so machine noise doesn't page anyone.
    """
    versioned = [r for r in records if r.get("version") == LEDGER_VERSION]
    if len(versioned) < 2:
        return []
    latest = flatten(versioned[-1])
    prior = [flatten(r) for r in versioned[:-1]]

    findings = []
    for name, value in sorted(latest.items()):
        tail = [flat[name] for flat in prior if name in flat][-window:]
        if len(tail) < min_history:
            continue
        threshold = (
            timing_z_threshold if name.startswith(TIMING_PREFIXES) else z_threshold
        )
        z = robust_z(value, tail)
        findings.append({
            "metric": name,
            "value": value,
            "baseline_median": median(tail),
            "window": len(tail),
            "z": z,
            "threshold": threshold,
            "drifted": abs(z) > threshold,
        })
    findings.sort(key=lambda f: (not f["drifted"], -min(abs(f["z"]), 1e18), f["metric"]))
    return findings


# ----------------------------------------------------------------------
# record diffing
# ----------------------------------------------------------------------

def diff_records(
    a: dict[str, Any],
    b: dict[str, Any],
    rel_tolerance: float = 0.0,
) -> dict[str, Any]:
    """Structural diff of two ledger records' flattened metrics.

    Handles disjoint metric sets explicitly: metrics present on only
    one side are reported in ``only_in_a`` / ``only_in_b`` rather than
    treated as zero.  ``changed`` entries carry absolute and relative
    deltas; a relative delta within ``rel_tolerance`` counts as equal.
    """
    flat_a, flat_b = flatten(a), flatten(b)
    names_a, names_b = set(flat_a), set(flat_b)

    changed = {}
    equal = 0
    for name in sorted(names_a & names_b):
        va, vb = flat_a[name], flat_b[name]
        delta = vb - va
        rel = abs(delta) / abs(va) if va else (0.0 if delta == 0 else math.inf)
        if delta == 0 or rel <= rel_tolerance:
            equal += 1
        else:
            changed[name] = {"a": va, "b": vb, "delta": delta, "rel": rel}

    return {
        "run_a": a.get("run_id", "?"),
        "run_b": b.get("run_id", "?"),
        "same_rev": a.get("git_rev") == b.get("git_rev"),
        "same_config": a.get("config_digest") == b.get("config_digest"),
        "equal": equal,
        "changed": changed,
        "only_in_a": sorted(names_a - names_b),
        "only_in_b": sorted(names_b - names_a),
        "counter_drift": sum(
            1 for name in changed if name.startswith("counter.")
        ),
    }
