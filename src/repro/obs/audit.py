"""Cycle-resolved decision audit: a flight recorder for the schemes.

The aggregate telemetry of :mod:`repro.obs` answers *how many* errors a
scheme saw; this module answers *what happened at cycle N*.  When audit
is enabled every scheme state machine (Razor, HFG, OCST, DCS, Trident)
and :func:`repro.core.scheme_sim.build_error_trace` appends one columnar
record per decision event: the DTA error class, the scheme's decision
(detect/rollback, predict hit, false positive, avoidance, under-stall),
the stall and penalty cycles it charged, a first-occurrence flag, and
the endpoint slack against the clock/hold constraints.

Design rules, mirroring :mod:`repro.obs`:

* **Near-zero cost when off.**  Instrumented loops hoist
  ``sink = audit.get()`` once and pay a single ``None`` check per cycle
  (guarded by the overhead test in ``tests/test_audit.py``); the
  vectorised schemes skip the record loop entirely.
* **Bounded memory.**  A :class:`SamplePolicy` (``full`` /
  ``window:START:LEN`` / ``reservoir:K[:SEED]``) caps what each run
  keeps; reservoir sampling is seeded deterministically from the run's
  identity — never from pid or time — so sampled streams are
  schedule-independent.
* **Deterministic artefacts.**  Workers flush packed ``.npz`` shards
  (``audit-v1-<pid>-<tag>.npz``) that :func:`merge_audit` folds into one
  stream, deduplicating identical run blocks by content digest so
  ``--jobs 1`` and ``--jobs 2`` merge to the same stream.
* **Reports untouched.**  Audit never feeds back into
  :class:`~repro.core.schemes.base.SchemeResult` or report text; an
  audited run's report is byte-identical to an unaudited one.

:func:`replay_counters` reconstructs the ``SchemeResult`` counters of a
run exactly from a full (unsampled) stream — the conservation law the
``audit_vs_result`` QA oracle enforces.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import time
import zlib
from typing import Any

import numpy as np

from repro import obs

#: bump when the shard/stream layout changes; mismatched shards are stale.
AUDIT_VERSION = 1

# ----------------------------------------------------------------------
# decision codes
# ----------------------------------------------------------------------

#: no decision — used by error-trace (``etrace``) runs, which record the
#: classified error without any scheme acting on it.
DEC_NONE = 0
#: detect + rollback + replay (Razor-style flush).
DEC_DETECT = 1
#: a predictive stall that covered a real error.
DEC_PREDICT_HIT = 2
#: a predictive stall charged on a clean cycle.
DEC_FALSE_POSITIVE = 3
#: error pre-empted without a stall (HFG guardband, OCST tuned skew).
DEC_AVOID = 4
#: Trident: the granted stall was insufficient — flush and escalate.
DEC_UNDER_STALL = 5

DECISION_NAMES: dict[int, str] = {
    DEC_NONE: "none",
    DEC_DETECT: "detect",
    DEC_PREDICT_HIT: "predict_hit",
    DEC_FALSE_POSITIVE: "false_positive",
    DEC_AVOID: "avoid",
    DEC_UNDER_STALL: "under_stall",
}

#: column name -> dtype of one audit record (struct-of-arrays layout).
COLUMNS: tuple[tuple[str, str], ...] = (
    ("cycle", "int64"),
    ("err", "int8"),
    ("decision", "int8"),
    ("stall", "int16"),
    ("penalty", "int64"),
    ("novel", "int8"),
    ("slack_late", "float32"),
    ("slack_early", "float32"),
)

#: run-header fields carried alongside the column arrays.
HEADER_FIELDS: tuple[str, ...] = (
    "kind", "scheme", "benchmark", "corner", "base_cycles",
    "clock_period", "hold_constraint", "effective_clock_period",
    "policy", "events_seen", "digest",
)


def stable_audit_seed(*parts: Any) -> int:
    """Deterministic 31-bit seed from hashable parts (crc32, not ``hash``)."""
    return zlib.crc32(repr(parts).encode("utf-8")) & 0x7FFFFFFF


# ----------------------------------------------------------------------
# sampling policies
# ----------------------------------------------------------------------

class SamplePolicy:
    """Parsed audit sampling policy.

    * ``full`` — keep every decision event (clean cycles are implicit).
    * ``window:START:LEN`` — keep events with START <= cycle < START+LEN.
    * ``reservoir:K[:SEED]`` — algorithm-R reservoir of K events, seeded
      from SEED (default 0) combined with the run identity.
    """

    def __init__(self, text: str = "full") -> None:
        parts = str(text).split(":")
        self.mode = parts[0]
        self.window_start = 0
        self.window_len = 0
        self.capacity = 0
        self.seed = 0
        if self.mode == "full":
            if len(parts) != 1:
                raise ValueError(f"bad policy {text!r}: full takes no arguments")
        elif self.mode == "window":
            if len(parts) != 3:
                raise ValueError(f"bad policy {text!r}: want window:START:LEN")
            self.window_start = int(parts[1])
            self.window_len = int(parts[2])
            if self.window_start < 0 or self.window_len <= 0:
                raise ValueError(f"bad policy {text!r}: need START >= 0, LEN > 0")
        elif self.mode == "reservoir":
            if len(parts) not in (2, 3):
                raise ValueError(f"bad policy {text!r}: want reservoir:K[:SEED]")
            self.capacity = int(parts[1])
            self.seed = int(parts[2]) if len(parts) == 3 else 0
            if self.capacity <= 0:
                raise ValueError(f"bad policy {text!r}: need K > 0")
        else:
            raise ValueError(f"unknown audit policy {text!r}")
        self.text = self.describe()

    def describe(self) -> str:
        if self.mode == "window":
            return f"window:{self.window_start}:{self.window_len}"
        if self.mode == "reservoir":
            return f"reservoir:{self.capacity}:{self.seed}"
        return "full"


# ----------------------------------------------------------------------
# per-run recorder
# ----------------------------------------------------------------------

class RunRecorder:
    """Columnar decision buffer for one scheme/etrace simulation."""

    def __init__(
        self,
        policy: SamplePolicy,
        kind: str,
        scheme: str,
        benchmark: str,
        corner: str,
        base_cycles: int,
        clock_period: float,
        hold_constraint: float,
        t_late: np.ndarray | None = None,
        t_early: np.ndarray | None = None,
    ) -> None:
        self.policy = policy
        self.kind = kind
        self.scheme = scheme
        self.benchmark = benchmark
        self.corner = corner
        self.base_cycles = int(base_cycles)
        self.clock_period = float(clock_period)
        self.hold_constraint = float(hold_constraint)
        self.effective_clock_period = float(clock_period)
        self._t_late = t_late
        self._t_early = t_early
        self.events_seen = 0
        self.done = False
        # parallel python lists; packed to arrays at finish()
        self._cycle: list[int] = []
        self._err: list[int] = []
        self._decision: list[int] = []
        self._stall: list[int] = []
        self._penalty: list[int] = []
        self._novel: list[int] = []
        self._rng = None
        if policy.mode == "reservoir":
            self._rng = np.random.default_rng(
                stable_audit_seed(
                    policy.seed, kind, scheme, benchmark, corner, self.base_cycles
                )
            )
        self.columns: dict[str, np.ndarray] = {}
        self.digest = ""

    def decision(
        self,
        cycle: int,
        err: int,
        decision: int,
        stall: int = 0,
        penalty: int = 0,
        novel: bool = False,
    ) -> None:
        """Record one decision event (sampling applied per policy)."""
        seen = self.events_seen
        self.events_seen = seen + 1
        policy = self.policy
        if policy.mode == "window":
            if not (policy.window_start <= cycle < policy.window_start + policy.window_len):
                return
        elif policy.mode == "reservoir":
            if seen >= policy.capacity:
                slot = int(self._rng.integers(0, seen + 1))
                if slot >= policy.capacity:
                    return
                self._cycle[slot] = int(cycle)
                self._err[slot] = int(err)
                self._decision[slot] = int(decision)
                self._stall[slot] = int(stall)
                self._penalty[slot] = int(penalty)
                self._novel[slot] = int(bool(novel))
                return
        self._cycle.append(int(cycle))
        self._err.append(int(err))
        self._decision.append(int(decision))
        self._stall.append(int(stall))
        self._penalty.append(int(penalty))
        self._novel.append(int(bool(novel)))

    def finish(self, effective_clock_period: float | None = None) -> "RunRecorder":
        """Pack the buffers into sorted column arrays and seal the run."""
        if self.done:
            return self
        if effective_clock_period is not None:
            self.effective_clock_period = float(effective_clock_period)
        cycle = np.asarray(self._cycle, dtype=np.int64)
        order = np.argsort(cycle, kind="stable")
        self.columns = {
            "cycle": cycle[order],
            "err": np.asarray(self._err, dtype=np.int8)[order],
            "decision": np.asarray(self._decision, dtype=np.int8)[order],
            "stall": np.asarray(self._stall, dtype=np.int16)[order],
            "penalty": np.asarray(self._penalty, dtype=np.int64)[order],
            "novel": np.asarray(self._novel, dtype=np.int8)[order],
        }
        kept = self.columns["cycle"]
        if self._t_late is not None and len(self._t_late):
            idx = np.clip(kept, 0, len(self._t_late) - 1)
            slack_late = self.clock_period - np.asarray(self._t_late)[idx]
            slack_early = np.asarray(self._t_early)[idx] - self.hold_constraint
        else:
            slack_late = np.zeros(len(kept))
            slack_early = np.zeros(len(kept))
        self.columns["slack_late"] = slack_late.astype(np.float32)
        self.columns["slack_early"] = slack_early.astype(np.float32)
        self._cycle = self._err = self._decision = []
        self._stall = self._penalty = self._novel = []
        self._t_late = self._t_early = None
        self.digest = _digest_columns(self.columns)
        self.done = True
        if obs.enabled():
            obs.inc("audit.runs", kind=self.kind)
            obs.inc("audit.records", len(kept), kind=self.kind)
        return self

    def to_block(self) -> dict[str, Any]:
        """The serialisable run block (header fields + column arrays)."""
        block: dict[str, Any] = {
            "kind": self.kind,
            "scheme": self.scheme,
            "benchmark": self.benchmark,
            "corner": self.corner,
            "base_cycles": self.base_cycles,
            "clock_period": self.clock_period,
            "hold_constraint": self.hold_constraint,
            "effective_clock_period": self.effective_clock_period,
            "policy": self.policy.text,
            "events_seen": self.events_seen,
            "digest": self.digest,
            "columns": dict(self.columns),
        }
        return block


def _digest_columns(columns: dict[str, np.ndarray]) -> str:
    hasher = hashlib.sha256()
    for name, _dtype in COLUMNS:
        hasher.update(np.ascontiguousarray(columns[name]).tobytes())
    return hasher.hexdigest()[:16]


# ----------------------------------------------------------------------
# process-level recorder (shard writer)
# ----------------------------------------------------------------------

class AuditRecorder:
    """Per-process audit sink accumulating finished run blocks."""

    def __init__(
        self,
        policy: str | SamplePolicy = "full",
        shard_dir: str | None = None,
        trace_id: str = "",
    ) -> None:
        self.policy = policy if isinstance(policy, SamplePolicy) else SamplePolicy(policy)
        self.shard_dir = shard_dir
        self.trace_id = trace_id
        self.pid = os.getpid()
        self._shard_tag = time.time_ns()
        self.runs: list[RunRecorder] = []

    def begin_run(
        self,
        kind: str,
        scheme: str,
        benchmark: str,
        corner: str,
        base_cycles: int,
        clock_period: float,
        hold_constraint: float,
        t_late: np.ndarray | None = None,
        t_early: np.ndarray | None = None,
    ) -> RunRecorder:
        run = RunRecorder(
            self.policy,
            kind,
            scheme,
            benchmark,
            corner,
            base_cycles,
            clock_period,
            hold_constraint,
            t_late=t_late,
            t_early=t_early,
        )
        self.runs.append(run)
        return run

    def begin_scheme_run(self, scheme_name: str, trace: Any) -> RunRecorder:
        """Convenience entry point for the scheme state machines."""
        return self.begin_run(
            kind="scheme",
            scheme=scheme_name,
            benchmark=trace.benchmark,
            corner=trace.corner,
            base_cycles=len(trace),
            clock_period=trace.clock_period,
            hold_constraint=trace.hold_constraint,
            t_late=trace.t_late,
            t_early=trace.t_early,
        )

    def snapshot_runs(self) -> list[dict[str, Any]]:
        """Finished run blocks (unfinished runs are skipped, not broken)."""
        return [run.to_block() for run in self.runs if run.done]

    def shard_path(self) -> str | None:
        if self.shard_dir is None:
            return None
        name = f"audit-v{AUDIT_VERSION}-{self.pid}-{self._shard_tag}.npz"
        return os.path.join(self.shard_dir, name)

    def flush(self) -> None:
        """Atomically (re)write this process's shard; never raises."""
        path = self.shard_path()
        if path is None:
            return
        try:
            _write_npz(path, {
                "version": AUDIT_VERSION,
                "pid": self.pid,
                "trace_id": self.trace_id,
                "policy": self.policy.text,
            }, self.snapshot_runs())
        except Exception:
            # Telemetry must never take down a run; a missing shard just
            # reduces audit coverage (and is reported as stale on scan).
            pass


def _write_npz(path: str, header: dict[str, Any], runs: list[dict[str, Any]]) -> None:
    header = dict(header)
    header["runs"] = [
        {field: run[field] for field in HEADER_FIELDS} for run in runs
    ]
    payload: dict[str, np.ndarray] = {
        "__header__": np.frombuffer(
            json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
        ),
    }
    for index, run in enumerate(runs):
        for name, dtype in COLUMNS:
            payload[f"r{index}/{name}"] = np.asarray(run["columns"][name], dtype=dtype)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".npz.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_npz(path: str) -> dict[str, Any]:
    with np.load(path) as data:
        header = json.loads(bytes(data["__header__"].tobytes()).decode("utf-8"))
        runs: list[dict[str, Any]] = []
        for index, run_header in enumerate(header.get("runs", [])):
            run = dict(run_header)
            run["columns"] = {
                name: np.array(data[f"r{index}/{name}"], dtype=dtype)
                for name, dtype in COLUMNS
            }
            runs.append(run)
    header["runs"] = runs
    return header


# ----------------------------------------------------------------------
# shard scan / merge / stream IO
# ----------------------------------------------------------------------

_SHARD_NAME = re.compile(r"^audit-v(\d+)-(\d+)-\d+\.npz$")


def scan_audit_shards(shard_dir: str) -> tuple[list[dict[str, Any]], int]:
    """Load every current-version audit shard under ``shard_dir``.

    Returns ``(documents, stale)`` where ``stale`` counts shards whose
    filename or header version/pid did not line up (leftovers from an
    older layout or a recycled pid) — skipped, like ``obs.scan_shards``.
    """
    documents: list[dict[str, Any]] = []
    stale = 0
    try:
        names = sorted(os.listdir(shard_dir))
    except OSError:
        return [], 0
    for name in names:
        match = _SHARD_NAME.match(name)
        if match is None:
            continue
        if int(match.group(1)) != AUDIT_VERSION:
            stale += 1
            continue
        path = os.path.join(shard_dir, name)
        try:
            document = _read_npz(path)
        except Exception:
            stale += 1
            continue
        if document.get("version") != AUDIT_VERSION:
            stale += 1
            continue
        if int(document.get("pid", -1)) != int(match.group(2)):
            stale += 1
            continue
        documents.append(document)
    return documents, stale


def _run_key(run: dict[str, Any]) -> tuple:
    return (
        str(run.get("kind", "")),
        str(run.get("scheme", "")),
        str(run.get("benchmark", "")),
        str(run.get("corner", "")),
        int(run.get("base_cycles", 0)),
        str(run.get("policy", "")),
        str(run.get("digest", "")),
    )


def merge_audit(documents: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Fold shard documents into one deduplicated, deterministic stream.

    Identical run blocks (same identity *and* content digest) collapse to
    one — a serial run memoises each simulation while parallel workers
    re-simulate per task, so deduplication is what makes the merged
    stream schedule-independent.  Output order is the sorted run key.
    """
    by_key: dict[tuple, dict[str, Any]] = {}
    for document in documents:
        for run in document.get("runs", []):
            by_key.setdefault(_run_key(run), run)
    return [by_key[key] for key in sorted(by_key)]


def write_audit(path: str, runs: list[dict[str, Any]],
                trace_id: str = "", policy: str = "full") -> None:
    """Write a merged audit stream as one packed ``.npz`` (atomic)."""
    _write_npz(path, {
        "version": AUDIT_VERSION,
        "pid": os.getpid(),
        "trace_id": trace_id,
        "policy": policy,
    }, runs)


def load_audit(path: str) -> dict[str, Any]:
    """Load a merged audit stream written by :func:`write_audit`."""
    document = _read_npz(path)
    if document.get("version") != AUDIT_VERSION:
        raise ValueError(
            f"{path}: audit version {document.get('version')} != {AUDIT_VERSION}"
        )
    return document


# ----------------------------------------------------------------------
# replay / export / rollup
# ----------------------------------------------------------------------

def replay_counters(run: dict[str, Any]) -> dict[str, Any]:
    """Reconstruct the ``SchemeResult`` counters from a full scheme run.

    Only a ``policy=full`` scheme run carries every decision, so only
    there is exact reconstruction possible — the conservation law the
    ``audit_vs_result`` oracle checks.
    """
    if run.get("kind") != "scheme":
        raise ValueError(f"cannot replay counters of a {run.get('kind')!r} run")
    if run.get("policy") != "full":
        raise ValueError(
            f"exact replay needs policy=full, got {run.get('policy')!r}"
        )
    columns = run["columns"]
    decision = columns["decision"]
    flushes = int(((decision == DEC_DETECT) | (decision == DEC_UNDER_STALL)).sum())
    predicted = int(((decision == DEC_PREDICT_HIT) | (decision == DEC_AVOID)).sum())
    false_positives = int((decision == DEC_FALSE_POSITIVE).sum())
    return {
        "scheme": run["scheme"],
        "benchmark": run["benchmark"],
        "base_cycles": int(run["base_cycles"]),
        "penalty_cycles": int(columns["penalty"].sum()),
        "effective_clock_period": float(run["effective_clock_period"]),
        "errors_total": predicted + flushes,
        "errors_predicted": predicted,
        "errors_missed": flushes,
        "false_positives": false_positives,
        "stalls": int(columns["stall"].sum()),
        "flushes": flushes,
        "unique_instances": int(columns["novel"].sum()),
    }


def run_label(run: dict[str, Any]) -> str:
    """Human-readable run identity for CLI / trace output."""
    who = run.get("scheme") or "etrace"
    return f"{who}:{run.get('benchmark', '?')}@{run.get('corner', '?')}"


def audit_trace_document(runs: list[dict[str, Any]], trace_id: str = "") -> dict[str, Any]:
    """Perfetto-loadable trace: one thread lane per run, instant events
    per decision, and a cumulative penalty counter track.

    Timestamps are the simulated cycle numbers (1 cycle = 1 us in the
    viewer), riding the run's ``trace_id`` like the span traces of PR 8.
    """
    if not runs:
        raise ValueError("no audit runs to export")
    events: list[dict[str, Any]] = []
    for tid, run in enumerate(runs):
        events.append({
            "name": "thread_name", "ph": "M", "ts": 0, "pid": 0, "tid": tid,
            "args": {"name": run_label(run)},
        })
        columns = run["columns"]
        cumulative = 0
        for row in range(len(columns["cycle"])):
            code = int(columns["decision"][row])
            cycle = int(columns["cycle"][row])
            events.append({
                "name": DECISION_NAMES.get(code, str(code)),
                "cat": "audit",
                "ph": "i",
                "ts": cycle,
                "pid": 0,
                "tid": tid,
                "args": {
                    "err": int(columns["err"][row]),
                    "stall": int(columns["stall"][row]),
                    "penalty": int(columns["penalty"][row]),
                    "slack_late_ps": float(columns["slack_late"][row]),
                },
            })
            cumulative += int(columns["penalty"][row])
            events.append({
                "name": f"penalty:{run_label(run)}",
                "ph": "C", "ts": cycle, "pid": 0, "tid": tid,
                "args": {"cycles": cumulative},
            })
    return obs.trace_document(events, trace_id=trace_id)


def audit_document(runs: list[dict[str, Any]], policy: str = "full",
                   trace_id: str = "") -> dict[str, Any]:
    """JSON summary of a stream (what ``audit.schema.json`` validates)."""
    summaries = []
    for run in runs:
        decision = run["columns"]["decision"]
        summaries.append({
            "kind": str(run["kind"]),
            "scheme": str(run["scheme"]),
            "benchmark": str(run["benchmark"]),
            "corner": str(run["corner"]),
            "base_cycles": int(run["base_cycles"]),
            "policy": str(run["policy"]),
            "records": int(len(decision)),
            "events_seen": int(run["events_seen"]),
            "digest": str(run["digest"]),
            "decisions": {
                name: int((decision == code).sum())
                for code, name in DECISION_NAMES.items()
            },
        })
    return {
        "version": AUDIT_VERSION,
        "policy": policy,
        "trace_id": trace_id,
        "runs": summaries,
    }


#: timeline glyphs by decision code, in increasing severity.
_TIMELINE_SEVERITY: tuple[tuple[int, str], ...] = (
    (DEC_NONE, "e"),  # an observed errant cycle (etrace runs)
    (DEC_AVOID, "a"),
    (DEC_PREDICT_HIT, "p"),
    (DEC_FALSE_POSITIVE, "f"),
    (DEC_DETECT, "D"),
    (DEC_UNDER_STALL, "U"),
)

#: width of the dashboard/ledger timeline strings, in buckets.
TIMELINE_BUCKETS = 96


def decision_timeline(run: dict[str, Any], buckets: int = TIMELINE_BUCKETS) -> str:
    """Bucketed severity string of a run ('.'=quiet, worst glyph wins)."""
    base = max(int(run.get("base_cycles", 0)), 1)
    buckets = max(1, min(buckets, base))
    columns = run["columns"]
    glyphs = ["."] * buckets
    severity = [0] * buckets
    rank = {code: index + 1 for index, (code, _g) in enumerate(_TIMELINE_SEVERITY)}
    glyph = {code: g for code, g in _TIMELINE_SEVERITY}
    for row in range(len(columns["cycle"])):
        code = int(columns["decision"][row])
        level = rank.get(code, 0)
        if level == 0:
            continue
        bucket = min(int(columns["cycle"][row]) * buckets // base, buckets - 1)
        if level > severity[bucket]:
            severity[bucket] = level
            glyphs[bucket] = glyph[code]
    return "".join(glyphs)


def audit_rollup(runs: list[dict[str, Any]]) -> dict[str, Any]:
    """Per-scheme decision rollup for the run-ledger ``audit`` section."""
    schemes: dict[str, dict[str, Any]] = {}
    policy = ""
    records = 0
    for run in runs:
        policy = policy or str(run.get("policy", ""))
        columns = run["columns"]
        records += len(columns["decision"])
        if run.get("kind") != "scheme":
            continue
        entry = schemes.setdefault(str(run["scheme"]), {
            "records": 0, "detect": 0, "predict": 0, "false_positive": 0,
            "avoid": 0, "under_stall": 0, "penalty_cycles": 0, "timeline": "",
        })
        decision = columns["decision"]
        entry["records"] += len(decision)
        entry["detect"] += int((decision == DEC_DETECT).sum())
        entry["predict"] += int((decision == DEC_PREDICT_HIT).sum())
        entry["false_positive"] += int((decision == DEC_FALSE_POSITIVE).sum())
        entry["avoid"] += int((decision == DEC_AVOID).sum())
        entry["under_stall"] += int((decision == DEC_UNDER_STALL).sum())
        entry["penalty_cycles"] += int(columns["penalty"].sum())
        if not entry["timeline"]:
            entry["timeline"] = decision_timeline(run)
    return {
        "policy": policy,
        "runs": len(runs),
        "records": records,
        "schemes": {name: schemes[name] for name in sorted(schemes)},
    }


# ----------------------------------------------------------------------
# process lifecycle (mirrors repro.obs)
# ----------------------------------------------------------------------

#: the process-global audit sink; ``None`` means audit is off.
_sink: AuditRecorder | None = None


def enable(recorder: AuditRecorder) -> AuditRecorder:
    """Install ``recorder`` as this process's audit sink."""
    global _sink
    _sink = recorder
    return recorder


def disable() -> None:
    """Turn audit off (the default state)."""
    global _sink
    _sink = None


def enabled() -> bool:
    return _sink is not None


def get() -> AuditRecorder | None:
    """The hot-path accessor: hoist into a local before a cycle loop."""
    return _sink


def ensure_worker(
    shard_dir: str | None,
    policy: str | None = "full",
    trace_id: str = "",
) -> AuditRecorder | None:
    """Give a worker process its own audit recorder (fork-safe).

    Like :func:`repro.obs.ensure_worker`: an inherited recorder whose pid
    is not ours would replay the parent's history into the worker's
    shard, so it is replaced; ``shard_dir=None`` (audit off) drops any
    inherited recorder.
    """
    global _sink
    if shard_dir is None:
        if _sink is not None and _sink.pid != os.getpid():
            _sink = None
        return None
    sink = _sink
    if sink is not None and sink.pid == os.getpid():
        return sink
    return enable(AuditRecorder(
        policy=policy or "full", shard_dir=shard_dir, trace_id=trace_id,
    ))


def flush_worker() -> None:
    """Rewrite the current worker's audit shard (idempotent, never raises)."""
    sink = _sink
    if sink is not None and sink.shard_dir is not None:
        sink.flush()
