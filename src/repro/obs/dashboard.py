"""Self-contained HTML observability dashboard.

:func:`render_dashboard` turns ledger records into **one** HTML file
with zero external fetches — no scripts, no stylesheets, no fonts, no
images beyond inline SVG — so CI can upload it as an artifact and it
renders anywhere, offline, forever.

Layout: stat tiles (runs, pass rate, span total, checkpoint hit-rate),
then an inline-SVG sparkline per ledger metric series, a
spans-by-wall-clock table, the per-scheme domain-counter breakdown
(errors / rollbacks / replays / stalls per scheme), and a pointer to
the Perfetto trace for drill-down.  Light and dark render from the same
markup via CSS custom properties + ``prefers-color-scheme``; hover
values come from native SVG ``<title>`` tooltips, keeping the file
JavaScript-free.
"""

from __future__ import annotations

import html
from typing import Any

from repro.obs import trends

#: sparkline geometry (px).
SPARK_W, SPARK_H, SPARK_PAD = 220, 44, 6

_CSS = """
:root {
  color-scheme: light dark;
  --page: #f9f9f7;
  --surface: #fcfcfb;
  --ink: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --border: rgba(11, 11, 11, 0.10);
  --series: #2a78d6;
  --bad: #d03b3b;
  --good: #006300;
}
@media (prefers-color-scheme: dark) {
  :root {
    --page: #0d0d0d;
    --surface: #1a1a19;
    --ink: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --border: rgba(255, 255, 255, 0.10);
    --series: #3987e5;
    --bad: #d03b3b;
    --good: #0ca30c;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0;
  padding: 24px;
  background: var(--page);
  color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface);
  border: 1px solid var(--border);
  border-radius: 8px;
  padding: 12px 16px;
  min-width: 150px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; }
.tile .delta { font-size: 12px; }
.delta.up-bad { color: var(--bad); }
.delta.ok { color: var(--good); }
table {
  border-collapse: collapse;
  background: var(--surface);
  border: 1px solid var(--border);
  border-radius: 8px;
  width: 100%;
}
th, td { padding: 6px 12px; text-align: left; border-top: 1px solid var(--grid); }
thead th { border-top: none; color: var(--ink-2); font-weight: 500; font-size: 12px; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
td.metric { color: var(--ink-2); font-family: ui-monospace, monospace; font-size: 12px; }
.spark line { stroke: var(--grid); stroke-width: 1; }
.spark polyline {
  fill: none;
  stroke: var(--series);
  stroke-width: 2;
  stroke-linejoin: round;
  stroke-linecap: round;
}
.spark .dot { fill: var(--series); stroke: var(--surface); stroke-width: 2; }
.lane line { stroke: var(--grid); stroke-width: 1; }
.lane .bar { fill: var(--series); rx: 2; }
.lane .bar.bad { fill: var(--bad); }
.lane .bar.open { fill: var(--muted); }
.lane .mark { fill: var(--ink-2); font-size: 11px; text-anchor: middle; }
.drift { color: var(--bad); font-weight: 600; }
.footer { color: var(--muted); font-size: 12px; margin-top: 28px; }
a { color: var(--series); }
"""


def _fmt(value: float) -> str:
    """Compact human value: 1284 -> 1,284; 0.123456 -> 0.1235."""
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.4g}"


def _sparkline(values: list[float], name: str) -> str:
    """Inline SVG sparkline: 2px series line, ringed end-dot, native
    ``<title>`` tooltip carrying the raw values."""
    w, h, pad = SPARK_W, SPARK_H, SPARK_PAD
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    step = (w - 2 * pad) / max(n - 1, 1)
    points = [
        (pad + i * step, h - pad - (v - lo) / span * (h - 2 * pad))
        for i, v in enumerate(values)
    ]
    coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    end_x, end_y = points[-1]
    baseline_y = h - pad
    title = html.escape(f"{name}: " + " → ".join(_fmt(v) for v in values))
    polyline = (
        f'<polyline points="{coords}" />'
        if n > 1
        else ""
    )
    return (
        f'<svg class="spark" width="{w}" height="{h}" role="img" '
        f'aria-label="{html.escape(name)} trend">'
        f"<title>{title}</title>"
        f'<line x1="{pad}" y1="{baseline_y}" x2="{w - pad}" y2="{baseline_y}" />'
        f"{polyline}"
        f'<circle class="dot" cx="{end_x:.1f}" cy="{end_y:.1f}" r="4" />'
        f"</svg>"
    )


def _tile(label: str, value: str, delta: str = "", delta_class: str = "") -> str:
    delta_html = (
        f'<div class="delta {delta_class}">{html.escape(delta)}</div>' if delta else ""
    )
    return (
        f'<div class="tile"><div class="label">{html.escape(label)}</div>'
        f'<div class="value">{html.escape(value)}</div>{delta_html}</div>'
    )


def _scheme_breakdown(domain: dict[str, float]) -> list[tuple[str, dict[str, float]]]:
    """Pivot ``scheme.<counter>{scheme=NAME}`` counters to per-scheme rows."""
    per_scheme: dict[str, dict[str, float]] = {}
    for name, value in domain.items():
        if not name.startswith("scheme.") or "{" not in name:
            continue
        base, labels = name[len("scheme."):].split("{", 1)
        scheme = ""
        for part in labels.rstrip("}").split(","):
            key, _, val = part.partition("=")
            if key == "scheme":
                scheme = val
        if scheme:
            per_scheme.setdefault(scheme, {})[base] = value
    return sorted(per_scheme.items())


#: fleet-lane timeline geometry (px).
LANE_W, LANE_ROW_H, LANE_PAD = 720, 24, 6

#: event kinds drawn as markers (not bars) on a fleet lane.
_LANE_MARKS = {"steal": "⇄", "partition": "✕", "crash": "✕", "resubmit": "↻"}


def _fleet_lanes(events: list[dict[str, Any]]) -> str:
    """Per-worker task-interval timeline from one run's event stream.

    Each worker gets a lane; a bar spans claimed→result for every task
    it ran (red if the task ended in a crash/partition), with steal /
    partition / resubmit markers overlaid.  Pure inline SVG with native
    ``<title>`` tooltips, like the sparklines.
    """
    stamps = [float(e.get("ts", 0.0)) for e in events if e.get("ts")]
    if not stamps:
        return ""
    t0, t1 = min(stamps), max(stamps)
    span = (t1 - t0) or 1.0

    def x_of(ts: float) -> float:
        return LANE_PAD + (ts - t0) / span * (LANE_W - 2 * LANE_PAD)

    lanes: dict[str, dict[str, Any]] = {}
    open_tasks: dict[tuple[str, str], float] = {}
    for event in events:
        label = event.get("worker")
        if not label:
            continue
        lane = lanes.setdefault(label, {"bars": [], "marks": [], "tier": ""})
        kind = event.get("kind")
        ts = float(event.get("ts", 0.0))
        eid = event.get("experiment") or ""
        if kind == "claimed" or (kind == "started"
                                 and (label, eid) not in open_tasks):
            open_tasks[(label, eid)] = ts
        elif kind in ("result", "crash", "partition") and (label, eid) in open_tasks:
            start = open_tasks.pop((label, eid))
            status = str(event.get("status", kind))
            lane["bars"].append((start, ts, eid, status))
        if kind in _LANE_MARKS:
            lane["marks"].append((ts, kind, eid))
        if kind == "clock":
            lane["tier"] = str(event.get("tier", ""))
    for (label, eid), start in open_tasks.items():  # still running at EOF
        lanes[label]["bars"].append((start, t1, eid, "running"))

    rows = []
    for label in sorted(lanes):
        lane = lanes[label]
        h = LANE_ROW_H
        bars = []
        for start, end, eid, status in lane["bars"]:
            x, x2 = x_of(start), x_of(end)
            bad = status in ("crash", "partition", "timeout", "exception")
            cls = "bad" if bad else ("open" if status == "running" else "")
            title = html.escape(f"{eid}: {status} ({end - start:.2f}s)")
            bars.append(
                f'<rect class="bar {cls}" x="{x:.1f}" y="4" '
                f'width="{max(x2 - x, 2.0):.1f}" height="{h - 8}">'
                f"<title>{title}</title></rect>"
            )
        marks = []
        for ts, kind, eid in lane["marks"]:
            title = html.escape(f"{kind} {eid}".strip())
            marks.append(
                f'<text class="mark" x="{x_of(ts):.1f}" y="{h - 7}">'
                f"{_LANE_MARKS[kind]}<title>{title}</title></text>"
            )
        name = label + (f" · {lane['tier']}" if lane["tier"] else "")
        rows.append(
            f'<tr><td class="metric">{html.escape(name)}</td>'
            f'<td><svg class="lane" width="{LANE_W}" height="{h}" role="img" '
            f'aria-label="{html.escape(label)} timeline">'
            f'<line x1="{LANE_PAD}" y1="{h - 4}" x2="{LANE_W - LANE_PAD}" '
            f'y2="{h - 4}" />{"".join(bars)}{"".join(marks)}</svg></td></tr>'
        )
    counts: dict[str, int] = {}
    for event in events:
        kind = str(event.get("kind", "?"))
        counts[kind] = counts.get(kind, 0) + 1
    legend = " · ".join(f"{k}: {counts[k]}" for k in sorted(counts))
    return (
        f"<h2>Fleet lanes ({span:.1f} s, {len(lanes)} worker(s))</h2>"
        f"<table><thead><tr><th>Worker</th><th>Timeline</th></tr></thead>"
        f"<tbody>{''.join(rows) or _EMPTY_ROW}</tbody></table>"
        f'<p class="sub">{html.escape(legend)}</p>'
    )


#: audit decision-timeline columns: (rollup key, column header).
_AUDIT_COLS = (
    ("detect", "detect"),
    ("predict", "predict"),
    ("false_positive", "false+"),
    ("avoid", "avoid"),
    ("under_stall", "under-stall"),
    ("penalty_cycles", "penalty cyc"),
)


def _audit_panel(rollup: dict[str, Any]) -> str:
    """Per-scheme decision-timeline panel from the ledger audit rollup.

    Each scheme row shows its decision counts plus the bucketed severity
    timeline string recorded by :func:`repro.obs.audit.decision_timeline`
    ('.' quiet, a=avoid, p=predict, f=false-positive, D=detect,
    U=under-stall) — the cycle-resolved story behind the aggregate
    counters above it.
    """
    schemes = rollup.get("schemes", {}) if rollup else {}
    if not schemes:
        return ""
    head = "".join(f'<th class="num">{html.escape(h)}</th>' for _k, h in _AUDIT_COLS)
    rows = []
    for scheme in sorted(schemes):
        entry = schemes[scheme]
        cells = "".join(
            f'<td class="num">{_fmt(float(entry.get(key, 0)))}</td>'
            for key, _h in _AUDIT_COLS
        )
        timeline = html.escape(str(entry.get("timeline", "")))
        rows.append(
            f"<tr><td>{html.escape(scheme)}</td>{cells}"
            f'<td class="metric">{timeline}</td></tr>'
        )
    policy = html.escape(str(rollup.get("policy", "full")))
    records = int(rollup.get("records", 0))
    return (
        "<h2>Audit decision timelines (latest run)</h2>"
        f"<table><thead><tr><th>Scheme</th>{head}<th>Timeline</th></tr></thead>"
        f'<tbody>{"".join(rows)}</tbody></table>'
        f'<p class="sub">policy {policy} · {records} record(s) · '
        "glyphs: a=avoid p=predict f=false-positive D=detect U=under-stall</p>"
    )


def render_dashboard(
    records: list[dict[str, Any]],
    trace_path: str | None = None,
    max_series: int = 200,
    events_path: str | None = None,
) -> str:
    """Render the full dashboard HTML for the given ledger records."""
    latest = records[-1] if records else {}
    series = trends.history(records)
    findings = trends.detect_drift(records)
    drifted = {f["metric"] for f in findings if f["drifted"]}

    experiments = latest.get("experiments", {})
    ok = sum(1 for e in experiments.values() if e.get("status") == "ok")
    hit_rate = latest.get("checkpoint", {}).get("hit_rate")
    rev = str(latest.get("git_rev", "unknown"))

    tiles = [
        _tile("Runs recorded", _fmt(len(records))),
        _tile(
            "Experiments ok (latest run)",
            f"{ok}/{len(experiments)}" if experiments else "—",
            delta="all passing" if experiments and ok == len(experiments) else
            (f"{len(experiments) - ok} failing" if experiments else ""),
            delta_class="ok" if ok == len(experiments) else "up-bad",
        ),
        _tile("Span total (latest run)",
              f"{latest.get('span_total_s', 0.0):.2f} s" if records else "—"),
        _tile("Checkpoint hit-rate",
              f"{hit_rate:.0%}" if isinstance(hit_rate, float) else "—"),
        _tile("Metrics drifting", _fmt(len(drifted)),
              delta="MAD z-score gate" if findings else "needs ≥ 4 runs",
              delta_class="up-bad" if drifted else "ok"),
    ]

    spark_rows = []
    for name in sorted(series)[:max_series]:
        values = series[name]
        flag = ' <span class="drift">drift</span>' if name in drifted else ""
        spark_rows.append(
            f'<tr><td class="metric">{html.escape(name)}{flag}</td>'
            f"<td>{_sparkline(values, name)}</td>"
            f'<td class="num">{html.escape(_fmt(values[-1]))}</td></tr>'
        )

    span_rows = []
    for name, seconds in sorted(
        latest.get("spans", {}).items(), key=lambda kv: -kv[1]
    ):
        span_rows.append(
            f'<tr><td class="metric">{html.escape(name)}</td>'
            f'<td class="num">{seconds:.4f}</td></tr>'
        )

    scheme_counters = _scheme_breakdown(latest.get("domain", {}))
    counter_names = sorted({c for _, counters in scheme_counters for c in counters})
    scheme_head = "".join(
        f'<th class="num">{html.escape(c)}</th>' for c in counter_names
    )
    scheme_rows = []
    for scheme, counters in scheme_counters:
        cells = "".join(
            f'<td class="num">{_fmt(counters[c]) if c in counters else "—"}</td>'
            for c in counter_names
        )
        scheme_rows.append(f"<tr><td>{html.escape(scheme)}</td>{cells}</tr>")

    trace_note = (
        f'<p class="sub">Trace: open <a href="https://ui.perfetto.dev">'
        f"ui.perfetto.dev</a> and load <code>{html.escape(trace_path)}</code> "
        f"for span-level drill-down.</p>"
        if trace_path
        else ""
    )

    fleet_section = ""
    if events_path:
        from repro.obs.events import read_events

        fleet_section = _fleet_lanes(read_events(events_path))

    sections = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        '<meta name="viewport" content="width=device-width, initial-scale=1">',
        "<title>Run ledger dashboard</title>",
        f"<style>{_CSS}</style></head><body>",
        "<h1>Run ledger dashboard</h1>",
        f'<p class="sub">{len(records)} run(s) · latest rev '
        f"<code>{html.escape(rev[:12])}</code> · config "
        f"<code>{html.escape(str(latest.get('config_digest', '?'))[:12])}</code></p>",
        f'<div class="tiles">{"".join(tiles)}</div>',
        (
            f"<h2>Metric trends ({len(spark_rows)} of {len(series)} series — "
            f"{len(series) - len(spark_rows)} truncated)</h2>"
            if len(series) > max_series
            else f"<h2>Metric trends ({len(spark_rows)} series)</h2>"
        ),
        '<table><thead><tr><th>Metric</th><th>Trend</th>'
        '<th class="num">Latest</th></tr></thead>'
        f'<tbody>{"".join(spark_rows) or _EMPTY_ROW}</tbody></table>',
        "<h2>Spans by wall-clock (latest run)</h2>",
        '<table><thead><tr><th>Span</th><th class="num">Total s</th></tr></thead>'
        f'<tbody>{"".join(span_rows) or _EMPTY_ROW}</tbody></table>',
        "<h2>Per-scheme domain counters (latest run)</h2>",
        f"<table><thead><tr><th>Scheme</th>{scheme_head}</tr></thead>"
        f'<tbody>{"".join(scheme_rows) or _EMPTY_ROW}</tbody></table>',
        _audit_panel(latest.get("audit", {})),
        fleet_section,
        trace_note,
        '<p class="footer">Generated by <code>python -m repro.experiments '
        "ledger html</code> · self-contained, no external resources.</p>",
        "</body></html>",
    ]
    return "\n".join(s for s in sections if s)


_EMPTY_ROW = '<tr><td colspan="9" class="metric">no data yet</td></tr>'
