"""repro: reproduction of "Revamping timing error resilience to tackle
choke points at NTC systems" (Bal, Saha, Roy, Chakraborty -- DATE 2017),
plus the dissertation's Trident extension (TVLSI/DATE 2018).

Quick tour of the public API::

    from repro import (
        build_ex_stage, NTC,            # circuit + corner
        BENCHMARKS, generate_trace,     # workloads
        build_error_trace,              # per-cycle timing-error trace
        DcsScheme, TridentScheme,       # the paper's techniques
        RazorScheme, HfgScheme, OcstScheme,  # baselines
    )

    stage = build_ex_stage(width=32, corner=NTC)
    chip = stage.fabricate(seed=41)
    trace = generate_trace(BENCHMARKS["mcf"], 20_000, width=32)
    errors = build_error_trace(stage, chip, trace)
    result = DcsScheme("icslt", capacity=128).simulate(errors)
    print(result.prediction_accuracy, result.penalty_cycles)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.analysis import ShmooResult, shmoo_sweep
from repro.arch.cpu import InOrderPipeline, MitigationKind, run_pipeline
from repro.arch.trace import BENCHMARKS, BenchmarkConfig, generate_trace
from repro.circuits.alu import Alu, AluOp, alu_reference, build_alu
from repro.circuits.ex_stage import ExStage, build_ex_stage
from repro.core.dcs import DcsScheme
from repro.core.scheme_sim import ErrorTrace, build_error_trace
from repro.core.schemes import HfgScheme, OcstScheme, RazorScheme, SchemeResult
from repro.core.trident import TridentScheme
from repro.gates.builder import NetlistBuilder
from repro.gates.netlist import Netlist
from repro.pv.chip import ChipSample, fabricate_chip
from repro.pv.delaymodel import NTC, STC, Corner
from repro.pv.varius import VariusParams
from repro.timing.report import timing_report

__version__ = "1.0.0"

__all__ = [
    "Alu",
    "AluOp",
    "BENCHMARKS",
    "BenchmarkConfig",
    "ChipSample",
    "Corner",
    "DcsScheme",
    "ErrorTrace",
    "ExStage",
    "HfgScheme",
    "InOrderPipeline",
    "MitigationKind",
    "NTC",
    "Netlist",
    "NetlistBuilder",
    "OcstScheme",
    "RazorScheme",
    "STC",
    "SchemeResult",
    "ShmooResult",
    "TridentScheme",
    "VariusParams",
    "alu_reference",
    "build_alu",
    "build_error_trace",
    "build_ex_stage",
    "fabricate_chip",
    "generate_trace",
    "run_pipeline",
    "shmoo_sweep",
    "timing_report",
    "__version__",
]
