"""Architecture substrate: ISA, benchmark traces, and the pipeline model.

Replaces the paper's FabScalar Core-1 (11-stage out-of-order superscalar)
running six SPEC CPU2000 benchmarks.  What the reproduced results depend
on is not the microarchitecture itself but the *input-vector streams* the
EX stage sees and the pipeline's penalty-cycle costs; this package
provides both:

* :mod:`repro.arch.isa` -- a MIPS-like instruction subset mapped onto the
  ALU operations,
* :mod:`repro.arch.operands` -- OWM and operand-size classification,
* :mod:`repro.arch.trace` -- seeded synthetic trace generators with
  per-benchmark instruction mixes, sequence locality and value locality,
* :mod:`repro.arch.pipeline` -- the 11-stage pipeline cost model.
"""

from repro.arch.isa import INSTRUCTIONS, Instr, InstrSpec, instr_to_alu
from repro.arch.operands import operand_size_class, owm_flag, significant_width
from repro.arch.trace import (
    BENCHMARKS,
    BenchmarkConfig,
    InstructionTrace,
    generate_trace,
)
from repro.arch.pipeline import PipelineConfig
from repro.arch.cpu import ExecutionStats, InOrderPipeline, MitigationKind, run_pipeline

__all__ = [
    "BENCHMARKS",
    "ExecutionStats",
    "InOrderPipeline",
    "MitigationKind",
    "run_pipeline",
    "BenchmarkConfig",
    "INSTRUCTIONS",
    "Instr",
    "InstrSpec",
    "InstructionTrace",
    "PipelineConfig",
    "generate_trace",
    "instr_to_alu",
    "operand_size_class",
    "owm_flag",
    "significant_width",
]
