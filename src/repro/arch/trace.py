"""Synthetic benchmark trace generation (the SPEC CPU2000 substitute).

SPEC binaries and the FabScalar RTL are not available, so each benchmark
is modelled as a seeded synthetic program whose *statistical* properties
match what the paper's results depend on:

* **instruction mix** -- which ALU operations dominate,
* **sequence locality** -- programs execute loops of static instructions,
  so errant (initialising, sensitising) instruction pairs repeat; the
  number of *distinct static instructions* controls how many unique error
  instances a benchmark can produce (the paper's mcf has few, vortex
  many),
* **operand value locality** -- dynamic instances of a static instruction
  tend to reuse operand values (the basis of the paper's prediction
  principle, §4.3.3), and
* **operand width profile** -- the Large/Small operand balance that
  drives OWM and the Chapter-4 size classes.

A program is a set of basic blocks; execution repeatedly picks a block,
runs it a geometrically-distributed number of times (loop behaviour), and
moves on.  Every static instruction slot has fixed per-slot operand value
pools plus an escape probability for fresh values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.isa import INSTRUCTIONS, Instr

_COMMON_CONSTANTS = (0, 1, 2, 3, 4, 8, 16, 0xFF, 0xFFFF)


@dataclass(frozen=True)
class BenchmarkConfig:
    """Statistical profile of one synthetic benchmark."""

    name: str
    instr_mix: dict[Instr, float]
    num_blocks: int
    block_size_min: int
    block_size_max: int
    block_repeat_mean: float
    value_pool_size: int
    value_locality: float
    p_large: float
    seed: int

    def __post_init__(self) -> None:
        if not self.instr_mix:
            raise ValueError("instr_mix must be non-empty")
        if self.block_size_min < 1 or self.block_size_max < self.block_size_min:
            raise ValueError("invalid block size range")
        if not 0.0 <= self.value_locality <= 1.0:
            raise ValueError("value_locality must be in [0, 1]")
        if not 0.0 <= self.p_large <= 1.0:
            raise ValueError("p_large must be in [0, 1]")


@dataclass
class InstructionTrace:
    """A generated dynamic instruction stream for the EX stage."""

    name: str
    width: int
    instrs: np.ndarray  # Instr values, int16
    static_ids: np.ndarray  # static-instruction id per cycle, int32
    alu_ops: np.ndarray  # AluOp values, int16
    a_values: np.ndarray  # uint64
    b_values: np.ndarray  # uint64
    num_static: int = 0

    def __len__(self) -> int:
        return len(self.instrs)

    def encode_inputs(self, alu) -> np.ndarray:
        """Encode the trace as a primary-input matrix for ``alu``."""
        return alu.encode_batch(self.alu_ops, self.a_values, self.b_values)


class _StaticInstr:
    """One static instruction slot: fixed op, fixed operand pools."""

    __slots__ = ("static_id", "instr", "pool_a", "pool_b")

    def __init__(self, static_id: int, instr: Instr, pool_a: list[int], pool_b: list[int]):
        self.static_id = static_id
        self.instr = instr
        self.pool_a = pool_a
        self.pool_b = pool_b


def _random_value(rng: np.random.Generator, width: int, p_large: float) -> int:
    """One operand value following the benchmark's width profile."""
    if rng.random() < 0.2:
        return int(rng.choice(_COMMON_CONSTANTS)) & ((1 << width) - 1)
    half = width // 2
    if rng.random() < p_large:
        return int(rng.integers(1 << half, 1 << width, dtype=np.uint64))
    return int(rng.integers(0, 1 << half, dtype=np.uint64))


def _operand_b_pool(
    rng: np.random.Generator, spec, width: int, p_large: float, pool_size: int
) -> list[int]:
    """The operand-b value pool for a static slot, honouring b's role."""
    if spec.instr is Instr.LUI:
        # LUI's shift amount is the half-word width, a constant.
        return [width // 2]
    if spec.shift and spec.instr in (Instr.SLL, Instr.SRL, Instr.SRA):
        # Fixed-shift forms encode a constant 5-bit shamt per static
        # instruction.
        return [int(rng.integers(0, width))]
    if spec.shift:
        # Variable shifts read a register; small values dominate.
        return [int(rng.integers(0, width)) for _ in range(pool_size)]
    if spec.immediate:
        # 16-bit immediates are always in the lower half-word.
        return [int(rng.integers(0, 1 << (width // 2))) for _ in range(pool_size)]
    return [_random_value(rng, width, p_large) for _ in range(pool_size)]


def generate_trace(
    config: BenchmarkConfig,
    num_cycles: int,
    width: int = 32,
    seed: int | None = None,
) -> InstructionTrace:
    """Generate ``num_cycles`` of dynamic instructions for a benchmark.

    Deterministic for a given (config, num_cycles, width, seed); ``seed``
    defaults to the config's own seed.
    """
    if num_cycles < 1:
        raise ValueError("num_cycles must be positive")
    rng = np.random.default_rng(config.seed if seed is None else seed)

    instr_names = list(config.instr_mix)
    weights = np.array([config.instr_mix[i] for i in instr_names], dtype=float)
    weights = weights / weights.sum()

    # --- build the static program ---------------------------------------
    blocks: list[list[_StaticInstr]] = []
    static_id = 0
    for _ in range(config.num_blocks):
        size = int(rng.integers(config.block_size_min, config.block_size_max + 1))
        block: list[_StaticInstr] = []
        for _ in range(size):
            instr = instr_names[rng.choice(len(instr_names), p=weights)]
            spec = INSTRUCTIONS[instr]
            pool_a = [
                _random_value(rng, width, config.p_large)
                for _ in range(config.value_pool_size)
            ]
            pool_b = _operand_b_pool(
                rng, spec, width, config.p_large, config.value_pool_size
            )
            block.append(_StaticInstr(static_id, instr, pool_a, pool_b))
            static_id += 1
        blocks.append(block)
    block_weights = rng.dirichlet(np.ones(len(blocks)) * 2.0)

    # --- execute ----------------------------------------------------------
    instrs = np.empty(num_cycles, dtype=np.int16)
    static_ids = np.empty(num_cycles, dtype=np.int32)
    alu_ops = np.empty(num_cycles, dtype=np.int16)
    a_values = np.empty(num_cycles, dtype=np.uint64)
    b_values = np.empty(num_cycles, dtype=np.uint64)

    cycle = 0
    while cycle < num_cycles:
        block = blocks[rng.choice(len(blocks), p=block_weights)]
        repeats = 1 + rng.geometric(1.0 / max(config.block_repeat_mean, 1.0))
        for _ in range(repeats):
            for slot in block:
                if cycle >= num_cycles:
                    break
                spec = INSTRUCTIONS[slot.instr]
                if rng.random() < config.value_locality:
                    a = slot.pool_a[int(rng.integers(len(slot.pool_a)))]
                else:
                    a = _random_value(rng, width, config.p_large)
                if rng.random() < config.value_locality or spec.instr is Instr.LUI:
                    b = slot.pool_b[int(rng.integers(len(slot.pool_b)))]
                elif spec.shift:
                    b = int(rng.integers(0, width))
                elif spec.immediate:
                    b = int(rng.integers(0, 1 << (width // 2)))
                else:
                    b = _random_value(rng, width, config.p_large)
                instrs[cycle] = int(slot.instr)
                static_ids[cycle] = slot.static_id
                alu_ops[cycle] = int(spec.alu_op)
                a_values[cycle] = a
                b_values[cycle] = b
                cycle += 1
            if cycle >= num_cycles:
                break

    return InstructionTrace(
        name=config.name,
        width=width,
        instrs=instrs,
        static_ids=static_ids,
        alu_ops=alu_ops,
        a_values=a_values,
        b_values=b_values,
        num_static=static_id,
    )


def _mix(**weights: float) -> dict[Instr, float]:
    return {Instr[name]: weight for name, weight in weights.items()}


#: The six SPEC CPU2000 benchmarks the paper evaluates, as synthetic
#: profiles.  Key differentiation (calibrated to the paper's commentary):
#: mcf has the smallest static footprint and the strongest locality (few
#: unique error instances), vortex the largest and weakest (many unique
#: instances); gzip errs less often than mcf overall but across more
#: unique instances.
BENCHMARKS: dict[str, BenchmarkConfig] = {
    config.name: config
    for config in (
        BenchmarkConfig(
            name="bzip",
            instr_mix=_mix(
                ADDU=12, ADDIU=14, AND=8, ANDI=8, OR=10, XOR=8, SRL=10,
                SLL=10, SUBU=6, ORI=4, LUI=4, SRA=3, MFLO=3,
            ),
            num_blocks=40, block_size_min=4, block_size_max=10,
            block_repeat_mean=18.0, value_pool_size=4, value_locality=0.90,
            p_large=0.50, seed=101,
        ),
        BenchmarkConfig(
            name="gap",
            instr_mix=_mix(
                ADDU=20, ADDIU=18, SUBU=10, AND=5, OR=6, XOR=5, SLL=8,
                SRL=5, LUI=6, MFLO=6, SLLV=4, ORI=4, NOR=3,
            ),
            num_blocks=60, block_size_min=3, block_size_max=9,
            block_repeat_mean=12.0, value_pool_size=6, value_locality=0.85,
            p_large=0.60, seed=102,
        ),
        BenchmarkConfig(
            name="gzip",
            instr_mix=_mix(
                SRL=14, SLL=14, AND=10, ANDI=10, OR=10, ADDIU=12, ADDU=8,
                XOR=6, SUBU=4, LUI=4, SRA=4, ORI=4,
            ),
            num_blocks=30, block_size_min=3, block_size_max=8,
            block_repeat_mean=28.0, value_pool_size=3, value_locality=0.95,
            p_large=0.45, seed=103,
        ),
        BenchmarkConfig(
            name="mcf",
            instr_mix=_mix(
                ADDIU=26, ADDU=22, LUI=10, AND=6, OR=8, SLL=10, SUBU=8,
                ANDI=6, MFLO=4,
            ),
            num_blocks=12, block_size_min=3, block_size_max=6,
            block_repeat_mean=40.0, value_pool_size=3, value_locality=0.97,
            p_large=0.62, seed=104,
        ),
        BenchmarkConfig(
            name="parser",
            instr_mix=_mix(
                ADDU=12, ADDIU=14, AND=8, ANDI=6, OR=8, ORI=5, XOR=6,
                SLL=8, SRL=6, SRA=4, SUBU=8, LUI=5, NOR=3, SLLV=3,
                SRAV=2, MFLO=2,
            ),
            num_blocks=80, block_size_min=3, block_size_max=10,
            block_repeat_mean=8.0, value_pool_size=5, value_locality=0.80,
            p_large=0.50, seed=105,
        ),
        BenchmarkConfig(
            name="vortex",
            instr_mix=_mix(
                ADDIU=14, ADDU=10, SLL=10, ANDI=8, SRL=7, LUI=8, OR=9,
                NOR=6, SRAV=4, XOR=6, AND=6, SUBU=5, ORI=4, SLLV=3,
                MFLO=2, SRA=2,
            ),
            num_blocks=160, block_size_min=4, block_size_max=12,
            block_repeat_mean=5.0, value_pool_size=6, value_locality=0.75,
            p_large=0.55, seed=106,
        ),
    )
}

#: Benchmark evaluation order used throughout the paper's figures.
BENCHMARK_ORDER: tuple[str, ...] = ("bzip", "gap", "gzip", "mcf", "parser", "vortex")
