"""Cycle-accurate in-order pipeline simulator (mechanistic validation).

The scheme models in :mod:`repro.core` account penalties analytically
(one flush = P cycles, one stall = 1 cycle).  This module implements the
*mechanics* those numbers abstract: an in-order pipeline whose
instructions physically occupy stage latches, whose Choke Controller
grants real extra execute cycles (stalling the younger stages), and
whose recovery physically squashes the pipe and refetches from the
errant instruction -- so penalty cycles *emerge* from simulation instead
of being assumed.  Integration tests cross-validate the emergent cycle
counts against the analytic models.

The pipeline executes a dynamic instruction stream (an
:class:`~repro.arch.trace.InstructionTrace`) functionally through the
reference ALU semantics and consults a per-dynamic-instruction *timing
oracle* (the error classes of a precomputed
:class:`~repro.core.scheme_sim.ErrorTrace`) for whether the EX
computation suffers a choke error when executed without extra time.
Granted stall cycles cover an error up to their class (one for an SE,
two for a CE), matching §3.3.1's assumption that even the worst-case
choke path completes within two cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.arch.pipeline import DEFAULT_PIPELINE, PipelineConfig
from repro.circuits.alu import AluOp, alu_reference
from repro.core.cslt import IndependentCSLT
from repro.core.tags import EX_STAGE, DcsTag, ErrorId
from repro.core.trident.cet import ChokeErrorTable
from repro.core.trident.tdc import TransitionDetectorCounter
from repro.timing.dta import ERR_NONE


class MitigationKind(enum.Enum):
    """Which error-handling unit the pipeline carries."""

    NONE = "none"
    RAZOR = "razor"
    DCS = "dcs"
    TRIDENT = "trident"


@dataclass
class _InFlight:
    """One instruction occupying a pipeline latch."""

    index: int  # dynamic instruction number
    granted: int = 0  # extra EX cycles granted by the avoidance mechanism
    ex_remaining: int = -1  # EX occupancy countdown (-1 = not yet at EX)


@dataclass
class ExecutionStats:
    """Emergent counters from one pipeline run."""

    instructions: int = 0
    cycles: int = 0
    flushes: int = 0
    stall_cycles: int = 0
    errors_detected: int = 0
    errors_avoided: int = 0
    results: dict[int, int] = field(default_factory=dict)

    def penalty_cycles(self, depth: int) -> int:
        """Cycles beyond the ideal single-issue pipeline's N + depth."""
        return self.cycles - self.instructions - depth


class InOrderPipeline:
    """A single-issue in-order pipeline with pluggable EDAC hardware.

    Stage 0 fetches; ``ex_index`` (default ``depth - 2``, directly before
    writeback, so a flush discards nearly a full pipeline of work -- the
    paper's P-cycle recovery) executes; the last stage retires.
    """

    def __init__(
        self,
        trace,
        error_classes: np.ndarray,
        mitigation: MitigationKind = MitigationKind.RAZOR,
        pipeline: PipelineConfig = DEFAULT_PIPELINE,
        table_capacity: int = 128,
        ex_index: int | None = None,
    ) -> None:
        if len(error_classes) != len(trace) - 1:
            raise ValueError(
                "error_classes must cover the trace's instruction pairs "
                f"(expected {len(trace) - 1}, got {len(error_classes)})"
            )
        self.trace = trace
        self.error_classes = np.asarray(error_classes, dtype=np.int8)
        self.mitigation = mitigation
        self.pipeline = pipeline
        depth = pipeline.depth
        self.ex_index = depth - 2 if ex_index is None else ex_index
        if not 1 <= self.ex_index < depth - 1:
            raise ValueError("EX stage must sit strictly inside the pipeline")

        self._stages: list[_InFlight | None] = [None] * depth
        self._fetch_index = 0
        # Indices that already went through a recovery: the flush+replay
        # restores a corrected value, so the replay is guaranteed to
        # complete (forward progress; Razor's recovery guarantee and the
        # paper's two-cycle worst-case assumption).
        self._recovered: set[int] = set()
        self._owm, self._size_a, self._size_b = self._operand_bits(trace)

        self._cslt = (
            IndependentCSLT(table_capacity)
            if mitigation is MitigationKind.DCS
            else None
        )
        self._cet = (
            ChokeErrorTable(table_capacity)
            if mitigation is MitigationKind.TRIDENT
            else None
        )

    @staticmethod
    def _operand_bits(trace):
        from repro.arch.operands import operand_size_class, owm_flag

        owm = owm_flag(trace.a_values, trace.b_values, trace.width)
        size_a = operand_size_class(trace.a_values, trace.width)
        size_b = operand_size_class(trace.b_values, trace.width)
        return owm, size_a, size_b

    # ------------------------------------------------------------------
    # per-instruction helpers
    # ------------------------------------------------------------------
    def _error_class_of(self, index: int) -> int:
        if index == 0:
            return ERR_NONE  # nothing initialised the paths yet
        return int(self.error_classes[index - 1])

    def _dcs_tag(self, index: int) -> DcsTag:
        prev = max(index - 1, 0)
        return DcsTag(
            int(self.trace.instrs[index]),
            bool(self._owm[index]),
            int(self.trace.instrs[prev]),
            bool(self._owm[prev]),
        )

    def _cet_key(self, index: int) -> tuple:
        prev = max(index - 1, 0)
        return (
            int(self.trace.instrs[prev]),
            int(self.trace.instrs[index]),
            bool(self._size_a[index]),
            bool(self._size_b[index]),
            EX_STAGE,
        )

    def _visible(self, err_class: int) -> bool:
        """Whether this mitigation's detector reacts to the class."""
        if self.mitigation is MitigationKind.NONE:
            return False
        if self.mitigation is MitigationKind.TRIDENT:
            return err_class != ERR_NONE
        # Razor and DCS see only maximum timing violations.
        return err_class in (2, 3)

    def _stalls_needed(self, err_class: int) -> int:
        """Extra EX cycles that make this class invisible to the scheme.

        Trident must cover the full class (two cycles for a CE); Razor
        and DCS only ever react to the maximum-violation component, so
        one extra cycle silences everything they can see (a CE's
        trailing minimum violation corrupts data silently -- exactly the
        blindness Chapter 4 exposes).
        """
        if self.mitigation is MitigationKind.TRIDENT:
            return TransitionDetectorCounter.stall_cycles_for(err_class)
        return 1 if err_class in (2, 3) else 0

    def _predict(self, index: int) -> int:
        """Decode-stage probe: extra EX cycles the tables grant."""
        if self._cslt is not None and self._cslt.lookup(self._dcs_tag(index)):
            return 1
        if self._cet is not None:
            stored = self._cet.lookup(self._cet_key(index))
            if stored is not None:
                return TransitionDetectorCounter.stall_cycles_for(stored)
        return 0

    def _learn(self, index: int) -> None:
        """Record a detected error instance in the scheme's table."""
        if self._cslt is not None:
            self._cslt.insert(self._dcs_tag(index))
        if self._cet is not None:
            key = self._cet_key(index)
            self._cet.insert(
                ErrorId(key[0], key[1], key[2], key[3], self._error_class_of(index))
            )

    # ------------------------------------------------------------------
    # the cycle loop
    # ------------------------------------------------------------------
    def run(self, max_cycles: int | None = None) -> ExecutionStats:
        stats = ExecutionStats()
        depth = self.pipeline.depth
        total = len(self.trace)
        limit = max_cycles if max_cycles is not None else 50 * total + 10 * depth

        while self._fetch_index < total or any(
            latch is not None for latch in self._stages
        ):
            stats.cycles += 1
            if stats.cycles > limit:
                raise RuntimeError("pipeline failed to make progress")

            # --- writeback / retire ---------------------------------------
            retiring = self._stages[depth - 1]
            if retiring is not None:
                index = retiring.index
                op = AluOp(int(self.trace.alu_ops[index]))
                stats.results[index] = alu_reference(
                    op,
                    int(self.trace.a_values[index]),
                    int(self.trace.b_values[index]),
                    self.trace.width,
                )
                stats.instructions += 1
                self._stages[depth - 1] = None

            executing = self._stages[self.ex_index]
            if executing is not None and executing.ex_remaining < 0:
                executing.ex_remaining = 1 + executing.granted

            # --- EX occupancy: granted stalls hold the younger stages ------
            if executing is not None and executing.ex_remaining > 1:
                executing.ex_remaining -= 1
                stats.stall_cycles += 1
                # bubble advances into the post-EX stages; younger half holds
                for position in range(depth - 1, self.ex_index, -1):
                    self._stages[position] = (
                        self._stages[position - 1]
                        if position - 1 > self.ex_index
                        else None
                    )
                continue

            # --- EX completion: detection / correction ---------------------
            if executing is not None:
                err_class = self._error_class_of(executing.index)
                needed = self._stalls_needed(err_class)
                if (
                    self._visible(err_class)
                    and executing.granted < needed
                    and executing.index not in self._recovered
                ):
                    # detection + correction: learn, squash, replay
                    stats.errors_detected += 1
                    stats.flushes += 1
                    self._learn(executing.index)
                    self._recovered.add(executing.index)
                    self._fetch_index = executing.index
                    self._stages = [None] * depth
                    continue
                if needed and executing.granted >= needed and self._visible(err_class):
                    stats.errors_avoided += 1

            # --- advance everything one stage -------------------------------
            for position in range(depth - 1, 0, -1):
                self._stages[position] = self._stages[position - 1]
            self._stages[0] = None

            # --- fetch + decode-time prediction ------------------------------
            if self._fetch_index < total:
                index = self._fetch_index
                self._fetch_index += 1
                self._stages[0] = _InFlight(
                    index=index, granted=self._predict(index)
                )

        return stats


def run_pipeline(
    trace,
    error_trace,
    mitigation: MitigationKind,
    pipeline: PipelineConfig = DEFAULT_PIPELINE,
    table_capacity: int = 128,
) -> ExecutionStats:
    """Convenience wrapper: run ``trace`` with the given mitigation unit,
    using ``error_trace.err_class`` as the timing oracle."""
    cpu = InOrderPipeline(
        trace,
        error_trace.err_class,
        mitigation=mitigation,
        pipeline=pipeline,
        table_capacity=table_capacity,
    )
    return cpu.run()
