"""MIPS-like instruction subset and its mapping onto the ALU.

The paper's architecture layer runs MIPS binaries on FabScalar; the
instructions named in its figures (ADDIU, SLL, ANDI, SRL, LUI, OR, NOR,
SRAV, ADDU, SUBU, MFLO, XOR, SLLV, SRA, AND, ORI) form the subset
reproduced here.  Each instruction resolves to one ALU operation plus a
rule for how its architectural operands map onto the ALU's two operand
words.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.circuits.alu import AluOp


class Instr(enum.IntEnum):
    """Instruction opcodes (the 8-bit opcode tag of the DCS scheme)."""

    ADDU = 0
    ADDIU = 1
    SUBU = 2
    AND = 3
    ANDI = 4
    OR = 5
    ORI = 6
    NOR = 7
    XOR = 8
    SLL = 9
    SRL = 10
    SRA = 11
    SLLV = 12
    SRAV = 13
    LUI = 14
    MFLO = 15


@dataclass(frozen=True)
class InstrSpec:
    """How one instruction drives the ALU.

    * ``alu_op``: the ALU operation the instruction selects.
    * ``immediate``: operand b comes from the instruction word (a 16-bit
      immediate), not a register.
    * ``shift``: operand b is a shift amount (small value); for
      fixed-shift forms (SLL/SRL/SRA/LUI) it is a 5-bit constant, for
      variable forms (SLLV/SRAV) it comes from a register's low bits.
    """

    instr: Instr
    alu_op: AluOp
    immediate: bool = False
    shift: bool = False


INSTRUCTIONS: dict[Instr, InstrSpec] = {
    spec.instr: spec
    for spec in (
        InstrSpec(Instr.ADDU, AluOp.ADD),
        InstrSpec(Instr.ADDIU, AluOp.ADD, immediate=True),
        InstrSpec(Instr.SUBU, AluOp.SUB),
        InstrSpec(Instr.AND, AluOp.AND),
        InstrSpec(Instr.ANDI, AluOp.AND, immediate=True),
        InstrSpec(Instr.OR, AluOp.OR),
        InstrSpec(Instr.ORI, AluOp.OR, immediate=True),
        InstrSpec(Instr.NOR, AluOp.NOR),
        InstrSpec(Instr.XOR, AluOp.XOR),
        InstrSpec(Instr.SLL, AluOp.SLL, shift=True),
        InstrSpec(Instr.SRL, AluOp.LSR, shift=True),
        InstrSpec(Instr.SRA, AluOp.ASR, shift=True),
        InstrSpec(Instr.SLLV, AluOp.SLL, shift=True),
        InstrSpec(Instr.SRAV, AluOp.ASR, shift=True),
        # LUI places a 16-bit immediate in the upper half-word: modelled as
        # a left shift of the immediate by W/2.
        InstrSpec(Instr.LUI, AluOp.SLL, immediate=True, shift=True),
        # MFLO moves the LO special register: the ALU's pass-through path.
        InstrSpec(Instr.MFLO, AluOp.BUFFER),
    )
}


def instr_to_alu(instr: Instr) -> AluOp:
    """The ALU operation executed by ``instr``."""
    return INSTRUCTIONS[instr].alu_op


#: Instructions shown in the dissertation's Fig. 3.4 (vortex study).
FIG3_4_INSTRS: tuple[Instr, ...] = (
    Instr.ADDIU,
    Instr.SLL,
    Instr.ANDI,
    Instr.SRL,
    Instr.LUI,
    Instr.OR,
    Instr.NOR,
    Instr.SRAV,
)

#: Instructions shown in Fig. 4.2 (path-delay variation study).
FIG4_2_INSTRS: tuple[Instr, ...] = (
    Instr.ADDIU,
    Instr.ANDI,
    Instr.LUI,
    Instr.ADDU,
    Instr.OR,
    Instr.SLL,
    Instr.SRL,
    Instr.XOR,
    Instr.SUBU,
    Instr.MFLO,
    Instr.SRA,
    Instr.AND,
    Instr.SLLV,
    Instr.SRAV,
    Instr.ORI,
)

#: Instructions shown in Figs. 4.3/4.4 (error-pattern studies).
FIG4_3_INSTRS: tuple[Instr, ...] = (
    Instr.ADDU,
    Instr.SUBU,
    Instr.MFLO,
    Instr.ANDI,
    Instr.XOR,
    Instr.OR,
    Instr.SLLV,
    Instr.LUI,
)
