"""Pipeline cost model (the FabScalar Core-1 substitute).

The paper's core is an 11-stage out-of-order superscalar; for the
reproduced results only its *penalty accounting* matters:

* a detected timing error triggers a pipeline flush plus instruction
  replay, costing as many cycles as there are pipe stages (Razor-style
  recovery, §3.3.4),
* an avoided error costs the inserted stall cycles (one for DCS and
  Trident SEs, two for Trident CEs).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline parameters of the simulated core."""

    depth: int = 11
    fetch_width: int = 4  # FabScalar Core-1 fetches/commits 4 per cycle

    def __post_init__(self) -> None:
        if self.depth < 2:
            raise ValueError("pipeline depth must be at least 2")
        if self.fetch_width < 1:
            raise ValueError("fetch width must be at least 1")

    @property
    def flush_penalty(self) -> int:
        """Cycles lost to a pipeline flush + instruction replay."""
        return self.depth

    @property
    def stall_penalty(self) -> int:
        """Cycles lost to one inserted stall."""
        return 1


#: The paper's evaluation pipeline.
DEFAULT_PIPELINE = PipelineConfig()
