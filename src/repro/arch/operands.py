"""Operand-width metrics: significant width, OWM, and size classes.

Two related classifications from the paper:

* **OWM (Operand Width Marker)**, Chapter 3: an operand's *significant
  width* is the position of its leftmost set bit; it is "high" when
  greater than half the ISA word width.  OWM is set for an operation when
  either operand's significant width is high.
* **Size class**, Chapter 4: an operand is "Large" (1) when its leftmost
  set bit lies in the upper half of the word, else "Small" (0).

Both reduce to the same bit-position test; they are kept as separate
functions because the DCS tag uses the combined OWM bit while the Trident
EID records each operand's class separately.
"""

from __future__ import annotations

import numpy as np


def significant_width(value: int) -> int:
    """Position of the leftmost set bit (1-based); 0 for value 0."""
    if value < 0:
        raise ValueError("operand values must be non-negative")
    return int(value).bit_length()


def _is_high(values: np.ndarray, width: int) -> np.ndarray:
    """Vectorised test: leftmost set bit in the upper half of the word."""
    values = np.asarray(values, dtype=np.uint64)
    threshold = np.uint64(1) << np.uint64(width // 2)
    return values >= threshold


def owm_flag(a, b, width: int):
    """Operand Width Marker: set when either operand has high significant
    width (> width/2).  Vectorised over numpy arrays; scalar ints return a
    scalar bool."""
    scalar = np.isscalar(a) and np.isscalar(b)
    result = _is_high(np.atleast_1d(a), width) | _is_high(np.atleast_1d(b), width)
    return bool(result[0]) if scalar else result


def operand_size_class(values, width: int):
    """Chapter-4 size class: True = "Large", False = "Small".

    Vectorised over numpy arrays; scalar ints return a scalar bool.
    """
    scalar = np.isscalar(values)
    result = _is_high(np.atleast_1d(values), width)
    return bool(result[0]) if scalar else result
