"""The oracle registry: differential and invariant checks over generated cases.

Every oracle is a pure function ``check(case) -> list[str]`` over a flat
scalar case dict (see :mod:`repro.qa.gen`); an empty list means the case
passed.  Two families:

* **differential** — the fast production implementation against an
  independent slow one (vectorised DTA vs :mod:`repro.timing.reference`,
  parallel fleet vs serial executor);
* **invariant** — conservation laws that must hold on *any* input
  (scheme accounting identities, checkpoint round-trip/corruption
  recovery, choke-event geometry, trend-statistics edge behaviour).

Mutation-visibility rule: anything a mutant may patch is called through
its module namespace (``dta.cycle_timings``, ``choke.analyze_choke_event``,
``scheme_sim.build_error_trace``) or through a class attribute, never
through a from-imported local, so :mod:`repro.qa.mutants` can swap the
implementation under the oracles' feet.
"""

from __future__ import annotations

import contextlib
import logging
import math
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.arch.trace import BENCHMARK_ORDER, BENCHMARKS, generate_trace
from repro.core import dcs as dcs_mod
from repro.core import scheme_sim
from repro.core.schemes import hfg as hfg_mod
from repro.core.schemes import ocst as ocst_mod
from repro.core.schemes import razor as razor_mod
from repro.core.trident import controller as trident_mod
from repro.obs import audit
from repro.obs import trends
from repro.obs.ledger import LEDGER_VERSION
from repro.pv import chip as chip_mod
from repro.pv.delaymodel import NTC, STC
from repro.qa import circuits
from repro.qa.gen import Param, case_rng
from repro.runtime import checkpoint as ckpt_mod
from repro.timing import choke as choke_mod
from repro.timing import dta
from repro.timing import reference
from repro.timing.levelize import levelize
from repro.timing.logic_eval import evaluate_logic


@dataclass(frozen=True)
class Oracle:
    """One registered property: parameter space + check function."""

    name: str
    description: str
    params: dict[str, Param]
    check: Callable[[dict[str, int]], list[str]]
    #: relative planning cost of one case (1.0 = a cheap structural check);
    #: consumed by the deterministic budget planner, never measured.
    cost: float = 1.0
    #: "fast" oracles run in every campaign; "deep" ones (multi-second
    #: end-to-end differentials) only join when the budget affords them.
    tier: str = "fast"


# ----------------------------------------------------------------------
# timing engine vs scalar reference
# ----------------------------------------------------------------------

def _materialize_netlist(case: dict[str, int]):
    rng = case_rng(case, "netlist")
    netlist = circuits.random_netlist(
        rng,
        num_inputs=case["num_inputs"],
        num_gates=case["num_gates"],
        num_outputs=case["num_outputs"],
    )
    return netlist


def _check_logic_vs_reference(case: dict[str, int]) -> list[str]:
    netlist = _materialize_netlist(case)
    rng = case_rng(case, "vectors")
    num_vectors = case["num_vectors"]
    inputs = rng.integers(0, 2, size=(len(netlist.input_ids), num_vectors)).astype(bool)
    values = evaluate_logic(levelize(netlist), inputs)
    violations: list[str] = []
    for t in range(num_vectors):
        expected = reference.reference_logic_eval(netlist, inputs[:, t])
        got = values[:, t]
        for node_id, value in expected.items():
            if int(got[node_id]) != value:
                violations.append(
                    f"vector {t} node {node_id}: vectorised={int(got[node_id])} "
                    f"reference={value}"
                )
                break  # one mismatch per vector is enough signal
    return violations


def _close(a: float, b: float, rtol: float = 1e-4, atol: float = 1e-2) -> bool:
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= atol + rtol * max(abs(a), abs(b))


def _check_dta_vs_reference(case: dict[str, int]) -> list[str]:
    netlist = _materialize_netlist(case)
    delays = circuits.random_gate_delays(netlist, case_rng(case, "delays"))
    rng = case_rng(case, "vectors")
    num_vectors = case["num_vectors"]
    inputs = rng.integers(0, 2, size=(len(netlist.input_ids), num_vectors)).astype(bool)
    circuit = levelize(netlist)
    chunk = max(1, case["chunk"])
    timings = dta.cycle_timings(circuit, inputs, delays, chunk=chunk)

    violations: list[str] = []
    for t in range(num_vectors - 1):
        t_late, t_early, toggles = reference.reference_cycle_timing(
            netlist, inputs[:, t], inputs[:, t + 1], delays
        )
        if not _close(float(timings.t_late[t]), t_late):
            violations.append(
                f"transition {t}: t_late engine={float(timings.t_late[t]):.4f} "
                f"reference={t_late:.4f}"
            )
        if not _close(float(timings.t_early[t]), t_early):
            violations.append(
                f"transition {t}: t_early engine={float(timings.t_early[t]):.4f} "
                f"reference={t_early:.4f}"
            )
        if int(timings.output_toggles[t]) != toggles:
            violations.append(
                f"transition {t}: toggles engine={int(timings.output_toggles[t])} "
                f"reference={toggles}"
            )
    # Node-resolved arrivals for the first transition (the choke
    # trace-back path consumes these).
    late, early, toggled = dta.single_transition_arrivals(
        circuit, inputs[:, 0], inputs[:, 1], delays
    )
    ref_late, ref_early, ref_toggled = reference.reference_transition_arrivals(
        netlist, inputs[:, 0], inputs[:, 1], delays
    )
    for node_id in range(netlist.num_nodes):
        if bool(toggled[node_id]) != ref_toggled[node_id]:
            violations.append(f"node {node_id}: toggled disagrees")
            break
        if not _close(float(late[node_id]), ref_late[node_id]) or not _close(
            float(early[node_id]), ref_early[node_id]
        ):
            violations.append(
                f"node {node_id}: arrivals engine=({float(late[node_id]):.4f}, "
                f"{float(early[node_id]):.4f}) reference=({ref_late[node_id]:.4f}, "
                f"{ref_early[node_id]:.4f})"
            )
            break
    return violations


def _check_batch_vs_scalar(case: dict[str, int]) -> list[str]:
    """The population kernel must be *bit-identical* to the scalar path.

    Stricter than :func:`_check_dta_vs_reference`'s toleranced compare:
    every chip row of ``batch_cycle_timings`` and the thin single-chip
    view must equal ``scalar_cycle_timings`` (the kept pre-batching
    implementation) exactly, element for element.
    """
    netlist = _materialize_netlist(case)
    circuit = levelize(netlist)
    rng = case_rng(case, "vectors")
    num_vectors = case["num_vectors"]
    inputs = rng.integers(0, 2, size=(len(netlist.input_ids), num_vectors)).astype(bool)
    delay_rng = case_rng(case, "delays")
    num_chips = case["num_chips"]
    rows = [circuits.random_gate_delays(netlist, delay_rng) for _ in range(num_chips)]
    chunk = max(1, case["chunk"])

    batch = dta.batch_cycle_timings(circuit, inputs, np.stack(rows), chunk=chunk)
    if batch.num_chips != num_chips or len(batch) != num_vectors - 1:
        return [
            f"batch shape ({batch.num_chips}, {len(batch)}) != "
            f"({num_chips}, {num_vectors - 1})"
        ]
    violations: list[str] = []
    for index, delays in enumerate(rows):
        scalar = dta.scalar_cycle_timings(circuit, inputs, delays, chunk=chunk)
        row = batch.chip(index)
        for field_name in ("t_late", "t_early", "output_toggles"):
            if not np.array_equal(
                getattr(row, field_name), getattr(scalar, field_name)
            ):
                violations.append(
                    f"chip {index}: batch {field_name} is not bit-identical "
                    f"to the scalar kernel"
                )
                break
        thin = dta.cycle_timings(circuit, inputs, delays, chunk=chunk)
        if not (
            np.array_equal(thin.t_late, scalar.t_late)
            and np.array_equal(thin.t_early, scalar.t_early)
            and np.array_equal(thin.output_toggles, scalar.output_toggles)
        ):
            violations.append(
                f"chip {index}: single-chip view is not bit-identical to "
                f"the scalar kernel"
            )
    return violations


def _check_classify_partition(case: dict[str, int]) -> list[str]:
    rng = case_rng(case)
    n = case["n"]
    clock, hold = 100.0, 10.0
    t_late = rng.uniform(50.0, 150.0, size=n).astype(np.float32)
    t_early = rng.uniform(0.0, 20.0, size=n).astype(np.float32)
    timings = dta.CycleTimings(
        t_late=t_late, t_early=t_early, output_toggles=np.ones(n, dtype=np.int32)
    )
    classes = timings.classify(clock, hold)
    violations: list[str] = []
    for j in range(n):
        max_violation = t_late[j] > clock
        min_violation = t_early[j] < hold
        if max_violation and min_violation:
            expected = dta.ERR_CE
        elif max_violation:
            expected = dta.ERR_SE_MAX
        elif min_violation:
            expected = dta.ERR_SE_MIN
        else:
            expected = dta.ERR_NONE
        if int(classes[j]) != expected:
            violations.append(
                f"cycle {j}: classify={int(classes[j])} expected={expected} "
                f"(t_late={float(t_late[j]):.2f}, t_early={float(t_early[j]):.2f})"
            )
    return violations


# ----------------------------------------------------------------------
# scheme conservation laws
# ----------------------------------------------------------------------

_CLOCK = 1000.0
_HOLD = 120.0


def _random_error_trace(case: dict[str, int]):
    rng = case_rng(case, "trace")
    n = case["n"]
    err_class = np.zeros(n, dtype=np.int8)
    err_mask = rng.random(n) < case["err_rate_pct"] / 100.0
    kinds = rng.integers(dta.ERR_SE_MIN, dta.ERR_CE + 1, size=n).astype(np.int8)
    err_class[err_mask] = kinds[err_mask]
    ctx = case["ctx_space"]
    return circuits.synthetic_error_trace(
        err_class,
        instr_sens=rng.integers(0, ctx + 1, size=n).astype(np.int16),
        instr_init=rng.integers(0, ctx + 1, size=n).astype(np.int16),
        owm=rng.random(n) < 0.5,
        size_a=rng.random(n) < 0.5,
        size_b=rng.random(n) < 0.5,
        clock_period=_CLOCK,
        hold_constraint=_HOLD,
    )


def _razor_laws(result, trace) -> list[str]:
    out = []
    errors = int(trace.max_err.sum())
    flush = razor_mod.DEFAULT_PIPELINE.flush_penalty
    if result.errors_total != errors:
        out.append(f"razor errors_total {result.errors_total} != max errors {errors}")
    if result.flushes != errors or result.errors_missed != errors:
        out.append("razor must flush (and miss) every max error")
    if result.errors_predicted != 0 or result.stalls != 0:
        out.append("razor has no prediction mechanism")
    if result.penalty_cycles != errors * flush:
        out.append(
            f"razor penalty {result.penalty_cycles} != errors*flush {errors * flush}"
        )
    if result.effective_clock_period != trace.clock_period:
        out.append("razor must keep the nominal clock period")
    return out


def _hfg_laws(result, trace) -> list[str]:
    out = []
    errors = int(trace.max_err.sum())
    if result.penalty_cycles != 0 or result.flushes != 0 or result.stalls != 0:
        out.append("hfg pays no recovery penalties")
    if result.errors_total != errors or result.errors_predicted != errors:
        out.append("hfg pre-empts exactly the max errors")
    if result.effective_clock_period < trace.clock_period:
        out.append("hfg cannot run faster than the nominal clock")
    worst = float(np.max(trace.t_late)) if len(trace) else 0.0
    if errors > 0 and result.effective_clock_period < worst:
        out.append(
            f"hfg guardbanded period {result.effective_clock_period:.2f} below "
            f"worst sensitised arrival {worst:.2f}"
        )
    return out


def _ocst_laws(result, trace) -> list[str]:
    out = []
    errors = int(trace.max_err.sum())
    flush = ocst_mod.DEFAULT_PIPELINE.flush_penalty
    if result.errors_total != errors:
        out.append(f"ocst errors_total {result.errors_total} != max errors {errors}")
    if result.errors_predicted + result.errors_missed != result.errors_total:
        out.append("ocst avoided + flushed must partition the errors")
    if result.flushes != result.errors_missed:
        out.append("ocst recovers every missed error with a flush")
    if result.penalty_cycles != result.flushes * flush:
        out.append("ocst penalty must be flushes * flush_penalty")
    if result.effective_clock_period < trace.clock_period:
        out.append("ocst average period cannot undercut the nominal clock")
    return out


def _dcs_laws(result, trace) -> list[str]:
    out = []
    errors = int(trace.max_err.sum())
    stall = dcs_mod.DEFAULT_PIPELINE.stall_penalty
    flush = dcs_mod.DEFAULT_PIPELINE.flush_penalty
    if result.errors_total != errors:
        out.append(f"dcs errors_total {result.errors_total} != max errors {errors}")
    if result.errors_predicted + result.flushes != result.errors_total:
        out.append("dcs predicted + flushed must partition the errors")
    if result.stalls != result.errors_predicted + result.false_positives:
        out.append("dcs stall cycles must be prediction hits + false positives")
    if result.errors_missed != result.flushes:
        out.append("dcs missed errors are exactly its flushes")
    expected = result.stalls * stall + result.flushes * flush
    if result.penalty_cycles != expected:
        out.append(f"dcs penalty {result.penalty_cycles} != {expected}")
    extra = result.extra
    if extra["first_occurrences"] + extra["capacity_misses"] != result.flushes:
        out.append("dcs flushes must split into first occurrences + capacity misses")
    if result.unique_instances != extra["first_occurrences"]:
        out.append("dcs unique instances must equal first occurrences")
    return out


def _trident_laws(result, trace) -> list[str]:
    out = []
    errors = int(trace.any_err.sum())
    stall = trident_mod.DEFAULT_PIPELINE.stall_penalty
    flush = trident_mod.DEFAULT_PIPELINE.flush_penalty
    if result.errors_total != errors:
        out.append(
            f"trident errors_total {result.errors_total} != errant cycles {errors}"
        )
    if result.errors_predicted + result.flushes != result.errors_total:
        out.append("trident predicted + flushed must partition the errant cycles")
    extra = result.extra
    expected_flushes = (
        extra["first_occurrences"] + extra["capacity_misses"] + extra["under_stalled"]
    )
    if result.flushes != expected_flushes:
        out.append(
            "trident flushes must split into first occurrences + capacity misses "
            "+ under-stalls"
        )
    expected = result.stalls * stall + result.flushes * flush
    if result.penalty_cycles != expected:
        out.append(f"trident penalty {result.penalty_cycles} != {expected}")
    if extra["ce_count"] != int((trace.err_class == dta.ERR_CE).sum()):
        out.append("trident CE tally disagrees with the trace")
    return out


def _check_scheme_conservation(case: dict[str, int]) -> list[str]:
    trace = _random_error_trace(case)
    capacity = 2 ** case["capacity_log2"]  # the tables require powers of two
    violations: list[str] = []
    runs = (
        ("Razor", razor_mod.RazorScheme(), _razor_laws),
        ("HFG", hfg_mod.HfgScheme(), _hfg_laws),
        ("OCST", ocst_mod.OcstScheme(), _ocst_laws),
        ("DCS-ICSLT", dcs_mod.DcsScheme("icslt", capacity=capacity), _dcs_laws),
        (
            "DCS-ACSLT",
            dcs_mod.DcsScheme(
                "acslt", capacity=capacity, associativity=min(4, capacity)
            ),
            _dcs_laws,
        ),
        ("Trident", trident_mod.TridentScheme(cet_capacity=capacity), _trident_laws),
    )
    for label, scheme, laws in runs:
        result = scheme.simulate(trace)
        if result.base_cycles != len(trace):
            violations.append(f"{label}: base_cycles {result.base_cycles} != {len(trace)}")
        if result.total_cycles != result.base_cycles + result.penalty_cycles:
            violations.append(f"{label}: total_cycles identity broken")
        violations.extend(laws(result, trace))
    return violations


def _check_audit_vs_result(case: dict[str, int]) -> list[str]:
    """Audit-stream conservation: replaying a full (unsampled) audit run
    must reconstruct every ``SchemeResult`` counter exactly, for all five
    scheme state machines (six instances: both DCS table organisations).
    """
    trace = _random_error_trace(case)
    capacity = 2 ** case["capacity_log2"]
    schemes = (
        razor_mod.RazorScheme(),
        hfg_mod.HfgScheme(),
        ocst_mod.OcstScheme(),
        dcs_mod.DcsScheme("icslt", capacity=capacity),
        dcs_mod.DcsScheme("acslt", capacity=capacity, associativity=min(4, capacity)),
        trident_mod.TridentScheme(cet_capacity=capacity),
    )
    violations: list[str] = []
    previous = audit.get()
    sink = audit.enable(audit.AuditRecorder(policy="full"))
    try:
        for scheme in schemes:
            result = scheme.simulate(trace)
            run = sink.runs[-1].to_block()
            if run["scheme"] != result.scheme or not sink.runs[-1].done:
                violations.append(f"{scheme.name}: audit run missing or unsealed")
                continue
            replayed = audit.replay_counters(run)
            for name, value in replayed.items():
                actual = getattr(result, name)
                exact = (
                    math.isclose(actual, value, rel_tol=0, abs_tol=1e-9)
                    if isinstance(value, float) else actual == value
                )
                if not exact:
                    violations.append(
                        f"{scheme.name}: replayed {name}={value!r} "
                        f"!= result {actual!r}"
                    )
    finally:
        if previous is None:
            audit.disable()
        else:
            audit.enable(previous)
    return violations


def _check_scheme_learning(case: dict[str, int]) -> list[str]:
    """Repeated-context learning laws: after the first occurrence, a
    constant error context must be predicted, not re-flushed."""
    n = case["n"]
    scenario = case["scenario"]
    if scenario == 0:
        err = np.full(n, dta.ERR_SE_MAX, dtype=np.int8)
    elif scenario == 1:
        err = np.full(n, dta.ERR_CE, dtype=np.int8)
    else:
        err = np.full(n, dta.ERR_CE, dtype=np.int8)
        err[0] = dta.ERR_SE_MAX
    trace = circuits.synthetic_error_trace(err, clock_period=_CLOCK, hold_constraint=_HOLD)
    violations: list[str] = []

    dcs_result = dcs_mod.DcsScheme("icslt").simulate(trace)
    if dcs_result.flushes != 1 or dcs_result.errors_predicted != n - 1:
        violations.append(
            f"dcs constant-context learning: flushes={dcs_result.flushes} "
            f"predicted={dcs_result.errors_predicted}, want 1 / {n - 1}"
        )
    if dcs_result.unique_instances != 1:
        violations.append("dcs constant context must learn exactly one tag")

    trident_result = trident_mod.TridentScheme().simulate(trace)
    if scenario in (0, 1):
        if trident_result.flushes != 1 or trident_result.errors_predicted != n - 1:
            violations.append(
                f"trident constant-context learning: flushes={trident_result.flushes} "
                f"predicted={trident_result.errors_predicted}, want 1 / {n - 1}"
            )
    else:
        # SE first, then CEs: the stored SE under-stalls the first CE,
        # escalates, and covers the rest.
        extra = trident_result.extra
        if extra["under_stalled"] != 1 or trident_result.flushes != 2:
            violations.append(
                f"trident SE->CE escalation: under_stalled={extra['under_stalled']} "
                f"flushes={trident_result.flushes}, want 1 / 2"
            )
        if trident_result.errors_predicted != n - 2:
            violations.append(
                f"trident SE->CE escalation: predicted={trident_result.errors_predicted}"
                f", want {n - 2}"
            )
    return violations


# ----------------------------------------------------------------------
# error-trace construction on a real (small) EX stage
# ----------------------------------------------------------------------

_STAGE_CACHE: dict[int, object] = {}


def _small_stage(width: int):
    stage = _STAGE_CACHE.get(width)
    if stage is None:
        from repro.circuits.ex_stage import build_ex_stage

        stage = build_ex_stage(width, NTC, buffered=True)
        _STAGE_CACHE[width] = stage
    return stage


def _check_etrace_consistency(case: dict[str, int]) -> list[str]:
    width = 4 if case["width_sel"] == 0 else 8
    stage = _small_stage(width)
    bench = BENCHMARK_ORDER[case["bench"] % len(BENCHMARK_ORDER)]
    trace = generate_trace(
        BENCHMARKS[bench], case["cycles"], width=width, seed=case["trace_seed"]
    )
    chip = stage.fabricate(seed=case["chip_seed"])
    etrace = scheme_sim.build_error_trace(stage, chip, trace)
    violations: list[str] = []
    if len(etrace) != len(trace) - 1:
        violations.append(f"length {len(etrace)} != cycles-1 {len(trace) - 1}")
    if not np.array_equal(etrace.instr_sens, trace.instrs[1:]):
        violations.append("sensitising instructions misaligned with the trace")
    if not np.array_equal(etrace.instr_init, trace.instrs[:-1]):
        violations.append("initialising instructions misaligned with the trace")
    if not np.array_equal(etrace.static_ids, trace.static_ids[1:]):
        violations.append("static ids misaligned with the trace")
    reclassified = dta.CycleTimings(
        t_late=etrace.t_late,
        t_early=etrace.t_early,
        output_toggles=np.zeros(len(etrace), dtype=np.int32),
    ).classify(etrace.clock_period, etrace.hold_constraint)
    if not np.array_equal(reclassified, etrace.err_class):
        violations.append("stored error classes disagree with classify(t_late, t_early)")
    counts = etrace.error_counts()
    if sum(counts.values()) != len(etrace):
        violations.append("error_counts() must partition the trace")
    again = scheme_sim.build_error_trace(stage, chip, trace)
    if not (
        np.array_equal(again.err_class, etrace.err_class)
        and np.array_equal(again.t_late, etrace.t_late)
    ):
        violations.append("build_error_trace is not deterministic")
    return violations


# ----------------------------------------------------------------------
# chip fabrication
# ----------------------------------------------------------------------

def _check_chip_fabrication(case: dict[str, int]) -> list[str]:
    netlist = _materialize_netlist(case)
    fraction = case["affected_pct"] / 100.0
    seed = case["chip_seed"]
    ntc = chip_mod.fabricate_chip(netlist, NTC, seed, affected_fraction=fraction)
    ntc_again = chip_mod.fabricate_chip(netlist, NTC, seed, affected_fraction=fraction)
    stc = chip_mod.fabricate_chip(netlist, STC, seed, affected_fraction=fraction)
    violations: list[str] = []
    if not np.array_equal(ntc.delays, ntc_again.delays):
        violations.append("fabrication is not deterministic for a fixed seed")
    expected_affected = int(round(fraction * netlist.num_gates))
    if len(ntc.affected_ids) != expected_affected:
        violations.append(
            f"affected population {len(ntc.affected_ids)} != "
            f"round({fraction} * {netlist.num_gates}) = {expected_affected}"
        )
    if not np.array_equal(ntc.affected_ids, np.sort(ntc.affected_ids)):
        violations.append("affected_ids must be sorted")
    for node_id in ntc.affected_ids:
        if not netlist.fanins(int(node_id)):
            violations.append(f"affected id {int(node_id)} is not a gate")
            break
    gates = np.array(
        [bool(netlist.fanins(i)) for i in range(netlist.num_nodes)], dtype=bool
    )
    if not (ntc.delays[gates] > 0).all() or not (ntc.delays[~gates] == 0).all():
        violations.append("gate delays must be positive and source delays zero")
    # Same ΔVth field, lower supply: NTC delays must dominate STC's.
    if not np.array_equal(ntc.delta_vth, stc.delta_vth):
        violations.append("ΔVth field must be corner-independent for one seed")
    elif not (ntc.delays[gates] > stc.delays[gates]).all():
        violations.append("NTC delays must exceed STC delays gate-for-gate")
    return violations


# ----------------------------------------------------------------------
# checkpoint store
# ----------------------------------------------------------------------

@contextlib.contextmanager
def _quiet(logger_name: str):
    """Silence a module's WARNINGs while an oracle *intentionally*
    provokes them (corruption drills would otherwise spam the CLI)."""
    logger = logging.getLogger(logger_name)
    previous = logger.level
    logger.setLevel(logging.ERROR)
    try:
        yield
    finally:
        logger.setLevel(previous)


def _check_checkpoint_store(case: dict[str, int]) -> list[str]:
    with _quiet("repro.runtime.checkpoint"):
        return _checkpoint_store_drill(case)


def _checkpoint_store_drill(case: dict[str, int]) -> list[str]:
    rng = case_rng(case, "blob")
    blob = rng.integers(0, 256, size=case["payload_kb"] * 256, dtype=np.uint8).tobytes()
    obj = {"blob": blob, "tag": "qa"}
    violations: list[str] = []
    with tempfile.TemporaryDirectory(prefix="qa-ckpt-") as tmp:
        store = ckpt_mod.CheckpointStore(os.path.join(tmp, "store"))
        store.save("artefact", obj)
        loaded = store.load("artefact")
        if loaded is None or loaded["blob"] != blob:
            violations.append("round-trip lost or altered the payload")

        # Deterministic bit-flip inside the pickled payload's bytes
        # region: the pickle stays loadable, so only the checksum can
        # catch the tamper.
        path = store.path("artefact")
        raw = path.read_bytes()
        header, _, payload = raw.partition(b"\n")
        index = payload.find(blob)
        corrupted = bytearray(payload)
        if index >= 0:
            corrupted[index + case["flip_at"] % len(blob)] ^= 0xFF
        else:  # pragma: no cover - pickled bytes are stored contiguously
            corrupted[-1] ^= 0xFF
        path.write_bytes(header + b"\n" + bytes(corrupted))
        fresh = ckpt_mod.CheckpointStore(store.root)
        tampered = fresh.load("artefact")
        if tampered is not None:
            violations.append("corrupted entry was served instead of recomputed")
        if fresh.stats.corrupt != 1 or fresh.stats.misses != 1:
            violations.append(
                f"corruption must count as corrupt+miss, got {fresh.stats.as_dict()}"
            )

        # A format-version bump is a miss, not corruption.
        store.save("artefact", obj)
        raw = path.read_bytes()
        header, _, payload = raw.partition(b"\n")
        magic, _version, checksum = header.split(b" ")
        path.write_bytes(magic + b" v999 " + checksum + b"\n" + payload)
        fresh = ckpt_mod.CheckpointStore(store.root)
        if fresh.load("artefact") is not None:
            violations.append("foreign format version must be recomputed")
        if fresh.stats.corrupt != 0:
            violations.append("a version mismatch is not corruption")

        # resume=False: loads miss, saves still refresh the store.
        store.save("artefact", obj)
        no_resume = ckpt_mod.CheckpointStore(store.root, resume=False)
        if no_resume.load("artefact") is not None:
            violations.append("resume=False must never serve cached entries")
        computed = []

        def compute():
            computed.append(1)
            return obj

        resumed = ckpt_mod.CheckpointStore(store.root)
        first = resumed.fetch("fresh-key", compute)
        second = resumed.fetch("fresh-key", compute)
        if len(computed) != 1 or first["blob"] != blob or second["blob"] != blob:
            violations.append("fetch must compute exactly once and then hit")
    return violations


# ----------------------------------------------------------------------
# parallel fleet vs serial executor (deep tier)
# ----------------------------------------------------------------------

_PARALLEL_EXTRAS = ("tab3_ovh", "tab4_ovh")


def _check_parallel_vs_serial(case: dict[str, int]) -> list[str]:
    from dataclasses import replace

    from repro.experiments.config import FAST_CONFIG
    from repro.experiments.runner import ExperimentContext
    from repro.runtime.executor import run_many
    from repro.runtime.parallel import WorkerSpec, run_fleet

    # fig3_4 (a real trace simulation) is always in; the mask mixes in
    # the cheap static-estimate experiments to vary the merge shape.
    mask = case["subset_mask"]
    ids = ("fig3_4",) + tuple(
        x for i, x in enumerate(_PARALLEL_EXTRAS) if mask >> i & 1
    )
    config = replace(FAST_CONFIG, cycles=case["cycles"])

    serial = run_many(ids, ExperimentContext(config))
    with tempfile.TemporaryDirectory(prefix="qa-fleet-") as tmp:
        spec = WorkerSpec(config=config, checkpoint_dir=os.path.join(tmp, "ckpt"))
        fleet, _stats = run_fleet(ids, spec, jobs=2)

    violations: list[str] = []
    if len(serial.outcomes) != len(fleet.outcomes):
        return [
            f"outcome count serial={len(serial.outcomes)} fleet={len(fleet.outcomes)}"
        ]
    for serial_outcome, fleet_outcome in zip(serial.outcomes, fleet.outcomes):
        if serial_outcome.experiment_id != fleet_outcome.experiment_id:
            violations.append("fleet merge order diverged from submission order")
            break
        if serial_outcome.ok != fleet_outcome.ok:
            violations.append(
                f"{serial_outcome.experiment_id}: ok serial={serial_outcome.ok} "
                f"fleet={fleet_outcome.ok}"
            )
            continue
        if serial_outcome.ok:
            a = serial_outcome.result.to_text()
            b = fleet_outcome.result.to_text()
            if a != b:
                violations.append(
                    f"{serial_outcome.experiment_id}: parallel report diverges "
                    f"from the serial report"
                )
    return violations


def _diff_reports(serial, other, label: str) -> list[str]:
    """Submission-order + bit-identity comparison of two RunReports."""
    if len(serial.outcomes) != len(other.outcomes):
        return [
            f"outcome count serial={len(serial.outcomes)} {label}={len(other.outcomes)}"
        ]
    violations: list[str] = []
    for serial_outcome, other_outcome in zip(serial.outcomes, other.outcomes):
        if serial_outcome.experiment_id != other_outcome.experiment_id:
            violations.append(f"{label} merge order diverged from submission order")
            break
        if serial_outcome.ok != other_outcome.ok:
            violations.append(
                f"{serial_outcome.experiment_id}: ok serial={serial_outcome.ok} "
                f"{label}={other_outcome.ok}"
            )
            continue
        if serial_outcome.ok:
            if serial_outcome.result.to_text() != other_outcome.result.to_text():
                violations.append(
                    f"{serial_outcome.experiment_id}: {label} report diverges "
                    f"from the serial report"
                )
    return violations


def _check_remote_vs_serial(case: dict[str, int]) -> list[str]:
    """The remote socket fleet must match the serial executor bit for
    bit — including with a chaos partition taking a worker out."""
    import subprocess
    import sys
    from dataclasses import replace

    import repro
    from repro.experiments.config import FAST_CONFIG
    from repro.experiments.runner import ExperimentContext
    from repro.runtime.backends import RemoteBackend, RemoteOptions
    from repro.runtime.chaos import ChaosNet
    from repro.runtime.executor import run_many
    from repro.runtime.parallel import WorkerSpec

    mask = case["subset_mask"]
    ids = ("fig3_4",) + tuple(
        x for i, x in enumerate(_PARALLEL_EXTRAS) if mask >> i & 1
    )
    config = replace(FAST_CONFIG, cycles=case["cycles"])
    chaos = ChaosNet("partition") if case["partition"] else None

    serial = run_many(ids, ExperimentContext(config))

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    procs: list = []
    try:
        for _ in range(2):
            procs.append(
                subprocess.Popen(
                    [sys.executable, "-m", "repro.experiments", "worker",
                     "--listen", "127.0.0.1:0", "--max-sessions", "1"],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    text=True,
                    env=env,
                )
            )
        addresses = []
        for proc in procs:
            ready = proc.stdout.readline().split()
            if not ready or ready[0] != "READY":
                return [f"worker failed to start (said {ready!r})"]
            addresses.append(f"127.0.0.1:{ready[1]}")
        backend = RemoteBackend(RemoteOptions(
            workers=tuple(addresses),
            heartbeat_s=0.1,
            heartbeat_deadline_s=2.0,
            chaos_net=chaos,
        ))
        with tempfile.TemporaryDirectory(prefix="qa-remote-") as tmp:
            spec = WorkerSpec(config=config, checkpoint_dir=os.path.join(tmp, "ckpt"))
            remote, _stats = backend.run(ids, spec)
    finally:
        for proc in procs:
            proc.kill()
            proc.wait()
    return _diff_reports(serial, remote, "remote")


def _check_service_vs_cli(case: dict[str, int]) -> list[str]:
    """A report fetched through the HTTP service must be byte-identical
    to the CLI path's bytes for the same request — and the dedup cache
    must never serve one request another request's bytes.

    Three legs over one live service (real HTTP, ephemeral port):

    1. submit request A, compare the served bytes against the canonical
       renderer over a serial run of the same configuration;
    2. submit request B (same ids/format, different cycle count) and
       make the same comparison — a dedup layer keyed too coarsely
       (the planted ``service-stale-dedup`` mutant) hands B the bytes
       of A and dies here;
    3. resubmit A: it must dedup-hit, serve the identical bytes, and
       not recompute (the ``executed`` counter must not move).
    """
    from dataclasses import replace

    from repro.experiments.config import FAST_CONFIG
    from repro.experiments.reportio import render_report
    from repro.experiments.runner import ExperimentContext
    from repro.runtime.executor import run_many
    from repro.service.client import ServiceClient
    from repro.service.server import ServiceThread

    mask = case["subset_mask"]
    ids = ["fig3_4"] + [
        x for i, x in enumerate(_PARALLEL_EXTRAS) if mask >> i & 1
    ]
    fmt = ("json", "text", "csv")[case["fmt_sel"]]
    cycles_a = case["cycles"]
    cycles_b = cycles_a + 137  # a different, equally valid request

    def cli_bytes(cycles: int) -> bytes:
        config = replace(FAST_CONFIG, cycles=cycles)
        report = run_many(ids, ExperimentContext(config))
        return render_report(report, fmt).encode()

    expected_a = cli_bytes(cycles_a)
    expected_b = cli_bytes(cycles_b)

    violations: list[str] = []
    with tempfile.TemporaryDirectory(prefix="qa-service-") as tmp:
        service = ServiceThread(tmp)
        try:
            client = ServiceClient(port=service.port)

            first = client.submit(ids, fast=True, fmt=fmt, cycles=cycles_a)
            done = client.wait(first["id"], timeout_s=600)
            if done["state"] != "done":
                return [f"job {first['id']} ended {done['state']}: "
                        f"{(done.get('error') or {}).get('message', '')}"]
            if client.report(first["id"]) != expected_a:
                violations.append(
                    f"service report diverges from the CLI bytes (fmt={fmt})"
                )

            second = client.submit(ids, fast=True, fmt=fmt, cycles=cycles_b)
            done_b = client.wait(second["id"], timeout_s=600)
            if done_b["state"] != "done":
                return violations + [
                    f"job {second['id']} ended {done_b['state']}"
                ]
            if client.report(second["id"]) != expected_b:
                violations.append(
                    "dedup served another request's bytes: a different cycle "
                    "count must never reuse a recorded report"
                )

            executed = client.stats()["counters"]["executed"]
            third = client.submit(ids, fast=True, fmt=fmt, cycles=cycles_a)
            if third["disposition"] != "dedup_hit":
                violations.append(
                    f"identical resubmission was {third['disposition']!r}, "
                    "expected a dedup hit"
                )
            elif client.report(third["id"]) != expected_a:
                violations.append("dedup hit served different bytes")
            if client.stats()["counters"]["executed"] != executed:
                violations.append("a dedup hit must not recompute")
        finally:
            service.stop()
    return violations


# ----------------------------------------------------------------------
# trend statistics
# ----------------------------------------------------------------------

def _ledger_record(index: int, counters: dict[str, float]) -> dict:
    return {
        "version": LEDGER_VERSION,
        "run_id": f"run-{index:03d}",
        "counters": counters,
    }


def _check_trends_invariants(case: dict[str, int]) -> list[str]:
    rng = case_rng(case)
    n = case["n"]
    base = float(case["base"])
    violations: list[str] = []

    flat_records = [_ledger_record(i, {"alpha": base}) for i in range(n)]
    findings = trends.detect_drift(flat_records)
    if any(f["drifted"] for f in findings):
        violations.append("an all-identical series must never drift")
    for f in findings:
        if f["metric"] == "counter.alpha" and f["z"] != 0.0:
            violations.append("identical window must score z == 0")

    if n >= 4:  # detect_drift needs min_history(=3) prior points
        spiked = list(flat_records)
        spiked[-1] = _ledger_record(n, {"alpha": base + max(1.0, base) * 1000.0})
        spike_findings = trends.detect_drift(spiked)
        entry = next(
            (f for f in spike_findings if f["metric"] == "counter.alpha"), None
        )
        if entry is None or not entry["drifted"] or not math.isinf(entry["z"]):
            violations.append("a spike over a constant window must drift with z=inf")

    # NaN values are dropped at flatten time, never propagated.
    noisy = _ledger_record(n + 1, {"alpha": base, "beta": math.nan})
    flat = trends.flatten(noisy)
    if "counter.beta" in flat:
        violations.append("flatten must drop non-finite metric values")

    # Self-diff is empty; disjoint metrics land in only_in_*, not zeros.
    record_a = _ledger_record(0, {"alpha": base, "gamma": 1.0})
    record_b = _ledger_record(1, {"alpha": base, "delta": 2.0})
    self_diff = trends.diff_records(record_a, record_a)
    if self_diff["changed"] or self_diff["counter_drift"]:
        violations.append("diffing a record against itself must be empty")
    cross = trends.diff_records(record_a, record_b)
    if cross["only_in_a"] != ["counter.gamma"] or cross["only_in_b"] != ["counter.delta"]:
        violations.append("disjoint metrics must be reported as only_in_a/only_in_b")

    window = [float(rng.uniform(0, 100)) for _ in range(max(3, n))]
    center = trends.median(window)
    if trends.robust_z(center, window) != 0.0:
        violations.append("the window median must score z == 0")
    if trends.mad([5.0, 5.0, 5.0]) != 0.0:
        violations.append("MAD of identical values must be 0")
    return violations


# ----------------------------------------------------------------------
# choke-event geometry
# ----------------------------------------------------------------------

def _check_choke_detection(case: dict[str, int]) -> list[str]:
    deep_len = case["deep_len"]
    short_len = min(case["short_len"], deep_len - 1)
    choke_delay = 10.0 * case["ratio_x10"] / 10.0
    fixture = circuits.forced_choke_chip(
        deep_len=deep_len, short_len=short_len, choke_delay=choke_delay
    )
    num_inputs = len(fixture.netlist.input_ids)
    prev = np.zeros(num_inputs, dtype=bool)
    curr = np.zeros(num_inputs, dtype=bool)
    prev[fixture.sel] = curr[fixture.sel] = True  # select the short branch
    curr[fixture.b] = True  # toggle it

    event = choke_mod.analyze_choke_event(
        fixture.circuit, fixture.chip, prev, curr, fixture.nominal_critical
    )
    expected_cdl = (
        (fixture.short_arrival - fixture.nominal_critical)
        / fixture.nominal_critical
        * 100.0
    )
    violations: list[str] = []
    if expected_cdl <= 0.0:
        if event is not None:
            violations.append(
                f"no choke path exists (CDL {expected_cdl:.2f}%) but an event "
                f"was reported"
            )
        return violations
    if event is None:
        return [
            f"forced choke (CDL {expected_cdl:.2f}%) went undetected "
            f"(deep={deep_len}, short={short_len}, choke={choke_delay:.0f}ps)"
        ]
    if not _close(event.cdl_percent, expected_cdl, rtol=1e-5, atol=1e-6):
        violations.append(
            f"CDL {event.cdl_percent:.4f}% != hand-computed {expected_cdl:.4f}%"
        )
    if event.category != choke_mod.classify_cdl(expected_cdl):
        violations.append(
            f"category {event.category} != classify_cdl({expected_cdl:.2f}%)"
        )
    if fixture.choke_gate not in event.choke_gate_ids:
        violations.append("the forced choke gate is missing from choke_gate_ids")
    for gate in event.choke_gate_ids:
        if gate not in event.path.nodes:
            violations.append(f"choke gate {gate} does not lie on the traced path")
    if event.path.nodes[0] != fixture.b or event.path.nodes[-1] != fixture.out:
        violations.append("traced path must run from the toggled input to the output")
    expected_cgl = 100.0 / fixture.netlist.num_gates
    if not _close(event.cgl_percent, expected_cgl, rtol=1e-6, atol=1e-9):
        violations.append(f"CGL {event.cgl_percent:.4f}% != {expected_cgl:.4f}%")
    return violations


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

_NETLIST_PARAMS = {
    "net_seed": Param(0, 999_999),
    "num_inputs": Param(2, 8),
    "num_gates": Param(5, 60),
    "num_outputs": Param(1, 6),
}

ORACLES: dict[str, Oracle] = {
    oracle.name: oracle
    for oracle in (
        Oracle(
            name="logic_vs_reference",
            description="vectorised logic evaluation vs the scalar reference",
            params={**_NETLIST_PARAMS, "num_vectors": Param(2, 12)},
            check=_check_logic_vs_reference,
            cost=1.5,
        ),
        Oracle(
            name="dta_vs_reference",
            description="batch + node-resolved DTA vs the scalar reference",
            params={
                **_NETLIST_PARAMS,
                "num_vectors": Param(2, 10),
                "chunk": Param(1, 16),
            },
            check=_check_dta_vs_reference,
            cost=2.5,
        ),
        Oracle(
            name="batch_vs_scalar",
            description="population batch kernel bit-identical to the scalar DTA path",
            params={
                **_NETLIST_PARAMS,
                "num_vectors": Param(2, 10),
                "num_chips": Param(1, 6),
                "chunk": Param(1, 16),
            },
            check=_check_batch_vs_scalar,
            cost=3.0,
        ),
        Oracle(
            name="classify_partition",
            description="error-class partition totality of CycleTimings.classify",
            params={"n": Param(1, 64), "seed": Param(0, 999_999)},
            check=_check_classify_partition,
            cost=0.3,
        ),
        Oracle(
            name="scheme_conservation",
            description="accounting identities of all five EDAC schemes",
            params={
                "n": Param(2, 200),
                "err_rate_pct": Param(0, 60),
                "ctx_space": Param(0, 5),
                "capacity_log2": Param(1, 6),
                "seed": Param(0, 999_999),
            },
            check=_check_scheme_conservation,
            cost=1.5,
        ),
        Oracle(
            name="audit_vs_result",
            description="full audit stream reconstructs SchemeResult counters exactly",
            params={
                "n": Param(2, 200),
                "err_rate_pct": Param(0, 60),
                "ctx_space": Param(0, 5),
                "capacity_log2": Param(1, 6),
                "seed": Param(0, 999_999),
            },
            check=_check_audit_vs_result,
            cost=2.0,
        ),
        Oracle(
            name="scheme_learning",
            description="repeated-context prediction laws (DCS table, Trident CET)",
            params={"n": Param(3, 60), "scenario": Param(0, 2)},
            check=_check_scheme_learning,
            cost=0.5,
        ),
        Oracle(
            name="etrace_consistency",
            description="ErrorTrace alignment/classification on a real EX stage",
            params={
                "width_sel": Param(0, 1),
                "bench": Param(0, 5),
                "cycles": Param(50, 300),
                "trace_seed": Param(0, 999_999),
                "chip_seed": Param(0, 99),
            },
            check=_check_etrace_consistency,
            cost=6.0,
        ),
        Oracle(
            name="chip_fabrication",
            description="fabrication determinism, affected-population and corner laws",
            params={**_NETLIST_PARAMS, "affected_pct": Param(0, 10), "chip_seed": Param(0, 999)},
            check=_check_chip_fabrication,
            cost=1.5,
        ),
        Oracle(
            name="checkpoint_store",
            description="round-trip, corruption containment and claim-free fetch",
            params={
                "payload_kb": Param(1, 32),
                "flip_at": Param(0, 999_999),
                "seed": Param(0, 999_999),
            },
            check=_check_checkpoint_store,
            cost=1.0,
        ),
        Oracle(
            name="trends_invariants",
            description="MAD drift/diff edge laws of the ledger trend engine",
            params={"n": Param(2, 12), "base": Param(0, 1000), "seed": Param(0, 999_999)},
            check=_check_trends_invariants,
            cost=0.3,
        ),
        Oracle(
            name="choke_detection",
            description="forced-choke CDL/CGL geometry vs hand computation",
            params={
                "deep_len": Param(2, 6),
                "short_len": Param(1, 4),
                "ratio_x10": Param(16, 300),
            },
            check=_check_choke_detection,
            cost=0.8,
        ),
        Oracle(
            name="parallel_vs_serial",
            description="--jobs 2 fleet vs serial executor on experiment subsets",
            params={"subset_mask": Param(0, 3), "cycles": Param(300, 800)},
            check=_check_parallel_vs_serial,
            cost=45.0,
            tier="deep",
        ),
        Oracle(
            name="remote_vs_serial",
            description="remote socket fleet vs serial executor, with and "
            "without a chaos partition",
            params={
                "subset_mask": Param(0, 3),
                "cycles": Param(300, 800),
                "partition": Param(0, 1),
            },
            check=_check_remote_vs_serial,
            cost=60.0,
            tier="deep",
        ),
        Oracle(
            name="service_vs_cli",
            description="HTTP service report byte-identical to the CLI "
            "path, dedup never serves stale bytes",
            params={
                "subset_mask": Param(0, 3),
                "cycles": Param(200, 500),
                "fmt_sel": Param(0, 2),
            },
            check=_check_service_vs_cli,
            cost=30.0,
            tier="deep",
        ),
    )
}


def get_oracle(name: str) -> Oracle:
    try:
        return ORACLES[name]
    except KeyError:
        known = ", ".join(sorted(ORACLES))
        raise KeyError(f"unknown oracle {name!r} (known: {known})") from None
