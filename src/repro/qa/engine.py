"""Campaign planning and execution for the property-based fuzzer.

The central design constraint is **budget determinism**: ``--budget-s``
is a *planning* input, not a stopwatch.  :func:`plan_rounds` converts
the budget into per-oracle round counts by pure arithmetic over static
per-oracle cost hints; no wall clock is ever read, so two campaigns
with the same ``(seed, budget_s, oracle selection)`` draw the same
cases, reach the same verdicts, and emit byte-identical artifacts.
The budget therefore bounds *planned* work — a loaded CI machine takes
longer, it does not test less.

When a case fails, the engine shrinks it (:mod:`repro.qa.shrink`),
re-runs the shrunk case to capture final violations, writes a
replayable JSON artifact, and stops fuzzing that oracle (one minimal
artifact per oracle per campaign beats fifty correlated ones).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.qa.gen import case_seed, draw_case
from repro.qa.oracles import ORACLES, Oracle, get_oracle

#: planned seconds per unit of oracle cost; a static calibration
#: constant, deliberately NOT measured at runtime (determinism).
UNIT_S = 0.08
#: fraction of the budget planned for the fast tier (the rest absorbs
#: planning slack and the deep tier's overshoot).
FAST_SHARE = 0.6
MIN_ROUNDS = 2
MAX_ROUNDS = 400
#: deep oracles join at this budget and gain a round per extra chunk
DEEP_THRESHOLD_S = 30.0
DEEP_ROUND_S = 90.0

REPORT_VERSION = 1


def plan_rounds(
    budget_s: float,
    oracle_names: list[str] | None = None,
    include_deep: bool = True,
) -> dict[str, int]:
    """Per-oracle round counts for a campaign — pure arithmetic.

    Fast oracles split ``FAST_SHARE`` of the budget evenly and convert
    their share to rounds through their cost hint (clamped to
    ``[MIN_ROUNDS, MAX_ROUNDS]``).  Deep oracles are step-functions of
    the budget alone: nothing below ``DEEP_THRESHOLD_S``, then one round
    plus one per ``DEEP_ROUND_S`` beyond it.
    """
    if budget_s <= 0:
        raise ValueError(f"budget_s must be positive, got {budget_s}")
    selected = sorted(oracle_names) if oracle_names is not None else sorted(ORACLES)
    oracles = [get_oracle(name) for name in selected]
    fast = [o for o in oracles if o.tier == "fast"]
    plan: dict[str, int] = {}
    share = budget_s * FAST_SHARE / max(1, len(fast))
    for oracle in oracles:
        if oracle.tier == "deep":
            if not include_deep or budget_s < DEEP_THRESHOLD_S:
                rounds = 0
            else:
                rounds = 1 + int((budget_s - DEEP_THRESHOLD_S) // DEEP_ROUND_S)
        else:
            rounds = max(MIN_ROUNDS, min(MAX_ROUNDS, int(share / (oracle.cost * UNIT_S))))
        plan[oracle.name] = rounds
    return plan


def run_check(oracle: Oracle, case: dict[str, int]) -> list[str]:
    """An oracle's violations for one case; an exception is a violation
    too (oracles must not crash on in-range cases)."""
    try:
        return list(oracle.check(case))
    except Exception as exc:  # noqa: BLE001 - a crashing oracle is a failing case
        return [f"unhandled exception: {type(exc).__name__}: {exc}"]


@dataclass
class OracleOutcome:
    """One oracle's slice of a campaign."""

    name: str
    rounds_planned: int
    rounds_run: int = 0
    failure: dict | None = None  # the shrunk failure artifact, if any
    shrink_evals: int = 0

    def as_dict(self) -> dict:
        out = {
            "rounds_planned": self.rounds_planned,
            "rounds_run": self.rounds_run,
            "shrink_evals": self.shrink_evals,
        }
        if self.failure is not None:
            out["failure"] = self.failure
        return out


@dataclass
class CampaignReport:
    """The deterministic summary of one fuzz campaign (no timestamps)."""

    seed: int
    budget_s: float
    outcomes: dict[str, OracleOutcome] = field(default_factory=dict)

    @property
    def failures(self) -> list[dict]:
        return [
            outcome.failure
            for name, outcome in sorted(self.outcomes.items())
            if outcome.failure is not None
        ]

    @property
    def total_cases(self) -> int:
        return sum(o.rounds_run + o.shrink_evals for o in self.outcomes.values())

    def as_dict(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "seed": self.seed,
            "budget_s": self.budget_s,
            "total_cases": self.total_cases,
            "failed_oracles": sorted(
                name for name, o in self.outcomes.items() if o.failure is not None
            ),
            "oracles": {
                name: outcome.as_dict()
                for name, outcome in sorted(self.outcomes.items())
            },
        }


def fuzz_oracle(
    oracle: Oracle,
    engine_seed: int,
    rounds: int,
    max_shrink_evals: int = 160,
) -> OracleOutcome:
    """Fuzz one oracle for ``rounds`` cases, shrinking the first failure."""
    from repro.qa.corpus import make_artifact
    from repro.qa.shrink import shrink_case

    outcome = OracleOutcome(name=oracle.name, rounds_planned=rounds)
    for round_index in range(rounds):
        seed = case_seed(engine_seed, oracle.name, round_index)
        case = draw_case(oracle.params, seed)
        outcome.rounds_run += 1
        violations = run_check(oracle, case)
        if not violations:
            continue
        shrunk, evals = shrink_case(
            case,
            oracle.params,
            lambda candidate: bool(run_check(oracle, candidate)),
            max_evals=max_shrink_evals,
        )
        outcome.shrink_evals = evals
        final_violations = run_check(oracle, shrunk)
        if not final_violations:  # pragma: no cover - shrinker re-checks candidates
            shrunk, final_violations = case, violations
        outcome.failure = make_artifact(
            oracle.name,
            shrunk,
            final_violations,
            engine_seed=engine_seed,
            round_index=round_index,
            original_case=case,
        )
        break  # one minimal artifact per oracle per campaign
    return outcome


def run_campaign(
    seed: int,
    budget_s: float,
    oracle_names: list[str] | None = None,
    include_deep: bool = True,
    artifact_dir: str | None = None,
    progress=None,
) -> CampaignReport:
    """Run a full campaign; optionally persist failure artifacts.

    ``progress`` is an optional ``callable(str)`` used for CLI
    narration; it never influences the verdicts.
    """
    from repro.qa.corpus import write_artifact

    plan = plan_rounds(budget_s, oracle_names, include_deep=include_deep)
    report = CampaignReport(seed=int(seed), budget_s=float(budget_s))
    for name, rounds in sorted(plan.items()):
        oracle = get_oracle(name)
        if progress is not None:
            progress(f"fuzz {name}: {rounds} case(s)")
        outcome = fuzz_oracle(oracle, report.seed, rounds)
        report.outcomes[name] = outcome
        if outcome.failure is not None:
            if progress is not None:
                progress(
                    f"  FAIL {name}: {outcome.failure['violations'][0]} "
                    f"(shrunk in {outcome.shrink_evals} evals)"
                )
            if artifact_dir is not None:
                path = write_artifact(artifact_dir, outcome.failure)
                outcome.failure["artifact_path"] = str(path)
                if progress is not None:
                    progress(f"  wrote {path}")
    return report
