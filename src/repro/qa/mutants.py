"""Hand-written semantic mutants and the mutation self-test.

An oracle suite is only as good as the bugs it can catch, so this
module *plants* bugs and checks they get caught.  Each mutant patches
one attribute (a module function or a class method) with a subtly
broken variant modelled on a realistic defect class — off-by-one
rollback accounting, a dropped choke event, swapped min/max arrivals,
a skipped checksum — runs the oracles it should trip, and requires at
least one violation.  A mutant that survives means an oracle has lost
its teeth; the self-test fails loudly.

The baseline leg runs the same cases unmutated and requires *zero*
violations, so a kill can never be a false alarm.  Case streams are
the fuzzer's own (:func:`repro.qa.gen.case_seed`), making the whole
self-test deterministic in its seed.
"""

from __future__ import annotations

import contextlib
import importlib
import pickle
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.qa.engine import run_check
from repro.qa.gen import case_seed, draw_case
from repro.qa.oracles import get_oracle

DEFAULT_ROUNDS = 8


@dataclass(frozen=True)
class Mutant:
    """One planted defect: where it lives and who must kill it."""

    name: str
    description: str
    #: importable module name and dotted attribute path inside it
    #: (``"CycleTimings.classify"`` walks into the class).
    target: tuple[str, str]
    #: original attribute -> broken replacement
    build: Callable[[Callable], Callable]
    #: oracle names that are expected to kill this mutant
    oracles: tuple[str, ...]

    def resolve(self):
        module = importlib.import_module(self.target[0])
        holder = module
        *parents, leaf = self.target[1].split(".")
        for part in parents:
            holder = getattr(holder, part)
        return holder, leaf

    @contextlib.contextmanager
    def applied(self):
        holder, leaf = self.resolve()
        original = getattr(holder, leaf)
        setattr(holder, leaf, self.build(original))
        try:
            yield
        finally:
            setattr(holder, leaf, original)


# ----------------------------------------------------------------------
# the planted defects
# ----------------------------------------------------------------------

def _swap_arrivals(original):
    def propagate(*args, **kwargs):
        late, early = original(*args, **kwargs)
        return early, late

    return propagate


def _classify_without_ce(_original):
    from repro.timing.dta import ERR_SE_MAX, ERR_SE_MIN

    def classify(self, clock_period, hold_constraint):
        classes = np.zeros(len(self.t_late), dtype=np.int8)
        classes[self.t_early < hold_constraint] = ERR_SE_MIN
        classes[self.t_late > clock_period] = ERR_SE_MAX
        return classes  # CE cycles silently demoted to SE_MAX

    return classify


def _result_tweak(mutate):
    """simulate() wrapper that post-hoc corrupts the result record."""

    def wrap(original):
        def simulate(self, trace):
            result = original(self, trace)
            mutate(result, trace)
            return result

        return simulate

    return wrap


def _insert_noop(_original):
    def insert(self, *args, **kwargs):
        return None  # the table never learns

    return insert


def _drop_choke_event(_original):
    def analyze_choke_event(*args, **kwargs):
        return None  # every choke event silently discarded

    return analyze_choke_event


def _load_without_checksum(_original):
    from repro.runtime import checkpoint as ckpt

    def load(self, key):
        path = self.path(key)
        if not self.resume or not path.exists():
            self.stats.misses += 1
            return None
        try:
            blob = path.read_bytes()
            header, _, payload = blob.partition(b"\n")
            magic, version, _checksum = header.split(b" ")
            if magic != ckpt._MAGIC:
                raise ValueError("bad magic")
            if version != b"v%d" % ckpt.FORMAT_VERSION:
                self.stats.misses += 1
                return None
            obj = pickle.loads(payload)  # checksum never verified
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return obj

    return load


def _misalign_etrace(original):
    def build_error_trace(stage, chip, trace, chunk=2048, **kwargs):
        etrace = original(stage, chip, trace, chunk=chunk, **kwargs)
        etrace.instr_init = etrace.instr_sens.copy()  # one-cycle misalignment
        return etrace

    return build_error_trace


def _batch_drift(original):
    def batch_cycle_timings(*args, **kwargs):
        batch = original(*args, **kwargs)
        # Sub-tolerance drift: far inside dta_vs_reference's 1e-2 atol,
        # so only an exact-equality oracle can notice.
        batch.t_late = batch.t_late + np.float32(0.005)
        return batch

    return batch_cycle_timings


def _audit_drop_rollback(original):
    from repro.obs.audit import DEC_DETECT

    def decision(self, cycle, err, decision, **kwargs):
        if decision == DEC_DETECT:
            return None  # rollback flushes vanish from the flight record
        return original(self, cycle, err, decision, **kwargs)

    return decision


def _stale_digest(_original):
    def request_digest(config, experiments, fmt):
        # the classic cache-keying bug: the digest stops covering the
        # request, so every submission aliases the first recorded report
        return "deadbeefdeadbeef"

    return request_digest


def _razor_offbyone(result, _trace):
    result.flushes = max(0, result.flushes - 1)


def _hfg_ignore_worst(result, trace):
    result.effective_clock_period = trace.clock_period


def _ocst_penalty_undercount(result, _trace):
    result.penalty_cycles = max(0, result.penalty_cycles - result.flushes)


def _dcs_hide_false_positives(result, _trace):
    result.false_positives = 0


MUTANTS: dict[str, Mutant] = {
    mutant.name: mutant
    for mutant in (
        Mutant(
            name="swap-arrival-minmax",
            description="DTA propagation returns (early, late) swapped",
            target=("repro.timing.dta", "_propagate_arrivals"),
            build=_swap_arrivals,
            oracles=("dta_vs_reference",),
        ),
        Mutant(
            name="batch-kernel-drift",
            description="batch kernel rows drift sub-tolerance from the scalar path",
            target=("repro.timing.dta", "batch_cycle_timings"),
            build=_batch_drift,
            oracles=("batch_vs_scalar",),
        ),
        Mutant(
            name="classify-drop-ce",
            description="classify() demotes combined errors to SE_MAX",
            target=("repro.timing.dta", "CycleTimings.classify"),
            build=_classify_without_ce,
            oracles=("classify_partition",),
        ),
        Mutant(
            name="razor-rollback-offbyone",
            description="Razor under-counts its rollback flushes by one",
            target=("repro.core.schemes.razor", "RazorScheme.simulate"),
            build=_result_tweak(_razor_offbyone),
            oracles=("scheme_conservation",),
        ),
        Mutant(
            name="hfg-ignore-worst-arrival",
            description="HFG reports the nominal period instead of guardbanding",
            target=("repro.core.schemes.hfg", "HfgScheme.simulate"),
            build=_result_tweak(_hfg_ignore_worst),
            oracles=("scheme_conservation",),
        ),
        Mutant(
            name="ocst-penalty-undercount",
            description="OCST forgets one cycle of each flush penalty",
            target=("repro.core.schemes.ocst", "OcstScheme.simulate"),
            build=_result_tweak(_ocst_penalty_undercount),
            oracles=("scheme_conservation",),
        ),
        Mutant(
            name="dcs-hide-false-positives",
            description="DCS reports zero false-positive stalls",
            target=("repro.core.dcs", "DcsScheme.simulate"),
            build=_result_tweak(_dcs_hide_false_positives),
            oracles=("scheme_conservation",),
        ),
        Mutant(
            name="audit-drop-rollback",
            description="the flight recorder silently drops rollback (detect) records",
            target=("repro.obs.audit", "RunRecorder.decision"),
            build=_audit_drop_rollback,
            oracles=("audit_vs_result",),
        ),
        Mutant(
            name="dcs-learning-dropped",
            description="the independent CSLT never inserts a tag",
            target=("repro.core.cslt", "IndependentCSLT.insert"),
            build=_insert_noop,
            oracles=("scheme_learning",),
        ),
        Mutant(
            name="trident-learning-dropped",
            description="the Trident CET never inserts an error id",
            target=("repro.core.trident.cet", "ChokeErrorTable.insert"),
            build=_insert_noop,
            oracles=("scheme_learning",),
        ),
        Mutant(
            name="choke-event-dropped",
            description="analyze_choke_event() returns None unconditionally",
            target=("repro.timing.choke", "analyze_choke_event"),
            build=_drop_choke_event,
            oracles=("choke_detection",),
        ),
        Mutant(
            name="checkpoint-skip-checksum",
            description="CheckpointStore.load() trusts payloads blindly",
            target=("repro.runtime.checkpoint", "CheckpointStore.load"),
            build=_load_without_checksum,
            oracles=("checkpoint_store",),
        ),
        Mutant(
            name="service-stale-dedup",
            description="the service dedup digest collapses to a constant, "
            "serving every request the first recorded report",
            target=("repro.service.jobs", "request_digest"),
            build=_stale_digest,
            oracles=("service_vs_cli",),
        ),
        Mutant(
            name="etrace-misaligned-init",
            description="ErrorTrace init context copies the sensitising one",
            target=("repro.core.scheme_sim", "build_error_trace"),
            build=_misalign_etrace,
            oracles=("etrace_consistency",),
        ),
    )
}


def _sweep(oracle_names: tuple[str, ...], seed: int, rounds: int) -> dict | None:
    """First violation across the oracles' deterministic case streams."""
    for name in oracle_names:
        oracle = get_oracle(name)
        for round_index in range(rounds):
            case = draw_case(oracle.params, case_seed(seed, name, round_index))
            violations = run_check(oracle, case)
            if violations:
                return {
                    "oracle": name,
                    "round": round_index,
                    "case": case,
                    "violation": violations[0],
                }
    return None


def run_mutation_test(
    seed: int = 0,
    rounds: int = DEFAULT_ROUNDS,
    mutant_names: list[str] | None = None,
    progress=None,
) -> dict:
    """Baseline-then-kill sweep over the registered mutants.

    Returns a report dict with ``ok`` true iff the unmutated baseline is
    clean AND every selected mutant is killed.
    """
    selected = sorted(mutant_names) if mutant_names is not None else sorted(MUTANTS)
    unknown = [name for name in selected if name not in MUTANTS]
    if unknown:
        raise KeyError(f"unknown mutant(s): {unknown}")

    involved = tuple(
        sorted({name for m in selected for name in MUTANTS[m].oracles})
    )
    baseline = _sweep(involved, seed, rounds)
    if progress is not None:
        status = "clean" if baseline is None else f"DIRTY: {baseline}"
        progress(f"baseline over {len(involved)} oracle(s): {status}")

    results = {}
    for name in selected:
        mutant = MUTANTS[name]
        with mutant.applied():
            kill = _sweep(mutant.oracles, seed, rounds)
        results[name] = {
            "description": mutant.description,
            "target": list(mutant.target),
            "oracles": list(mutant.oracles),
            "killed": kill is not None,
            "kill": kill,
        }
        if progress is not None:
            if kill is None:
                progress(f"SURVIVED  {name} ({mutant.description})")
            else:
                progress(
                    f"killed    {name} by {kill['oracle']} "
                    f"round {kill['round']}: {kill['violation']}"
                )

    survivors = sorted(n for n, r in results.items() if not r["killed"])
    return {
        "seed": int(seed),
        "rounds": int(rounds),
        "baseline_clean": baseline is None,
        "baseline_violation": baseline,
        "mutants": results,
        "survivors": survivors,
        "ok": baseline is None and not survivors,
    }
