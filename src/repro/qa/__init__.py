"""Generative QA: property-based fuzzing, oracles, and mutation self-test.

This package is the repo's systematic correctness layer (architecture
§9).  It is dependency-free (numpy + stdlib only) and fully
deterministic: a campaign is a pure function of ``(seed, budget_s,
oracle selection)`` — the time budget is a *planning* input that sizes
per-oracle round counts arithmetically, never a measured wall clock, so
two invocations with the same flags produce bit-identical corpora and
verdicts.

Layout:

* :mod:`repro.qa.circuits` — canonical deterministic builders (random
  netlists, chain circuits, forced-choke chips, synthetic error traces)
  shared with the unit-test suite.
* :mod:`repro.qa.gen` — seeded parameter/case generation combinators.
* :mod:`repro.qa.shrink` — deterministic greedy case shrinking.
* :mod:`repro.qa.oracles` — the registry of differential and invariant
  oracles.
* :mod:`repro.qa.engine` — budget planning and campaign execution.
* :mod:`repro.qa.corpus` — replayable JSON failure artifacts + the
  checked-in seed corpus.
* :mod:`repro.qa.mutants` — hand-written semantic mutants and the
  mutation self-test proving the oracles have teeth.
* :mod:`repro.qa.cli` — the ``qa {fuzz,repro,corpus,mutate}`` CLI.
"""

from __future__ import annotations

from repro.qa.engine import plan_rounds, run_campaign
from repro.qa.mutants import MUTANTS, run_mutation_test
from repro.qa.oracles import ORACLES, get_oracle

__all__ = [
    "MUTANTS",
    "ORACLES",
    "get_oracle",
    "plan_rounds",
    "run_campaign",
    "run_mutation_test",
]
