"""Canonical deterministic circuit/chip/trace builders.

These used to live as private helpers scattered across the unit tests
(``tests/test_dta.py``, ``tests/test_choke.py``, ``tests/util.py``);
they are consolidated here so the QA generators and the test suite
construct *the same* structures.  Everything is a pure function of its
arguments (rngs are passed in or derived from integer seeds), which is
what lets the fuzz engine shrink a failing case down to a handful of
scalars.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scheme_sim import ErrorTrace
from repro.gates.builder import NetlistBuilder
from repro.gates.celllib import GateKind
from repro.gates.netlist import Netlist
from repro.pv.chip import ChipSample
from repro.pv.delaymodel import NTC
from repro.timing.dta import ERR_NONE
from repro.timing.levelize import LevelizedCircuit, levelize

_TWO_INPUT = (
    GateKind.AND2,
    GateKind.OR2,
    GateKind.NAND2,
    GateKind.NOR2,
    GateKind.XOR2,
    GateKind.XNOR2,
)
_ONE_INPUT = (GateKind.BUF, GateKind.INV, GateKind.DBUF)


def random_netlist(
    rng: np.random.Generator | int,
    num_inputs: int = 6,
    num_gates: int = 40,
    num_outputs: int = 4,
    mux_fraction: float = 0.15,
) -> Netlist:
    """A random, structurally-valid combinational netlist.

    ``rng`` may be a generator or a plain integer seed; the structure is
    deterministic either way for a given stream.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(int(rng))
    netlist = Netlist("random")
    for i in range(num_inputs):
        netlist.add(GateKind.INPUT, (), name=f"in{i}")
    netlist.add(GateKind.CONST0, ())
    netlist.add(GateKind.CONST1, ())
    for _ in range(num_gates):
        top = netlist.num_nodes
        roll = rng.random()
        if roll < mux_fraction:
            fanins = tuple(int(rng.integers(0, top)) for _ in range(3))
            netlist.add(GateKind.MUX2, fanins)
        elif roll < mux_fraction + 0.2:
            kind = _ONE_INPUT[int(rng.integers(len(_ONE_INPUT)))]
            netlist.add(kind, (int(rng.integers(0, top)),))
        else:
            kind = _TWO_INPUT[int(rng.integers(len(_TWO_INPUT)))]
            fanins = (int(rng.integers(0, top)), int(rng.integers(0, top)))
            netlist.add(kind, fanins)
    total = netlist.num_nodes
    for i in range(num_outputs):
        netlist.mark_output(f"out{i}", int(rng.integers(num_inputs, total)))
    return netlist


def random_gate_delays(
    netlist: Netlist, rng: np.random.Generator | int, lo: float = 1.0, hi: float = 20.0
) -> np.ndarray:
    """Random positive per-gate delays (sources stay at zero)."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(int(rng))
    delays = np.zeros(netlist.num_nodes, dtype=np.float64)
    for node_id in range(netlist.num_nodes):
        if netlist.fanins(node_id):
            delays[node_id] = float(rng.uniform(lo, hi))
    return delays


def chain_circuit(
    length: int = 3, gate_delay: float = 10.0
) -> tuple[LevelizedCircuit, np.ndarray]:
    """``in -> BUF x length -> out`` with uniform manual delays."""
    builder = NetlistBuilder()
    node = builder.input("a")
    for _ in range(length):
        node = builder.buf(node)
    builder.output("y", node)
    netlist = builder.build()
    delays = np.zeros(netlist.num_nodes)
    delays[1:] = gate_delay
    return levelize(netlist), delays


@dataclass(frozen=True)
class ChokeFixture:
    """A hand-built chip with one forced choke gate on a short branch.

    The deep branch is driven by input ``a``, the (choked) short branch
    by input ``b``, so callers can sensitise them independently
    (``sel=1`` selects the short branch).  ``nominal_critical`` is the
    PV-free critical-path delay through the deep branch.
    """

    chip: ChipSample
    circuit: LevelizedCircuit
    netlist: Netlist
    a: int
    b: int
    sel: int
    choke_gate: int
    out: int
    nominal_critical: float
    short_arrival: float  # sensitised arrival through the choked branch


def forced_choke_chip(
    deep_len: int = 4,
    short_len: int = 2,
    gate_delay: float = 10.0,
    choke_delay: float = 100.0,
) -> ChokeFixture:
    """Two parallel branches into a mux; the short one gets a choke gate.

    The last buffer of the short branch carries ``choke_delay`` instead
    of its nominal ``gate_delay``; everything else is nominal.  Requires
    ``deep_len > short_len`` so the deep branch stays the nominal
    critical path.
    """
    if deep_len <= short_len:
        raise ValueError("deep_len must exceed short_len")
    if short_len < 1:
        raise ValueError("short_len must be at least 1")
    builder = NetlistBuilder()
    a = builder.input("a")
    b = builder.input("b")
    sel = builder.input("sel")
    deep = a
    for _ in range(deep_len):
        deep = builder.buf(deep)
    short = b
    for _ in range(short_len):
        short = builder.buf(short)
    out = builder.mux(sel, deep, short)
    builder.output("y", out)
    netlist = builder.build()

    nominal = np.zeros(netlist.num_nodes)
    for node in range(netlist.num_nodes):
        if netlist.fanins(node):
            nominal[node] = gate_delay
    delays = nominal.copy()
    delays[short] = choke_delay

    chip = ChipSample(
        netlist=netlist,
        corner=NTC,
        seed=0,
        delta_vth=np.zeros(netlist.num_nodes),
        delays=delays,
        nominal_delays=nominal,
        affected_ids=np.array([short]),
    )
    return ChokeFixture(
        chip=chip,
        circuit=levelize(netlist),
        netlist=netlist,
        a=a,
        b=b,
        sel=sel,
        choke_gate=short,
        out=out,
        nominal_critical=(deep_len + 1) * gate_delay,
        short_arrival=(short_len - 1) * gate_delay + choke_delay + gate_delay,
    )


def synthetic_error_trace(
    err_class: np.ndarray,
    instr_sens: np.ndarray | None = None,
    instr_init: np.ndarray | None = None,
    owm: np.ndarray | None = None,
    size_a: np.ndarray | None = None,
    size_b: np.ndarray | None = None,
    t_late: np.ndarray | None = None,
    t_early: np.ndarray | None = None,
    clock_period: float = 1000.0,
    hold_constraint: float = 120.0,
    benchmark: str = "synthetic",
    corner_vdd: float = 0.45,
) -> ErrorTrace:
    """Hand-built :class:`ErrorTrace` for scheme tests and oracles.

    Defaults: a single repeated instruction context, with ``t_late``
    derived from the error classes (10 % beyond the clock on max errors)
    and ``t_early`` consistent with the min-error cycles.
    """
    err_class = np.asarray(err_class, dtype=np.int8)
    n = len(err_class)

    def default(arr, value, dtype):
        if arr is not None:
            return np.asarray(arr, dtype=dtype)
        return np.full(n, value, dtype=dtype)

    is_max = (err_class == 2) | (err_class == 3)
    is_min = (err_class == 1) | (err_class == 3)
    if t_late is None:
        t_late = np.where(is_max, clock_period * 1.1, clock_period * 0.8)
    if t_early is None:
        t_early = np.where(is_min, hold_constraint * 0.5, hold_constraint * 2.0)

    return ErrorTrace(
        benchmark=benchmark,
        corner="NTC",
        corner_vdd=corner_vdd,
        clock_period=clock_period,
        hold_constraint=hold_constraint,
        instr_sens=default(instr_sens, 1, np.int16),
        instr_init=default(instr_init, 2, np.int16),
        owm_sens=default(owm, True, bool),
        owm_init=default(owm, False, bool),
        size_a=default(size_a, True, bool),
        size_b=default(size_b, False, bool),
        static_ids=np.arange(n, dtype=np.int32),
        t_late=np.asarray(t_late, dtype=np.float32),
        t_early=np.asarray(t_early, dtype=np.float32),
        err_class=err_class,
    )


def all_none(n: int) -> np.ndarray:
    """An all-clean error-class vector."""
    return np.full(n, ERR_NONE, dtype=np.int8)
