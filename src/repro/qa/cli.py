"""The ``python -m repro.experiments qa {fuzz,repro,corpus,mutate,list}``
family.

Thin argparse front-end over :mod:`repro.qa.engine`,
:mod:`repro.qa.corpus` and :mod:`repro.qa.mutants`:

* ``fuzz`` — run a budgeted campaign; exit non-zero (and write shrunk
  artifacts with ``--artifact-dir``) when any oracle fails.
* ``repro FILE...`` — replay failure artifacts; exit non-zero while the
  failure still reproduces, so it flips green once fixed.
* ``corpus replay`` — replay the checked-in seed corpus (the CI
  regression gate); ``corpus seed`` regenerates it.
* ``mutate`` — the mutation self-test: plant each registered defect and
  require the oracles to kill it.
* ``list`` — the registered oracles and mutants.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments qa",
        description="Property-based differential QA over the simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="run a deterministic fuzz campaign")
    fuzz.add_argument("--budget-s", type=float, default=60.0, metavar="S",
                      help="planning budget in seconds (default: 60); sizes "
                           "round counts arithmetically, never measured")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--oracle", action="append", metavar="NAME",
                      help="restrict to this oracle (repeatable)")
    fuzz.add_argument("--no-deep", action="store_true",
                      help="skip the deep tier (multi-second differentials)")
    fuzz.add_argument("--artifact-dir", metavar="DIR",
                      help="write shrunk failure artifacts here")
    fuzz.add_argument("--format", choices=("text", "json"), default="text")
    fuzz.add_argument("-q", "--quiet", action="store_true",
                      help="suppress per-oracle narration")

    repro = sub.add_parser("repro", help="replay shrunk failure artifacts")
    repro.add_argument("artifacts", nargs="+", metavar="FILE")
    repro.add_argument("--format", choices=("text", "json"), default="text")

    corpus = sub.add_parser("corpus", help="manage the seed corpus")
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    replay = corpus_sub.add_parser("replay", help="replay a corpus directory")
    replay.add_argument("--dir", required=True, metavar="DIR")
    replay.add_argument("--format", choices=("text", "json"), default="text")
    replay.add_argument("-q", "--quiet", action="store_true")
    seed = corpus_sub.add_parser("seed", help="write representative passing cases")
    seed.add_argument("--dir", required=True, metavar="DIR")
    seed.add_argument("--seed", type=int, default=0)
    seed.add_argument("--per-oracle", type=int, default=2, metavar="K")

    mutate = sub.add_parser("mutate", help="run the mutation self-test")
    mutate.add_argument("--seed", type=int, default=0)
    mutate.add_argument("--rounds", type=int, default=None, metavar="N",
                        help="cases per oracle per mutant (default: 8)")
    mutate.add_argument("--mutant", action="append", metavar="NAME",
                        help="restrict to this mutant (repeatable)")
    mutate.add_argument("--format", choices=("text", "json"), default="text")

    sub.add_parser("list", help="show registered oracles and mutants")
    return parser


def _emit(payload: dict) -> None:
    print(json.dumps(payload, sort_keys=True, indent=2))


def _cmd_fuzz(args) -> int:
    from repro.qa.engine import run_campaign

    progress = None if (args.quiet or args.format == "json") else print
    report = run_campaign(
        seed=args.seed,
        budget_s=args.budget_s,
        oracle_names=args.oracle,
        include_deep=not args.no_deep,
        artifact_dir=args.artifact_dir,
        progress=progress,
    )
    doc = report.as_dict()
    if args.format == "json":
        _emit(doc)
    else:
        failed = doc["failed_oracles"]
        print(
            f"campaign seed={report.seed} budget={report.budget_s:g}s: "
            f"{doc['total_cases']} case(s) over {len(report.outcomes)} oracle(s), "
            f"{len(failed)} failing"
        )
        for name in failed:
            print(f"  FAILED {name}: {report.outcomes[name].failure['violations'][0]}")
    return 1 if doc["failed_oracles"] else 0


def _cmd_repro(args) -> int:
    from repro.qa.corpus import load_artifact, replay

    results = []
    reproduced = 0
    for path in args.artifacts:
        artifact = load_artifact(path)
        violations = replay(artifact)
        still_fails = bool(violations)
        reproduced += still_fails
        results.append(
            {
                "path": path,
                "oracle": artifact["oracle"],
                "case": artifact["case"],
                "reproduces": still_fails,
                "violations": violations,
            }
        )
        if args.format == "text":
            status = "REPRODUCES" if still_fails else "fixed"
            print(f"{status:>10}  {path} ({artifact['oracle']})")
            for violation in violations:
                print(f"            {violation}")
    if args.format == "json":
        _emit({"results": results, "reproduced": reproduced})
    return 1 if reproduced else 0


def _cmd_corpus(args) -> int:
    from repro.qa import corpus

    if args.corpus_command == "seed":
        written = corpus.seed_corpus(
            args.dir,
            engine_seed=args.seed,
            per_oracle=args.per_oracle,
            progress=print,
        )
        print(f"{len(written)} corpus case(s) in {args.dir}")
        return 0

    progress = None if (args.quiet or args.format == "json") else print
    report = corpus.replay_corpus(args.dir, progress=progress)
    if args.format == "json":
        _emit(report)
    else:
        print(
            f"{report['entries']} corpus case(s), "
            f"{len(report['regressed'])} regressed"
        )
        for entry in report["regressed"]:
            detail = entry["violations"][0] if entry["violations"] else (
                "expected a failure, but the case now passes"
            )
            print(f"  REGRESSED {entry['path']}: {detail}")
    if not report["entries"]:
        print("corpus directory is empty", file=sys.stderr)
        return 1
    return 1 if report["regressed"] else 0


def _cmd_mutate(args) -> int:
    from repro.qa.mutants import DEFAULT_ROUNDS, run_mutation_test

    progress = None if args.format == "json" else print
    report = run_mutation_test(
        seed=args.seed,
        rounds=args.rounds if args.rounds is not None else DEFAULT_ROUNDS,
        mutant_names=args.mutant,
        progress=progress,
    )
    if args.format == "json":
        _emit(report)
    else:
        killed = sum(1 for r in report["mutants"].values() if r["killed"])
        print(
            f"{killed}/{len(report['mutants'])} mutant(s) killed, baseline "
            f"{'clean' if report['baseline_clean'] else 'DIRTY'}"
        )
        for name in report["survivors"]:
            print(f"  SURVIVED {name}")
    return 0 if report["ok"] else 1


def _cmd_list(_args) -> int:
    from repro.qa.mutants import MUTANTS
    from repro.qa.oracles import ORACLES

    print(f"{len(ORACLES)} oracle(s):")
    for name in sorted(ORACLES):
        oracle = ORACLES[name]
        print(f"  {name:<22} [{oracle.tier}] {oracle.description}")
    print(f"{len(MUTANTS)} mutant(s):")
    for name in sorted(MUTANTS):
        mutant = MUTANTS[name]
        print(f"  {name:<28} kills via {', '.join(mutant.oracles)}")
    return 0


def qa_main(argv: list[str]) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "fuzz": _cmd_fuzz,
        "repro": _cmd_repro,
        "corpus": _cmd_corpus,
        "mutate": _cmd_mutate,
        "list": _cmd_list,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # the consumer went away (`... | head`); behave like a well-bred
        # filter: swallow the error and keep interpreter shutdown quiet
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
