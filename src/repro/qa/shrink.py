"""Deterministic greedy shrinking of failing cases.

Cases are flat ``{name: int}`` dicts with per-parameter lower bounds
(:class:`repro.qa.gen.Param`), so shrinking is integer minimisation:
for each parameter try its lower bound, then successive halvings of the
distance to it, then a single decrement; keep any candidate that still
fails.  Passes repeat until a full sweep makes no progress or the
evaluation budget runs out.  Everything is ordered (name-sorted
parameters, fixed candidate order), so the same failing case always
shrinks to the same minimal case.
"""

from __future__ import annotations

from typing import Callable

from repro.qa.gen import Param


def _candidates(value: int, lo: int) -> list[int]:
    """Smaller values to try, most aggressive first."""
    if value <= lo:
        return []
    out = [lo]
    gap = value - lo
    while gap > 1:
        gap //= 2
        candidate = lo + gap
        if candidate not in out and candidate < value:
            out.append(candidate)
    if value - 1 not in out:
        out.append(value - 1)
    return out


def shrink_case(
    case: dict[str, int],
    params: dict[str, Param],
    is_failing: Callable[[dict[str, int]], bool],
    max_evals: int = 160,
) -> tuple[dict[str, int], int]:
    """Minimise ``case`` while ``is_failing`` stays true.

    Returns ``(shrunk_case, evaluations_spent)``.  ``is_failing`` is
    only ever called on in-range candidate cases; the input case itself
    is assumed failing and is not re-checked.
    """
    current = dict(case)
    evals = 0
    progress = True
    while progress and evals < max_evals:
        progress = False
        for name in sorted(current):
            lo = params[name].lo
            for candidate_value in _candidates(current[name], lo):
                if evals >= max_evals:
                    break
                candidate = dict(current)
                candidate[name] = candidate_value
                evals += 1
                if is_failing(candidate):
                    current = candidate
                    progress = True
                    break  # restart candidate ladder from the new value
    return current, evals
