"""Seeded case generation: scalar parameter specs and draw combinators.

A *case* is a flat ``{name: int}`` dict — nothing else.  Expensive
structures (netlists, chips, error traces) are materialised *inside* an
oracle's check from those scalars, deterministically.  Keeping cases
scalar buys three things: they serialise to JSON verbatim, shrinking is
plain integer minimisation, and a replay needs no pickle.

Seed derivation goes through :func:`repro.experiments.charstudy.stable_seed`
(CRC32 over the key's repr) — never builtin ``hash()``, which is salted
per process and produced the PR 4 determinism bug this package exists to
prevent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.charstudy import stable_seed


@dataclass(frozen=True)
class Param:
    """An inclusive integer parameter range; shrinking moves toward ``lo``."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(f"empty Param range [{self.lo}, {self.hi}]")

    def draw(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    def clamp(self, value: int) -> int:
        return max(self.lo, min(self.hi, int(value)))


def case_seed(engine_seed: int, oracle_name: str, round_index: int) -> int:
    """The deterministic per-round seed a case is drawn from."""
    return stable_seed("qa", int(engine_seed), oracle_name, int(round_index))


def draw_case(params: dict[str, Param], seed: int) -> dict[str, int]:
    """Draw one case; parameter order is name-sorted so the stream is
    independent of dict insertion order."""
    rng = np.random.default_rng(int(seed))
    return {name: params[name].draw(rng) for name in sorted(params)}


def case_rng(case: dict[str, int], *salt: object) -> np.random.Generator:
    """A generator derived from a case's scalars (plus optional salt).

    Oracles use this to materialise structures: the stream depends only
    on the case contents, so a shrunk/replayed case rebuilds the exact
    same netlist or trace.
    """
    key = tuple(sorted(case.items()))
    return np.random.default_rng(stable_seed("qa-case", key, *salt))


def validate_case(params: dict[str, Param], case: dict) -> dict[str, int]:
    """Coerce and bound-check a (possibly hand-edited) case dict."""
    unknown = set(case) - set(params)
    if unknown:
        raise ValueError(f"unknown case parameter(s): {sorted(unknown)}")
    missing = set(params) - set(case)
    if missing:
        raise ValueError(f"missing case parameter(s): {sorted(missing)}")
    out: dict[str, int] = {}
    for name in sorted(params):
        value = int(case[name])
        if not params[name].lo <= value <= params[name].hi:
            raise ValueError(
                f"case parameter {name}={value} outside "
                f"[{params[name].lo}, {params[name].hi}]"
            )
        out[name] = value
    return out
