"""Replayable JSON failure artifacts and the checked-in seed corpus.

An artifact is everything needed to re-run one oracle on one case:

.. code-block:: json

    {"version": 1, "oracle": "scheme_conservation",
     "case": {"n": 7, "err_rate_pct": 60, ...},
     "violations": ["dcs penalty 12 != 14"]}

Cases are flat scalar dicts (see :mod:`repro.qa.gen`), so replay needs
no pickle and a human can minimise or edit an artifact by hand.  Two
flavours share the format:

* **failure artifacts** (``violations`` non-empty) — written by the
  engine after shrinking; ``qa repro`` replays them and reports whether
  the failure still reproduces.
* **corpus seeds** (``expect: "pass"``) — representative cases checked
  into ``benchmarks/qa_corpus/``; CI replays them and fails if any
  regresses.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.qa.gen import case_seed, draw_case, validate_case
from repro.qa.oracles import ORACLES, get_oracle

ARTIFACT_VERSION = 1


def canonical_json(obj: dict) -> str:
    """Stable serialisation: the basis for artifact filenames."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def artifact_name(artifact: dict) -> str:
    digest = hashlib.sha256(canonical_json(artifact).encode("utf-8")).hexdigest()
    return f"{artifact['oracle']}-{digest[:12]}.json"


def make_artifact(
    oracle_name: str,
    case: dict[str, int],
    violations: list[str],
    engine_seed: int | None = None,
    round_index: int | None = None,
    original_case: dict[str, int] | None = None,
) -> dict:
    """A failure artifact dict (provenance fields are optional)."""
    artifact = {
        "version": ARTIFACT_VERSION,
        "oracle": oracle_name,
        "case": dict(case),
        "violations": list(violations),
    }
    if engine_seed is not None:
        artifact["engine_seed"] = int(engine_seed)
    if round_index is not None:
        artifact["round"] = int(round_index)
    if original_case is not None and original_case != case:
        artifact["original_case"] = dict(original_case)
    return artifact


def write_artifact(directory: str | os.PathLike, artifact: dict) -> Path:
    """Atomically write ``artifact`` under its content-hash filename."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / artifact_name(artifact)
    payload = json.dumps(artifact, sort_keys=True, indent=2) + "\n"
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def load_artifact(path: str | os.PathLike) -> dict:
    """Load and structurally validate an artifact file."""
    with open(path, encoding="utf-8") as handle:
        artifact = json.load(handle)
    if not isinstance(artifact, dict):
        raise ValueError(f"{path}: artifact must be a JSON object")
    version = artifact.get("version")
    if version != ARTIFACT_VERSION:
        raise ValueError(f"{path}: unsupported artifact version {version!r}")
    oracle = get_oracle(str(artifact.get("oracle")))
    artifact["case"] = validate_case(oracle.params, artifact.get("case", {}))
    return artifact


def replay(artifact: dict) -> list[str]:
    """Re-run an artifact's oracle on its case; returns fresh violations."""
    from repro.qa.engine import run_check

    oracle = get_oracle(artifact["oracle"])
    case = validate_case(oracle.params, artifact["case"])
    return run_check(oracle, case)


def corpus_paths(directory: str | os.PathLike) -> list[Path]:
    return sorted(Path(directory).glob("*.json"))


def replay_corpus(directory: str | os.PathLike, progress=None) -> dict:
    """Replay every artifact in a corpus directory.

    A corpus entry *regresses* when its current verdict differs from the
    recorded expectation: seeds (``expect: "pass"`` or no recorded
    violations) must stay green; failure artifacts must still fail
    (otherwise the corpus is stale and should be re-seeded).
    """
    results = []
    for path in corpus_paths(directory):
        artifact = load_artifact(path)
        violations = replay(artifact)
        expect_pass = artifact.get("expect") == "pass" or not artifact.get("violations")
        ok = (not violations) if expect_pass else bool(violations)
        results.append(
            {
                "path": str(path),
                "oracle": artifact["oracle"],
                "expect": "pass" if expect_pass else "fail",
                "ok": ok,
                "violations": violations,
            }
        )
        if progress is not None:
            status = "ok" if ok else "REGRESSED"
            progress(f"{status:>9}  {path}")
    return {
        "version": ARTIFACT_VERSION,
        "entries": len(results),
        "regressed": [r for r in results if not r["ok"]],
        "results": results,
    }


def seed_corpus(
    directory: str | os.PathLike,
    engine_seed: int = 0,
    per_oracle: int = 2,
    progress=None,
) -> list[Path]:
    """Write representative passing cases for every fast oracle.

    Cases come from the same deterministic stream the fuzzer uses
    (rounds ``0 .. per_oracle-1``), so the corpus is reproducible from
    ``(engine_seed, per_oracle)`` alone.  Currently-failing cases are
    skipped — a seed corpus must be green at birth.
    """
    from repro.qa.engine import run_check

    written: list[Path] = []
    for name in sorted(ORACLES):
        oracle = ORACLES[name]
        if oracle.tier != "fast":
            continue
        for round_index in range(per_oracle):
            case = draw_case(oracle.params, case_seed(engine_seed, name, round_index))
            if run_check(oracle, case):
                if progress is not None:
                    progress(f"skip {name} round {round_index}: currently failing")
                continue
            artifact = {
                "version": ARTIFACT_VERSION,
                "oracle": name,
                "case": case,
                "expect": "pass",
                "engine_seed": int(engine_seed),
                "round": round_index,
            }
            path = write_artifact(directory, artifact)
            written.append(path)
            if progress is not None:
                progress(f"seeded {path}")
    return written
