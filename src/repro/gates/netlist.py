"""Append-only, topologically-ordered combinational netlist.

A :class:`Netlist` is the central circuit representation.  Nodes are added
in topological order by construction (every fanin must already exist), so
downstream consumers (logic evaluation, dynamic timing analysis, static
timing analysis) can iterate node ids in ascending order without an
explicit sort.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator

import numpy as np

from repro.gates.celllib import (
    CELL_LIBRARY,
    COMBINATIONAL_KINDS,
    GateKind,
    fanin_count,
)


class Netlist:
    """A combinational gate-level netlist.

    Sequential boundaries (the pipeline registers around the EX stage) are
    modelled outside the netlist by the timing engine, matching the paper's
    methodology of timing one pipestage's combinational cloud per cycle.
    """

    def __init__(self, name: str = "netlist") -> None:
        self.name = name
        self._kinds: list[GateKind] = []
        self._fanins: list[tuple[int, ...]] = []
        self._names: dict[int, str] = {}
        self._outputs: dict[str, int] = {}
        self._input_ids: list[int] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, kind: GateKind, fanins: Iterable[int] = (), name: str | None = None) -> int:
        """Append a node and return its id.

        Raises ``ValueError`` if the fanin arity is wrong or a fanin refers
        to a node that does not exist yet (which would break topological
        order).
        """
        fanins = tuple(int(f) for f in fanins)
        expected = fanin_count(kind)
        if len(fanins) != expected:
            raise ValueError(
                f"{kind.name} expects {expected} fanins, got {len(fanins)}"
            )
        node_id = len(self._kinds)
        for fanin in fanins:
            if not 0 <= fanin < node_id:
                raise ValueError(
                    f"fanin {fanin} of new node {node_id} is not an existing node"
                )
        self._kinds.append(kind)
        self._fanins.append(fanins)
        if name is not None:
            self._names[node_id] = name
        if kind is GateKind.INPUT:
            self._input_ids.append(node_id)
        return node_id

    def mark_output(self, name: str, node_id: int) -> None:
        """Register ``node_id`` as the primary output called ``name``."""
        if not 0 <= node_id < len(self._kinds):
            raise ValueError(f"output {name!r} refers to unknown node {node_id}")
        if name in self._outputs:
            raise ValueError(f"duplicate output name {name!r}")
        self._outputs[name] = node_id

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._kinds)

    @property
    def num_nodes(self) -> int:
        """Total node count, sources included."""
        return len(self._kinds)

    @property
    def num_gates(self) -> int:
        """Count of combinational cells (sources excluded)."""
        return sum(1 for kind in self._kinds if kind in COMBINATIONAL_KINDS)

    @property
    def input_ids(self) -> tuple[int, ...]:
        return tuple(self._input_ids)

    @property
    def output_ids(self) -> tuple[int, ...]:
        return tuple(self._outputs.values())

    @property
    def output_names(self) -> tuple[str, ...]:
        return tuple(self._outputs)

    @property
    def outputs(self) -> dict[str, int]:
        return dict(self._outputs)

    def kind(self, node_id: int) -> GateKind:
        return self._kinds[node_id]

    def fanins(self, node_id: int) -> tuple[int, ...]:
        return self._fanins[node_id]

    def name_of(self, node_id: int) -> str:
        return self._names.get(node_id, f"n{node_id}")

    def iter_nodes(self) -> Iterator[tuple[int, GateKind, tuple[int, ...]]]:
        """Yield ``(id, kind, fanins)`` in topological order."""
        for node_id, (kind, fanins) in enumerate(zip(self._kinds, self._fanins)):
            yield node_id, kind, fanins

    def gate_count_by_kind(self) -> Counter[GateKind]:
        return Counter(self._kinds)

    # ------------------------------------------------------------------
    # array views (consumed by the vectorised timing engine)
    # ------------------------------------------------------------------
    def kinds_array(self) -> np.ndarray:
        return np.array([int(kind) for kind in self._kinds], dtype=np.int8)

    def fanin_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fanin ids padded to three columns; unused slots hold ``-1``."""
        n = len(self._kinds)
        in0 = np.full(n, -1, dtype=np.int32)
        in1 = np.full(n, -1, dtype=np.int32)
        in2 = np.full(n, -1, dtype=np.int32)
        for node_id, fanins in enumerate(self._fanins):
            if len(fanins) > 0:
                in0[node_id] = fanins[0]
            if len(fanins) > 1:
                in1[node_id] = fanins[1]
            if len(fanins) > 2:
                in2[node_id] = fanins[2]
        return in0, in1, in2

    # ------------------------------------------------------------------
    # structural analysis
    # ------------------------------------------------------------------
    def fanouts(self) -> list[list[int]]:
        """For each node, the ids of nodes that consume it."""
        result: list[list[int]] = [[] for _ in range(len(self._kinds))]
        for node_id, fanins in enumerate(self._fanins):
            for fanin in fanins:
                result[fanin].append(node_id)
        return result

    def levels(self) -> np.ndarray:
        """Logic depth of each node (sources are level 0)."""
        level = np.zeros(len(self._kinds), dtype=np.int32)
        for node_id, fanins in enumerate(self._fanins):
            if fanins:
                level[node_id] = 1 + max(int(level[f]) for f in fanins)
        return level

    def logic_depth(self) -> int:
        """Maximum logic depth over primary outputs."""
        if not self._outputs:
            return 0
        level = self.levels()
        return int(max(level[node_id] for node_id in self._outputs.values()))

    def transitive_fanin(self, node_ids: Iterable[int]) -> set[int]:
        """All nodes in the cone of influence of ``node_ids`` (inclusive)."""
        seen: set[int] = set()
        stack = [int(node_id) for node_id in node_ids]
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            stack.extend(self._fanins[node_id])
        return seen

    def dead_nodes(self) -> set[int]:
        """Nodes not in the transitive fanin of any primary output."""
        live = self.transitive_fanin(self._outputs.values())
        return set(range(len(self._kinds))) - live

    def total_area_um2(self) -> float:
        return sum(CELL_LIBRARY[kind].area_um2 for kind in self._kinds)

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` for ad-hoc analysis."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for node_id, kind, fanins in self.iter_nodes():
            graph.add_node(node_id, kind=kind.name, label=self.name_of(node_id))
            for fanin in fanins:
                graph.add_edge(fanin, node_id)
        return graph

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, nodes={self.num_nodes}, "
            f"gates={self.num_gates}, inputs={len(self._input_ids)}, "
            f"outputs={len(self._outputs)})"
        )
