"""Combinational standard-cell library.

The paper synthesises its circuits on the NanGate 15 nm FinFET Open Cell
Library and characterises the basic gates with HSPICE Monte Carlo runs on
the 16 nm PTM multigate models.  Neither is available here, so this module
defines a compact cell library with *relative* per-cell coefficients that
stand in for the library characterisation data:

* ``delay_coeff`` -- intrinsic propagation-delay coefficient in picoseconds
  at the reference corner (super-threshold, nominal Vth).  The actual delay
  of a fabricated gate instance is ``delay_coeff`` scaled by the
  voltage/threshold-dependent drive factor from
  :mod:`repro.pv.delaymodel`.
* ``area_um2`` -- cell area used by the overhead estimator.
* ``energy_fj`` -- dynamic switching energy per output transition at the
  reference corner; scaled quadratically with Vdd by the energy model.
* ``leakage_nw`` -- leakage power used for static-energy accounting.

Absolute values are plausible for a 15/16 nm FinFET node but only their
*ratios* matter for the reproduced results.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class GateKind(enum.IntEnum):
    """Node kinds supported by the netlist and the timing engine.

    ``INPUT``, ``CONST0`` and ``CONST1`` are sources (zero delay, no
    fanin/constant fanin); the remaining kinds are combinational cells.
    ``MUX2`` computes ``in1 if sel else in0`` with fanins
    ``(in0, in1, sel)``.
    """

    INPUT = 0
    CONST0 = 1
    CONST1 = 2
    BUF = 3
    INV = 4
    AND2 = 5
    OR2 = 6
    NAND2 = 7
    NOR2 = 8
    XOR2 = 9
    XNOR2 = 10
    MUX2 = 11
    DBUF = 12  # delay buffer / hold-fix cell: logically a BUF, 4x slower


@dataclass(frozen=True)
class CellSpec:
    """Static characterisation data for one cell of the library."""

    kind: GateKind
    num_inputs: int
    delay_coeff: float  # ps at the reference corner
    area_um2: float
    energy_fj: float
    leakage_nw: float

    @property
    def is_source(self) -> bool:
        """True for nodes that originate values (inputs and constants)."""
        return self.num_inputs == 0


CELL_LIBRARY: dict[GateKind, CellSpec] = {
    spec.kind: spec
    for spec in (
        CellSpec(GateKind.INPUT, 0, 0.0, 0.0, 0.0, 0.0),
        CellSpec(GateKind.CONST0, 0, 0.0, 0.0, 0.0, 0.0),
        CellSpec(GateKind.CONST1, 0, 0.0, 0.0, 0.0, 0.0),
        CellSpec(GateKind.BUF, 1, 7.0, 0.294, 0.60, 1.6),
        CellSpec(GateKind.INV, 1, 4.0, 0.196, 0.40, 1.0),
        CellSpec(GateKind.AND2, 2, 8.0, 0.294, 0.70, 1.8),
        CellSpec(GateKind.OR2, 2, 8.5, 0.294, 0.70, 1.8),
        CellSpec(GateKind.NAND2, 2, 5.5, 0.245, 0.50, 1.4),
        CellSpec(GateKind.NOR2, 2, 6.5, 0.245, 0.50, 1.4),
        CellSpec(GateKind.XOR2, 2, 12.0, 0.441, 1.10, 2.6),
        CellSpec(GateKind.XNOR2, 2, 12.0, 0.441, 1.10, 2.6),
        CellSpec(GateKind.MUX2, 3, 11.0, 0.441, 1.00, 2.4),
        CellSpec(GateKind.DBUF, 1, 28.0, 0.392, 0.90, 2.0),
    )
}

#: Kinds that evaluate a boolean function of their fanins.
COMBINATIONAL_KINDS: frozenset[GateKind] = frozenset(
    kind for kind, spec in CELL_LIBRARY.items() if not spec.is_source
)

#: Kinds that originate values.
SOURCE_KINDS: frozenset[GateKind] = frozenset(
    kind for kind, spec in CELL_LIBRARY.items() if spec.is_source
)


def fanin_count(kind: GateKind) -> int:
    """Number of fanins required by ``kind``."""
    return CELL_LIBRARY[kind].num_inputs


def evaluate_gate(kind: GateKind, *inputs: int) -> int:
    """Evaluate one gate on scalar boolean inputs (0/1).

    This is the scalar reference semantics; the vectorised timing engine in
    :mod:`repro.timing.logic_eval` must agree with it (property-tested).
    """
    if kind is GateKind.CONST0:
        return 0
    if kind is GateKind.CONST1:
        return 1
    if kind is GateKind.BUF or kind is GateKind.DBUF:
        return inputs[0] & 1
    if kind is GateKind.INV:
        return (~inputs[0]) & 1
    if kind is GateKind.AND2:
        return inputs[0] & inputs[1]
    if kind is GateKind.OR2:
        return inputs[0] | inputs[1]
    if kind is GateKind.NAND2:
        return (~(inputs[0] & inputs[1])) & 1
    if kind is GateKind.NOR2:
        return (~(inputs[0] | inputs[1])) & 1
    if kind is GateKind.XOR2:
        return inputs[0] ^ inputs[1]
    if kind is GateKind.XNOR2:
        return (~(inputs[0] ^ inputs[1])) & 1
    if kind is GateKind.MUX2:
        in0, in1, sel = inputs
        return in1 if sel else in0
    raise ValueError(f"cannot evaluate node kind {kind!r}")
