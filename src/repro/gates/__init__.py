"""Gate-level substrate: standard-cell library, netlists, and builders.

This package replaces the NanGate 15 nm FinFET standard-cell library and the
Synopsys Design Compiler netlists used by the paper.  It provides:

* :mod:`repro.gates.celllib` -- a small combinational cell library with
  per-cell nominal delay, area, and switching-energy coefficients,
* :mod:`repro.gates.netlist` -- an append-only, topologically-ordered
  netlist data structure,
* :mod:`repro.gates.builder` -- a convenience builder with bit- and
  word-level construction helpers,
* :mod:`repro.gates.validate` -- structural sanity checks.
"""

from repro.gates.celllib import CELL_LIBRARY, CellSpec, GateKind
from repro.gates.netlist import Netlist
from repro.gates.builder import NetlistBuilder
from repro.gates.validate import NetlistValidationError, validate_netlist

__all__ = [
    "CELL_LIBRARY",
    "CellSpec",
    "GateKind",
    "Netlist",
    "NetlistBuilder",
    "NetlistValidationError",
    "validate_netlist",
]
