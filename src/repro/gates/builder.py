"""Convenience builder for structural netlist construction.

The builder offers bit-level gate helpers (returning node ids) and
word-level helpers (returning lists of node ids, LSB first), which is how
the arithmetic circuits in :mod:`repro.circuits` are written.
"""

from __future__ import annotations

from typing import Sequence

from repro.gates.celllib import GateKind
from repro.gates.netlist import Netlist

Word = list[int]


class NetlistBuilder:
    """Builds a :class:`~repro.gates.netlist.Netlist` incrementally."""

    def __init__(self, name: str = "netlist") -> None:
        self.netlist = Netlist(name)
        self._const_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def input(self, name: str) -> int:
        return self.netlist.add(GateKind.INPUT, (), name=name)

    def input_word(self, name: str, width: int) -> Word:
        return [self.input(f"{name}[{i}]") for i in range(width)]

    def const(self, value: int) -> int:
        """A constant 0/1 source (cached, one node per value)."""
        value = int(bool(value))
        if value not in self._const_cache:
            kind = GateKind.CONST1 if value else GateKind.CONST0
            self._const_cache[value] = self.netlist.add(kind, (), name=f"const{value}")
        return self._const_cache[value]

    # ------------------------------------------------------------------
    # bit-level gates
    # ------------------------------------------------------------------
    def buf(self, a: int, name: str | None = None) -> int:
        return self.netlist.add(GateKind.BUF, (a,), name=name)

    def dbuf(self, a: int, name: str | None = None) -> int:
        """Delay buffer (hold-fix cell); logically identical to ``buf``."""
        return self.netlist.add(GateKind.DBUF, (a,), name=name)

    def dbuf_chain(self, a: int, count: int) -> int:
        """A series chain of ``count`` delay buffers (identity for 0)."""
        node = a
        for _ in range(count):
            node = self.dbuf(node)
        return node

    def not_(self, a: int, name: str | None = None) -> int:
        return self.netlist.add(GateKind.INV, (a,), name=name)

    def and_(self, a: int, b: int, name: str | None = None) -> int:
        return self.netlist.add(GateKind.AND2, (a, b), name=name)

    def or_(self, a: int, b: int, name: str | None = None) -> int:
        return self.netlist.add(GateKind.OR2, (a, b), name=name)

    def nand_(self, a: int, b: int, name: str | None = None) -> int:
        return self.netlist.add(GateKind.NAND2, (a, b), name=name)

    def nor_(self, a: int, b: int, name: str | None = None) -> int:
        return self.netlist.add(GateKind.NOR2, (a, b), name=name)

    def xor_(self, a: int, b: int, name: str | None = None) -> int:
        return self.netlist.add(GateKind.XOR2, (a, b), name=name)

    def xnor_(self, a: int, b: int, name: str | None = None) -> int:
        return self.netlist.add(GateKind.XNOR2, (a, b), name=name)

    def mux(self, sel: int, a: int, b: int, name: str | None = None) -> int:
        """``b if sel else a`` (a 2:1 multiplexer)."""
        return self.netlist.add(GateKind.MUX2, (a, b, sel), name=name)

    # ------------------------------------------------------------------
    # reduction trees
    # ------------------------------------------------------------------
    def _tree(self, op, bits: Sequence[int]) -> int:
        bits = list(bits)
        if not bits:
            raise ValueError("reduction over an empty bit list")
        while len(bits) > 1:
            nxt = []
            for i in range(0, len(bits) - 1, 2):
                nxt.append(op(bits[i], bits[i + 1]))
            if len(bits) % 2:
                nxt.append(bits[-1])
            bits = nxt
        return bits[0]

    def and_many(self, bits: Sequence[int]) -> int:
        """Balanced AND tree over ``bits``."""
        return self._tree(self.and_, bits)

    def or_many(self, bits: Sequence[int]) -> int:
        """Balanced OR tree over ``bits``."""
        return self._tree(self.or_, bits)

    def xor_many(self, bits: Sequence[int]) -> int:
        """Balanced XOR tree over ``bits``."""
        return self._tree(self.xor_, bits)

    # ------------------------------------------------------------------
    # word-level helpers
    # ------------------------------------------------------------------
    def buf_word(self, word: Word) -> Word:
        return [self.buf(bit) for bit in word]

    def not_word(self, word: Word) -> Word:
        return [self.not_(bit) for bit in word]

    def bitwise(self, op, a: Word, b: Word) -> Word:
        if len(a) != len(b):
            raise ValueError(f"word width mismatch: {len(a)} vs {len(b)}")
        return [op(x, y) for x, y in zip(a, b)]

    def and_word(self, a: Word, b: Word) -> Word:
        return self.bitwise(self.and_, a, b)

    def or_word(self, a: Word, b: Word) -> Word:
        return self.bitwise(self.or_, a, b)

    def xor_word(self, a: Word, b: Word) -> Word:
        return self.bitwise(self.xor_, a, b)

    def nor_word(self, a: Word, b: Word) -> Word:
        return self.bitwise(self.nor_, a, b)

    def mux_word(self, sel: int, a: Word, b: Word) -> Word:
        """Per-bit 2:1 mux: ``b if sel else a``."""
        if len(a) != len(b):
            raise ValueError(f"word width mismatch: {len(a)} vs {len(b)}")
        return [self.mux(sel, x, y) for x, y in zip(a, b)]

    def zero_word(self, width: int) -> Word:
        return [self.const(0)] * width

    # ------------------------------------------------------------------
    # outputs
    # ------------------------------------------------------------------
    def output(self, name: str, node_id: int) -> None:
        self.netlist.mark_output(name, node_id)

    def output_word(self, name: str, word: Word) -> None:
        for i, bit in enumerate(word):
            self.netlist.mark_output(f"{name}[{i}]", bit)

    def build(self) -> Netlist:
        """Return the completed netlist."""
        return self.netlist
