"""Structural validation of netlists.

These checks correspond to the lint a synthesis flow performs before
timing: correct arities, topological order, no dangling outputs, and a
report of logic that no output depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gates.celllib import GateKind, fanin_count
from repro.gates.netlist import Netlist


class NetlistValidationError(Exception):
    """Raised when a netlist fails a structural check."""


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_netlist`."""

    num_nodes: int
    num_gates: int
    num_inputs: int
    num_outputs: int
    logic_depth: int
    dead_node_ids: set[int] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return True  # an exception is raised for hard failures


def validate_netlist(netlist: Netlist, allow_dead_logic: bool = True) -> ValidationReport:
    """Check the structural invariants of ``netlist``.

    Hard failures (wrong arity, forward references, no outputs, constant
    outputs only) raise :class:`NetlistValidationError`.  Dead logic is
    reported, and rejected only when ``allow_dead_logic`` is False.
    """
    if netlist.num_nodes == 0:
        raise NetlistValidationError("empty netlist")
    if not netlist.output_ids:
        raise NetlistValidationError("netlist has no primary outputs")

    for node_id, kind, fanins in netlist.iter_nodes():
        expected = fanin_count(kind)
        if len(fanins) != expected:
            raise NetlistValidationError(
                f"node {node_id} ({kind.name}) has {len(fanins)} fanins, "
                f"expected {expected}"
            )
        for fanin in fanins:
            if not 0 <= fanin < node_id:
                raise NetlistValidationError(
                    f"node {node_id} references fanin {fanin} out of order"
                )

    if all(
        netlist.kind(out) in (GateKind.CONST0, GateKind.CONST1)
        for out in netlist.output_ids
    ):
        raise NetlistValidationError("all primary outputs are constants")

    dead = netlist.dead_nodes()
    # Inputs are allowed to be unused (e.g. unconnected operand bits of a
    # narrow operation); only dead *gates* are interesting.
    dead_gates = {
        node_id for node_id in dead if fanin_count(netlist.kind(node_id)) > 0
    }
    if dead_gates and not allow_dead_logic:
        raise NetlistValidationError(
            f"netlist contains {len(dead_gates)} dead gates, e.g. "
            f"{sorted(dead_gates)[:5]}"
        )

    return ValidationReport(
        num_nodes=netlist.num_nodes,
        num_gates=netlist.num_gates,
        num_inputs=len(netlist.input_ids),
        num_outputs=len(netlist.output_ids),
        logic_depth=netlist.logic_depth(),
        dead_node_ids=dead_gates,
    )
