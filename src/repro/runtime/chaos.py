"""Chaos harness: deliberate fault injection for the runtime itself.

A resilience layer that is never exercised is a liability, so this
module makes the failure modes injectable: corrupt or truncate stored
checkpoints, abort a store write partway through (a simulated crash or
full disk), and raise arbitrary exceptions inside experiment bodies.
Tests — and the CLI's ``--chaos-fail`` self-test flag — use these to
prove the executor isolates faults and the store degrades to
recomputation instead of assuming it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.log import get_logger

logger = get_logger("chaos")


class InjectedFailure(RuntimeError):
    """The distinguishable exception raised by injected faults."""


# ----------------------------------------------------------------------
# experiment-body faults
# ----------------------------------------------------------------------

def failing_run(message: str = "injected failure", exc_type: type[BaseException] = InjectedFailure) -> Callable:
    """An experiment body that always raises."""

    def run(ctx):
        raise exc_type(message)

    return run


def flaky_run(fn: Callable, failures: int, message: str = "injected transient failure") -> Callable:
    """Delegate to ``fn`` after raising on the first ``failures`` calls.

    Exercises the executor's retry path deterministically.
    """
    state = {"remaining": failures}

    def run(ctx):
        if state["remaining"] > 0:
            state["remaining"] -= 1
            raise InjectedFailure(message)
        return fn(ctx)

    return run


def hanging_run(seconds: float = 3600.0) -> Callable:
    """An experiment body that sleeps past any reasonable timeout."""

    def run(ctx):
        time.sleep(seconds)
        raise AssertionError("hanging_run outlived its watchdog")

    return run


def killed_run(exit_code: int = 86) -> Callable:
    """An experiment body that dies like a SIGKILL'd / OOM'd process.

    ``os._exit`` skips every Python-level cleanup, so from the parallel
    orchestrator's point of view the worker simply vanishes — the
    hardest failure the pool must contain.  Never use in a serial run:
    it takes the whole interpreter with it (which is the point).
    """

    def run(ctx):
        os._exit(exit_code)

    return run


def slow_run(seconds: float, fn: Callable | None = None) -> Callable:
    """Delay ``fn`` (or a trivial success) by ``seconds``.

    Used to prove the parallel watchdog measures from *worker start*:
    N slow bodies queued on one worker each stay within a per-run
    budget even though the last one finishes N x ``seconds`` after
    submission.
    """

    def run(ctx):
        time.sleep(seconds)
        if fn is not None:
            return fn(ctx)
        from repro.experiments.report import ExperimentResult

        return ExperimentResult("slow", f"slept {seconds:g}s")

    return run


def chaos_resolve(fail_ids: set[str], base: Callable[[str], Callable]) -> Callable[[str], Callable]:
    """A registry resolver that swaps listed ids for failing bodies.

    Backs the CLI's ``--chaos-fail`` flag: the listed experiments raise
    :class:`InjectedFailure` instead of running, letting an operator
    watch the supervisor contain the blast radius end to end.
    """

    def resolve(experiment_id: str) -> Callable:
        if experiment_id in fail_ids:
            logger.info("chaos: injecting failure into %s", experiment_id)
            return failing_run(f"chaos-injected failure in {experiment_id}")
        return base(experiment_id)

    return resolve


# ----------------------------------------------------------------------
# network faults (the remote backend's --chaos-net harness)
# ----------------------------------------------------------------------

#: the modes ``ChaosNet.parse`` accepts (the CLI validates against this)
NET_MODES = ("drop", "delay", "partition", "half-open")


@dataclass
class ChaosNet:
    """Deterministic network-fault policy for one remote fleet run.

    The coordinator consults this on every frame it exchanges with the
    *victim* worker (selected by connection index, default the first),
    so each mode maps onto a concrete distributed-systems failure:

    ``drop``      inbound heartbeats are discarded — the worker is alive
                  and computing, but looks dead to the deadline monitor;
    ``delay``     every inbound frame is held for ``delay_s`` — a slow
                  or congested link that must NOT trip the deadline;
    ``partition`` after the victim's first task both directions go dark
                  (sends are black-holed, receipts discarded) — a
                  network split with the socket still "open";
    ``half-open`` after the first task only the *return* path dies —
                  the coordinator's sends keep succeeding into the
                  void, the classic half-open TCP failure.

    All decisions are pure functions of (mode, frame, activation
    state): no randomness, so a chaos run is exactly reproducible.
    """

    mode: str
    victim: int = 0
    delay_s: float = 0.25
    _active: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in NET_MODES:
            raise ValueError(f"unknown chaos-net mode {self.mode!r} (known: {', '.join(NET_MODES)})")

    @classmethod
    def parse(cls, text: str) -> "ChaosNet":
        """``MODE`` or ``MODE:VICTIM_INDEX`` (e.g. ``partition:1``)."""
        mode, _, victim = text.partition(":")
        return cls(mode=mode, victim=int(victim) if victim else 0)

    # -- hooks the coordinator calls ------------------------------------
    def task_sent(self, worker_index: int) -> None:
        """partition / half-open arm themselves at the first task."""
        if worker_index == self.victim and self.mode in ("partition", "half-open"):
            if not self._active:
                logger.info("chaos-net: %s of worker %d armed", self.mode, worker_index)
            self._active = True

    def allow_send(self, worker_index: int) -> bool:
        """False = black-hole the outbound frame (never hits the wire)."""
        if worker_index != self.victim:
            return True
        if self.mode == "partition" and self._active:
            logger.debug("chaos-net: dropping outbound frame to worker %d", worker_index)
            return False
        return True

    def filter_recv(self, worker_index: int, payload: dict[str, Any]) -> dict[str, Any] | None:
        """The (possibly delayed) inbound frame, or None to discard it."""
        if worker_index != self.victim:
            return payload
        if self.mode == "drop" and payload.get("type") == "heartbeat":
            logger.debug("chaos-net: dropping heartbeat from worker %d", worker_index)
            return None
        if self.mode == "delay":
            time.sleep(self.delay_s)
            return payload
        if self.mode in ("partition", "half-open") and self._active:
            logger.debug("chaos-net: discarding inbound frame from worker %d", worker_index)
            return None
        return payload


# ----------------------------------------------------------------------
# checkpoint-store faults
# ----------------------------------------------------------------------

def corrupt_entry(store: CheckpointStore, key: str, mode: str = "flip") -> None:
    """Damage a stored checkpoint in place.

    ``flip``     invert a payload byte (checksum must catch it);
    ``truncate`` keep only the first half (torn file);
    ``garbage``  replace the file with non-checkpoint bytes.
    """
    path = store.path(key)
    blob = path.read_bytes()
    if mode == "flip":
        index = len(blob) - 1 - len(blob) // 4
        blob = blob[:index] + bytes([blob[index] ^ 0xFF]) + blob[index + 1:]
    elif mode == "truncate":
        blob = blob[: len(blob) // 2]
    elif mode == "garbage":
        blob = b"not a checkpoint at all\n" * 4
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    path.write_bytes(blob)
    logger.info("chaos: corrupted %s (%s)", key, mode)


def abort_writes(store: CheckpointStore, fraction: float = 0.5) -> None:
    """Make every subsequent write on ``store`` die partway through.

    Simulates a crash / full disk during persistence: a fraction of the
    bytes lands in the temp file, then an ``OSError`` fires.  Because
    writes are atomic, no torn entry may ever become visible under the
    final key — the store just records a write error and the run keeps
    its in-memory artefact.
    """
    original = type(store)._atomic_write

    def dying_write(path, data: bytes) -> None:
        partial = data[: max(1, int(len(data) * fraction))]
        original(store, path.with_suffix(".crashed"), partial)
        raise OSError("chaos: write aborted mid-flight")

    store._atomic_write = dying_write  # type: ignore[method-assign]
    logger.info("chaos: store writes will abort at %.0f%%", fraction * 100)
