"""The process-pool backend: local fan-out behind the backend interface.

A thin adapter over :func:`repro.runtime.parallel.run_fleet` — the
prefetch + fan-out + crash-containment machinery is unchanged; the
backend interface just makes it swappable with ``inproc`` and
``remote``.  This is also the degradation target: the remote backend
falls back here when its worker pool is unreachable.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro import obs
from repro.runtime.backends.base import ExecutorBackend
from repro.runtime.checkpoint import StoreStats
from repro.runtime.executor import RunOutcome, RunReport
from repro.runtime.parallel import WorkerSpec, run_fleet


class ProcpoolBackend(ExecutorBackend):
    name = "procpool"

    def __init__(self, prefetch: bool = True) -> None:
        self.prefetch = prefetch

    def run(
        self,
        experiment_ids: Sequence[str],
        spec: WorkerSpec,
        jobs: int | None = None,
        on_outcome: Callable[[RunOutcome], None] | None = None,
        crash_retries: int = 1,
    ) -> tuple[RunReport, StoreStats]:
        for eid in experiment_ids:
            obs.emit("scheduled", experiment=eid, worker="procpool")
        return run_fleet(
            experiment_ids,
            spec,
            jobs=jobs,
            on_outcome=on_outcome,
            prefetch=self.prefetch,
            crash_retries=crash_retries,
        )
