"""Socket coordinator for the remote-worker backend.

The coordinator connects out to a fleet of workers (each one a
``python -m repro.runtime.backends.worker --listen HOST:PORT`` process,
usually on other machines sharing the checkpoint store), ships them the
:class:`WorkerSpec`, and streams tasks over length-prefixed JSON frames
(:mod:`repro.runtime.backends.frames`).  Results merge in submission
order, so the report is bit-identical to the ``inproc`` reference.

Robustness is the design centre — every failure mode is a first-class
input, not an afterthought:

* **Heartbeats + deadline.**  A busy worker heartbeats every
  ``heartbeat_s``; a worker silent past ``heartbeat_deadline_s`` with a
  task in flight is declared dead (``kind="partition"`` blame) and its
  work is resubmitted elsewhere.
* **Crash detection.**  A connection that drops (EOF, reset — the
  signature of a killed worker process) resubmits the in-flight task
  with ``kind="crash"`` blame once the per-task loss budget
  (``crash_retries``, mirroring the process pool) is exhausted.
* **Backoff with seeded jitter.**  Reconnects and initial connects back
  off exponentially with deterministic jitter
  (:mod:`repro.runtime.backoff`), so a flapping worker cannot induce a
  reconnect storm and two coordinators never probe in lockstep.
* **Work stealing.**  Tasks are pre-assigned round-robin; an idle
  worker steals from the tail of the longest remaining queue, so one
  slow machine cannot gate the run.
* **Degradation ladder.**  No reachable worker at start — or every
  worker lost mid-run with no reconnect left — falls back to the local
  ``procpool`` backend with a logged downgrade.  A remote run may get
  slower; it never hangs and never loses determinism.

Duplicate work from resubmission is safe by construction: artefacts are
pure functions of (config, key) arbitrated through the shared
:class:`CheckpointStore` claim protocol, which is exactly the
cross-machine single-flight primitive the process pool already used
locally.
"""

from __future__ import annotations

import dataclasses
import json
import queue
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro import obs
from repro.obs.tracectx import ClockSync, correct_shard, shard_filename, timeline_now_us
from repro.runtime.backends.base import ExecutorBackend, SubmissionOrderMerger
from repro.runtime.backends.frames import FrameError, FrameStream, pack_pickle, unpack_pickle
from repro.runtime.backends.procpool import ProcpoolBackend
from repro.runtime.backoff import backoff_delay
from repro.runtime.chaos import ChaosNet
from repro.runtime.checkpoint import StoreStats, config_fingerprint
from repro.runtime.executor import FailureRecord, RunOutcome, RunReport
from repro.runtime.log import get_logger
from repro.runtime.parallel import WorkerSpec

logger = get_logger("remote")

PROTOCOL_VERSION = 1

#: main-loop tick: inbox poll interval and deadline-check granularity
_TICK_S = 0.05


def parse_address(text: str) -> tuple[str, int]:
    """``HOST:PORT`` (host defaults to localhost for bare ports)."""
    host, sep, port = text.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", text
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise ValueError(f"invalid worker address {text!r} (want HOST:PORT)") from None


@dataclass(frozen=True)
class RemoteOptions:
    """Coordinator-side knobs (workers inherit timing via the hello)."""

    workers: tuple[str, ...]
    heartbeat_s: float = 0.5
    heartbeat_deadline_s: float = 5.0
    connect_timeout_s: float = 3.0
    connect_attempts: int = 2
    reconnect_attempts: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    chaos_net: ChaosNet | None = None


class _WorkerConn:
    """One live worker connection plus its reader thread and task queue."""

    def __init__(
        self,
        index: int,
        address: tuple[str, int],
        stream: FrameStream,
        inbox: "queue.Queue[tuple[int, str, Any]]",
        chaos: ChaosNet | None,
    ) -> None:
        self.index = index
        self.address = address
        self.stream = stream
        self.inflight: str | None = None
        self.last_seen = time.monotonic()
        self.tasks: deque[str] = deque()
        self.alive = True
        #: worker process id from hello_ok (0 for pre-tracing workers)
        self.pid = 0
        #: clock-offset estimator for this worker's timeline (shared
        #: across reconnects to the same pid via the run's registry)
        self.clock = ClockSync()
        #: send time of the in-flight task frame — paired with the ack
        #: heartbeat's ``now_us`` it yields one clock-offset sample
        self.task_sent_us: float | None = None
        self.task_acked = False
        self._chaos = chaos
        self._reader = threading.Thread(
            target=self._read_loop,
            args=(inbox,),
            name=f"remote-reader-{index}",
            daemon=True,
        )
        self._reader.start()

    @property
    def label(self) -> str:
        return f"worker {self.index} ({self.address[0]}:{self.address[1]})"

    def _read_loop(self, inbox: "queue.Queue[tuple[int, str, Any]]") -> None:
        while True:
            try:
                payload = self.stream.recv(timeout=None)
            except (FrameError, OSError) as exc:
                inbox.put((self.index, "gone", f"{type(exc).__name__}: {exc}"))
                return
            if payload is None:
                inbox.put((self.index, "gone", "connection closed"))
                return
            if self._chaos is not None:
                payload = self._chaos.filter_recv(self.index, payload)
                if payload is None:
                    continue
            inbox.put((self.index, "frame", payload))

    def send(self, payload: dict[str, Any]) -> bool:
        """False on a send that fails (the caller declares the loss)."""
        if self._chaos is not None and not self._chaos.allow_send(self.index):
            return True  # black-holed: "succeeded" as far as TCP is concerned
        try:
            self.stream.send(payload)
        except (OSError, FrameError):
            return False
        return True

    def close(self) -> None:
        self.alive = False
        self.stream.close()


def _handshake(
    address: tuple[str, int], spec_blob: str, options: RemoteOptions
) -> tuple[FrameStream, dict[str, Any], float, float]:
    """Connect + hello on one address; raises OSError/FrameError on failure.

    Returns ``(stream, hello_ok, t_send_us, t_recv_us)`` — the send/recv
    timeline timestamps bracket the worker's ``now_us`` in the reply,
    which is one NTP-style clock-offset sample for free.
    """
    sock = socket.create_connection(address, timeout=options.connect_timeout_s)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    stream = FrameStream(sock)
    try:
        t_send_us = timeline_now_us()
        stream.send(
            {
                "type": "hello",
                "protocol": PROTOCOL_VERSION,
                "spec": spec_blob,
                "heartbeat_s": options.heartbeat_s,
            }
        )
        reply = stream.recv(timeout=options.connect_timeout_s)
        t_recv_us = timeline_now_us()
    except TimeoutError:
        stream.close()
        raise OSError("worker did not answer the hello in time") from None
    except (OSError, FrameError):
        stream.close()
        raise
    if reply is None or reply.get("type") != "hello_ok":
        stream.close()
        raise OSError(f"bad hello reply: {reply!r}")
    return stream, reply, t_send_us, t_recv_us


class RemoteBackend(ExecutorBackend):
    name = "remote"

    def __init__(self, options: RemoteOptions) -> None:
        if not options.workers:
            raise ValueError("remote backend needs at least one worker address")
        self.options = options
        self._clock_by_pid: dict[int, ClockSync] = {}
        self._shards_by_pid: dict[int, dict[str, Any]] = {}
        self._span_ctx: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    def run(
        self,
        experiment_ids: Sequence[str],
        spec: WorkerSpec,
        jobs: int | None = None,
        on_outcome: Callable[[RunOutcome], None] | None = None,
        crash_retries: int = 1,
    ) -> tuple[RunReport, StoreStats]:
        options = self.options
        # started-markers are a process-pool blame device; remote blame
        # is connection-based, and the parent's scratch dir would not
        # exist on a remote machine anyway.  Telemetry/event paths are
        # coordinator-local too: worker spans travel back inside result
        # frames (clock-corrected here), worker events are synthesised
        # here from protocol traffic.  The trace id stays — it is what
        # stitches the worker's shard into this run's trace.
        shipped = dataclasses.replace(
            spec, scratch_dir=None, telemetry_dir=None, events_path=None,
            audit_dir=None,
        )
        spec_blob = pack_pickle(shipped)
        merger = SubmissionOrderMerger(experiment_ids, on_outcome)
        stats = StoreStats()
        inbox: "queue.Queue[tuple[int, str, Any]]" = queue.Queue()
        # run-local tracing state (reset per run; reader threads never
        # touch these — all frame handling happens on this thread)
        self._clock_by_pid: dict[int, ClockSync] = {}
        self._shards_by_pid: dict[int, dict[str, Any]] = {}
        self._span_ctx = (
            {"parent": spec.parent_span_id} if spec.trace_id else None
        )

        workers = self._connect_fleet(spec_blob, inbox)
        if not workers:
            logger.warning(
                "no remote worker reachable (%s); downgrading to procpool",
                ", ".join(options.workers),
            )
            obs.inc("backend.downgrades")
            obs.emit("downgrade", reason="no remote worker reachable")
            return ProcpoolBackend().run(
                experiment_ids, spec, jobs=jobs,
                on_outcome=on_outcome, crash_retries=crash_retries,
            )
        obs.gauge("backend.workers", len(workers))

        # Deterministic round-robin pre-assignment; stealing rebalances.
        order = sorted(workers)
        for position, eid in enumerate(experiment_ids):
            target = workers[order[position % len(order)]]
            target.tasks.append(eid)
            obs.emit("scheduled", experiment=eid, worker=target.label)
        unassigned: deque[str] = deque()
        lost: dict[str, int] = {}
        #: reconnect schedule: address -> (attempt, not-before monotonic)
        reconnect: dict[tuple[str, int], tuple[int, float]] = {}
        next_index = max(workers) + 1

        with obs.span("backend.remote", experiments=len(merger.ids), workers=len(workers)):
            try:
                while not merger.complete:
                    self._dispatch(workers, unassigned, merger)
                    next_index = self._try_reconnects(
                        workers, reconnect, spec_blob, inbox, next_index
                    )
                    if not workers and not reconnect:
                        self._downgrade_remaining(
                            merger, spec, jobs, crash_retries, stats
                        )
                        break
                    self._drain_inbox(
                        inbox, workers, unassigned, merger, lost,
                        reconnect, spec, stats, crash_retries,
                    )
                    self._check_deadlines(
                        workers, unassigned, merger, lost,
                        reconnect, spec, crash_retries,
                    )
            finally:
                for conn in workers.values():
                    conn.send({"type": "bye"})
                    conn.close()
                self._write_worker_shards(spec)
        return merger.report(), stats

    def _write_worker_shards(self, spec: WorkerSpec) -> None:
        """Rebase collected worker shards onto the coordinator timeline.

        Each remote worker's spans are stamped against its own
        ``perf_counter`` epoch — meaningless here.  The per-pid
        :class:`ClockSync` (fed by hello and task-ack round trips)
        shifts them onto this process's timeline; the corrected shard
        lands in ``spec.telemetry_dir`` under the standard shard name,
        so the existing merge path picks it up like any local shard.
        """
        if not spec.telemetry_dir or not self._shards_by_pid:
            return
        for seq, pid in enumerate(sorted(self._shards_by_pid)):
            sync = self._clock_by_pid.get(pid) or ClockSync()
            doc = correct_shard(self._shards_by_pid[pid], sync)
            path = Path(spec.telemetry_dir) / shard_filename(pid, seq)
            tmp = path.with_suffix(".tmp")
            try:
                tmp.write_text(json.dumps(doc, sort_keys=True))
                tmp.replace(path)
            except OSError as exc:
                logger.warning("could not write worker shard %s: %s", path, exc)
            else:
                obs.inc("clock.shards_corrected")
                logger.info(
                    "worker pid %d shard rebased (%s)", pid, sync.describe()
                )

    def _register_clock(
        self, conn: _WorkerConn, reply: dict[str, Any],
        t_send_us: float, t_recv_us: float,
    ) -> None:
        """Fold one hello round trip into the worker's clock estimate."""
        conn.pid = int(reply.get("pid") or 0)
        conn.clock = self._clock_by_pid.setdefault(conn.pid, ClockSync())
        now_us = reply.get("now_us")
        if now_us is None:  # pre-tracing worker: stays uncorrected
            return
        if conn.clock.add_sample(t_send_us, float(now_us), t_recv_us):
            obs.inc("clock.samples")
            obs.emit(
                "clock", worker=conn.label, pid=conn.pid,
                tier=conn.clock.quality,
                offset_us=round(conn.clock.offset_us or 0.0, 1),
                uncertainty_us=round(conn.clock.uncertainty_us or 0.0, 1),
            )

    # ------------------------------------------------------------------
    def _connect_fleet(
        self, spec_blob: str, inbox: "queue.Queue[tuple[int, str, Any]]"
    ) -> dict[int, _WorkerConn]:
        """Initial connects, each with backoff-with-jitter retries."""
        options = self.options
        workers: dict[int, _WorkerConn] = {}
        for index, text in enumerate(options.workers):
            address = parse_address(text)
            for attempt in range(1, options.connect_attempts + 1):
                try:
                    stream, reply, t_send, t_recv = _handshake(
                        address, spec_blob, options
                    )
                except (OSError, FrameError) as exc:
                    logger.warning(
                        "connect to %s:%d failed (attempt %d/%d): %s",
                        address[0], address[1], attempt,
                        options.connect_attempts, exc,
                    )
                    if attempt < options.connect_attempts:
                        delay = backoff_delay(
                            attempt, options.backoff_base_s,
                            options.backoff_cap_s, seed=("connect", address),
                        )
                        obs.inc("backend.backoff_s", delay)
                        time.sleep(delay)
                else:
                    workers[index] = _WorkerConn(
                        index, address, stream, inbox, options.chaos_net
                    )
                    self._register_clock(workers[index], reply, t_send, t_recv)
                    logger.info("connected to %s", workers[index].label)
                    break
        return workers

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        workers: dict[int, _WorkerConn],
        unassigned: deque[str],
        merger: SubmissionOrderMerger,
    ) -> None:
        """Feed every idle worker: own queue, then orphans, then steal."""
        for index in sorted(workers):
            conn = workers[index]
            if conn.inflight is not None:
                continue
            task = None
            if conn.tasks:
                task = conn.tasks.popleft()
            elif unassigned:
                task = unassigned.popleft()
            else:
                victim = max(
                    (c for c in workers.values() if c is not conn and c.tasks),
                    key=lambda c: len(c.tasks),
                    default=None,
                )
                if victim is not None:
                    task = victim.tasks.pop()
                    obs.inc("backend.steals")
                    obs.emit(
                        "steal", experiment=task,
                        worker=conn.label, victim=victim.label,
                    )
                    logger.info(
                        "%s stole %s from %s", conn.label, task, victim.label
                    )
            if task is None:
                continue
            conn.inflight = task
            conn.last_seen = time.monotonic()
            conn.task_sent_us = timeline_now_us()
            conn.task_acked = False
            obs.emit("claimed", experiment=task, worker=conn.label)
            if self.options.chaos_net is not None:
                self.options.chaos_net.task_sent(conn.index)
            frame: dict[str, Any] = {"type": "task", "experiment_id": task}
            if self._span_ctx is not None:
                frame["span"] = self._span_ctx
            if not conn.send(frame):
                # the send itself failed: the loss path below will
                # resubmit; the "gone" event from the reader finishes
                # the cleanup
                logger.warning("task send to %s failed", conn.label)

    # ------------------------------------------------------------------
    def _drain_inbox(
        self,
        inbox: "queue.Queue[tuple[int, str, Any]]",
        workers: dict[int, _WorkerConn],
        unassigned: deque[str],
        merger: SubmissionOrderMerger,
        lost: dict[str, int],
        reconnect: dict[tuple[str, int], tuple[int, float]],
        spec: WorkerSpec,
        stats: StoreStats,
        crash_retries: int,
    ) -> None:
        try:
            index, kind, payload = inbox.get(timeout=_TICK_S)
        except queue.Empty:
            return
        while True:
            conn = workers.get(index)
            if conn is not None:
                if kind == "gone":
                    self._lose_worker(
                        conn, "crash", str(payload), workers, unassigned,
                        merger, lost, reconnect, spec, crash_retries,
                    )
                elif kind == "frame":
                    self._handle_frame(
                        conn, payload, merger, lost, stats, spec, unassigned
                    )
            try:
                index, kind, payload = inbox.get_nowait()
            except queue.Empty:
                return

    def _handle_frame(
        self,
        conn: _WorkerConn,
        payload: dict[str, Any],
        merger: SubmissionOrderMerger,
        lost: dict[str, int],
        stats: StoreStats,
        spec: WorkerSpec,
        unassigned: deque[str],
    ) -> None:
        t_recv_us = timeline_now_us()
        conn.last_seen = time.monotonic()
        frame_type = payload.get("type")
        if frame_type == "heartbeat":
            obs.inc("backend.heartbeats")
            eid = payload.get("experiment_id")
            obs.emit("heartbeat", experiment=eid, worker=conn.label)
            if payload.get("ack") and not conn.task_acked:
                # the immediate task ack: the worker's timestamp between
                # our send and this receive is a clock-offset sample,
                # and "the worker actually started" is an event
                conn.task_acked = True
                now_us = payload.get("now_us")
                if (now_us is not None and conn.task_sent_us is not None
                        and conn.clock.add_sample(
                            conn.task_sent_us, float(now_us), t_recv_us)):
                    obs.inc("clock.samples")
                    obs.emit(
                        "clock", worker=conn.label, pid=conn.pid,
                        tier=conn.clock.quality,
                        offset_us=round(conn.clock.offset_us or 0.0, 1),
                        uncertainty_us=round(conn.clock.uncertainty_us or 0.0, 1),
                    )
                obs.emit("started", experiment=eid, worker=conn.label)
            return
        if frame_type == "result":
            eid = payload.get("experiment_id")
            shard = payload.get("shard")
            if isinstance(shard, dict):
                # cumulative snapshot: the latest one per worker pid
                # supersedes the previous (stale results still carry
                # valid spans, so keep theirs too)
                pid = int(shard.get("pid") or conn.pid)
                self._shards_by_pid[pid] = shard
            if eid != conn.inflight:
                # a stale result from before a resubmission; the claim
                # protocol already made the duplicate harmless
                logger.info("%s sent stale result for %s", conn.label, eid)
                return
            outcome = unpack_pickle(payload["outcome"])
            if payload.get("stats"):
                stats.merge(payload["stats"])
            conn.inflight = None
            obs.emit(
                "result", experiment=eid, worker=conn.label,
                status="ok" if outcome.ok else outcome.failure.kind,
                elapsed_s=round(outcome.elapsed_s, 3),
            )
            if eid not in merger:
                merger.add(outcome)
            return
        if frame_type == "task_error":
            # orchestration failure inside the worker session (e.g. an
            # unpicklable result): contained like a crash, no retry —
            # it would fail identically everywhere
            eid = payload.get("experiment_id")
            message = payload.get("message", "remote task error")
            logger.warning("%s reported task error for %s: %s", conn.label, eid, message)
            obs.emit("crash", experiment=eid, worker=conn.label, reason=message)
            if eid == conn.inflight:
                conn.inflight = None
                if eid not in merger:
                    merger.add(
                        _blame_outcome(eid, spec, "crash", message, lost.get(eid, 0) + 1)
                    )
            return
        logger.warning("%s sent unknown frame type %r", conn.label, frame_type)

    # ------------------------------------------------------------------
    def _check_deadlines(
        self,
        workers: dict[int, _WorkerConn],
        unassigned: deque[str],
        merger: SubmissionOrderMerger,
        lost: dict[str, int],
        reconnect: dict[tuple[str, int], tuple[int, float]],
        spec: WorkerSpec,
        crash_retries: int,
    ) -> None:
        now = time.monotonic()
        deadline = self.options.heartbeat_deadline_s
        for conn in list(workers.values()):
            if conn.inflight is not None and now - conn.last_seen > deadline:
                self._lose_worker(
                    conn, "partition",
                    f"no heartbeat for {now - conn.last_seen:.1f}s "
                    f"(deadline {deadline:g}s)",
                    workers, unassigned, merger, lost, reconnect, spec,
                    crash_retries,
                )

    def _lose_worker(
        self,
        conn: _WorkerConn,
        kind: str,
        reason: str,
        workers: dict[int, _WorkerConn],
        unassigned: deque[str],
        merger: SubmissionOrderMerger,
        lost: dict[str, int],
        reconnect: dict[tuple[str, int], tuple[int, float]],
        spec: WorkerSpec,
        crash_retries: int,
    ) -> None:
        if workers.get(conn.index) is not conn:
            return  # already handled (e.g. deadline fired before "gone")
        del workers[conn.index]
        conn.close()
        obs.inc("backend.dead_workers")
        if kind == "partition":
            obs.inc("backend.partitions")
        obs.emit(
            kind, worker=conn.label, experiment=conn.inflight, reason=reason
        )
        logger.warning("%s lost (%s): %s", conn.label, kind, reason)
        # queued-but-never-started tasks migrate blame-free
        unassigned.extend(conn.tasks)
        conn.tasks.clear()
        eid = conn.inflight
        if eid is not None and eid not in merger:
            lost[eid] = lost.get(eid, 0) + 1
            if lost[eid] > crash_retries:
                merger.add(
                    _blame_outcome(
                        eid, spec, kind,
                        f"worker {conn.address[0]}:{conn.address[1]} {kind}: {reason}",
                        lost[eid],
                    )
                )
            else:
                obs.inc("backend.resubmits")
                obs.emit(
                    "resubmit", experiment=eid,
                    reason=f"{kind} on {conn.label} "
                           f"({lost[eid]}/{crash_retries})",
                )
                logger.warning(
                    "resubmitting %s (lost %d/%d)", eid, lost[eid], crash_retries
                )
                unassigned.appendleft(eid)
        if self.options.reconnect_attempts > 0:
            delay = backoff_delay(
                1, self.options.backoff_base_s, self.options.backoff_cap_s,
                seed=("reconnect", conn.address),
            )
            obs.inc("backend.backoff_s", delay)
            reconnect[conn.address] = (1, time.monotonic() + delay)

    # ------------------------------------------------------------------
    def _try_reconnects(
        self,
        workers: dict[int, _WorkerConn],
        reconnect: dict[tuple[str, int], tuple[int, float]],
        spec_blob: str,
        inbox: "queue.Queue[tuple[int, str, Any]]",
        next_index: int,
    ) -> int:
        now = time.monotonic()
        options = self.options
        for address, (attempt, not_before) in list(reconnect.items()):
            if now < not_before:
                continue
            try:
                stream, reply, t_send, t_recv = _handshake(
                    address, spec_blob, options
                )
            except (OSError, FrameError) as exc:
                if attempt >= options.reconnect_attempts:
                    logger.warning(
                        "giving up on %s:%d after %d reconnect attempt(s): %s",
                        address[0], address[1], attempt, exc,
                    )
                    del reconnect[address]
                else:
                    delay = backoff_delay(
                        attempt + 1, options.backoff_base_s,
                        options.backoff_cap_s, seed=("reconnect", address),
                    )
                    obs.inc("backend.backoff_s", delay)
                    reconnect[address] = (attempt + 1, now + delay)
            else:
                del reconnect[address]
                workers[next_index] = _WorkerConn(
                    next_index, address, stream, inbox, options.chaos_net
                )
                self._register_clock(workers[next_index], reply, t_send, t_recv)
                obs.inc("backend.reconnects")
                logger.info("reconnected to %s", workers[next_index].label)
                next_index += 1
        return next_index

    # ------------------------------------------------------------------
    def _downgrade_remaining(
        self,
        merger: SubmissionOrderMerger,
        spec: WorkerSpec,
        jobs: int | None,
        crash_retries: int,
        stats: StoreStats,
    ) -> None:
        remaining = merger.unresolved
        if not remaining:
            return
        logger.warning(
            "remote pool fully lost; running %d remaining experiment(s) "
            "via procpool", len(remaining),
        )
        obs.inc("backend.downgrades")
        obs.emit(
            "downgrade",
            reason=f"remote pool fully lost; {len(remaining)} task(s) to procpool",
        )
        report, fallback_stats = ProcpoolBackend(prefetch=False).run(
            remaining, spec, jobs=jobs, crash_retries=crash_retries
        )
        stats.merge(fallback_stats)
        for outcome in report.outcomes:
            merger.add(outcome)


def _blame_outcome(
    experiment_id: str, spec: WorkerSpec, kind: str, message: str, attempts: int
) -> RunOutcome:
    """A contained failure blaming a lost worker, never a dead run."""
    obs.inc("parallel.crashes" if kind == "crash" else "backend.partition_blames")
    failure = FailureRecord(
        experiment_id=experiment_id,
        kind=kind,
        error_type="WorkerCrash" if kind == "crash" else "WorkerPartition",
        message=message,
        traceback="",
        config_fingerprint=config_fingerprint(spec.config),
        elapsed_s=0.0,
        attempts=attempts,
        context=obs.recent_events(),
    )
    return RunOutcome(experiment_id, None, failure, 0.0, attempts=attempts)
