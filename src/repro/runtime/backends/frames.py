"""Length-prefixed JSON frame codec for the remote backend.

Wire format: a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  JSON keeps the protocol inspectable (a heartbeat
is ``{"type": "heartbeat"}``, not opaque bytes); binary artefacts
(pickled experiment outcomes, the shipped :class:`WorkerSpec`) ride
inside frames as base64 fields, so the framing layer never needs to
understand them.

Failure philosophy mirrors the checkpoint store: malformed input is
*detected*, never trusted.  A frame that claims an absurd length, a
stream that ends mid-frame (the classic torn-write / dead-peer
signature), and bytes that do not decode as a JSON object all raise
:class:`FrameError` — the caller treats the connection as lost and the
task-resubmission machinery takes over.  Pickle payloads are only ever
exchanged between a coordinator and workers the operator launched
(same trust domain as the process pool); the frames themselves stay
plain JSON.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
import time
from typing import Any

from repro import obs

#: a frame longer than this is a protocol error, not a big result —
#: generous enough for any pickled RunOutcome the harness produces
MAX_FRAME_BYTES = 256 * 1024 * 1024

_HEADER = struct.Struct(">I")
_RECV_CHUNK = 65536


class FrameError(RuntimeError):
    """Raised on any malformed, truncated, or oversized frame."""


def encode_frame(payload: dict[str, Any]) -> bytes:
    """``payload`` as one length-prefixed JSON frame."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def decode_frame(blob: bytes) -> tuple[dict[str, Any], bytes]:
    """First frame in ``blob`` plus the unconsumed remainder.

    Raises :class:`FrameError` if the buffer holds less than one
    complete frame ("truncated frame") or the payload is not a JSON
    object — truncation is indistinguishable from a dead peer, and both
    are handled identically by the caller.
    """
    if len(blob) < _HEADER.size:
        raise FrameError(f"truncated frame: {len(blob)} header byte(s)")
    (length,) = _HEADER.unpack_from(blob)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame claims {length} bytes (max {MAX_FRAME_BYTES})")
    end = _HEADER.size + length
    if len(blob) < end:
        raise FrameError(
            f"truncated frame: want {length} payload byte(s), have {len(blob) - _HEADER.size}"
        )
    try:
        payload = json.loads(blob[_HEADER.size : end].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameError(f"frame payload must be an object, got {type(payload).__name__}")
    return payload, blob[end:]


def pack_pickle(obj: Any) -> str:
    """Arbitrary picklable object as a base64 frame field."""
    return base64.b64encode(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def unpack_pickle(text: str) -> Any:
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as exc:
        raise FrameError(f"undecodable pickle payload: {exc}") from exc


def _note_frame(direction: str, frame_type: Any, nbytes: int, elapsed: float) -> None:
    """Per-frame-type RPC metrics (no-op while telemetry is off).

    Byte and latency histograms per frame type: ``frames.sent_bytes``
    and ``frames.sent_s`` time the blocking ``sendall`` (backpressure
    shows up here); ``frames.recv_bytes`` and ``frames.recv_wait_s``
    time the read including the wait for the peer.  All of it is
    schedule-dependent (heartbeat cadence, steals) and excluded from
    the determinism view.
    """
    if not obs.enabled():
        return
    ftype = str(frame_type or "unknown")
    obs.inc(f"frames.{direction}", type=ftype)
    obs.observe(f"frames.{direction}_bytes", nbytes, type=ftype)
    suffix = "recv_wait_s" if direction == "recv" else "sent_s"
    obs.observe(f"frames.{suffix}", elapsed, type=ftype)


class FrameStream:
    """Blocking frame reader/writer over one connected socket."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._buffer = b""

    def send(self, payload: dict[str, Any]) -> None:
        blob = encode_frame(payload)
        start = time.perf_counter()
        self.sock.sendall(blob)
        _note_frame(
            "sent", payload.get("type"), len(blob), time.perf_counter() - start
        )

    def recv(self, timeout: float | None = None) -> dict[str, Any] | None:
        """The next frame, or None on clean EOF at a frame boundary.

        EOF *inside* a frame — the peer died mid-send — raises
        :class:`FrameError`.  ``timeout`` bounds the whole read;
        expiring raises ``TimeoutError`` (``socket.timeout``).
        """
        start = time.perf_counter()
        self.sock.settimeout(timeout)
        while not self._buffered_frame_complete():
            chunk = self.sock.recv(_RECV_CHUNK)
            if not chunk:
                if self._buffer:
                    raise FrameError(
                        f"connection closed mid-frame ({len(self._buffer)} byte(s) pending)"
                    )
                return None
            self._buffer += chunk
        buffered = len(self._buffer)
        payload, self._buffer = decode_frame(self._buffer)
        _note_frame(
            "recv", payload.get("type"), buffered - len(self._buffer),
            time.perf_counter() - start,
        )
        return payload

    def _buffered_frame_complete(self) -> bool:
        """True once the buffer holds a whole frame; an oversized length
        claim raises immediately instead of waiting for 256 MiB of
        garbage to arrive."""
        if len(self._buffer) < _HEADER.size:
            return False
        (length,) = _HEADER.unpack_from(self._buffer)
        if length > MAX_FRAME_BYTES:
            raise FrameError(f"frame claims {length} bytes (max {MAX_FRAME_BYTES})")
        return len(self._buffer) >= _HEADER.size + length

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
