"""The remote worker: a socket server that executes supervised tasks.

Run one per machine (or per core) with::

    python -m repro.experiments worker --listen 0.0.0.0:7070

The worker binds, prints ``READY <port>`` (port 0 picks an ephemeral
port — the printed value is the real one, which is how tests and the CI
fleet smoke wire coordinators to workers), then accepts coordinator
sessions forever.  Each session:

1. receives a ``hello`` frame carrying the pickled
   :class:`~repro.runtime.parallel.WorkerSpec` and the heartbeat period,
   and answers ``hello_ok``;
2. loops on ``task`` frames — each one runs
   :func:`~repro.runtime.parallel._run_experiment_task` (the same
   supervised body the process pool uses, chaos interposition and all)
   in a daemon thread while the session thread streams heartbeats;
3. replies with a ``result`` frame (pickled outcome + store-stats
   counters) or, if the task machinery itself broke, a ``task_error``;
4. ends on ``bye`` or EOF.

Sessions are threaded so a coordinator that declared this worker dead
(a partition it couldn't see through) can reconnect while the orphaned
session is still computing — the stale session's eventual result frame
dies on its closed socket, and the shared checkpoint store's claim
protocol makes the duplicated computation harmless.
"""

from __future__ import annotations

import argparse
import socket
import threading
from typing import Any

from repro import obs
from repro.runtime.backends.frames import FrameError, FrameStream, pack_pickle, unpack_pickle
from repro.runtime.log import configure, get_logger
from repro.runtime.parallel import WorkerSpec, _run_experiment_task

logger = get_logger("worker")

PROTOCOL_VERSION = 1


def _run_task(
    stream: FrameStream, spec: WorkerSpec, experiment_id: str, heartbeat_s: float
) -> None:
    """Execute one task, heartbeating until the body thread finishes."""
    box: dict[str, Any] = {}

    def body() -> None:
        try:
            box["outcome"], box["stats"] = _run_experiment_task(spec, experiment_id)
        except BaseException as exc:  # reported, never kills the session
            box["error"] = f"{type(exc).__name__}: {exc}"

    thread = threading.Thread(
        target=body, name=f"task-{experiment_id}", daemon=True
    )
    thread.start()
    # the immediate ack doubles as "task accepted" for the deadline clock
    stream.send({"type": "heartbeat", "experiment_id": experiment_id})
    while thread.is_alive():
        thread.join(timeout=heartbeat_s)
        if thread.is_alive():
            stream.send({"type": "heartbeat", "experiment_id": experiment_id})
    if "error" in box:
        logger.warning("task %s broke: %s", experiment_id, box["error"])
        stream.send(
            {
                "type": "task_error",
                "experiment_id": experiment_id,
                "message": box["error"],
            }
        )
        return
    stream.send(
        {
            "type": "result",
            "experiment_id": experiment_id,
            "outcome": pack_pickle(box["outcome"]),
            "stats": box["stats"] or {},
        }
    )


def _serve_session(sock: socket.socket, peer: str) -> None:
    """One coordinator connection, hello through bye."""
    stream = FrameStream(sock)
    try:
        hello = stream.recv(timeout=10.0)
        if hello is None or hello.get("type") != "hello":
            logger.warning("%s: no hello (got %r); dropping", peer, hello)
            return
        if hello.get("protocol") != PROTOCOL_VERSION:
            logger.warning(
                "%s: protocol %r != %d; dropping",
                peer, hello.get("protocol"), PROTOCOL_VERSION,
            )
            return
        spec: WorkerSpec = unpack_pickle(hello["spec"])
        heartbeat_s = float(hello.get("heartbeat_s", 0.5))
        stream.send({"type": "hello_ok", "host": socket.gethostname()})
        logger.info("%s: session open (heartbeat %.2fs)", peer, heartbeat_s)
        while True:
            frame = stream.recv(timeout=None)
            if frame is None or frame.get("type") == "bye":
                logger.info("%s: session closed", peer)
                return
            if frame.get("type") == "task":
                experiment_id = frame["experiment_id"]
                logger.info("%s: task %s", peer, experiment_id)
                obs.inc("backend.worker_tasks")
                _run_task(stream, spec, experiment_id, heartbeat_s)
            else:
                logger.warning("%s: unknown frame %r", peer, frame.get("type"))
    except TimeoutError:
        logger.warning("%s: hello timed out; dropping", peer)
    except (OSError, FrameError) as exc:
        # the coordinator vanished mid-session — from here that is
        # routine (it will blame, resubmit, and maybe reconnect)
        logger.info("%s: connection lost: %s", peer, exc)
    finally:
        stream.close()


def serve(host: str, port: int, max_sessions: int | None = None) -> None:
    """Bind, announce readiness, accept sessions until interrupted.

    ``max_sessions`` bounds the accept loop (tests and the CI smoke use
    it so a worker winds down by itself instead of needing a kill).
    """
    server = socket.create_server((host, port))
    bound_port = server.getsockname()[1]
    print(f"READY {bound_port}", flush=True)
    logger.info("worker listening on %s:%d", host, bound_port)
    accepted = 0
    sessions: list[threading.Thread] = []
    try:
        while max_sessions is None or accepted < max_sessions:
            sock, address = server.accept()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            accepted += 1
            peer = f"{address[0]}:{address[1]}"
            thread = threading.Thread(
                target=_serve_session,
                args=(sock, peer),
                name=f"session-{peer}",
                daemon=True,
            )
            thread.start()
            sessions.append(thread)
    except KeyboardInterrupt:
        logger.info("worker interrupted; exiting")
    finally:
        server.close()
    for thread in sessions:  # bounded runs drain before exiting
        thread.join()


def worker_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="serve experiment tasks to a remote-backend coordinator",
    )
    parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address; port 0 picks a free port (printed as READY <port>)",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        metavar="N",
        help="exit after serving N coordinator sessions (default: run forever)",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0)
    args = parser.parse_args(argv)
    configure(args.verbose)
    host, _, port_text = args.listen.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        parser.error(f"invalid --listen address {args.listen!r} (want HOST:PORT)")
    serve(host or "127.0.0.1", port, max_sessions=args.max_sessions)
    return 0


if __name__ == "__main__":
    raise SystemExit(worker_main())
