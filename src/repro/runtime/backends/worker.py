"""The remote worker: a socket server that executes supervised tasks.

Run one per machine (or per core) with::

    python -m repro.experiments worker --listen 0.0.0.0:7070

The worker binds, prints ``READY <port>`` (port 0 picks an ephemeral
port — the printed value is the real one, which is how tests and the CI
fleet smoke wire coordinators to workers), then accepts coordinator
sessions forever.  Each session:

1. receives a ``hello`` frame carrying the pickled
   :class:`~repro.runtime.parallel.WorkerSpec` and the heartbeat period,
   and answers ``hello_ok``;
2. loops on ``task`` frames — each one runs
   :func:`~repro.runtime.parallel._run_experiment_task` (the same
   supervised body the process pool uses, chaos interposition and all)
   in a daemon thread while the session thread streams heartbeats;
3. replies with a ``result`` frame (pickled outcome + store-stats
   counters) or, if the task machinery itself broke, a ``task_error``;
4. ends on ``bye`` or EOF.

Sessions are threaded so a coordinator that declared this worker dead
(a partition it couldn't see through) can reconnect while the orphaned
session is still computing — the stale session's eventual result frame
dies on its closed socket, and the shared checkpoint store's claim
protocol makes the duplicated computation harmless.
"""

from __future__ import annotations

import argparse
import os
import socket
import threading
import time
from typing import Any

from repro import obs
from repro.obs.tracectx import timeline_now_us
from repro.runtime.backends.frames import FrameError, FrameStream, pack_pickle, unpack_pickle
from repro.runtime.log import configure, get_logger
from repro.runtime.parallel import WorkerSpec, _run_experiment_task

logger = get_logger("worker")

PROTOCOL_VERSION = 1


class _WorkerState:
    """Live counters one worker process exposes via ``status`` frames."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self.tasks_served = 0
        self.sessions_total = 0
        self.inflight: dict[str, str] = {}  # peer -> experiment_id

    def task_started(self, peer: str, experiment_id: str) -> None:
        with self._lock:
            self.inflight[peer] = experiment_id

    def task_finished(self, peer: str) -> None:
        with self._lock:
            self.inflight.pop(peer, None)
            self.tasks_served += 1

    def status(self) -> dict[str, Any]:
        with self._lock:
            return {
                "type": "status_ok",
                "protocol": PROTOCOL_VERSION,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "uptime_s": round(time.monotonic() - self._started, 3),
                "sessions_total": self.sessions_total,
                "tasks_served": self.tasks_served,
                "inflight": sorted(self.inflight.values()),
                "tracing": obs.enabled(),
            }


def _run_task(
    stream: FrameStream,
    spec: WorkerSpec,
    experiment_id: str,
    heartbeat_s: float,
    span_ctx: dict[str, Any] | None = None,
) -> None:
    """Execute one task, heartbeating until the body thread finishes."""
    box: dict[str, Any] = {}

    def body() -> None:
        try:
            if span_ctx:
                with obs.span("worker.remote_task", experiment=experiment_id,
                              parent_span_id=span_ctx.get("parent")):
                    box["outcome"], box["stats"] = _run_experiment_task(
                        spec, experiment_id
                    )
            else:
                box["outcome"], box["stats"] = _run_experiment_task(
                    spec, experiment_id
                )
        except BaseException as exc:  # reported, never kills the session
            box["error"] = f"{type(exc).__name__}: {exc}"

    thread = threading.Thread(
        target=body, name=f"task-{experiment_id}", daemon=True
    )
    thread.start()
    # the immediate ack doubles as "task accepted" for the deadline clock
    # and — carrying the worker's timeline clock against the send time
    # the coordinator recorded — one NTP-style clock-offset sample
    stream.send({
        "type": "heartbeat", "experiment_id": experiment_id,
        "ack": True, "now_us": round(timeline_now_us(), 1),
    })
    while thread.is_alive():
        thread.join(timeout=heartbeat_s)
        if thread.is_alive():
            stream.send({
                "type": "heartbeat", "experiment_id": experiment_id,
                "now_us": round(timeline_now_us(), 1),
            })
    if "error" in box:
        logger.warning("task %s broke: %s", experiment_id, box["error"])
        stream.send(
            {
                "type": "task_error",
                "experiment_id": experiment_id,
                "message": box["error"],
            }
        )
        return
    result = {
        "type": "result",
        "experiment_id": experiment_id,
        "outcome": pack_pickle(box["outcome"]),
        "stats": box["stats"] or {},
    }
    # Ship the cumulative telemetry snapshot with every result: the
    # coordinator keeps the latest per pid and rebases it through the
    # clock-offset estimate — this is how remote worker spans reach the
    # merged trace at all (their raw epochs are incomparable).
    recorder = obs.get_recorder()
    if recorder is not None:
        result["shard"] = recorder.snapshot_doc()
    stream.send(result)


def _serve_session(sock: socket.socket, peer: str, state: _WorkerState) -> None:
    """One coordinator connection, hello through bye."""
    stream = FrameStream(sock)
    try:
        hello = stream.recv(timeout=10.0)
        if hello is None:
            logger.warning("%s: no hello; dropping", peer)
            return
        if hello.get("type") == "status":
            # a fleet-health probe, not a coordinator: answer and close
            stream.send(state.status())
            return
        if hello.get("type") != "hello":
            logger.warning("%s: no hello (got %r); dropping", peer, hello)
            return
        if hello.get("protocol") != PROTOCOL_VERSION:
            logger.warning(
                "%s: protocol %r != %d; dropping",
                peer, hello.get("protocol"), PROTOCOL_VERSION,
            )
            return
        spec: WorkerSpec = unpack_pickle(hello["spec"])
        heartbeat_s = float(hello.get("heartbeat_s", 0.5))
        if getattr(spec, "trace_id", None):
            # traced run: record spans in memory (no shard dir — shards
            # travel back inside result frames) under the run's trace id.
            # A new traced session replaces the previous recorder, so a
            # reused worker never leaks one run's spans into the next.
            obs.enable(obs.TelemetryRecorder(
                process="remote-worker", trace_id=spec.trace_id
            ))
        stream.send({
            "type": "hello_ok",
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "now_us": round(timeline_now_us(), 1),
        })
        logger.info("%s: session open (heartbeat %.2fs)", peer, heartbeat_s)
        state.sessions_total += 1
        while True:
            frame = stream.recv(timeout=None)
            if frame is None or frame.get("type") == "bye":
                logger.info("%s: session closed", peer)
                return
            if frame.get("type") == "task":
                experiment_id = frame["experiment_id"]
                logger.info("%s: task %s", peer, experiment_id)
                obs.inc("backend.worker_tasks")
                state.task_started(peer, experiment_id)
                try:
                    _run_task(
                        stream, spec, experiment_id, heartbeat_s,
                        span_ctx=frame.get("span"),
                    )
                finally:
                    state.task_finished(peer)
            elif frame.get("type") == "status":
                stream.send(state.status())
            else:
                logger.warning("%s: unknown frame %r", peer, frame.get("type"))
    except TimeoutError:
        logger.warning("%s: hello timed out; dropping", peer)
    except (OSError, FrameError) as exc:
        # the coordinator vanished mid-session — from here that is
        # routine (it will blame, resubmit, and maybe reconnect)
        logger.info("%s: connection lost: %s", peer, exc)
    finally:
        stream.close()


def serve(host: str, port: int, max_sessions: int | None = None) -> None:
    """Bind, announce readiness, accept sessions until interrupted.

    ``max_sessions`` bounds the accept loop (tests and the CI smoke use
    it so a worker winds down by itself instead of needing a kill).
    """
    server = socket.create_server((host, port))
    bound_port = server.getsockname()[1]
    print(f"READY {bound_port}", flush=True)
    logger.info("worker listening on %s:%d", host, bound_port)
    accepted = 0
    state = _WorkerState()
    sessions: list[threading.Thread] = []
    try:
        while max_sessions is None or accepted < max_sessions:
            sock, address = server.accept()
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            accepted += 1
            peer = f"{address[0]}:{address[1]}"
            thread = threading.Thread(
                target=_serve_session,
                args=(sock, peer, state),
                name=f"session-{peer}",
                daemon=True,
            )
            thread.start()
            sessions.append(thread)
    except KeyboardInterrupt:
        logger.info("worker interrupted; exiting")
    finally:
        server.close()
    for thread in sessions:  # bounded runs drain before exiting
        thread.join()


def worker_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="serve experiment tasks to a remote-backend coordinator",
    )
    parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address; port 0 picks a free port (printed as READY <port>)",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        metavar="N",
        help="exit after serving N coordinator sessions (default: run forever)",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0)
    args = parser.parse_args(argv)
    configure(args.verbose)
    host, _, port_text = args.listen.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        parser.error(f"invalid --listen address {args.listen!r} (want HOST:PORT)")
    serve(host or "127.0.0.1", port, max_sessions=args.max_sessions)
    return 0


if __name__ == "__main__":
    raise SystemExit(worker_main())
