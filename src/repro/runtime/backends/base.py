"""The executor-backend interface every fleet implementation satisfies.

A backend turns an ordered list of experiment ids plus a
:class:`~repro.runtime.parallel.WorkerSpec` into a
:class:`~repro.runtime.executor.RunReport` whose outcomes are listed in
submission order — the contract that makes a run's report bit-identical
whichever backend produced it.  Backends differ only in *where* the
work happens (this process, a local process pool, remote socket
workers) and in which failure modes they must contain; they may never
differ in results.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.runtime.checkpoint import StoreStats
from repro.runtime.executor import RunOutcome, RunReport
from repro.runtime.parallel import WorkerSpec


class ExecutorBackend(ABC):
    """One way of executing a batch of supervised experiments.

    Contract (enforced by the QA ``*_vs_serial`` oracles and the CI
    ``cmp`` smokes):

    * outcomes appear in the report in **submission order**, and
      ``on_outcome`` fires in submission order too;
    * a successful run's per-experiment results are **bit-identical**
      across backends for the same config/seed;
    * any single-worker failure degrades to per-experiment
      :class:`FailureRecord`s — never a dead or hung run.
    """

    #: registry key and the CLI's ``--backend`` value
    name: str = "?"

    @abstractmethod
    def run(
        self,
        experiment_ids: Sequence[str],
        spec: WorkerSpec,
        jobs: int | None = None,
        on_outcome: Callable[[RunOutcome], None] | None = None,
        crash_retries: int = 1,
    ) -> tuple[RunReport, StoreStats]:
        """Execute the batch; report in submission order plus store stats."""


class SubmissionOrderMerger:
    """Shared submission-order flush logic for out-of-order backends.

    Outcomes arrive keyed by experiment id in any order; ``add`` holds
    each back until every earlier id has reported, then emits through
    ``on_outcome`` — so incremental output is byte-comparable with a
    serial run's no matter how the fleet scheduled the work.
    """

    def __init__(
        self,
        experiment_ids: Sequence[str],
        on_outcome: Callable[[RunOutcome], None] | None = None,
    ) -> None:
        self.ids = list(experiment_ids)
        self.outcomes: dict[str, RunOutcome] = {}
        self._on_outcome = on_outcome
        self._emitted = 0

    def add(self, outcome: RunOutcome) -> None:
        self.outcomes[outcome.experiment_id] = outcome
        while self._emitted < len(self.ids) and self.ids[self._emitted] in self.outcomes:
            if self._on_outcome is not None:
                self._on_outcome(self.outcomes[self.ids[self._emitted]])
            self._emitted += 1

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in self.outcomes

    @property
    def unresolved(self) -> list[str]:
        return [eid for eid in self.ids if eid not in self.outcomes]

    @property
    def complete(self) -> bool:
        return len(self.outcomes) >= len(self.ids)

    def report(self) -> RunReport:
        report = RunReport()
        report.outcomes.extend(self.outcomes[eid] for eid in self.ids)
        return report
