"""The in-process serial backend: the reference the others must match.

Runs every experiment in this process through the supervised serial
executor, exactly as the CLI's historical ``--jobs 1`` path did.  No
fan-out, no sockets, no claims — which makes it the ground truth the
``procpool`` and ``remote`` backends are differentially tested against.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro import obs
from repro.runtime.backends.base import ExecutorBackend
from repro.runtime.checkpoint import CheckpointStore, StoreStats
from repro.runtime.executor import RunOutcome, RunReport, run_many
from repro.runtime.parallel import WorkerSpec


class InprocBackend(ExecutorBackend):
    name = "inproc"

    def run(
        self,
        experiment_ids: Sequence[str],
        spec: WorkerSpec,
        jobs: int | None = None,
        on_outcome: Callable[[RunOutcome], None] | None = None,
        crash_retries: int = 1,
    ) -> tuple[RunReport, StoreStats]:
        from repro.experiments.runner import ExperimentContext

        store = None
        if spec.checkpoint_dir:
            store = CheckpointStore(
                spec.checkpoint_dir,
                resume=spec.resume,
                claim_stale_s=spec.claim_stale_s,
                claim_poll_s=spec.claim_poll_s,
            )
        ctx = ExperimentContext(spec.config, store=store)
        for eid in experiment_ids:
            obs.emit("scheduled", experiment=eid, worker="inproc")
        report = run_many(
            experiment_ids,
            ctx,
            retries=spec.retries,
            timeout_s=spec.timeout_s,
            retry_backoff_s=spec.retry_backoff_s,
            resolve=self._event_resolve(self._resolve(spec)),
            on_outcome=self._event_outcome(on_outcome),
        )
        return report, store.stats if store is not None else StoreStats()

    @staticmethod
    def _event_resolve(
        resolve: Callable[[str], Callable] | None,
    ) -> Callable[[str], Callable] | None:
        """Emit ``started`` when the serial executor picks a task up."""
        if not obs.events_enabled():
            return resolve
        if resolve is None:
            from repro.experiments.registry import get_experiment as resolve

        def wrapped(experiment_id: str) -> Callable:
            obs.emit("started", experiment=experiment_id, worker="inproc")
            return resolve(experiment_id)

        return wrapped

    @staticmethod
    def _event_outcome(
        on_outcome: Callable[[RunOutcome], None] | None,
    ) -> Callable[[RunOutcome], None] | None:
        if not obs.events_enabled():
            return on_outcome

        def wrapped(outcome: RunOutcome) -> None:
            obs.emit(
                "result",
                experiment=outcome.experiment_id,
                worker="inproc",
                status="ok" if outcome.ok else outcome.failure.kind,
                elapsed_s=round(outcome.elapsed_s, 3),
            )
            if on_outcome is not None:
                on_outcome(outcome)

        return wrapped

    @staticmethod
    def _resolve(spec: WorkerSpec) -> Callable[[str], Callable] | None:
        """Chaos interposition for the serial path.

        ``chaos_fail`` and ``chaos_slow`` are honoured; ``chaos_kill``
        is not — an ``os._exit`` body would take the *coordinating*
        process down, which is why the CLI refuses ``--chaos-kill``
        without a multi-process backend.
        """
        if not (spec.chaos_fail or spec.chaos_slow):
            return None
        from repro.experiments.registry import get_experiment
        from repro.runtime.chaos import chaos_resolve, slow_run

        resolve: Callable[[str], Callable] = get_experiment
        if spec.chaos_fail:
            resolve = chaos_resolve(set(spec.chaos_fail), resolve)
        if spec.chaos_slow:
            slow = dict(spec.chaos_slow)
            base = resolve

            def resolve(experiment_id: str) -> Callable:
                body = base(experiment_id)
                if experiment_id in slow:
                    body = slow_run(slow[experiment_id], body)
                return body

        return resolve
