"""Pluggable executor backends: where a batch of experiments runs.

Three implementations of one contract (:class:`ExecutorBackend`):

========== ============================================================
``inproc``   serial, this process — the bit-identical reference
``procpool`` local ``ProcessPoolExecutor`` fan-out (crash containment)
``remote``   socket coordinator + worker fleet (heartbeats, stealing,
             resubmission, procpool fallback)
========== ============================================================

``resolve_backend`` is the CLI's entry point: it turns ``--backend``
plus its companion flags into a constructed backend instance.
"""

from __future__ import annotations

from repro.runtime.backends.base import ExecutorBackend, SubmissionOrderMerger
from repro.runtime.backends.inproc import InprocBackend
from repro.runtime.backends.procpool import ProcpoolBackend
from repro.runtime.backends.remote import RemoteBackend, RemoteOptions

BACKENDS: dict[str, type[ExecutorBackend]] = {
    InprocBackend.name: InprocBackend,
    ProcpoolBackend.name: ProcpoolBackend,
    RemoteBackend.name: RemoteBackend,
}

#: the CLI's ``--backend`` choices, in documentation order
BACKEND_NAMES = tuple(BACKENDS)


def resolve_backend(
    name: str,
    workers: tuple[str, ...] = (),
    remote_options: "RemoteOptions | None" = None,
) -> ExecutorBackend:
    """Construct the named backend.

    ``remote`` needs worker addresses — either pre-packed in
    ``remote_options`` or as a bare ``workers`` tuple.
    """
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r} (known: {', '.join(BACKEND_NAMES)})"
        )
    if name == RemoteBackend.name:
        options = remote_options or RemoteOptions(workers=tuple(workers))
        return RemoteBackend(options)
    return BACKENDS[name]()


__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "ExecutorBackend",
    "InprocBackend",
    "ProcpoolBackend",
    "RemoteBackend",
    "RemoteOptions",
    "SubmissionOrderMerger",
    "resolve_backend",
]
