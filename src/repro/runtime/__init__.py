"""Resilient experiment runtime: supervision, checkpointing, chaos.

The runtime applies the paper's detect/contain/replay philosophy to the
reproduction harness itself:

* :mod:`repro.runtime.executor` — fault-isolated supervised runs; one
  crashing experiment never aborts the batch.
* :mod:`repro.runtime.checkpoint` — checksum-verified on-disk store for
  expensive artefacts (chips, error traces) enabling checkpoint/resume.
* :mod:`repro.runtime.parallel` — process-pool fan-out of artefacts and
  experiments with deterministic merge and crash containment.
* :mod:`repro.runtime.backends` — pluggable executor backends (inproc /
  procpool / remote socket fleet) behind one bit-identical contract.
* :mod:`repro.runtime.backoff` — exponential backoff with deterministic
  seeded jitter, shared by retries and fleet reconnects.
* :mod:`repro.runtime.chaos` — deliberate fault injection (experiment,
  store, and network faults) so tests can prove the layers above
  degrade gracefully.
* :mod:`repro.runtime.log` — shared structured logging.
"""

from repro.runtime.backoff import backoff_delay, jitter_fraction
from repro.runtime.checkpoint import (
    CheckpointStore,
    StoreStats,
    artefact_key,
    config_fingerprint,
)
from repro.runtime.executor import (
    ExperimentTimeout,
    FailureRecord,
    RunOutcome,
    RunReport,
    run_many,
    run_supervised,
)
from repro.runtime.log import configure as configure_logging
from repro.runtime.log import get_logger
from repro.runtime.log import reset as reset_logging
from repro.runtime.parallel import (
    WorkerSpec,
    default_jobs,
    prefetch_artefacts,
    run_fleet,
    run_many_parallel,
)

__all__ = [
    "CheckpointStore",
    "ExperimentTimeout",
    "FailureRecord",
    "RunOutcome",
    "RunReport",
    "StoreStats",
    "WorkerSpec",
    "artefact_key",
    "backoff_delay",
    "config_fingerprint",
    "jitter_fraction",
    "configure_logging",
    "default_jobs",
    "get_logger",
    "prefetch_artefacts",
    "reset_logging",
    "run_fleet",
    "run_many",
    "run_many_parallel",
    "run_supervised",
]
