"""Structured logging for the resilient experiment runtime.

All runtime modules log under the ``repro.runtime`` namespace so a
single :func:`configure` call (or any stdlib ``logging`` setup an
embedding application already has) controls executor, checkpoint, and
CLI output together.  Library code never configures handlers on import:
until :func:`configure` runs, messages propagate to whatever the host
process set up, which is the stdlib-recommended behaviour.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

ROOT_LOGGER = "repro.runtime"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATEFMT = "%H:%M:%S"

#: handler installed by :func:`configure`, kept so repeat calls replace
#: rather than stack handlers (pytest re-imports, repeated CLI mains).
_installed_handler: logging.Handler | None = None


def get_logger(child: str | None = None) -> logging.Logger:
    """A logger in the runtime namespace (``repro.runtime[.child]``)."""
    name = f"{ROOT_LOGGER}.{child}" if child else ROOT_LOGGER
    return logging.getLogger(name)


def configure(verbosity: int = 0, stream: IO[str] | None = None) -> logging.Logger:
    """Install a stream handler on the runtime root logger.

    ``verbosity`` 0 logs warnings and errors only (quiet by default so
    figure output stays readable), 1 adds INFO (one line per supervised
    run / checkpoint event), 2 adds DEBUG (fingerprints, byte counts).
    Idempotent: calling again replaces — and closes — the previous
    handler, so tests and repeated ``main()`` invocations never
    double-log, and a handler bound to an earlier call's ``stream`` (a
    capture buffer a long-lived test process has since torn down) can
    never be written to again.
    """
    global _installed_handler
    logger = logging.getLogger(ROOT_LOGGER)
    if _installed_handler is not None:
        logger.removeHandler(_installed_handler)
        _installed_handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATEFMT))
    logger.addHandler(handler)
    logger.propagate = False
    level = {0: logging.WARNING, 1: logging.INFO}.get(verbosity, logging.DEBUG)
    logger.setLevel(level)
    _installed_handler = handler
    return logger


def reset() -> None:
    """Undo :func:`configure` entirely (for tests and embedders).

    Removes and closes the installed handler and restores the runtime
    root logger to its import-time state (propagating, level unset), so
    a test that configured logging onto its own stream leaves nothing
    behind for the next test to trip over.
    """
    global _installed_handler
    logger = logging.getLogger(ROOT_LOGGER)
    if _installed_handler is not None:
        logger.removeHandler(_installed_handler)
        _installed_handler.close()
        _installed_handler = None
    logger.propagate = True
    logger.setLevel(logging.NOTSET)
