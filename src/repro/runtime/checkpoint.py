"""Content-addressed, checksum-verified checkpoint store.

The expensive artefacts of an experiment run — fabricated chips and
dynamic-timing error traces — are pure functions of the experiment
configuration plus a small key (seed, corner, benchmark, ...).  The
store persists them under a fingerprint of exactly those inputs, so an
interrupted ``all`` run resumes in seconds and a changed configuration
can never alias a stale artefact.

Failure philosophy (the paper's own): detect, contain, replay.  A load
NEVER raises on bad data — truncated files, flipped bits, foreign
pickles, and format-version mismatches are all detected (magic header +
SHA-256 payload checksum), logged, counted in :class:`StoreStats`, and
reported as a miss so the caller transparently recomputes.  Writes are
atomic (temp file in the same directory + ``os.replace``), so a crash
mid-write leaves the previous entry — or no entry — but never a torn
one.

Multi-process sharing (the ``claims=True`` mode used by the parallel
runtime): atomic writes already make concurrent writers *safe* — the
last ``os.replace`` wins and every artefact is a deterministic function
of its key, so duplicates are merely wasted work.  The claim protocol
removes the waste: before computing a missing entry a worker creates
``<key>.claim`` with ``O_CREAT | O_EXCL`` (an atomic test-and-set on
every POSIX filesystem); losers poll for the winner's entry instead of
recomputing.  A claim left behind by a dead worker goes stale after
``claim_stale_s`` and is broken; a waiter that exhausts its patience
falls back to computing the artefact itself — duplicate work is always
preferred over a deadlock.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import socket
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import obs
from repro.runtime.log import get_logger

logger = get_logger("checkpoint")

#: bump when the on-disk layout or artefact pickle schema changes;
#: entries with any other version are treated as misses, not errors.
FORMAT_VERSION = 1

_MAGIC = b"REPRO-CKPT"
_SUFFIX = ".ckpt"
_CLAIM_SUFFIX = ".claim"


def config_fingerprint(config: Any) -> str:
    """Stable hex fingerprint of an experiment configuration.

    Dataclasses are serialised field-by-field so the fingerprint changes
    whenever any knob (width, cycles, seeds, benchmark set, ...) does.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload: Any = dataclasses.asdict(config)
    else:
        payload = config
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def artefact_key(kind: str, config: Any, *parts: Any) -> str:
    """Filename-safe store key: ``<kind>-<hash(config, parts)>``."""
    digest = hashlib.sha256(
        json.dumps([config_fingerprint(config), *map(repr, parts)]).encode()
    ).hexdigest()[:24]
    return f"{kind}-{digest}"


@dataclass
class StoreStats:
    """Observable health of one store (asserted on by the chaos tests)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    write_errors: int = 0
    claims_won: int = 0
    claims_waited: int = 0
    claims_broken: int = 0

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    def merge(self, other: "StoreStats | dict[str, int]") -> None:
        """Fold another process's counters into this one (parallel runs)."""
        counts = other.as_dict() if isinstance(other, StoreStats) else other
        for name, value in counts.items():
            setattr(self, name, getattr(self, name, 0) + int(value))


@dataclass
class CheckpointStore:
    """On-disk artefact cache keyed by :func:`artefact_key`.

    With ``resume=False`` every load reports a miss (forcing
    recomputation) but saves still happen, refreshing the store — the
    semantics of the CLI's ``--no-resume``.

    With ``claims=True`` (the parallel workers' mode) :meth:`fetch`
    arbitrates concurrent computation of the same key through claim
    files — see the module docstring for the protocol.
    """

    root: Path
    resume: bool = True
    stats: StoreStats = field(default_factory=StoreStats)
    claims: bool = False
    #: a claim older than this is presumed orphaned by a dead worker
    claim_stale_s: float = 600.0
    #: how often a waiting worker re-checks for the winner's entry
    claim_poll_s: float = 0.05

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def path(self, key: str) -> Path:
        return self.root / f"{key}{_SUFFIX}"

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob(f"*{_SUFFIX}"))

    # ------------------------------------------------------------------
    def save(self, key: str, obj: Any) -> bool:
        """Atomically persist ``obj``; returns False (and logs) on failure.

        A failed save is never fatal — the run simply loses resumability
        for this artefact.
        """
        try:
            payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            header = b"%s v%d %s\n" % (
                _MAGIC,
                FORMAT_VERSION,
                hashlib.sha256(payload).hexdigest().encode(),
            )
            self._atomic_write(self.path(key), header + payload)
        except Exception:
            self.stats.write_errors += 1
            obs.inc("checkpoint.write_errors")
            logger.warning("checkpoint save failed for %s", key, exc_info=True)
            return False
        self.stats.stores += 1
        obs.inc("checkpoint.stores")
        obs.inc("checkpoint.bytes_written", len(payload))
        logger.debug("stored %s (%d bytes)", key, len(payload))
        return True

    def load(self, key: str) -> Any | None:
        """The stored artefact, or None on miss/corruption (never raises)."""
        path = self.path(key)
        if not self.resume or not path.exists():
            self.stats.misses += 1
            obs.inc("checkpoint.misses")
            return None
        try:
            blob = path.read_bytes()
            header, _, payload = blob.partition(b"\n")
            magic, version, checksum = header.split(b" ")
            if magic != _MAGIC:
                raise ValueError("bad magic")
            if version != b"v%d" % FORMAT_VERSION:
                logger.info(
                    "checkpoint %s has format %s (want v%d); recomputing",
                    key, version.decode("ascii", "replace"), FORMAT_VERSION,
                )
                self.stats.misses += 1
                obs.inc("checkpoint.misses")
                return None
            if hashlib.sha256(payload).hexdigest().encode() != checksum:
                raise ValueError("checksum mismatch")
            obj = pickle.loads(payload)
        except Exception as exc:
            self.stats.corrupt += 1
            self.stats.misses += 1
            obs.inc("checkpoint.corrupt")
            obs.inc("checkpoint.misses")
            logger.warning("corrupt checkpoint %s (%s); recomputing", key, exc)
            return None
        self.stats.hits += 1
        obs.inc("checkpoint.hits")
        obs.inc("checkpoint.bytes_read", len(blob))
        logger.debug("hit %s", key)
        return obj

    def fetch(self, key: str, compute, *args, **kwargs) -> Any:
        """Load ``key`` or compute-and-save it (the one-stop accessor).

        In ``claims`` mode, concurrent fetchers of the same key elect a
        single computer; the rest wait for its entry.
        """
        if self.claims and self.resume:
            return self._fetch_claimed(key, compute, *args, **kwargs)
        cached = self.load(key)
        if cached is not None:
            return cached
        obj = compute(*args, **kwargs)
        self.save(key, obj)
        return obj

    # ------------------------------------------------------------------
    # claim protocol (cross-process duplicate-work suppression)
    # ------------------------------------------------------------------
    def claim_path(self, key: str) -> Path:
        return self.root / f"{key}{_CLAIM_SUFFIX}"

    def try_claim(self, key: str) -> bool:
        """Atomically acquire the right to compute ``key``.

        Returns True iff this process now holds the claim.  A claim
        whose recorded owner process is gone, or that is older than
        ``claim_stale_s``, is broken so a worker that died
        mid-computation can never wedge the fleet.  (Without the
        liveness check a chaos-killed worker's orphaned claim stalls
        its retry for the full ``claim_stale_s`` — 10 minutes at the
        default.)
        """
        path = self.claim_path(key)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = time.time() - path.stat().st_mtime
            except OSError:
                return False  # released between open and stat; caller re-loads
            if age > self.claim_stale_s or self._claim_owner_dead(path):
                self.stats.claims_broken += 1
                obs.inc("checkpoint.claims_broken")
                logger.warning("breaking orphaned claim on %s (%.0fs old)", key, age)
                try:
                    os.unlink(path)
                except OSError:
                    pass  # another waiter broke it first
            return False
        except OSError:
            return False  # unwritable store: claimless fallback still works
        with os.fdopen(fd, "w") as handle:
            handle.write(f"{os.getpid()} {socket.gethostname()}\n")
        self.stats.claims_won += 1
        obs.inc("checkpoint.claims_won")
        return True

    @staticmethod
    def _claim_owner_dead(path: Path) -> bool:
        """True iff the claim records a same-host pid that no longer exists.

        The remote backend shares the store across machines, so the
        claim records ``pid hostname`` and the pid liveness probe only
        applies to claims from *this* host — a foreign host's pid space
        says nothing about ours.  Foreign, unreadable, or legacy
        pid-only-from-elsewhere claims fall back to the age rule.
        """
        try:
            fields = path.read_text().split()
            pid = int(fields[0])
        except (OSError, ValueError, IndexError):
            return False
        # a second field is the owner's hostname (pre-fleet claims have
        # none and are always local)
        if len(fields) > 1 and fields[1] != socket.gethostname():
            return False
        if pid <= 0 or pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except OSError:
            return False  # alive but unsignalable (EPERM), or exotic failure
        return False

    def release(self, key: str) -> None:
        try:
            os.unlink(self.claim_path(key))
        except OSError:
            pass

    def _fetch_claimed(self, key: str, compute, *args, **kwargs) -> Any:
        deadline = time.monotonic() + self.claim_stale_s
        waited = False
        check_entry = True  # poll existence while waiting; load only then
        while True:
            if check_entry:
                cached = self.load(key)
                if cached is not None:
                    return cached
            if self.try_claim(key):
                try:
                    obj = compute(*args, **kwargs)
                    self.save(key, obj)
                finally:
                    self.release(key)
                return obj
            # another process holds the claim: wait for its entry, but
            # never past the deadline — a duplicate computation is
            # deterministic and atomic-replace-safe, a deadlock is not.
            if not waited:
                waited = True
                self.stats.claims_waited += 1
                obs.inc("checkpoint.claims_waited")
                logger.debug("waiting on claim for %s", key)
            if time.monotonic() >= deadline:
                logger.warning("claim wait on %s expired; computing locally", key)
                obj = compute(*args, **kwargs)
                self.save(key, obj)
                return obj
            time.sleep(self.claim_poll_s)
            check_entry = key in self

    # ------------------------------------------------------------------
    def _atomic_write(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
