"""Process-pool fan-out for artefacts and whole experiments.

The evaluation is embarrassingly parallel on two axes — chip
fabrication across (seed, corner) and error-trace construction across
(chip, benchmark) — and at the top level the 22 registered experiments
are independent once those artefacts exist.  This module fans all three
out across ``ProcessPoolExecutor`` workers while keeping every
guarantee the serial runtime makes:

* **Determinism.**  Workers only ever *compute* artefacts that are pure
  functions of (config, key) and publish them through the shared
  :class:`~repro.runtime.checkpoint.CheckpointStore` (atomic writes +
  claim files, so concurrent computation of one key is suppressed and a
  lost race is harmless).  Outcomes are merged in submission order, so
  a parallel run's report is bit-identical to a serial run's, modulo
  wall-clock fields.
* **Fault isolation.**  Each experiment runs under
  :func:`~repro.runtime.executor.run_supervised` *inside* its worker,
  so exceptions, retries, and timeouts behave exactly as in a serial
  run — and because the watchdog clock starts inside the worker, time
  spent queued behind other experiments never counts against
  ``--timeout-s``.  A worker that dies outright (SIGKILL, OOM,
  ``--chaos-kill``) breaks the pool; the orchestrator rebuilds the
  pool, re-runs tasks that never started, gives possibly-innocent
  started tasks ``crash_retries`` more chances, and converts repeat
  offenders into ``kind="crash"`` failure records — one murdered
  worker degrades to one failed experiment, never a dead run.

The public entry point is :func:`run_fleet` (prefetch + fan-out), with
:func:`prefetch_artefacts` and :func:`run_many_parallel` usable
separately.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from repro import obs
from repro.obs import audit
from repro.runtime.checkpoint import CheckpointStore, StoreStats, config_fingerprint
from repro.runtime.executor import FailureRecord, RunOutcome, RunReport
from repro.runtime.log import get_logger

logger = get_logger("parallel")


def default_jobs() -> int:
    """The CLI's ``--jobs`` default: one worker per CPU."""
    return os.cpu_count() or 1


def _mp_context():
    # fork keeps worker start-up cheap (no numpy/scipy re-import) and is
    # available everywhere the tier-1 suite runs; fall back gracefully.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to rebuild its runtime.

    Must stay picklable: plain values only.  The chaos fields exist so
    fault injection crosses the process boundary — ``--chaos-fail`` (and
    friends) must misbehave *inside* the worker, not in the parent.
    """

    config: Any  # ExperimentConfig (a frozen dataclass of plain values)
    checkpoint_dir: str | None = None
    resume: bool = True
    retries: int = 0
    timeout_s: float | None = None
    #: base of the exponential inter-retry backoff (0 = retry immediately)
    retry_backoff_s: float = 0.0
    chaos_fail: tuple[str, ...] = ()
    chaos_kill: tuple[str, ...] = ()
    chaos_slow: tuple[tuple[str, float], ...] = ()
    verbose: int = 0
    #: parent-managed scratch dir for started-task markers
    scratch_dir: str | None = None
    claim_stale_s: float = 600.0
    claim_poll_s: float = 0.05
    #: parent-managed directory for telemetry shards (None = telemetry off)
    telemetry_dir: str | None = None
    #: capture per-span cProfile stats inside workers
    profile: bool = False
    #: shared-memory catalog of population artefacts (set by run_fleet;
    #: workers that cannot attach fall back to local computation)
    shm_catalog: Any = None
    #: run-scoped trace id propagated into every worker span (None =
    #: tracing off); remote task frames carry it across the wire
    trace_id: str | None = None
    #: the coordinator's run-level span id (parent linkage for workers)
    parent_span_id: str | None = None
    #: run event-stream file (None = events off); fork workers append
    #: directly, remote workers get it nulled (the coordinator emits)
    events_path: str | None = None
    #: parent-managed directory for cycle-audit shards (None = audit off)
    audit_dir: str | None = None
    #: audit sampling policy text (full / window:S:L / reservoir:K:SEED)
    audit_policy: str | None = None


# ----------------------------------------------------------------------
# worker side (top-level functions so the pool can pickle them)
# ----------------------------------------------------------------------

def _worker_context(spec: WorkerSpec):
    from repro.experiments.runner import ExperimentContext
    from repro.runtime.log import configure

    configure(spec.verbose)
    obs.ensure_worker(
        spec.telemetry_dir, profile=spec.profile,
        trace_id=spec.trace_id or "",
    )
    obs.ensure_worker_events(spec.events_path, trace_id=spec.trace_id or "")
    audit.ensure_worker(
        spec.audit_dir, policy=spec.audit_policy, trace_id=spec.trace_id or "",
    )
    store = None
    if spec.checkpoint_dir:
        store = CheckpointStore(
            spec.checkpoint_dir,
            resume=spec.resume,
            claims=True,
            claim_stale_s=spec.claim_stale_s,
            claim_poll_s=spec.claim_poll_s,
        )
    shared = None
    if spec.shm_catalog is not None:
        from repro.runtime.shm import ShmReader

        # Attach lazily per array; a worker that cannot see the parent's
        # segments (remote machine, parent gone) computes locally instead.
        shared = ShmReader(spec.shm_catalog)
    return ExperimentContext(spec.config, store=store, shared=shared)


def _worker_resolve(spec: WorkerSpec) -> Callable[[str], Callable]:
    from repro.experiments.registry import get_experiment
    from repro.runtime.chaos import chaos_resolve, killed_run, slow_run

    resolve: Callable[[str], Callable] = get_experiment
    if spec.chaos_fail:
        resolve = chaos_resolve(set(spec.chaos_fail), resolve)
    if spec.chaos_kill or spec.chaos_slow:
        kill = set(spec.chaos_kill)
        slow = dict(spec.chaos_slow)
        base = resolve

        def resolve(experiment_id: str) -> Callable:
            if experiment_id in kill:
                logger.info("chaos: killing worker running %s", experiment_id)
                return killed_run()
            body = base(experiment_id)
            if experiment_id in slow:
                body = slow_run(slow[experiment_id], body)
            return body

    return resolve


def _mark_started(spec: WorkerSpec, experiment_id: str) -> None:
    if not spec.scratch_dir:
        return
    try:
        Path(spec.scratch_dir, f"started-{experiment_id}").touch()
    except OSError:
        pass  # blame tracking degrades, containment still works


def _record_queue_wait(submitted_ts: float | None) -> None:
    """Submission-to-start latency (the queue-vs-run split in the trace).

    Valid because fork workers share the parent's ``perf_counter``
    timeline (CLOCK_MONOTONIC is system-wide on the platforms the fork
    path runs on).
    """
    if submitted_ts is not None:
        obs.observe(
            "worker.queue_wait_s", max(0.0, time.perf_counter() - submitted_ts)
        )


def _run_experiment_task(
    spec: WorkerSpec, experiment_id: str, submitted_ts: float | None = None
) -> tuple[RunOutcome, dict[str, int] | None]:
    """Run one supervised experiment inside a worker process.

    The watchdog clock starts *here* — inside the worker — so time the
    task spent queued behind other work never counts against the
    ``--timeout-s`` budget.
    """
    from repro.runtime.executor import run_supervised

    _mark_started(spec, experiment_id)
    ctx = _worker_context(spec)
    _record_queue_wait(submitted_ts)
    obs.emit("started", experiment=experiment_id, worker=f"pid:{os.getpid()}")
    try:
        with obs.span("worker.task", experiment=experiment_id):
            resolve = _worker_resolve(spec)
            outcome = run_supervised(
                experiment_id,
                resolve(experiment_id),
                ctx,
                retries=spec.retries,
                timeout_s=spec.timeout_s,
                retry_backoff_s=spec.retry_backoff_s,
            )
        stats = ctx.store.stats.as_dict() if ctx.store is not None else None
        return outcome, stats
    finally:
        obs.flush_worker()
        audit.flush_worker()


def _prefetch_task(
    spec: WorkerSpec, kind: str, part: tuple, submitted_ts: float | None = None
) -> dict[str, int] | None:
    """Materialise one artefact into the shared store."""
    ctx = _worker_context(spec)
    _record_queue_wait(submitted_ts)
    try:
        with obs.span("worker.prefetch", kind=kind, part=repr(part)):
            obs.inc("prefetch.tasks")
            if kind == "chip":
                chip_kind, seed, corner, buffered = part
                if chip_kind == "alu":
                    ctx.alu_chip(seed, corner)
                else:
                    ctx.chip(seed, corner, buffered)
            elif kind == "etrace_batch":
                benchmark, seeds, corner, buffered = part
                ctx.error_traces_batch(benchmark, seeds, corner, buffered)
            else:
                benchmark, chip_seed, corner, buffered = part
                ctx.error_trace(benchmark, chip_seed, corner, buffered)
        return ctx.store.stats.as_dict() if ctx.store is not None else None
    finally:
        obs.flush_worker()
        audit.flush_worker()


# ----------------------------------------------------------------------
# orchestrator side
# ----------------------------------------------------------------------

def _crash_outcome(
    experiment_id: str, spec: WorkerSpec, message: str, attempts: int
) -> RunOutcome:
    obs.inc("parallel.crashes")
    obs.emit("crash", experiment=experiment_id, reason=message)
    failure = FailureRecord(
        experiment_id=experiment_id,
        kind="crash",
        error_type="WorkerCrash",
        message=message,
        traceback="",
        config_fingerprint=config_fingerprint(spec.config),
        elapsed_s=0.0,
        attempts=attempts,
        context=obs.recent_events(),
    )
    return RunOutcome(experiment_id, None, failure, 0.0, attempts=attempts)


def prefetch_artefacts(
    spec: WorkerSpec, experiment_ids: Sequence[str], jobs: int
) -> StoreStats:
    """Fan the expensive artefacts out across workers ahead of the run.

    Two barrier phases — chips, then the error traces that consume them
    — each filling the shared checkpoint store.  Strictly best-effort: a
    failed or crashed prefetch is only logged, because any experiment
    can recompute its own artefacts through the claimed store.
    """
    from repro.experiments.runner import group_trace_specs, prefetch_plan

    stats = StoreStats()
    if not spec.checkpoint_dir:
        return stats  # nowhere shared to put artefacts
    chips, traces = prefetch_plan(spec.config, experiment_ids)
    # Traces sharing (benchmark, corner, buffered) collapse into one
    # batch-kernel task timing all their chips at once.
    trace_batches = group_trace_specs(traces)
    for phase, parts in (("chip", chips), ("etrace_batch", trace_batches)):
        if not parts:
            continue
        logger.info("prefetching %d %s artefact(s)", len(parts), phase)
        try:
            with obs.span("parallel.prefetch", phase=phase, parts=len(parts)), \
                    ProcessPoolExecutor(
                        max_workers=min(jobs, len(parts)),
                        mp_context=_mp_context(),
                    ) as pool:
                futures = [
                    pool.submit(
                        _prefetch_task, spec, phase, part, time.perf_counter()
                    )
                    for part in parts
                ]
                for future in as_completed(futures):
                    try:
                        worker_stats = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception as exc:
                        logger.warning("prefetch task failed: %s", exc)
                    else:
                        if worker_stats:
                            stats.merge(worker_stats)
        except BrokenProcessPool:
            logger.warning(
                "prefetch pool died; experiments will compute artefacts on demand"
            )
            return stats
    return stats


def run_many_parallel(
    experiment_ids: Sequence[str],
    spec: WorkerSpec,
    jobs: int | None = None,
    on_outcome: Callable[[RunOutcome], None] | None = None,
    crash_retries: int = 1,
) -> tuple[RunReport, StoreStats]:
    """Supervise a batch across worker processes.

    The report lists outcomes in submission order regardless of
    completion order, and ``on_outcome`` fires in submission order too
    (held back until every earlier experiment has reported), so the
    incremental output of a parallel run is byte-comparable with a
    serial run's.

    Returns the report plus the workers' merged store statistics.
    """
    ids = list(experiment_ids)
    jobs = jobs or default_jobs()
    outcomes: dict[str, RunOutcome] = {}
    crashes = dict.fromkeys(ids, 0)
    stats = StoreStats()
    emitted = 0

    def flush() -> None:
        nonlocal emitted
        while emitted < len(ids) and ids[emitted] in outcomes:
            if on_outcome is not None:
                on_outcome(outcomes[ids[emitted]])
            emitted += 1

    scratch = Path(tempfile.mkdtemp(prefix="repro-fleet-"))
    spec = dataclasses.replace(spec, scratch_dir=str(scratch))
    try:
        pending = list(ids)
        isolate: list[str] = []
        while pending or isolate:
            # quarantined suspects run one per round in a single-worker
            # pool: if that pool breaks, the sole started task is the
            # culprit beyond doubt
            if isolate:
                batch = [isolate.pop(0)]
            else:
                batch, pending = pending, []
            for marker in scratch.glob("started-*"):
                try:
                    marker.unlink()
                except OSError:
                    pass
            broken = False
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(batch)), mp_context=_mp_context()
            ) as pool:
                futures = {
                    pool.submit(
                        _run_experiment_task, spec, eid, time.perf_counter()
                    ): eid
                    for eid in batch
                }
                for future in as_completed(futures):
                    eid = futures[future]
                    try:
                        outcome, worker_stats = future.result()
                    except BrokenProcessPool:
                        # every not-yet-finished future fails instantly
                        # once the pool breaks; keep draining so results
                        # that DID complete are never thrown away
                        broken = True
                        continue
                    except Exception as exc:
                        # orchestration failure (e.g. unpicklable result):
                        # contained exactly like an in-experiment crash
                        outcome = _crash_outcome(
                            eid, spec, f"{type(exc).__name__}: {exc}",
                            attempts=crashes[eid] + 1,
                        )
                        worker_stats = None
                    if worker_stats:
                        stats.merge(worker_stats)
                    outcomes[eid] = outcome
                    obs.emit(
                        "result", experiment=eid,
                        status="ok" if outcome.ok else outcome.failure.kind,
                        elapsed_s=round(outcome.elapsed_s, 3),
                    )
                    flush()
            unfinished = [eid for eid in batch if eid not in outcomes]
            if broken and unfinished:
                started = {
                    eid for eid in unfinished
                    if (scratch / f"started-{eid}").exists()
                }
                # a pool that died before any task began indicts everyone
                blamed = started or set(unfinished)
                if len(blamed) > 1:
                    # ambiguous: any of the started tasks may have killed
                    # the pool.  No strikes — quarantine the suspects so
                    # the next break has exactly one possible culprit,
                    # and an innocent co-resident is never failed out
                    logger.warning(
                        "worker pool died with %d tasks in flight (%s); "
                        "isolating them to identify the culprit",
                        len(blamed), ", ".join(sorted(blamed)),
                    )
                    for eid in sorted(blamed):
                        obs.emit("resubmit", experiment=eid, reason="pool died; isolating")
                    isolate.extend(eid for eid in unfinished if eid in blamed)
                    pending.extend(
                        eid for eid in unfinished if eid not in blamed
                    )
                else:
                    for eid in unfinished:
                        if eid in blamed:
                            crashes[eid] += 1
                            if crashes[eid] > crash_retries:
                                outcomes[eid] = _crash_outcome(
                                    eid, spec,
                                    "worker process died"
                                    " (killed or out of memory)",
                                    attempts=crashes[eid],
                                )
                                flush()
                                continue
                            logger.warning(
                                "worker running %s died; retrying (%d/%d)",
                                eid, crashes[eid], crash_retries,
                            )
                            obs.emit(
                                "resubmit", experiment=eid,
                                reason=f"worker died ({crashes[eid]}/{crash_retries})",
                            )
                            # a repeat offender re-runs quarantined
                            isolate.append(eid)
                        else:
                            pending.append(eid)
            else:
                pending.extend(unfinished)
    finally:
        for marker in scratch.glob("started-*"):
            try:
                marker.unlink()
            except OSError:
                pass
        try:
            scratch.rmdir()
        except OSError:
            pass

    report = RunReport()
    report.outcomes.extend(outcomes[eid] for eid in ids)
    return report, stats


def run_fleet(
    experiment_ids: Sequence[str],
    spec: WorkerSpec,
    jobs: int | None = None,
    on_outcome: Callable[[RunOutcome], None] | None = None,
    prefetch: bool = True,
    crash_retries: int = 1,
    share_artefacts: bool = True,
) -> tuple[RunReport, StoreStats]:
    """Prefetch shared artefacts, then fan the experiments out.

    The convenience wrapper the CLI uses for ``--jobs > 1``.  With
    ``share_artefacts`` the parent fabricates the run's chip populations
    and encoded input streams once, publishes them to shared-memory
    segments, and ships only the catalog inside the :class:`WorkerSpec`
    — workers attach zero-copy views instead of pickling or recomputing
    whole chips.  Publishing is best-effort: on any failure the fleet
    runs exactly as before, computing artefacts through the store.
    """
    jobs = jobs or default_jobs()
    obs.gauge("parallel.jobs", jobs)
    stats = StoreStats()
    publisher = None
    if share_artefacts:
        from repro.experiments.runner import build_shared_artefacts

        try:
            catalog, publisher = build_shared_artefacts(
                spec.config, experiment_ids
            )
        except Exception as exc:
            logger.warning(
                "shared-memory publish failed (%s); workers will compute "
                "artefacts locally", exc,
            )
        else:
            if catalog is not None and len(catalog):
                spec = dataclasses.replace(spec, shm_catalog=catalog)
    try:
        if prefetch:
            stats.merge(prefetch_artefacts(spec, experiment_ids, jobs))
        with obs.span(
            "parallel.fanout", experiments=len(experiment_ids), jobs=jobs
        ):
            report, run_stats = run_many_parallel(
                experiment_ids, spec, jobs=jobs,
                on_outcome=on_outcome, crash_retries=crash_retries,
            )
    finally:
        if publisher is not None:
            publisher.unlink()
    stats.merge(run_stats)
    return report, stats
