"""Supervised, fault-isolated experiment execution.

The paper's pipeline — detect an error, contain it, replay past it —
applied to our own harness: each experiment runs under a supervisor
that converts exceptions into structured :class:`FailureRecord`s, so
one crashing figure can never abort the other twenty-one.  A run of
many experiments always completes, reports a pass/fail summary, and
signals failure through the exit code only at the end.

Timeouts use a watchdog thread: the experiment body runs in a daemon
worker and the supervisor abandons it when the wall-clock budget
expires.  Python cannot forcibly kill a thread, so a timed-out body may
keep computing in the background until process exit — the supervisor
simply stops waiting, records a timeout failure, and moves on (graceful
partial-result reporting rather than a hang).
"""

from __future__ import annotations

import threading
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import obs
from repro.experiments.report import ExperimentResult
from repro.runtime.backoff import backoff_delay
from repro.runtime.checkpoint import config_fingerprint
from repro.runtime.log import get_logger

logger = get_logger("executor")


class ExperimentTimeout(RuntimeError):
    """Raised by the supervisor when a run exceeds its wall-clock budget."""


@dataclass
class FailureRecord:
    """Everything needed to triage one failed experiment run."""

    experiment_id: str
    kind: str  # "exception" | "timeout" | "crash" | "partition"
    error_type: str
    message: str
    traceback: str
    config_fingerprint: str
    elapsed_s: float
    attempts: int = 1
    #: flight-recorder dump: the last few structured events before a
    #: crash/partition blame ("what was the fleet doing").  Deliberately
    #: excluded from rendered reports — events are schedule-dependent
    #: and reports must stay bit-identical across backends.
    context: tuple[str, ...] = ()

    def summary(self) -> str:
        return f"{self.experiment_id}: {self.error_type}: {self.message}"


@dataclass
class RunOutcome:
    """Result of one supervised experiment: a result XOR a failure."""

    experiment_id: str
    result: ExperimentResult | None
    failure: FailureRecord | None
    elapsed_s: float
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class RunReport:
    """Aggregate of a multi-experiment run, in submission order."""

    outcomes: list[RunOutcome] = field(default_factory=list)

    @property
    def results(self) -> list[ExperimentResult]:
        return [o.result for o in self.outcomes if o.result is not None]

    @property
    def failures(self) -> list[FailureRecord]:
        return [o.failure for o in self.outcomes if o.failure is not None]

    @property
    def ok(self) -> bool:
        return not self.failures

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def summary_text(self) -> str:
        """The end-of-run pass/fail table printed by the CLI."""
        passed = len(self.outcomes) - len(self.failures)
        lines = [f"== run summary: {passed}/{len(self.outcomes)} experiments ok =="]
        width = max((len(o.experiment_id) for o in self.outcomes), default=0)
        for outcome in self.outcomes:
            if outcome.ok:
                status = "ok"
            elif outcome.failure is not None and outcome.failure.kind == "timeout":
                status = "TIMEOUT"
            elif outcome.failure is not None and outcome.failure.kind == "crash":
                status = "CRASH"
            else:
                status = "FAIL"
            line = (
                f"  {outcome.experiment_id.ljust(width)}  {status:<7}"
                f"  {outcome.elapsed_s:7.1f}s"
            )
            if outcome.attempts > 1:
                line += f"  ({outcome.attempts} attempts)"
            if outcome.failure is not None:
                line += f"  {outcome.failure.error_type}: {outcome.failure.message}"
            lines.append(line)
        return "\n".join(lines)


def _call_with_timeout(fn: Callable, ctx, timeout_s: float | None):
    if timeout_s is None:
        return fn(ctx)
    outcome: dict = {}
    done = threading.Event()

    def body() -> None:
        try:
            outcome["result"] = fn(ctx)
        except BaseException as exc:  # re-raised in the supervisor
            outcome["error"] = exc
        finally:
            done.set()

    worker = threading.Thread(target=body, name="experiment-body", daemon=True)
    worker.start()
    if not done.wait(timeout_s):
        raise ExperimentTimeout(
            f"exceeded {timeout_s:g}s wall-clock budget (body abandoned)"
        )
    if "error" in outcome:
        raise outcome["error"]
    return outcome["result"]


def run_supervised(
    experiment_id: str,
    fn: Callable,
    ctx,
    retries: int = 0,
    timeout_s: float | None = None,
    retry_backoff_s: float = 0.0,
) -> RunOutcome:
    """Run one experiment, converting any exception into a FailureRecord.

    ``retry_backoff_s`` > 0 sleeps between attempts with an
    exponentially growing, deterministically jittered delay (seeded by
    experiment id and attempt), so a fleet retrying a shared-resource
    failure never stampedes it in lockstep.

    ``KeyboardInterrupt`` and ``SystemExit`` are deliberately NOT
    contained — the user aborting the whole run must still work.
    """
    fingerprint = config_fingerprint(getattr(ctx, "config", None))
    start = time.monotonic()
    failure: FailureRecord | None = None
    attempts = 0
    with obs.span("experiment.run", experiment=experiment_id):
        for attempt in range(1, retries + 2):
            attempts = attempt
            obs.inc("experiment.attempts")
            if attempt > 1:
                obs.inc("experiment.retries")
                delay = backoff_delay(
                    attempt - 1, retry_backoff_s, seed=(experiment_id, attempt)
                )
                if delay > 0.0:
                    obs.inc("executor.backoff_s", delay)
                    logger.info(
                        "%s backing off %.3fs before attempt %d",
                        experiment_id, delay, attempt,
                    )
                    time.sleep(delay)
            try:
                result = _call_with_timeout(fn, ctx, timeout_s)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                elapsed = time.monotonic() - start
                kind = "timeout" if isinstance(exc, ExperimentTimeout) else "exception"
                obs.inc("experiment.timeouts" if kind == "timeout"
                        else "experiment.errors")
                failure = FailureRecord(
                    experiment_id=experiment_id,
                    kind=kind,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    traceback="".join(
                        traceback_module.format_exception(
                            type(exc), exc, exc.__traceback__
                        )
                    ),
                    config_fingerprint=fingerprint,
                    elapsed_s=elapsed,
                    attempts=attempt,
                )
                logger.warning(
                    "%s failed (attempt %d/%d): %s: %s",
                    experiment_id, attempt, retries + 1,
                    failure.error_type, failure.message,
                )
            else:
                elapsed = time.monotonic() - start
                obs.inc("experiment.ok")
                obs.inc("experiment.outcome", experiment=experiment_id, status="ok")
                obs.observe("experiment.duration_s", elapsed)
                logger.info(
                    "%s ok in %.1fs (attempt %d)", experiment_id, elapsed, attempt
                )
                return RunOutcome(
                    experiment_id, result, None, elapsed, attempts=attempt
                )
    assert failure is not None
    obs.inc("experiment.failed")
    obs.inc("experiment.outcome", experiment=experiment_id, status=failure.kind)
    obs.observe("experiment.duration_s", time.monotonic() - start)
    return RunOutcome(
        experiment_id, None, failure, time.monotonic() - start, attempts=attempts
    )


def run_many(
    experiment_ids: Sequence[str],
    ctx,
    retries: int = 0,
    timeout_s: float | None = None,
    retry_backoff_s: float = 0.0,
    resolve: Callable[[str], Callable] | None = None,
    on_outcome: Callable[[RunOutcome], None] | None = None,
) -> RunReport:
    """Supervise a batch; every experiment runs no matter who crashes.

    ``resolve`` maps an id to its run callable (defaults to the
    registry); the CLI uses it to interpose chaos wrappers.
    ``on_outcome`` is invoked after each experiment for incremental
    reporting.
    """
    if resolve is None:
        from repro.experiments.registry import get_experiment as resolve
    report = RunReport()
    for experiment_id in experiment_ids:
        outcome = run_supervised(
            experiment_id, resolve(experiment_id), ctx,
            retries=retries, timeout_s=timeout_s,
            retry_backoff_s=retry_backoff_s,
        )
        report.outcomes.append(outcome)
        if on_outcome is not None:
            on_outcome(outcome)
    return report
