"""Shared-memory hand-off of population artefacts to fleet workers.

Before the batched kernel, every fleet worker received its chips and
input streams by pickling them through the process boundary (or by
recomputing them through the checkpoint store).  With populations the
natural unit is a handful of large read-only arrays — the
``(num_chips, num_nodes)`` delay/ΔVth matrices and the encoded
input-vector stream per benchmark — which belong in
:mod:`multiprocessing.shared_memory`: the parent publishes each array
into a named segment once, workers attach zero-copy views, and only a
small picklable :class:`ShmCatalog` of (segment name, shape, dtype)
travels inside the :class:`~repro.runtime.parallel.WorkerSpec`.

Failure philosophy: the hand-off is strictly an accelerator.  Workers
that cannot attach a segment (remote machines, exhausted /dev/shm,
racing cleanup) silently fall back to computing the artefact themselves
through the claimed checkpoint store — nothing about correctness ever
depends on shared memory being available.

Lifecycle: the parent owns the segments and unlinks them when the fleet
run finishes (``finally``-guarded).  Child processes must *attach
without registering* with the resource tracker — on Python 3.10–3.12 a
child's tracker would otherwise unlink the parent's segments when the
child exits, tearing the arrays out from under its siblings.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro import obs
from repro.runtime.log import get_logger

logger = get_logger("shm")


@dataclass(frozen=True)
class ArraySpec:
    """Picklable description of one published array."""

    segment: str  # shared-memory segment name
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class ShmCatalog:
    """Picklable index of everything the parent published.

    ``arrays`` maps string keys to segment specs; ``meta`` carries small
    plain-value entries (population seed lists and the like) that are
    cheaper to ship inline than through a segment.
    """

    arrays: tuple[tuple[str, ArraySpec], ...] = ()
    meta: tuple[tuple[str, Any], ...] = ()

    def __len__(self) -> int:
        return len(self.arrays)


class ShmPublisher:
    """Parent-side writer: copy arrays into named segments, emit a catalog.

    The publisher owns its segments; call :meth:`unlink` (idempotent)
    when every consumer is done.
    """

    def __init__(self, prefix: str = "repro") -> None:
        self._prefix = prefix
        self._segments: list[shared_memory.SharedMemory] = []
        self._arrays: list[tuple[str, ArraySpec]] = []
        self._meta: list[tuple[str, Any]] = []
        self._counter = 0

    def put(self, key: str, array: np.ndarray) -> None:
        """Publish one array under ``key`` (copies into a fresh segment)."""
        array = np.ascontiguousarray(array)
        name = f"{self._prefix}-{os.getpid()}-{self._counter}"
        self._counter += 1
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes), name=name
        )
        self._segments.append(segment)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        self._arrays.append(
            (key, ArraySpec(segment=name, shape=array.shape, dtype=str(array.dtype)))
        )
        obs.inc("shm.arrays_published")
        obs.inc("shm.bytes_published", array.nbytes)

    def put_meta(self, key: str, value: Any) -> None:
        """Attach one small picklable metadata entry to the catalog."""
        self._meta.append((key, value))

    def catalog(self) -> ShmCatalog:
        return ShmCatalog(arrays=tuple(self._arrays), meta=tuple(self._meta))

    def unlink(self) -> None:
        """Destroy every published segment (idempotent, error-tolerant)."""
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass  # already gone (double unlink, host cleanup)


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    On Python 3.10–3.12, ``SharedMemory(name=...)`` registers the segment
    with the resource tracker, which unlinks it on process exit — wrong
    for a child attaching to its parent's segment.  Python 3.13 grew
    ``track=False`` for exactly this; on older versions, *suppress* the
    registration instead of unregistering afterwards: forked workers
    share the parent's tracker process and its cache is a set, so a
    child's register/unregister pair would net-delete the parent's own
    entry and its final ``unlink()`` would make the tracker print a
    spurious KeyError traceback.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


class ShmReader:
    """Worker-side view of a :class:`ShmCatalog`.

    ``get`` returns a read-only numpy view into the parent's segment, or
    ``None`` when the segment cannot be attached (remote machine, the
    parent already cleaned up) — callers must treat ``None`` as "compute
    it yourself".  Attached segments are cached and kept referenced for
    the reader's lifetime so views never outlive their buffer.
    """

    def __init__(self, catalog: ShmCatalog) -> None:
        self._specs = dict(catalog.arrays)
        self.meta = dict(catalog.meta)
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._views: dict[str, np.ndarray] = {}
        self._failed: set[str] = set()

    def __contains__(self, key: str) -> bool:
        return key in self._specs

    def get(self, key: str) -> np.ndarray | None:
        if key in self._views:
            return self._views[key]
        spec = self._specs.get(key)
        if spec is None or key in self._failed:
            return None
        try:
            segment = _attach_untracked(spec.segment)
        except (FileNotFoundError, OSError, ValueError) as exc:
            # No /dev/shm segment here (remote worker, parent gone):
            # degrade to local computation, once, quietly.
            self._failed.add(key)
            logger.debug("shm attach failed for %s: %s", key, exc)
            obs.inc("shm.attach_failures")
            return None
        self._segments[spec.segment] = segment
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
        view.flags.writeable = False
        self._views[key] = view
        obs.inc("shm.arrays_attached")
        return view

    def close(self) -> None:
        """Drop all views and detach (never unlinks — the parent owns those)."""
        self._views.clear()
        segments, self._segments = self._segments, {}
        for segment in segments.values():
            try:
                segment.close()
            except (BufferError, OSError):
                pass
