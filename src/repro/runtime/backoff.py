"""Exponential backoff with deterministic seeded jitter.

Retry storms are a failure amplifier: a transient fault that knocks out
N tasks at once must not have all N hammer the same resource in
lockstep.  The classic fix is exponential backoff with jitter — but
naive ``random.random()`` jitter would make retry timing (and therefore
telemetry) vary between otherwise identical runs, breaking the
bit-identical reproducibility the rest of the runtime guarantees.

So the jitter here is *seeded*: a CRC32 of the caller-supplied identity
parts (experiment id, worker address, attempt number, ...) maps into
``[0.5, 1.0)`` of the exponential envelope.  Same inputs, same delays,
every run, every machine — while distinct tasks still spread out.
"""

from __future__ import annotations

import zlib

#: retries never wait longer than this, whatever the exponent says
DEFAULT_CAP_S = 30.0


def jitter_fraction(*parts: object) -> float:
    """Deterministic pseudo-uniform value in ``[0, 1)`` from ``parts``.

    CRC32 over the reprs — stable across processes and machines (the
    builtin ``hash`` is salted per process and therefore banned here).
    """
    text = "\x1f".join(repr(part) for part in parts)
    return zlib.crc32(text.encode()) / 2**32


def backoff_delay(
    attempt: int,
    base_s: float,
    cap_s: float = DEFAULT_CAP_S,
    seed: tuple[object, ...] = (),
) -> float:
    """Seconds to wait before retry ``attempt`` (1-based).

    The envelope doubles per attempt (``base_s * 2**(attempt-1)``),
    capped at ``cap_s``; the jitter keeps the delay in the upper half of
    the envelope (``[0.5, 1.0)`` of it), so backoff pressure is never
    jittered away entirely.  ``base_s <= 0`` disables backoff.
    """
    if base_s <= 0.0 or attempt < 1:
        return 0.0
    envelope = min(cap_s, base_s * 2.0 ** (attempt - 1))
    return envelope * (0.5 + jitter_fraction(attempt, *seed) / 2.0)
