"""The execute-stage ALU: netlist construction and reference semantics.

This is the circuit the paper's experiments time cycle-by-cycle.  The ALU
takes two operand words and a one-hot operation select, computes every
functional unit in parallel (adder/subtractor, array multiplier, four
barrel shifters, the logic unit, the LOAD address path and the BUFFER
pass-through) and gates the selected result through an AND-OR mux tree --
the standard synthesised ALU structure, in which a change of either the
operands or the selected operation re-sensitises paths throughout the
whole cloud.

The operation set is the union of the 11 operations characterised in the
DATE'17 choke-point study (ADD, SUB, MULT, OR, AND, XOR, LOAD, ASR, LSR,
ROR, BUFFER) and the extra operations the MIPS-like ISA of the
architecture layer needs (SLL, NOR).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.gates.builder import NetlistBuilder, Word
from repro.gates.netlist import Netlist

from repro.circuits.adders import add_sub_unit
from repro.circuits.logic_unit import logic_unit
from repro.circuits.multiplier import half_width_multiplier
from repro.circuits.shifter import barrel_shift_left, barrel_shift_right, shift_amount_bits


class AluOp(enum.IntEnum):
    """ALU operations (one-hot selected)."""

    ADD = 0
    SUB = 1
    MULT = 2
    OR = 3
    AND = 4
    XOR = 5
    NOR = 6
    LOAD = 7
    ASR = 8
    LSR = 9
    ROR = 10
    SLL = 11
    BUFFER = 12


#: The 11 operations of the DATE 2017 choke-point characterisation (Fig. 3.2).
CH3_OPS: tuple[AluOp, ...] = (
    AluOp.ADD,
    AluOp.SUB,
    AluOp.MULT,
    AluOp.OR,
    AluOp.AND,
    AluOp.XOR,
    AluOp.LOAD,
    AluOp.ASR,
    AluOp.LSR,
    AluOp.ROR,
    AluOp.BUFFER,
)


def alu_reference(op: AluOp, a: int, b: int, width: int) -> int:
    """Pure-Python semantics of the ALU (the golden model for tests)."""
    mask = (1 << width) - 1
    a &= mask
    b &= mask
    shamt = b & (width - 1)
    half = max(1, width // 2)
    half_mask = (1 << half) - 1

    if op is AluOp.ADD or op is AluOp.LOAD:
        return (a + b) & mask
    if op is AluOp.SUB:
        return (a - b) & mask
    if op is AluOp.MULT:
        return ((a & half_mask) * (b & half_mask)) & mask
    if op is AluOp.OR:
        return a | b
    if op is AluOp.AND:
        return a & b
    if op is AluOp.XOR:
        return a ^ b
    if op is AluOp.NOR:
        return (~(a | b)) & mask
    if op is AluOp.LSR:
        return a >> shamt
    if op is AluOp.ASR:
        sign = a >> (width - 1)
        shifted = a >> shamt
        if sign and shamt:
            shifted |= (mask << (width - shamt)) & mask
        return shifted
    if op is AluOp.ROR:
        if shamt == 0:
            return a
        return ((a >> shamt) | (a << (width - shamt))) & mask
    if op is AluOp.SLL:
        return (a << shamt) & mask
    if op is AluOp.BUFFER:
        return a
    raise ValueError(f"unknown ALU op {op!r}")


@dataclass
class Alu:
    """A built ALU netlist plus the bookkeeping to drive it.

    Primary-input ordering (and therefore the row ordering of encoded
    input matrices) is: ``a[0..W-1]``, ``b[0..W-1]``, then one select bit
    per operation in :class:`AluOp` order.
    """

    netlist: Netlist
    width: int
    ops: tuple[AluOp, ...]
    a_bits: list[int]
    b_bits: list[int]
    sel_bits: dict[AluOp, int]
    output_bits: list[int] = field(default_factory=list)
    unit_output_bits: dict[AluOp, list[int]] = field(default_factory=dict)
    pad_gate_ids: list[int] = field(default_factory=list)

    @property
    def num_inputs(self) -> int:
        return len(self.netlist.input_ids)

    def encode(self, op: AluOp, a: int, b: int) -> np.ndarray:
        """Encode one (op, a, b) into a primary-input boolean vector."""
        return self.encode_batch(
            np.array([int(op)], dtype=np.int64),
            np.array([a], dtype=np.uint64),
            np.array([b], dtype=np.uint64),
        )[:, 0]

    def encode_batch(
        self, ops: np.ndarray, a_values: np.ndarray, b_values: np.ndarray
    ) -> np.ndarray:
        """Encode arrays of (op, a, b) into a (num_inputs, cycles) matrix.

        ``ops`` holds :class:`AluOp` integer values; operand arrays are
        unsigned integers (masked to the ALU width).
        """
        ops = np.asarray(ops, dtype=np.int64)
        a_values = np.asarray(a_values, dtype=np.uint64)
        b_values = np.asarray(b_values, dtype=np.uint64)
        if not (len(ops) == len(a_values) == len(b_values)):
            raise ValueError("ops/a/b arrays must have equal length")
        cycles = len(ops)
        width = self.width
        matrix = np.zeros((self.num_inputs, cycles), dtype=bool)
        for i in range(width):
            shift = np.uint64(i)
            matrix[i, :] = (a_values >> shift) & np.uint64(1)
            matrix[width + i, :] = (b_values >> shift) & np.uint64(1)
        base = 2 * width
        for op in self.ops:
            matrix[base + int(op), :] = ops == int(op)
        return matrix

    def reference(self, op: AluOp, a: int, b: int) -> int:
        return alu_reference(op, a, b, self.width)


def build_alu(
    width: int = 32,
    use_lookahead_adder: bool = False,
    branch_pads: dict[tuple[AluOp, int], int] | None = None,
    sel_pads: dict[AluOp, int] | None = None,
) -> Alu:
    """Build the ALU netlist for the given operand width.

    ``width`` must be a power of two >= 4 (the barrel shifters and the
    half-width multiplier require it).

    ``branch_pads`` maps ``(op, bit_index)`` to a count of delay buffers
    inserted in series between that unit output bit and its result-mux AND
    gate; ``sel_pads`` maps ``op`` to a pad count on the select line's
    path into the result mux.  These are the hold-fix ("buffer
    insertion") points planned by :mod:`repro.circuits.ex_stage`; the
    inserted cells are recorded in :attr:`Alu.pad_gate_ids` and are the
    candidate *choke buffers* of the paper's Chapter-4 analysis.
    """
    if width < 4 or width & (width - 1):
        raise ValueError(f"ALU width must be a power of two >= 4, got {width}")
    branch_pads = branch_pads or {}
    sel_pads = sel_pads or {}

    builder = NetlistBuilder(f"alu{width}")
    a = builder.input_word("a", width)
    b = builder.input_word("b", width)
    ops = tuple(AluOp)
    sel = {op: builder.input(f"sel_{op.name}") for op in ops}

    unit_outputs: dict[AluOp, Word] = {}

    # Shared adder/subtractor: computes a+b normally, a-b when SUB selected.
    sum_word, _carry = add_sub_unit(
        builder, a, b, sel[AluOp.SUB], use_lookahead=use_lookahead_adder
    )
    unit_outputs[AluOp.ADD] = sum_word
    unit_outputs[AluOp.SUB] = sum_word
    # LOAD = effective-address computation followed by an alignment/buffer
    # stage; reuses the adder and is therefore slightly deeper than ADD.
    unit_outputs[AluOp.LOAD] = [builder.buf(builder.buf(bit)) for bit in sum_word]

    unit_outputs[AluOp.MULT] = half_width_multiplier(builder, a, b)

    for name, word in logic_unit(builder, a, b).items():
        unit_outputs[AluOp[name]] = word

    stages = shift_amount_bits(width)
    shamt = b[:stages]
    unit_outputs[AluOp.LSR] = barrel_shift_right(builder, a, shamt, "logical")
    unit_outputs[AluOp.ASR] = barrel_shift_right(builder, a, shamt, "arith")
    unit_outputs[AluOp.ROR] = barrel_shift_right(builder, a, shamt, "rotate")
    unit_outputs[AluOp.SLL] = barrel_shift_left(builder, a, shamt)

    # BUFFER simply passes operand a through one buffer per bit: the
    # shallowest path population in the ALU.
    unit_outputs[AluOp.BUFFER] = [builder.buf(bit) for bit in a]

    # Hold-fix padding: delay buffers on the select lines and on the unit
    # branch bits feeding the result mux, as planned by the EX-stage
    # builder.  Raw (unpadded) selects keep driving the functional units
    # themselves (e.g. the SUB select into the adder).
    pad_ids: list[int] = []

    def _pad(node: int, count: int) -> int:
        for _ in range(count):
            node = builder.dbuf(node)
            pad_ids.append(node)
        return node

    padded_sel = {op: _pad(sel[op], sel_pads.get(op, 0)) for op in ops}

    # Result mux: AND-OR tree gating each unit output with its select.
    result: Word = []
    for bit_index in range(width):
        gated = []
        for op in ops:
            branch = _pad(
                unit_outputs[op][bit_index], branch_pads.get((op, bit_index), 0)
            )
            gated.append(builder.and_(padded_sel[op], branch))
        result.append(builder.or_many(gated))
    builder.output_word("result", result)

    return Alu(
        netlist=builder.build(),
        width=width,
        ops=ops,
        a_bits=a,
        b_bits=b,
        sel_bits=sel,
        output_bits=result,
        unit_output_bits={op: list(word) for op, word in unit_outputs.items()},
        pad_gate_ids=pad_ids,
    )
