"""Barrel shifters: logical/arithmetic right shift, rotate, left shift.

Each shifter is a log2(W)-stage mux barrel.  Separate barrels per shift
kind keep the structure close to what a synthesis tool emits for a
multi-function shift unit and give each shift operation its own
sensitisable path population (ASR/LSR/ROR behave differently in the
paper's CDL analysis precisely because their path sets differ).
"""

from __future__ import annotations

from repro.gates.builder import NetlistBuilder, Word


def _check_width(width: int) -> int:
    if width < 2 or width & (width - 1):
        raise ValueError(f"shifter width must be a power of two >= 2, got {width}")
    return width.bit_length() - 1


def shift_amount_bits(width: int) -> int:
    """Number of shift-amount bits a ``width``-bit barrel consumes."""
    return _check_width(width)


def barrel_shift_right(
    builder: NetlistBuilder,
    value: Word,
    amount: Word,
    mode: str,
) -> Word:
    """Right barrel shifter.

    ``mode`` selects the fill source: ``"logical"`` fills with 0,
    ``"arith"`` replicates the sign bit, ``"rotate"`` wraps the low bits
    around.  ``amount`` must provide log2(width) select bits (LSB first).
    """
    width = len(value)
    stages = _check_width(width)
    if len(amount) < stages:
        raise ValueError(
            f"need {stages} shift-amount bits for width {width}, got {len(amount)}"
        )
    if mode not in ("logical", "arith", "rotate"):
        raise ValueError(f"unknown shift mode {mode!r}")

    current = list(value)
    sign = value[width - 1]
    for k in range(stages):
        distance = 1 << k
        select = amount[k]
        shifted: Word = []
        for i in range(width):
            source_index = i + distance
            if source_index < width:
                source = current[source_index]
            elif mode == "rotate":
                source = current[source_index - width]
            elif mode == "arith":
                source = sign
            else:
                source = builder.const(0)
            shifted.append(builder.mux(select, current[i], source))
        current = shifted
        if mode == "arith":
            # The sign of the intermediate word is unchanged by an
            # arithmetic right shift, so keep replicating the original sign.
            sign = value[width - 1]
    return current


def barrel_shift_left(builder: NetlistBuilder, value: Word, amount: Word) -> Word:
    """Left barrel shifter filling with zeros."""
    width = len(value)
    stages = _check_width(width)
    if len(amount) < stages:
        raise ValueError(
            f"need {stages} shift-amount bits for width {width}, got {len(amount)}"
        )
    current = list(value)
    for k in range(stages):
        distance = 1 << k
        select = amount[k]
        shifted: Word = []
        for i in range(width):
            source_index = i - distance
            source = current[source_index] if source_index >= 0 else builder.const(0)
            shifted.append(builder.mux(select, current[i], source))
        current = shifted
    return current
