"""Bitwise logic unit of the ALU: AND / OR / XOR / NOR words."""

from __future__ import annotations

from repro.gates.builder import NetlistBuilder, Word


def logic_unit(builder: NetlistBuilder, a: Word, b: Word) -> dict[str, Word]:
    """Build the four bitwise logic results; returns them keyed by name."""
    if len(a) != len(b):
        raise ValueError(f"operand width mismatch: {len(a)} vs {len(b)}")
    return {
        "AND": builder.and_word(a, b),
        "OR": builder.or_word(a, b),
        "XOR": builder.xor_word(a, b),
        "NOR": builder.nor_word(a, b),
    }
