"""Array multiplier (sequential partial-product row accumulation).

The ALU's MULT path multiplies the low halves of the two operands and
produces a full-width product, keeping the gate count tractable for a
Python-hosted simulation while preserving what the experiments need: the
multiplier is by far the deepest, most widely sensitised unit in the ALU
(matching the paper's observation that computation-heavy operations
sensitise the most paths and are the most potent choke-path creators).
"""

from __future__ import annotations

from repro.gates.builder import NetlistBuilder, Word

from repro.circuits.adders import ripple_carry_adder


def array_multiplier(builder: NetlistBuilder, a: Word, b: Word) -> Word:
    """Unsigned array multiplier; returns a ``len(a) + len(b)``-bit product.

    Row ``i`` of partial products ``a[j] & b[i]`` is accumulated into a
    running sum with a ripple-carry adder row; the low bit of the
    accumulator is final after each row.  This is the classic synthesised
    array-multiplier structure (adder rows chained through both sum and
    carry), giving long, input-dependent sensitisable paths.
    """
    width_a = len(a)
    width_b = len(b)
    if width_a == 0 or width_b == 0:
        raise ValueError("multiplier operands must be non-empty")

    product: Word = []
    # Accumulator holds bit positions i .. i+width_a-1 before row i is added.
    acc: Word = [builder.and_(a[j], b[0]) for j in range(width_a)]
    carry_msb = builder.const(0)

    for i in range(1, width_b):
        product.append(acc[0])
        row = [builder.and_(a[j], b[i]) for j in range(width_a)]
        shifted = acc[1:] + [carry_msb]
        acc, carry_msb = ripple_carry_adder(builder, shifted, row)

    product.extend(acc)
    product.append(carry_msb)
    assert len(product) == width_a + width_b
    return product


def half_width_multiplier(builder: NetlistBuilder, a: Word, b: Word) -> Word:
    """Multiply the low halves of ``a`` and ``b``; full-width product.

    For W-bit operands this is a (W/2)x(W/2) array whose product is exactly
    W bits, so no truncation of the result is needed.
    """
    if len(a) != len(b):
        raise ValueError(f"operand width mismatch: {len(a)} vs {len(b)}")
    half = max(1, len(a) // 2)
    product = array_multiplier(builder, a[:half], b[:half])
    width = len(a)
    if len(product) < width:
        product = product + [builder.const(0)] * (width - len(product))
    return product[:width]
