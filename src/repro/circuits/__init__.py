"""Structural circuits: the execute-stage ALU the paper times.

The paper synthesises a 64-bit ALU / EX pipestage with Synopsys DC on the
NanGate 15 nm library.  This package builds the equivalent gate-level
netlists structurally:

* :mod:`repro.circuits.adders` -- ripple-carry and carry-lookahead adders,
  shared adder/subtractor,
* :mod:`repro.circuits.multiplier` -- array multiplier (carry-save rows),
* :mod:`repro.circuits.shifter` -- barrel shifters (SLL/SRL/SRA/ROR),
* :mod:`repro.circuits.logic_unit` -- bitwise AND/OR/XOR/NOR,
* :mod:`repro.circuits.alu` -- the full ALU with one-hot op selects and a
  gated result mux, plus the pure-Python reference semantics,
* :mod:`repro.circuits.ex_stage` -- the EX pipestage wrapper with optional
  hold-buffer insertion on short paths (the buffers that can become the
  paper's "choke buffers").
"""

from repro.circuits.alu import Alu, AluOp, build_alu, alu_reference
from repro.circuits.ex_stage import ExStage, build_ex_stage

__all__ = [
    "Alu",
    "AluOp",
    "ExStage",
    "alu_reference",
    "build_alu",
    "build_ex_stage",
]
