"""Structural adders and the shared adder/subtractor.

Two adder topologies are provided:

* a ripple-carry adder (deep, linear carry chain -- the default in the
  ALU because its long sensitisable carry paths are exactly where the
  paper's choke points bite), and
* a group carry-lookahead adder (shallower; used by tests and available
  as a design alternative for ablation studies).
"""

from __future__ import annotations

from repro.gates.builder import NetlistBuilder, Word


def full_adder(builder: NetlistBuilder, a: int, b: int, cin: int) -> tuple[int, int]:
    """One full-adder cell; returns ``(sum, carry_out)``."""
    axb = builder.xor_(a, b)
    total = builder.xor_(axb, cin)
    carry = builder.or_(builder.and_(a, b), builder.and_(axb, cin))
    return total, carry


def half_adder(builder: NetlistBuilder, a: int, b: int) -> tuple[int, int]:
    """One half-adder cell; returns ``(sum, carry_out)``."""
    return builder.xor_(a, b), builder.and_(a, b)


def ripple_carry_adder(
    builder: NetlistBuilder, a: Word, b: Word, cin: int | None = None
) -> tuple[Word, int]:
    """Ripple-carry adder; returns ``(sum_word, carry_out)``."""
    if len(a) != len(b):
        raise ValueError(f"operand width mismatch: {len(a)} vs {len(b)}")
    carry = cin if cin is not None else builder.const(0)
    sums: Word = []
    for bit_a, bit_b in zip(a, b):
        total, carry = full_adder(builder, bit_a, bit_b, carry)
        sums.append(total)
    return sums, carry


def carry_lookahead_adder(
    builder: NetlistBuilder,
    a: Word,
    b: Word,
    cin: int | None = None,
    group_size: int = 4,
) -> tuple[Word, int]:
    """Group carry-lookahead adder; returns ``(sum_word, carry_out)``.

    Carries are computed per ``group_size``-bit group with explicit
    generate/propagate logic; groups are chained (block-ripple between
    groups), which is the classic synthesised CLA structure.
    """
    if len(a) != len(b):
        raise ValueError(f"operand width mismatch: {len(a)} vs {len(b)}")
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    carry = cin if cin is not None else builder.const(0)
    width = len(a)
    sums: Word = [0] * width

    for group_start in range(0, width, group_size):
        group_end = min(group_start + group_size, width)
        generates = []
        propagates = []
        for i in range(group_start, group_end):
            generates.append(builder.and_(a[i], b[i]))
            propagates.append(builder.xor_(a[i], b[i]))
        # Carry into each bit of the group, flattened lookahead:
        # c[k+1] = g[k] | p[k]&g[k-1] | ... | p[k..0]&c_in
        carries = [carry]
        for k in range(group_end - group_start):
            terms = [generates[k]]
            prefix = propagates[k]
            for j in range(k - 1, -1, -1):
                terms.append(builder.and_(prefix, generates[j]))
                prefix = builder.and_(prefix, propagates[j])
            terms.append(builder.and_(prefix, carry))
            carries.append(builder.or_many(terms))
        for offset, i in enumerate(range(group_start, group_end)):
            sums[i] = builder.xor_(propagates[offset], carries[offset])
        carry = carries[-1]

    return sums, carry


def add_sub_unit(
    builder: NetlistBuilder,
    a: Word,
    b: Word,
    subtract: int,
    use_lookahead: bool = False,
) -> tuple[Word, int]:
    """Shared adder/subtractor: computes ``a - b`` when ``subtract`` is 1.

    Subtraction is two's-complement: each ``b`` bit is XORed with the
    ``subtract`` select, which also feeds the carry-in.
    """
    b_eff = [builder.xor_(bit, subtract) for bit in b]
    if use_lookahead:
        return carry_lookahead_adder(builder, a, b_eff, cin=subtract)
    return ripple_carry_adder(builder, a, b_eff, cin=subtract)
