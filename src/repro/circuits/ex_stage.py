"""The EX pipestage: timed ALU cloud, clocking, and hold-buffer insertion.

This module plays the role of the paper's synthesised, placed EX stage:

* it derives the clock period from the PV-free critical path plus a small
  margin (timing-speculative NTC operation -- choke paths are expected to
  overshoot it on bad chips),
* it derives the minimum-path (hold) constraint as a fraction of the
  clock period, the way Razor-style double-sampling schemes require, and
* in the ``buffered`` variant it plans and inserts hold-fix delay buffers
  on the short branches into the result mux ("buffer insertion", Razor's
  standard defence against minimum timing violations) -- the very buffers
  that Chapter 4 shows can become *choke buffers* at NTC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gates.celllib import CELL_LIBRARY, GateKind
from repro.gates.netlist import Netlist
from repro.pv.chip import ChipSample, fabricate_chip
from repro.pv.delaymodel import Corner, NTC, nominal_delay_factor, nominal_gate_delays
from repro.pv.varius import DEFAULT_PARAMS, VariusParams
from repro.timing.dta import BatchCycleTimings, CycleTimings, batch_cycle_timings, cycle_timings
from repro.timing.levelize import LevelizedCircuit, levelize
from repro.timing.sta import arrival_times

from repro.circuits.alu import Alu, AluOp, build_alu


@dataclass
class ExStage:
    """A fully-planned EX pipestage at one operating corner."""

    alu: Alu
    corner: Corner
    clock_period: float  # ps
    hold_constraint: float  # ps
    buffered: bool
    nominal_delays: np.ndarray
    nominal_critical_delay: float
    nominal_min_delay: float
    circuit: LevelizedCircuit

    @property
    def netlist(self) -> Netlist:
        return self.alu.netlist

    @property
    def width(self) -> int:
        return self.alu.width

    @property
    def num_pad_cells(self) -> int:
        """Hold-fix delay buffers inserted by the buffered variant."""
        return len(self.alu.pad_gate_ids)

    def encode_batch(
        self, ops: np.ndarray, a_values: np.ndarray, b_values: np.ndarray
    ) -> np.ndarray:
        return self.alu.encode_batch(ops, a_values, b_values)

    def fabricate(
        self,
        seed: int,
        params: VariusParams = DEFAULT_PARAMS,
        affected_fraction: float = 0.02,
        **kwargs,
    ) -> ChipSample:
        """Fabricate one chip instance of this stage's netlist."""
        return fabricate_chip(
            self.netlist,
            self.corner,
            seed,
            params=params,
            affected_fraction=affected_fraction,
            **kwargs,
        )

    def timings(
        self, chip: ChipSample, inputs: np.ndarray, chunk: int = 2048
    ) -> CycleTimings:
        """Per-cycle dynamic timing of an input-vector stream on ``chip``."""
        return cycle_timings(self.circuit, inputs, chip.delays, chunk=chunk)

    def batch_timings(
        self, delay_matrix: np.ndarray, inputs: np.ndarray, chunk: int = 2048
    ) -> BatchCycleTimings:
        """Population-level timing: one kernel call for all chips.

        ``delay_matrix`` is ``(num_chips, num_nodes)`` -- a
        :class:`~repro.pv.montecarlo.ChipPopulation`'s ``delays`` or
        :func:`repro.pv.chip.delay_matrix` over a chip list.
        """
        return batch_cycle_timings(self.circuit, inputs, delay_matrix, chunk=chunk)


def _leaf_depths(num_leaves: int) -> np.ndarray:
    """OR-level count each leaf of the pairwise reduction tree passes."""
    depths = np.zeros(num_leaves, dtype=np.int64)
    groups: list[list[int]] = [[i] for i in range(num_leaves)]
    while len(groups) > 1:
        nxt: list[list[int]] = []
        for i in range(0, len(groups) - 1, 2):
            merged = groups[i] + groups[i + 1]
            for leaf in merged:
                depths[leaf] += 1
            nxt.append(merged)
        if len(groups) % 2:
            nxt.append(groups[-1])
        groups = nxt
    return depths


def build_ex_stage(
    width: int = 32,
    corner: Corner = NTC,
    buffered: bool = True,
    clock_margin: float = 0.18,
    hold_fraction: float = 0.12,
    hold_margin: float = 1.4,
    max_headroom: float = 0.97,
    use_lookahead_adder: bool = False,
) -> ExStage:
    """Plan and build an EX pipestage.

    * ``clock_margin``: guardband over the PV-free critical path.
    * ``hold_fraction``: hold constraint as a fraction of the clock period
      (the double-sampling speculation window).
    * ``hold_margin``: hold-fix padding overshoot (pads target
      ``hold_margin x`` the constraint, as real hold fixing does).
    * ``max_headroom``: padded branches may not push any max path beyond
      this fraction of the clock period.
    """
    if not 0 < hold_fraction < 1:
        raise ValueError("hold_fraction must be in (0, 1)")
    if hold_margin < 1.0:
        raise ValueError("hold_margin must be >= 1.0")

    probe = build_alu(width, use_lookahead_adder=use_lookahead_adder)
    probe_delays = nominal_gate_delays(probe.netlist, corner)
    arr_max = arrival_times(probe.netlist, probe_delays, "max")
    arr_min = arrival_times(probe.netlist, probe_delays, "min")
    critical = max(float(arr_max[bit]) for bit in probe.output_bits)

    clock_period = critical * (1.0 + clock_margin)
    hold_constraint = hold_fraction * clock_period

    branch_pads: dict[tuple[AluOp, int], int] = {}
    sel_pads: dict[AluOp, int] = {}
    if buffered:
        factor = nominal_delay_factor(corner)
        and_delay = CELL_LIBRARY[GateKind.AND2].delay_coeff * factor
        or_delay = CELL_LIBRARY[GateKind.OR2].delay_coeff * factor
        dbuf_delay = CELL_LIBRARY[GateKind.DBUF].delay_coeff * factor
        min_tree_delay = int(_leaf_depths(len(probe.ops)).min()) * or_delay
        mux_overhead = and_delay + min_tree_delay
        branch_target = hold_constraint * hold_margin - mux_overhead
        max_branch_arrival = max_headroom * clock_period - mux_overhead

        for op in probe.ops:
            need = branch_target  # select lines arrive at t = 0
            if need > 0:
                sel_pads[op] = math.ceil(need / dbuf_delay)
            for bit_index, unit_bit in enumerate(probe.unit_output_bits[op]):
                early = float(arr_min[unit_bit])
                late = float(arr_max[unit_bit])
                need = branch_target - early
                if need <= 0:
                    continue
                wanted = math.ceil(need / dbuf_delay)
                allowed = math.floor((max_branch_arrival - late) / dbuf_delay)
                pads = min(wanted, max(allowed, 0))
                if pads > 0:
                    branch_pads[(op, bit_index)] = pads

    alu = build_alu(
        width,
        use_lookahead_adder=use_lookahead_adder,
        branch_pads=branch_pads,
        sel_pads=sel_pads,
    )
    nominal = nominal_gate_delays(alu.netlist, corner)
    arr_max2 = arrival_times(alu.netlist, nominal, "max")
    arr_min2 = arrival_times(alu.netlist, nominal, "min")
    critical2 = max(float(arr_max2[bit]) for bit in alu.output_bits)
    min_delay = min(float(arr_min2[bit]) for bit in alu.output_bits)

    if buffered and min_delay < hold_constraint:
        # A branch could not be padded fully within the clock headroom
        # (typically a short path sharing its mux branch with the critical
        # path).  A real speculative design shrinks its detection window
        # to the achievable short-path constraint; do the same.
        hold_constraint = min_delay / hold_margin

    return ExStage(
        alu=alu,
        corner=corner,
        clock_period=clock_period,
        hold_constraint=hold_constraint,
        buffered=buffered,
        nominal_delays=nominal,
        nominal_critical_delay=critical2,
        nominal_min_delay=min_delay,
        circuit=levelize(alu.netlist),
    )
