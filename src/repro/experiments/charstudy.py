"""Shared machinery for the per-operation choke characterisation studies
(Figs. 3.2, 3.3 and 4.2): operand generation and choke-event extraction.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.arch.isa import INSTRUCTIONS, Instr
from repro.circuits.alu import Alu, AluOp
from repro.pv.chip import ChipSample
from repro.timing.choke import ChokeEvent, analyze_choke_event
from repro.timing.dta import cycle_timings
from repro.timing.levelize import LevelizedCircuit

_COMMON = np.array([0, 1, 2, 3, 4, 8, 16, 0xFF, 0xFFFF], dtype=np.uint64)


def stable_seed(*parts) -> int:
    """Deterministic RNG seed from a mixed key.

    Builtin ``hash()`` is salted per interpreter process for strings
    (PYTHONHASHSEED), so seeding from it makes a "seeded" study produce
    different operand streams on every invocation.  CRC32 over the key's
    repr is stable across processes and platforms.
    """
    return zlib.crc32(repr(parts).encode("utf-8")) & 0x7FFFFFFF


def characterization_operands(
    rng: np.random.Generator, count: int, width: int, owm: str = "mixed"
) -> np.ndarray:
    """Operand values covering a typical application range.

    ``owm`` constrains the significant width: ``"high"`` forces the
    leftmost set bit into the upper half-word, ``"low"`` keeps it in the
    lower half, ``"mixed"`` draws both plus common constants.
    """
    half = width // 2
    if owm == "high":
        return rng.integers(1 << half, 1 << width, size=count, dtype=np.uint64)
    if owm == "low":
        return rng.integers(0, 1 << half, size=count, dtype=np.uint64)
    if owm != "mixed":
        raise ValueError(f"unknown owm constraint {owm!r}")
    values = np.where(
        rng.random(count) < 0.5,
        rng.integers(0, 1 << half, size=count, dtype=np.uint64),
        rng.integers(1 << half, 1 << width, size=count, dtype=np.uint64),
    )
    constant_mask = rng.random(count) < 0.15
    constants = _COMMON[rng.integers(0, len(_COMMON), size=count)]
    mask = np.uint64((1 << width) - 1)
    return np.where(constant_mask, constants & mask, values)


def op_vector_stream(
    alu: Alu,
    op: AluOp,
    count: int,
    rng: np.random.Generator,
    owm: str = "mixed",
) -> np.ndarray:
    """Encoded input matrix: ``count`` consecutive vectors of one ALU op."""
    ops = np.full(count, int(op), dtype=np.int64)
    a = characterization_operands(rng, count, alu.width, owm)
    b = characterization_operands(rng, count, alu.width, owm)
    return alu.encode_batch(ops, a, b)


def instr_vector_stream(
    alu: Alu,
    instr: Instr,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Encoded input matrix for one ISA instruction's typical operands."""
    spec = INSTRUCTIONS[instr]
    width = alu.width
    ops = np.full(count, int(spec.alu_op), dtype=np.int64)
    a = characterization_operands(rng, count, width)
    if instr is Instr.LUI:
        a = rng.integers(0, 1 << (width // 2), size=count, dtype=np.uint64)
        b = np.full(count, width // 2, dtype=np.uint64)
    elif spec.shift:
        b = rng.integers(0, width, size=count, dtype=np.uint64)
    elif spec.immediate:
        b = rng.integers(0, 1 << (width // 2), size=count, dtype=np.uint64)
    else:
        b = characterization_operands(rng, count, width)
    return alu.encode_batch(ops, a, b)


def collect_choke_events(
    circuit: LevelizedCircuit,
    chip: ChipSample,
    inputs: np.ndarray,
    nominal_critical: float,
    max_tracebacks: int = 40,
    ratio_threshold: float = 2.0,
) -> list[ChokeEvent]:
    """Find and analyse choke events in a vector stream on one chip.

    Runs batch DTA, selects the cycles whose sensitised delay exceeds the
    PV-free critical path, and traces up to ``max_tracebacks`` of them
    (spread across the CDL range so every category gets candidates).
    """
    timings = cycle_timings(circuit, inputs, chip.delays)
    over = np.flatnonzero(timings.t_late > nominal_critical)
    if len(over) == 0:
        return []
    # Spread the traceback budget across the observed CDL range.
    order = np.argsort(timings.t_late[over])
    if len(over) > max_tracebacks:
        picks = np.linspace(0, len(over) - 1, max_tracebacks).astype(int)
        order = order[picks]
    events: list[ChokeEvent] = []
    for index in over[order]:
        event = analyze_choke_event(
            circuit,
            chip,
            inputs[:, index],
            inputs[:, index + 1],
            nominal_critical,
            ratio_threshold=ratio_threshold,
        )
        if event is not None:
            events.append(event)
    return events
