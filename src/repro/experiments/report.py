"""Plain-text reporting: the rows/series each paper figure plots."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """A monospace table (one figure's series)."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *values) -> None:
        row = list(values)
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def column(self, name: str) -> list:
        """All values of one column (for tests/benchmark assertions)."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        def fmt(value) -> str:
            if isinstance(value, bool):
                text = str(value)
            elif isinstance(value, float):
                text = f"{value:.3f}"
            else:
                text = str(value)
            # Keep one cell = one visual cell: escape the column
            # separator and embedded newlines so a hostile benchmark
            # name (or a ledger run id) cannot shear the table.
            return text.replace("|", "\\|").replace("\n", "\\n").replace("\r", "\\r")

        def numeric(index: int) -> bool:
            """A column is numeric iff every cell is an int/float (not bool)."""
            return bool(self.rows) and all(
                isinstance(row[index], (int, float)) and not isinstance(row[index], bool)
                for row in self.rows
            )

        cells = [[fmt(v) for v in row] for row in self.rows]
        headers = [fmt(h) for h in self.headers]
        widths = [
            max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
            for i, header in enumerate(headers)
        ]
        aligns = [
            (str.rjust if numeric(i) else str.ljust) for i in range(len(headers))
        ]
        lines = [self.title]
        lines.append(
            "  ".join(align(header, width)
                      for align, header, width in zip(aligns, headers, widths))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in cells:
            lines.append(
                "  ".join(align(cell, width)
                          for align, cell, width in zip(aligns, row, widths))
            )
        return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Everything one experiment produces."""

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def table(self, title: str) -> Table:
        for table in self.tables:
            if table.title == title:
                return table
        raise KeyError(f"no table titled {title!r} in {self.experiment_id}")

    def to_text(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for table in self.tables:
            parts.append(table.render())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-serialisable representation (for downstream tooling)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "tables": [
                {
                    "title": table.title,
                    "headers": list(table.headers),
                    "rows": [list(row) for row in table.rows],
                }
                for table in self.tables
            ],
            "notes": list(self.notes),
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)

    def to_csv(self) -> str:
        """All tables concatenated as CSV sections."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        for table in self.tables:
            writer.writerow([f"# {self.experiment_id}: {table.title}"])
            writer.writerow(table.headers)
            writer.writerows(table.rows)
            writer.writerow([])
        return buffer.getvalue()


def percent(numerator: float, denominator: float) -> float:
    """A guarded percentage."""
    return 100.0 * numerator / denominator if denominator else 0.0


def share_table(title: str, key_header: str, shares: dict[str, Sequence[float]],
                value_headers: Sequence[str]) -> Table:
    """Build a table of percentage shares keyed by ``key_header``."""
    table = Table(title, [key_header, *value_headers])
    for key, values in shares.items():
        table.add_row(key, *values)
    return table
