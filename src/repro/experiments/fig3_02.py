"""Fig. 3.2 -- Choke Gate Level vs Choke Delay Level per ALU operation.

For each of the 11 characterised ALU operations, at STC and NTC, random
operand vector pairs are timed on a population of fabricated chips; every
sensitised path that exceeds the PV-free critical path is traced and its
CDL category and CGL recorded.  The figure's series is the *minimum* CGL
observed per (operation, CDL category): how few PV-affected gates suffice
to create a choke path of that severity.

Expected shape: NTC populates the high-CDL categories at distinctly
smaller CGL than STC (which barely exceeds CDL ~12 %), and the
computation-heavy operations (ADD, MULT, LOAD) choke at lower CGL than
the pass-through BUFFER.

Baseline substitution (documented in EXPERIMENTS.md): CDL is measured
against each *operation's own* PV-free sensitised critical delay.  In a
unified ALU netlist the global critical path is multiplier-dominated and
topologically unreachable from the shallow operations' paths, whereas
the paper's 64-bit synthesis evidently let every operation's paths
approach the chip-level critical path; the per-operation baseline
preserves exactly what the figure studies -- how few PV-hit gates turn
one of the operation's short paths into its new critical path, and by
how much.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.alu import CH3_OPS
from repro.experiments.charstudy import (
    collect_choke_events,
    op_vector_stream,
    stable_seed,
)
from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext
from repro.pv.delaymodel import nominal_gate_delays
from repro.timing.choke import CDL_CATEGORIES
from repro.timing.dta import cycle_timings

TITLE = "CGL vs CDL category per ALU operation (STC and NTC)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    config = ctx.config
    result = ExperimentResult("fig3_2", TITLE)
    alu, circuit = ctx.bare_alu()

    for corner in ("STC", "NTC"):
        nominal = nominal_gate_delays(alu.netlist, ctx.corner(corner))

        best: dict[tuple, float] = {}
        counts: dict[tuple, int] = {}
        op_baseline: dict[int, float] = {}
        op_inputs: dict[tuple, np.ndarray] = {}
        for op in CH3_OPS:
            for chip_index in range(config.characterization_chips):
                rng = np.random.default_rng(
                    stable_seed(corner, int(op), chip_index)
                )
                op_inputs[(int(op), chip_index)] = op_vector_stream(
                    alu, op, config.characterization_vectors, rng
                )
            # the operation's own PV-free sensitised critical delay, over
            # the same vector population the chips will see
            worst = 0.0
            for chip_index in range(config.characterization_chips):
                timings = cycle_timings(
                    circuit, op_inputs[(int(op), chip_index)], nominal
                )
                worst = max(worst, float(timings.t_late.max()))
            op_baseline[int(op)] = worst

        for chip_index in range(config.characterization_chips):
            chip = ctx.alu_chip(seed=1000 + chip_index, corner=corner)
            for op in CH3_OPS:
                inputs = op_inputs[(int(op), chip_index)]
                events = collect_choke_events(
                    circuit, chip, inputs, op_baseline[int(op)]
                )
                for event in events:
                    key = (op.name, event.category)
                    counts[key] = counts.get(key, 0) + 1
                    if key not in best or event.cgl_percent < best[key]:
                        best[key] = event.cgl_percent

        table = Table(
            f"{corner}: min CGL%% per CDL category",
            ["op", *CDL_CATEGORIES, "events"],
        )
        for op in CH3_OPS:
            row = [op.name]
            total = 0
            for category in CDL_CATEGORIES:
                key = (op.name, category)
                row.append(round(best[key], 4) if key in best else "-")
                total += counts.get(key, 0)
            row.append(total)
            table.add_row(*row)
        result.tables.append(table)

    result.notes.append(
        "series = minimum CGL (% of total gates) creating a choke path in "
        "each CDL category; '-' means no choke event of that severity was "
        "observed for the operation at that corner."
    )
    return result
