"""Experiment configuration.

The reference-chip seeds were selected by a calibration scan (documented
in EXPERIMENTS.md): the paper implicitly evaluates one fabricated chip
instance whose choke signature produces the reported error behaviour, so
we likewise pin one representative chip per chapter:

* the Chapter-3 chip exhibits maximum-timing choke errors only (its
  hold-fix buffers happened to fabricate clean), with the paper's
  benchmark ordering of unique error instances (mcf smallest, vortex
  largest);
* the Chapter-4 chip contains both slow choke gates and fast choke
  buffers, producing the SE(Min)/SE(Max)/CE mix Trident targets.

``cycles`` defaults to 20 000 -- a 50x scale-down of the paper's 1 M
cycle FabScalar runs, enough for every table/error population to
stabilise (noted per-experiment in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.trace import BENCHMARK_ORDER


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    width: int = 32
    cycles: int = 20_000
    ch3_chip_seed: int = 41
    ch4_chip_seed: int = 67
    benchmarks: tuple[str, ...] = BENCHMARK_ORDER
    #: chips sampled for the per-operation choke studies (Figs. 3.2/3.3/4.2)
    characterization_chips: int = 12
    #: random operand vector pairs per (op, chip) in those studies
    characterization_vectors: int = 160
    chunk: int = 2048

    def __post_init__(self) -> None:
        if self.width < 4 or self.width & (self.width - 1):
            raise ValueError(f"width must be a power of two >= 4, got {self.width}")
        if self.cycles < 100:
            raise ValueError("cycles must be at least 100")
        if not self.benchmarks:
            raise ValueError("benchmarks must be non-empty")


#: Full-scale configuration used to generate EXPERIMENTS.md.
DEFAULT_CONFIG = ExperimentConfig()

#: Scaled-down configuration for the pytest-benchmark harness.  The
#: 16-bit ALU is a different netlist, so it has its own reference chips
#: (selected by the same calibration procedure).
FAST_CONFIG = ExperimentConfig(
    width=16,
    cycles=2_000,
    ch3_chip_seed=8,
    ch4_chip_seed=10,
    characterization_chips=4,
    characterization_vectors=60,
)
