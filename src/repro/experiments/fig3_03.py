"""Fig. 3.3 -- CDL vs Operand Width Marker per operation at NTC.

For each ALU operation, operand streams are generated with the OWM
constraint set (at least one operand of high significant width) and
reset (both operands low), and the maximum CDL each achieves across the
chip population is recorded.

Expected shape: for every operation the OWM-set series reaches a higher
maximum CDL than the OWM-reset series (wide operands sensitise more
paths, so more PV-affected gates can participate).
"""

from __future__ import annotations

import numpy as np

from repro.circuits.alu import CH3_OPS
from repro.experiments.charstudy import op_vector_stream, stable_seed
from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext
from repro.pv.delaymodel import nominal_gate_delays
from repro.timing.dta import cycle_timings

TITLE = "max CDL with OWM set vs reset, per operation (NTC)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    config = ctx.config
    result = ExperimentResult("fig3_3", TITLE)
    alu, circuit = ctx.bare_alu()
    nominal = nominal_gate_delays(alu.netlist, ctx.corner("NTC"))

    # Pre-generate the vector streams and each operation's PV-free
    # sensitised critical delay over both OWM populations (the common
    # per-operation CDL baseline; see fig3_02 for the rationale).
    streams: dict[tuple, np.ndarray] = {}
    baseline: dict[int, float] = {}
    for op in CH3_OPS:
        worst = 0.0
        for chip_index in range(config.characterization_chips):
            for owm, label in (("high", "set"), ("low", "reset")):
                rng = np.random.default_rng(
                    stable_seed("fig3_3", int(op), chip_index, owm)
                )
                inputs = op_vector_stream(
                    alu, op, config.characterization_vectors, rng, owm=owm
                )
                streams[(int(op), chip_index, label)] = inputs
                timings = cycle_timings(circuit, inputs, nominal)
                worst = max(worst, float(timings.t_late.max()))
        baseline[int(op)] = worst

    best: dict[tuple, float] = {}
    for chip_index in range(config.characterization_chips):
        chip = ctx.alu_chip(seed=1000 + chip_index, corner="NTC")
        for op in CH3_OPS:
            for label in ("set", "reset"):
                inputs = streams[(int(op), chip_index, label)]
                timings = cycle_timings(circuit, inputs, chip.delays)
                worst = float(timings.t_late.max())
                cdl = (worst - baseline[int(op)]) / baseline[int(op)] * 100.0
                key = (op.name, label)
                if key not in best or cdl > best[key]:
                    best[key] = cdl

    table = Table(
        "max CDL% per operation and OWM state",
        ["op", "OWM_reset", "OWM_set"],
    )
    for op in CH3_OPS:
        table.add_row(
            op.name,
            round(max(best.get((op.name, "reset"), 0.0), 0.0), 2),
            round(max(best.get((op.name, "set"), 0.0), 0.0), 2),
        )
    result.tables.append(table)
    result.notes.append(
        "CDL floored at 0 (a negative value means the operation never "
        "exceeded the nominal critical path under that OWM constraint)."
    )
    return result
