"""Shared experiment context: builds and caches the expensive artefacts.

Figures within a chapter share the same stage / chip / benchmark timing
runs; the context memoises them so regenerating all seventeen
experiments costs one dynamic-timing pass per (chip, benchmark) rather
than seventeen.

With an optional :class:`~repro.runtime.checkpoint.CheckpointStore`,
the two expensive artefact classes — fabricated chips and error traces
— additionally persist to disk, keyed by a fingerprint of the full
configuration plus (seed, corner, benchmark, ...), so an interrupted
``all`` run resumes in seconds instead of recomputing from scratch.
The memo dicts stay as the first-level cache; the store is consulted
only on a memo miss, and corrupt entries silently fall back to
recomputation (see the checkpoint module's failure philosophy).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.arch.trace import BENCHMARKS, InstructionTrace, generate_trace
from repro.circuits.alu import Alu, build_alu
from repro.circuits.ex_stage import ExStage, build_ex_stage
from repro.core.scheme_sim import ErrorTrace, build_error_trace, build_error_traces_batch
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.gates.netlist import Netlist
from repro.pv.chip import ChipSample, fabricate_chip
from repro.pv.delaymodel import NTC, STC, Corner
from repro.pv.montecarlo import fabricate_population
from repro.runtime.checkpoint import CheckpointStore, artefact_key
from repro.runtime.shm import ShmCatalog, ShmPublisher, ShmReader
from repro.timing.levelize import LevelizedCircuit, levelize

_CORNERS = {"STC": STC, "NTC": NTC}


def _population_key(kind: str, corner: str, buffered: bool) -> str:
    return f"pop/{kind}/{corner}/{int(buffered)}"


def _inputs_key(benchmark: str, cycles: int, width: int) -> str:
    return f"inputs/{benchmark}/{cycles}/{width}"


class ExperimentContext:
    """Memoised factory for stages, chips, traces, and error traces."""

    def __init__(
        self,
        config: ExperimentConfig = DEFAULT_CONFIG,
        store: CheckpointStore | None = None,
        shared: ShmReader | None = None,
    ) -> None:
        self.config = config
        self.store = store
        self.shared = shared
        self._stages: dict[tuple, ExStage] = {}
        self._alus: dict[tuple, tuple[Alu, LevelizedCircuit]] = {}
        self._chips: dict[tuple, ChipSample] = {}
        self._traces: dict[tuple, InstructionTrace] = {}
        self._error_traces: dict[tuple, ErrorTrace] = {}
        #: scratch memo for experiment modules sharing derived results
        self.memo: dict = {}

    # ------------------------------------------------------------------
    def _checkpointed(self, kind: str, parts: tuple, compute):
        """Compute via the store when one is attached, else directly."""
        if self.store is None:
            return compute()
        return self.store.fetch(
            artefact_key(kind, self.config, *parts), compute
        )

    def corner(self, name: str) -> Corner:
        return _CORNERS[name]

    # ----------------------------------------------------------------
    # shared-memory consumption (strictly an accelerator: any miss or
    # shape mismatch falls back to local computation)
    # ----------------------------------------------------------------
    def _shared_chip(
        self, kind: str, seed: int, corner: str, buffered: bool, netlist: Netlist
    ) -> ChipSample | None:
        """Rebuild one chip from the parent-published population, if present."""
        if self.shared is None:
            return None
        group = _population_key(kind, corner, buffered)
        seeds = self.shared.meta.get(group)
        if not seeds or seed not in seeds:
            return None
        delays = self.shared.get(f"{group}/delays")
        delta_vth = self.shared.get(f"{group}/delta_vth")
        nominal = self.shared.get(f"{group}/nominal")
        affected = self.shared.get(f"{group}/affected")
        offsets = self.shared.get(f"{group}/aff_offsets")
        if any(a is None for a in (delays, delta_vth, nominal, affected, offsets)):
            return None
        if delays.shape != (len(seeds), netlist.num_nodes):
            return None  # published under a different configuration
        index = seeds.index(seed)
        obs.inc("runner.chips_shared")
        return ChipSample(
            netlist=netlist,
            corner=self.corner(corner),
            seed=seed,
            delta_vth=delta_vth[index],
            delays=delays[index],
            nominal_delays=nominal,
            affected_ids=affected[int(offsets[index]) : int(offsets[index + 1])],
        )

    def _shared_inputs(self, benchmark: str, stage: ExStage) -> np.ndarray | None:
        """The parent-published encoded input stream for ``benchmark``."""
        if self.shared is None:
            return None
        inputs = self.shared.get(
            _inputs_key(benchmark, self.config.cycles, self.config.width)
        )
        if inputs is None or inputs.shape[0] != stage.alu.num_inputs:
            return None
        obs.inc("runner.inputs_shared")
        return inputs

    def stage(self, corner: str = "NTC", buffered: bool = True) -> ExStage:
        key = (corner, buffered, self.config.width)
        if key not in self._stages:
            self._stages[key] = build_ex_stage(
                self.config.width, self.corner(corner), buffered=buffered
            )
        return self._stages[key]

    def bare_alu(self, corner: str = "NTC") -> tuple[Alu, LevelizedCircuit]:
        """The raw (bufferless, clockless) ALU used by the per-op studies."""
        key = ("alu", self.config.width)
        if key not in self._alus:
            alu = build_alu(self.config.width)
            self._alus[key] = (alu, levelize(alu.netlist))
        return self._alus[key]

    def chip(
        self, seed: int, corner: str = "NTC", buffered: bool = True
    ) -> ChipSample:
        key = ("stage", seed, corner, buffered, self.config.width)
        if key not in self._chips:
            stage = self.stage(corner, buffered)

            def compute() -> ChipSample:
                shared = self._shared_chip("stage", seed, corner, buffered, stage.netlist)
                if shared is not None:
                    return shared
                with obs.span("runner.chip", seed=seed, corner=corner):
                    obs.inc("runner.chips_computed")
                    return stage.fabricate(seed=seed)

            self._chips[key] = self._checkpointed("chip", key, compute)
        return self._chips[key]

    def alu_chip(self, seed: int, corner: str) -> ChipSample:
        """A fabricated instance of the bare ALU at ``corner``."""
        key = ("alu", seed, corner, self.config.width)
        if key not in self._chips:
            alu, _ = self.bare_alu(corner)

            def compute() -> ChipSample:
                shared = self._shared_chip("alu", seed, corner, True, alu.netlist)
                if shared is not None:
                    return shared
                with obs.span("runner.alu_chip", seed=seed, corner=corner):
                    obs.inc("runner.chips_computed")
                    return fabricate_chip(alu.netlist, self.corner(corner), seed)

            self._chips[key] = self._checkpointed("chip", key, compute)
        return self._chips[key]

    def trace(self, benchmark: str) -> InstructionTrace:
        key = (benchmark, self.config.cycles, self.config.width)
        if key not in self._traces:
            with obs.span("runner.trace", benchmark=benchmark):
                obs.inc("runner.trace_generated")
                self._traces[key] = generate_trace(
                    BENCHMARKS[benchmark], self.config.cycles,
                    width=self.config.width,
                )
        return self._traces[key]

    def error_trace(
        self,
        benchmark: str,
        chip_seed: int,
        corner: str = "NTC",
        buffered: bool = True,
    ) -> ErrorTrace:
        key = (benchmark, chip_seed, corner, buffered, self.config.cycles, self.config.width)
        if key not in self._error_traces:
            def compute() -> ErrorTrace:
                with obs.span(
                    "runner.error_trace", benchmark=benchmark,
                    chip_seed=chip_seed, corner=corner,
                ):
                    obs.inc("runner.error_traces_computed")
                    stage = self.stage(corner, buffered)
                    chip = self.chip(chip_seed, corner, buffered)
                    return build_error_trace(
                        stage, chip, self.trace(benchmark), chunk=self.config.chunk,
                        inputs=self._shared_inputs(benchmark, stage),
                    )

            self._error_traces[key] = self._checkpointed("etrace", key, compute)
        return self._error_traces[key]

    def error_traces_batch(
        self,
        benchmark: str,
        chip_seeds,
        corner: str = "NTC",
        buffered: bool = True,
    ) -> list[ErrorTrace]:
        """Error traces of ``benchmark`` on several chips, one kernel call.

        Seeds whose trace is already memoised or checkpointed are served
        from there; the rest share a single
        :func:`~repro.core.scheme_sim.build_error_traces_batch` pass
        (bit-identical per chip to :meth:`error_trace`) and are published
        to the store under their usual per-trace keys.
        """
        chip_seeds = [int(seed) for seed in chip_seeds]
        keys = {
            seed: (benchmark, seed, corner, buffered, self.config.cycles, self.config.width)
            for seed in chip_seeds
        }

        def cached(seed: int) -> bool:
            if keys[seed] in self._error_traces:
                return True
            return (
                self.store is not None
                and artefact_key("etrace", self.config, *keys[seed]) in self.store
            )

        missing = [seed for seed in chip_seeds if not cached(seed)]
        if missing:
            stage = self.stage(corner, buffered)
            chips = [self.chip(seed, corner, buffered) for seed in missing]
            with obs.span(
                "runner.error_traces_batch", benchmark=benchmark,
                chips=len(missing), corner=corner,
            ):
                obs.inc("runner.error_traces_computed", len(missing))
                traces = build_error_traces_batch(
                    stage, chips, self.trace(benchmark), chunk=self.config.chunk,
                    inputs=self._shared_inputs(benchmark, stage),
                )
            for seed, trace in zip(missing, traces):
                self._error_traces[keys[seed]] = self._checkpointed(
                    "etrace", keys[seed], lambda value=trace: value
                )
        return [
            self.error_trace(benchmark, seed, corner, buffered)
            for seed in chip_seeds
        ]

    # convenience accessors for the two reference chips ------------------
    def ch3_error_trace(self, benchmark: str) -> ErrorTrace:
        return self.error_trace(benchmark, self.config.ch3_chip_seed)

    def ch4_error_trace(self, benchmark: str) -> ErrorTrace:
        return self.error_trace(benchmark, self.config.ch4_chip_seed)


# ----------------------------------------------------------------------
# parallel pre-warming: which artefacts will a set of experiments need?
# ----------------------------------------------------------------------

#: experiments that walk the Chapter-3 reference chip over every benchmark
_CH3_SWEEP = frozenset(
    {"fig3_8", "fig3_9", "fig3_10", "fig3_11", "fig3_12", "abl_tags"}
)
#: experiments that walk the Chapter-4 reference chip over every benchmark
_CH4_SWEEP = frozenset(
    {"fig4_3", "fig4_4", "fig4_8", "fig4_9", "fig4_10", "fig4_11", "fig4_12"}
)
#: the four (corner, buffered) EX-stage configurations of fig4_2
_FIG4_2_CONFIGS = (("NTC", False), ("NTC", True), ("STC", False), ("STC", True))


def prefetch_plan(
    config: ExperimentConfig, experiment_ids
) -> tuple[tuple[tuple, ...], tuple[tuple, ...]]:
    """The (chip specs, error-trace specs) the given experiments will need.

    Chip specs are ``(kind, seed, corner, buffered)`` with kind
    ``"stage"`` (:meth:`ExperimentContext.chip`) or ``"alu"``
    (:meth:`ExperimentContext.alu_chip`, ``buffered`` ignored); trace
    specs are ``(benchmark, chip_seed, corner, buffered)``
    (:meth:`ExperimentContext.error_trace`).  The plan is intentionally
    a *hint*: an under-estimate just means a worker computes the
    artefact itself through the claimed store, an over-estimate wastes
    one pool slot.  Every error trace's chip is included, so the chip
    phase fully feeds the trace phase.
    """
    ids = set(experiment_ids)
    chips: dict[tuple, None] = {}  # insertion-ordered de-dup
    traces: dict[tuple, None] = {}

    ch3_benchmarks: list[str] = []
    if "fig3_4" in ids:
        ch3_benchmarks.append("vortex")
    if ids & _CH3_SWEEP:
        ch3_benchmarks = [b for b in config.benchmarks]
    for benchmark in ch3_benchmarks:
        chips[("stage", config.ch3_chip_seed, "NTC", True)] = None
        traces[(benchmark, config.ch3_chip_seed, "NTC", True)] = None

    if ids & _CH4_SWEEP:
        chips[("stage", config.ch4_chip_seed, "NTC", True)] = None
        for benchmark in config.benchmarks:
            traces[(benchmark, config.ch4_chip_seed, "NTC", True)] = None

    if "fig3_2" in ids or "fig3_3" in ids:
        corners = ("STC", "NTC") if "fig3_2" in ids else ("NTC",)
        for corner in corners:
            for chip_index in range(config.characterization_chips):
                chips[("alu", 1000 + chip_index, corner, True)] = None

    if "fig4_2" in ids:
        chips_per_config = max(2, config.characterization_chips // 3)
        for corner, buffered in _FIG4_2_CONFIGS:
            for chip_index in range(chips_per_config):
                seed = config.ch4_chip_seed + chip_index * 37
                chips[("stage", seed, corner, buffered)] = None

    return tuple(chips), tuple(traces)


def group_trace_specs(
    traces: tuple[tuple, ...]
) -> tuple[tuple[str, tuple[int, ...], str, bool], ...]:
    """Group per-trace prefetch specs into batch-kernel work units.

    ``(benchmark, chip_seed, corner, buffered)`` specs sharing everything
    but the seed collapse into one ``(benchmark, seeds, corner,
    buffered)`` unit — one :meth:`ExperimentContext.error_traces_batch`
    call per unit times all its chips in a single kernel pass.
    """
    groups: dict[tuple[str, str, bool], list[int]] = {}
    for benchmark, chip_seed, corner, buffered in traces:
        groups.setdefault((benchmark, corner, bool(buffered)), []).append(int(chip_seed))
    return tuple(
        (benchmark, tuple(seeds), corner, buffered)
        for (benchmark, corner, buffered), seeds in groups.items()
    )


def build_shared_artefacts(
    config: ExperimentConfig, experiment_ids
) -> tuple[ShmCatalog | None, ShmPublisher | None]:
    """Publish population artefacts to shared memory for a fleet run.

    Fabricates every chip the :func:`prefetch_plan` names as one
    population per (kind, corner, buffered) group — bit-identical per
    seed to on-demand fabrication — plus the encoded input-vector stream
    of every benchmark the plan's error traces need, and copies them
    into :mod:`multiprocessing.shared_memory` segments.  Returns the
    picklable catalog (to ship inside the ``WorkerSpec``) and the
    publisher that owns the segments; the caller must ``unlink()`` it
    when the run finishes.  Returns ``(None, None)`` when the plan needs
    nothing.
    """
    chips, traces = prefetch_plan(config, experiment_ids)
    if not chips and not traces:
        return None, None
    ctx = ExperimentContext(config)
    publisher = ShmPublisher()
    try:
        with obs.span("runner.build_shared", chips=len(chips), traces=len(traces)):
            groups: dict[tuple[str, str, bool], list[int]] = {}
            for kind, seed, corner, buffered in chips:
                # alu_chip ignores ``buffered``; normalise its group key.
                key = (kind, corner, bool(buffered) if kind == "stage" else True)
                if int(seed) not in groups.setdefault(key, []):
                    groups[key].append(int(seed))
            for (kind, corner, buffered), seeds in groups.items():
                if kind == "stage":
                    netlist = ctx.stage(corner, buffered).netlist
                else:
                    netlist = ctx.bare_alu(corner)[0].netlist
                population = fabricate_population(
                    netlist, ctx.corner(corner), seeds
                )
                group = _population_key(kind, corner, buffered)
                publisher.put(f"{group}/delays", population.delays)
                publisher.put(f"{group}/delta_vth", population.delta_vth)
                publisher.put(f"{group}/nominal", population.nominal_delays)
                counts = [len(ids) for ids in population.affected_ids]
                offsets = np.zeros(len(counts) + 1, dtype=np.int64)
                np.cumsum(counts, out=offsets[1:])
                packed = (
                    np.concatenate(population.affected_ids)
                    if offsets[-1]
                    else np.array([], dtype=np.int64)
                )
                publisher.put(f"{group}/affected", packed.astype(np.int64))
                publisher.put(f"{group}/aff_offsets", offsets)
                publisher.put_meta(group, tuple(seeds))

            alu, _ = ctx.bare_alu("NTC")
            for benchmark in sorted({spec[0] for spec in traces}):
                inputs = ctx.trace(benchmark).encode_inputs(alu)
                publisher.put(
                    _inputs_key(benchmark, config.cycles, config.width), inputs
                )
    except Exception:
        publisher.unlink()
        raise
    return publisher.catalog(), publisher
