"""Shared experiment context: builds and caches the expensive artefacts.

Figures within a chapter share the same stage / chip / benchmark timing
runs; the context memoises them so regenerating all seventeen
experiments costs one dynamic-timing pass per (chip, benchmark) rather
than seventeen.

With an optional :class:`~repro.runtime.checkpoint.CheckpointStore`,
the two expensive artefact classes — fabricated chips and error traces
— additionally persist to disk, keyed by a fingerprint of the full
configuration plus (seed, corner, benchmark, ...), so an interrupted
``all`` run resumes in seconds instead of recomputing from scratch.
The memo dicts stay as the first-level cache; the store is consulted
only on a memo miss, and corrupt entries silently fall back to
recomputation (see the checkpoint module's failure philosophy).
"""

from __future__ import annotations

from repro.arch.trace import BENCHMARKS, InstructionTrace, generate_trace
from repro.circuits.alu import Alu, build_alu
from repro.circuits.ex_stage import ExStage, build_ex_stage
from repro.core.scheme_sim import ErrorTrace, build_error_trace
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.pv.chip import ChipSample, fabricate_chip
from repro.pv.delaymodel import NTC, STC, Corner
from repro.runtime.checkpoint import CheckpointStore, artefact_key
from repro.timing.levelize import LevelizedCircuit, levelize

_CORNERS = {"STC": STC, "NTC": NTC}


class ExperimentContext:
    """Memoised factory for stages, chips, traces, and error traces."""

    def __init__(
        self,
        config: ExperimentConfig = DEFAULT_CONFIG,
        store: CheckpointStore | None = None,
    ) -> None:
        self.config = config
        self.store = store
        self._stages: dict[tuple, ExStage] = {}
        self._alus: dict[tuple, tuple[Alu, LevelizedCircuit]] = {}
        self._chips: dict[tuple, ChipSample] = {}
        self._traces: dict[tuple, InstructionTrace] = {}
        self._error_traces: dict[tuple, ErrorTrace] = {}
        #: scratch memo for experiment modules sharing derived results
        self.memo: dict = {}

    # ------------------------------------------------------------------
    def _checkpointed(self, kind: str, parts: tuple, compute):
        """Compute via the store when one is attached, else directly."""
        if self.store is None:
            return compute()
        return self.store.fetch(
            artefact_key(kind, self.config, *parts), compute
        )

    def corner(self, name: str) -> Corner:
        return _CORNERS[name]

    def stage(self, corner: str = "NTC", buffered: bool = True) -> ExStage:
        key = (corner, buffered, self.config.width)
        if key not in self._stages:
            self._stages[key] = build_ex_stage(
                self.config.width, self.corner(corner), buffered=buffered
            )
        return self._stages[key]

    def bare_alu(self, corner: str = "NTC") -> tuple[Alu, LevelizedCircuit]:
        """The raw (bufferless, clockless) ALU used by the per-op studies."""
        key = ("alu", self.config.width)
        if key not in self._alus:
            alu = build_alu(self.config.width)
            self._alus[key] = (alu, levelize(alu.netlist))
        return self._alus[key]

    def chip(
        self, seed: int, corner: str = "NTC", buffered: bool = True
    ) -> ChipSample:
        key = ("stage", seed, corner, buffered, self.config.width)
        if key not in self._chips:
            stage = self.stage(corner, buffered)
            self._chips[key] = self._checkpointed(
                "chip", key, lambda: stage.fabricate(seed=seed)
            )
        return self._chips[key]

    def alu_chip(self, seed: int, corner: str) -> ChipSample:
        """A fabricated instance of the bare ALU at ``corner``."""
        key = ("alu", seed, corner, self.config.width)
        if key not in self._chips:
            alu, _ = self.bare_alu(corner)
            self._chips[key] = self._checkpointed(
                "chip", key,
                lambda: fabricate_chip(alu.netlist, self.corner(corner), seed),
            )
        return self._chips[key]

    def trace(self, benchmark: str) -> InstructionTrace:
        key = (benchmark, self.config.cycles, self.config.width)
        if key not in self._traces:
            self._traces[key] = generate_trace(
                BENCHMARKS[benchmark], self.config.cycles, width=self.config.width
            )
        return self._traces[key]

    def error_trace(
        self,
        benchmark: str,
        chip_seed: int,
        corner: str = "NTC",
        buffered: bool = True,
    ) -> ErrorTrace:
        key = (benchmark, chip_seed, corner, buffered, self.config.cycles, self.config.width)
        if key not in self._error_traces:
            def compute() -> ErrorTrace:
                stage = self.stage(corner, buffered)
                chip = self.chip(chip_seed, corner, buffered)
                return build_error_trace(
                    stage, chip, self.trace(benchmark), chunk=self.config.chunk
                )

            self._error_traces[key] = self._checkpointed("etrace", key, compute)
        return self._error_traces[key]

    # convenience accessors for the two reference chips ------------------
    def ch3_error_trace(self, benchmark: str) -> ErrorTrace:
        return self.error_trace(benchmark, self.config.ch3_chip_seed)

    def ch4_error_trace(self, benchmark: str) -> ErrorTrace:
        return self.error_trace(benchmark, self.config.ch4_chip_seed)
