"""Shared experiment context: builds and caches the expensive artefacts.

Figures within a chapter share the same stage / chip / benchmark timing
runs; the context memoises them so regenerating all seventeen
experiments costs one dynamic-timing pass per (chip, benchmark) rather
than seventeen.
"""

from __future__ import annotations

from repro.arch.trace import BENCHMARKS, InstructionTrace, generate_trace
from repro.circuits.alu import Alu, build_alu
from repro.circuits.ex_stage import ExStage, build_ex_stage
from repro.core.scheme_sim import ErrorTrace, build_error_trace
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.pv.chip import ChipSample, fabricate_chip
from repro.pv.delaymodel import NTC, STC, Corner
from repro.timing.levelize import LevelizedCircuit, levelize

_CORNERS = {"STC": STC, "NTC": NTC}


class ExperimentContext:
    """Memoised factory for stages, chips, traces, and error traces."""

    def __init__(self, config: ExperimentConfig = DEFAULT_CONFIG) -> None:
        self.config = config
        self._stages: dict[tuple, ExStage] = {}
        self._alus: dict[tuple, tuple[Alu, LevelizedCircuit]] = {}
        self._chips: dict[tuple, ChipSample] = {}
        self._traces: dict[tuple, InstructionTrace] = {}
        self._error_traces: dict[tuple, ErrorTrace] = {}
        #: scratch memo for experiment modules sharing derived results
        self.memo: dict = {}

    # ------------------------------------------------------------------
    def corner(self, name: str) -> Corner:
        return _CORNERS[name]

    def stage(self, corner: str = "NTC", buffered: bool = True) -> ExStage:
        key = (corner, buffered, self.config.width)
        if key not in self._stages:
            self._stages[key] = build_ex_stage(
                self.config.width, self.corner(corner), buffered=buffered
            )
        return self._stages[key]

    def bare_alu(self, corner: str = "NTC") -> tuple[Alu, LevelizedCircuit]:
        """The raw (bufferless, clockless) ALU used by the per-op studies."""
        key = ("alu", self.config.width)
        if key not in self._alus:
            alu = build_alu(self.config.width)
            self._alus[key] = (alu, levelize(alu.netlist))
        return self._alus[key]

    def chip(
        self, seed: int, corner: str = "NTC", buffered: bool = True
    ) -> ChipSample:
        key = ("stage", seed, corner, buffered, self.config.width)
        if key not in self._chips:
            stage = self.stage(corner, buffered)
            self._chips[key] = stage.fabricate(seed=seed)
        return self._chips[key]

    def alu_chip(self, seed: int, corner: str) -> ChipSample:
        """A fabricated instance of the bare ALU at ``corner``."""
        key = ("alu", seed, corner, self.config.width)
        if key not in self._chips:
            alu, _ = self.bare_alu(corner)
            self._chips[key] = fabricate_chip(alu.netlist, self.corner(corner), seed)
        return self._chips[key]

    def trace(self, benchmark: str) -> InstructionTrace:
        key = (benchmark, self.config.cycles, self.config.width)
        if key not in self._traces:
            self._traces[key] = generate_trace(
                BENCHMARKS[benchmark], self.config.cycles, width=self.config.width
            )
        return self._traces[key]

    def error_trace(
        self,
        benchmark: str,
        chip_seed: int,
        corner: str = "NTC",
        buffered: bool = True,
    ) -> ErrorTrace:
        key = (benchmark, chip_seed, corner, buffered, self.config.cycles, self.config.width)
        if key not in self._error_traces:
            stage = self.stage(corner, buffered)
            chip = self.chip(chip_seed, corner, buffered)
            self._error_traces[key] = build_error_trace(
                stage, chip, self.trace(benchmark), chunk=self.config.chunk
            )
        return self._error_traces[key]

    # convenience accessors for the two reference chips ------------------
    def ch3_error_trace(self, benchmark: str) -> ErrorTrace:
        return self.error_trace(benchmark, self.config.ch3_chip_seed)

    def ch4_error_trace(self, benchmark: str) -> ErrorTrace:
        return self.error_trace(benchmark, self.config.ch4_chip_seed)
