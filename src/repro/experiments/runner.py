"""Shared experiment context: builds and caches the expensive artefacts.

Figures within a chapter share the same stage / chip / benchmark timing
runs; the context memoises them so regenerating all seventeen
experiments costs one dynamic-timing pass per (chip, benchmark) rather
than seventeen.

With an optional :class:`~repro.runtime.checkpoint.CheckpointStore`,
the two expensive artefact classes — fabricated chips and error traces
— additionally persist to disk, keyed by a fingerprint of the full
configuration plus (seed, corner, benchmark, ...), so an interrupted
``all`` run resumes in seconds instead of recomputing from scratch.
The memo dicts stay as the first-level cache; the store is consulted
only on a memo miss, and corrupt entries silently fall back to
recomputation (see the checkpoint module's failure philosophy).
"""

from __future__ import annotations

from repro import obs
from repro.arch.trace import BENCHMARKS, InstructionTrace, generate_trace
from repro.circuits.alu import Alu, build_alu
from repro.circuits.ex_stage import ExStage, build_ex_stage
from repro.core.scheme_sim import ErrorTrace, build_error_trace
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.pv.chip import ChipSample, fabricate_chip
from repro.pv.delaymodel import NTC, STC, Corner
from repro.runtime.checkpoint import CheckpointStore, artefact_key
from repro.timing.levelize import LevelizedCircuit, levelize

_CORNERS = {"STC": STC, "NTC": NTC}


class ExperimentContext:
    """Memoised factory for stages, chips, traces, and error traces."""

    def __init__(
        self,
        config: ExperimentConfig = DEFAULT_CONFIG,
        store: CheckpointStore | None = None,
    ) -> None:
        self.config = config
        self.store = store
        self._stages: dict[tuple, ExStage] = {}
        self._alus: dict[tuple, tuple[Alu, LevelizedCircuit]] = {}
        self._chips: dict[tuple, ChipSample] = {}
        self._traces: dict[tuple, InstructionTrace] = {}
        self._error_traces: dict[tuple, ErrorTrace] = {}
        #: scratch memo for experiment modules sharing derived results
        self.memo: dict = {}

    # ------------------------------------------------------------------
    def _checkpointed(self, kind: str, parts: tuple, compute):
        """Compute via the store when one is attached, else directly."""
        if self.store is None:
            return compute()
        return self.store.fetch(
            artefact_key(kind, self.config, *parts), compute
        )

    def corner(self, name: str) -> Corner:
        return _CORNERS[name]

    def stage(self, corner: str = "NTC", buffered: bool = True) -> ExStage:
        key = (corner, buffered, self.config.width)
        if key not in self._stages:
            self._stages[key] = build_ex_stage(
                self.config.width, self.corner(corner), buffered=buffered
            )
        return self._stages[key]

    def bare_alu(self, corner: str = "NTC") -> tuple[Alu, LevelizedCircuit]:
        """The raw (bufferless, clockless) ALU used by the per-op studies."""
        key = ("alu", self.config.width)
        if key not in self._alus:
            alu = build_alu(self.config.width)
            self._alus[key] = (alu, levelize(alu.netlist))
        return self._alus[key]

    def chip(
        self, seed: int, corner: str = "NTC", buffered: bool = True
    ) -> ChipSample:
        key = ("stage", seed, corner, buffered, self.config.width)
        if key not in self._chips:
            stage = self.stage(corner, buffered)

            def compute() -> ChipSample:
                with obs.span("runner.chip", seed=seed, corner=corner):
                    obs.inc("runner.chips_computed")
                    return stage.fabricate(seed=seed)

            self._chips[key] = self._checkpointed("chip", key, compute)
        return self._chips[key]

    def alu_chip(self, seed: int, corner: str) -> ChipSample:
        """A fabricated instance of the bare ALU at ``corner``."""
        key = ("alu", seed, corner, self.config.width)
        if key not in self._chips:
            alu, _ = self.bare_alu(corner)

            def compute() -> ChipSample:
                with obs.span("runner.alu_chip", seed=seed, corner=corner):
                    obs.inc("runner.chips_computed")
                    return fabricate_chip(alu.netlist, self.corner(corner), seed)

            self._chips[key] = self._checkpointed("chip", key, compute)
        return self._chips[key]

    def trace(self, benchmark: str) -> InstructionTrace:
        key = (benchmark, self.config.cycles, self.config.width)
        if key not in self._traces:
            with obs.span("runner.trace", benchmark=benchmark):
                obs.inc("runner.trace_generated")
                self._traces[key] = generate_trace(
                    BENCHMARKS[benchmark], self.config.cycles,
                    width=self.config.width,
                )
        return self._traces[key]

    def error_trace(
        self,
        benchmark: str,
        chip_seed: int,
        corner: str = "NTC",
        buffered: bool = True,
    ) -> ErrorTrace:
        key = (benchmark, chip_seed, corner, buffered, self.config.cycles, self.config.width)
        if key not in self._error_traces:
            def compute() -> ErrorTrace:
                with obs.span(
                    "runner.error_trace", benchmark=benchmark,
                    chip_seed=chip_seed, corner=corner,
                ):
                    obs.inc("runner.error_traces_computed")
                    stage = self.stage(corner, buffered)
                    chip = self.chip(chip_seed, corner, buffered)
                    return build_error_trace(
                        stage, chip, self.trace(benchmark), chunk=self.config.chunk
                    )

            self._error_traces[key] = self._checkpointed("etrace", key, compute)
        return self._error_traces[key]

    # convenience accessors for the two reference chips ------------------
    def ch3_error_trace(self, benchmark: str) -> ErrorTrace:
        return self.error_trace(benchmark, self.config.ch3_chip_seed)

    def ch4_error_trace(self, benchmark: str) -> ErrorTrace:
        return self.error_trace(benchmark, self.config.ch4_chip_seed)


# ----------------------------------------------------------------------
# parallel pre-warming: which artefacts will a set of experiments need?
# ----------------------------------------------------------------------

#: experiments that walk the Chapter-3 reference chip over every benchmark
_CH3_SWEEP = frozenset(
    {"fig3_8", "fig3_9", "fig3_10", "fig3_11", "fig3_12", "abl_tags"}
)
#: experiments that walk the Chapter-4 reference chip over every benchmark
_CH4_SWEEP = frozenset(
    {"fig4_3", "fig4_4", "fig4_8", "fig4_9", "fig4_10", "fig4_11", "fig4_12"}
)
#: the four (corner, buffered) EX-stage configurations of fig4_2
_FIG4_2_CONFIGS = (("NTC", False), ("NTC", True), ("STC", False), ("STC", True))


def prefetch_plan(
    config: ExperimentConfig, experiment_ids
) -> tuple[tuple[tuple, ...], tuple[tuple, ...]]:
    """The (chip specs, error-trace specs) the given experiments will need.

    Chip specs are ``(kind, seed, corner, buffered)`` with kind
    ``"stage"`` (:meth:`ExperimentContext.chip`) or ``"alu"``
    (:meth:`ExperimentContext.alu_chip`, ``buffered`` ignored); trace
    specs are ``(benchmark, chip_seed, corner, buffered)``
    (:meth:`ExperimentContext.error_trace`).  The plan is intentionally
    a *hint*: an under-estimate just means a worker computes the
    artefact itself through the claimed store, an over-estimate wastes
    one pool slot.  Every error trace's chip is included, so the chip
    phase fully feeds the trace phase.
    """
    ids = set(experiment_ids)
    chips: dict[tuple, None] = {}  # insertion-ordered de-dup
    traces: dict[tuple, None] = {}

    ch3_benchmarks: list[str] = []
    if "fig3_4" in ids:
        ch3_benchmarks.append("vortex")
    if ids & _CH3_SWEEP:
        ch3_benchmarks = [b for b in config.benchmarks]
    for benchmark in ch3_benchmarks:
        chips[("stage", config.ch3_chip_seed, "NTC", True)] = None
        traces[(benchmark, config.ch3_chip_seed, "NTC", True)] = None

    if ids & _CH4_SWEEP:
        chips[("stage", config.ch4_chip_seed, "NTC", True)] = None
        for benchmark in config.benchmarks:
            traces[(benchmark, config.ch4_chip_seed, "NTC", True)] = None

    if "fig3_2" in ids or "fig3_3" in ids:
        corners = ("STC", "NTC") if "fig3_2" in ids else ("NTC",)
        for corner in corners:
            for chip_index in range(config.characterization_chips):
                chips[("alu", 1000 + chip_index, corner, True)] = None

    if "fig4_2" in ids:
        chips_per_config = max(2, config.characterization_chips // 3)
        for corner, buffered in _FIG4_2_CONFIGS:
            for chip_index in range(chips_per_config):
                seed = config.ch4_chip_seed + chip_index * 37
                chips[("stage", seed, corner, buffered)] = None

    return tuple(chips), tuple(traces)
