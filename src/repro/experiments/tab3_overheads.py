"""Section 3.5.6 -- DCS hardware overheads.

Gate counts and area/wirelength/power overheads of the two DCS variants,
from the parametric estimator, side by side with the paper's reported
values.
"""

from __future__ import annotations

from repro.energy.overheads import dcs_overheads
from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext

TITLE = "DCS hardware overheads (gate count, area, wirelength, power)"

#: (total gates, CSLT gates, area %, wirelength %, power %) from §3.5.6.
PAPER_VALUES = {
    "DCS-ICSLT": (1553, 567, 0.23, 0.77, 0.85),
    "DCS-ACSLT": (3241, 2255, 0.48, 0.85, 1.20),
}


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("tab3_ovh", TITLE)
    table = Table(
        "estimated vs paper-reported overheads",
        [
            "scheme", "gates", "gates_paper", "cslt_gates", "cslt_paper",
            "area%", "area%_paper", "wire%", "wire%_paper",
            "power%", "power%_paper",
        ],
    )
    for variant, entries, assoc in (("icslt", 128, 1), ("acslt", 32, 16)):
        report = dcs_overheads(variant, entries, assoc)
        paper = PAPER_VALUES[report.scheme]
        table.add_row(
            report.scheme,
            report.total_gates, paper[0],
            report.storage_gates, paper[1],
            round(report.area_percent, 3), paper[2],
            round(report.wirelength_percent, 3), paper[3],
            round(report.power_percent, 3), paper[4],
        )
    result.tables.append(table)
    return result
