"""Fig. 3.10 -- recovery penalty of Razor vs the DCS variants.

Penalty cycles per benchmark, normalised to Razor (lower is better).
HFG is excluded, as in the paper: its guardband prevents errors, so it
incurs no recovery penalty (it pays in clock period instead).

Expected shape: both DCS variants well below 1.0 everywhere; benchmarks
with few unique error instances (mcf) reduce the most, benchmarks with
many (vortex) the least.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheme_runs import ch3_runs

TITLE = "normalized recovery penalty (Razor baseline)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("fig3_10", TITLE)
    table = Table(
        "penalty cycles normalised to Razor",
        ["benchmark", "Razor", "DCS-ICSLT", "DCS-ACSLT"],
    )
    for benchmark in ctx.config.benchmarks:
        _results, reports = ch3_runs(ctx, benchmark)
        table.add_row(
            benchmark,
            1.0,
            round(reports["DCS-ICSLT"].normalized_penalty, 3),
            round(reports["DCS-ACSLT"].normalized_penalty, 3),
        )
    result.tables.append(table)
    return result
