"""Fig. 4.2 -- path-delay variation at STC/NTC, buffered/bufferless.

For each of the paper's 15 instructions, instruction-specific vector
streams are timed on fabricated chips of four EX-stage configurations
({STC, NTC} x {buffered, bufferless}).  Each cycle's sensitised maximum
and minimum path delays are normalised by the same cycle's *PV-free*
delays; the table reports the mean normalised delay plus the extremes
(the figure's error bars).

Expected shape: NTC variations far exceed STC; the buffered NTC stage
shows the deepest *minimum*-path droop (choke buffers shortening padded
paths), while at STC buffered and bufferless barely differ.
"""

from __future__ import annotations

import numpy as np

from repro.arch.isa import FIG4_2_INSTRS
from repro.experiments.charstudy import instr_vector_stream, stable_seed
from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext
from repro.timing.dta import cycle_timings

TITLE = "normalized path-delay variation per instruction, 4 configurations"

CONFIGS = (
    ("NTC", False, "NTC-Bufferless"),
    ("NTC", True, "NTC-Buffered"),
    ("STC", False, "STC-Bufferless"),
    ("STC", True, "STC-Buffered"),
)


def _ratios(pv, nominal):
    """Per-cycle PV/PV-free ratios over cycles where both are finite."""
    mask = np.isfinite(pv) & np.isfinite(nominal) & (nominal > 0)
    return pv[mask] / nominal[mask] if mask.any() else np.array([1.0])


def run(ctx: ExperimentContext) -> ExperimentResult:
    config = ctx.config
    result = ExperimentResult("fig4_2", TITLE)
    chips_per_config = max(2, config.characterization_chips // 3)

    for corner, buffered, label in CONFIGS:
        stage = ctx.stage(corner, buffered)
        table = Table(
            f"{label}: normalized path delay (mean / min / max)",
            ["instr", "mean", "min", "max"],
        )
        for instr in FIG4_2_INSTRS:
            rng = np.random.default_rng(
                stable_seed("fig4_2", int(instr), corner, buffered)
            )
            inputs = instr_vector_stream(
                stage.alu, instr, config.characterization_vectors, rng
            )
            nominal = cycle_timings(stage.circuit, inputs, stage.nominal_delays)
            means, lows, highs = [], [], []
            for chip_index in range(chips_per_config):
                chip = ctx.chip(
                    seed=config.ch4_chip_seed + chip_index * 37,
                    corner=corner,
                    buffered=buffered,
                )
                timings = cycle_timings(stage.circuit, inputs, chip.delays)
                late_ratio = _ratios(timings.t_late, nominal.t_late)
                early_ratio = _ratios(timings.t_early, nominal.t_early)
                means.append(float(late_ratio.mean()))
                lows.append(float(early_ratio.min()))
                highs.append(float(late_ratio.max()))
            table.add_row(
                instr.name,
                round(float(np.mean(means)), 3),
                round(float(np.min(lows)), 3),
                round(float(np.max(highs)), 3),
            )
        result.tables.append(table)

    result.notes.append(
        "min = deepest normalized minimum-path delay (early arrival), "
        "max = highest normalized maximum-path delay, over "
        f"{chips_per_config} chips per configuration."
    )
    return result
