"""The ``python -m repro.experiments ledger {record,list,diff,html}`` family.

Thin argparse front-end over :mod:`repro.obs.ledger` /
:mod:`repro.obs.trends` / :mod:`repro.obs.dashboard`:

* ``record`` — append one record built from a ``metrics.json`` (and
  optionally a ``--format json`` report) to a ledger, for runs driven
  outside the main CLI (benchmarks, CI steps).
* ``list`` — the run history as a table, newest last, with drift flags.
* ``diff A B`` — structural comparison of two runs (run-id, run-id
  prefix, or index; ``-1`` = newest).  ``--strict`` exits non-zero when
  determinism-view counters differ.
* ``html`` — render the self-contained dashboard file.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.obs import dashboard, trends
from repro.obs.ledger import RunLedger, build_record, headline_metrics_from_dicts


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments ledger",
        description="Inspect and extend the append-only run ledger.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser("record", help="append a record from telemetry files")
    record.add_argument("--ledger-dir", required=True)
    record.add_argument("--metrics", help="metrics.json from an instrumented run")
    record.add_argument("--report", help="--format json report (for science metrics)")
    record.add_argument("--rev", help="override the recorded git revision")
    record.add_argument("--notes", default="", help="free-form annotation")
    record.add_argument(
        "--keep", type=int, metavar="N",
        help="retention: atomically prune the ledger to the newest N records",
    )

    lister = sub.add_parser("list", help="show the run history")
    lister.add_argument("--ledger-dir", required=True)
    lister.add_argument("--limit", type=int, default=20, metavar="N",
                        help="show only the newest N runs (default: 20)")

    diff = sub.add_parser("diff", help="compare two runs")
    diff.add_argument("--ledger-dir", required=True)
    diff.add_argument("run_a", help="run id, unique prefix, or index (-1 = newest)")
    diff.add_argument("run_b", help="run id, unique prefix, or index")
    diff.add_argument(
        "--strict", action="store_true",
        help="exit non-zero if any determinism-view counter differs",
    )

    html = sub.add_parser("html", help="render the self-contained dashboard")
    html.add_argument("--ledger-dir", required=True)
    html.add_argument("--out", default="dashboard.html")
    html.add_argument("--trace", help="trace.json path to reference for drill-down")
    html.add_argument(
        "--events",
        help="events.jsonl from a fleet run; renders the fleet-lane timeline",
    )
    return parser


def _cmd_record(args: argparse.Namespace) -> int:
    metrics_doc = None
    if args.metrics:
        with open(args.metrics) as handle:
            metrics_doc = json.load(handle)
    record = build_record(metrics_doc=metrics_doc, rev=args.rev, notes=args.notes)
    if args.report:
        with open(args.report) as handle:
            record["science"] = headline_metrics_from_dicts(json.load(handle))
    ledger = RunLedger(args.ledger_dir)
    path = ledger.append(record)
    pruned = ledger.prune(args.keep) if args.keep is not None else 0
    suffix = f" ({pruned} pruned)" if pruned else ""
    print(f"recorded {record['run_id']} -> {path}{suffix}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments.report import Table

    records = RunLedger(args.ledger_dir).records()
    if not records:
        print("ledger is empty")
        return 0
    drifted = {
        f["metric"] for f in trends.detect_drift(records) if f["drifted"]
    }
    table = Table(
        title=f"ledger: {len(records)} run(s)",
        headers=["run_id", "rev", "ok", "total", "span_s", "trace", "drift"],
    )
    for record in records[-args.limit:]:
        experiments = record.get("experiments", {})
        ok = sum(1 for e in experiments.values() if e.get("status") == "ok")
        table.add_row(
            str(record.get("run_id", "?")),
            str(record.get("git_rev", "?"))[:12],
            ok,
            len(experiments),
            float(record.get("span_total_s", 0.0)),
            str(record.get("trace_id", ""))[:12] or "-",
            "latest" if record is records[-1] and drifted else "",
        )
    print(table.render())
    if drifted:
        print(f"{len(drifted)} metric(s) drifting in the newest run "
              f"(MAD z-score gate):")
        for name in sorted(drifted):
            print(f"  {name}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.ledger_dir)
    try:
        record_a = ledger.resolve(args.run_a)
        record_b = ledger.resolve(args.run_b)
    except LookupError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = trends.diff_records(record_a, record_b)
    print(f"diff {result['run_a']} -> {result['run_b']}")
    print(f"  same rev: {result['same_rev']}  same config: {result['same_config']}")
    print(f"  equal metrics: {result['equal']}")
    print(f"  counter drift (determinism view): {result['counter_drift']}")
    for name, entry in result["changed"].items():
        if entry["rel"] == float("inf"):
            rel = "new"
        else:
            sign = "+" if entry["delta"] >= 0 else "-"
            rel = f"{sign}{entry['rel']:.1%}"
        print(f"  ~ {name}: {entry['a']:g} -> {entry['b']:g} ({rel})")
    for name in result["only_in_a"]:
        print(f"  - {name} (only in {result['run_a']})")
    for name in result["only_in_b"]:
        print(f"  + {name} (only in {result['run_b']})")
    if not result["changed"] and not result["only_in_a"] and not result["only_in_b"]:
        print("  no metric differences")
    if args.strict and result["counter_drift"]:
        print(f"STRICT: {result['counter_drift']} determinism-view counter(s) "
              f"drifted", file=sys.stderr)
        return 1
    return 0


def _cmd_html(args: argparse.Namespace) -> int:
    from repro.experiments.reportio import atomic_write_text

    records = RunLedger(args.ledger_dir).records()
    payload = dashboard.render_dashboard(
        records, trace_path=args.trace, events_path=args.events
    )
    atomic_write_text(args.out, payload)
    print(f"dashboard written to {args.out} "
          f"({len(records)} run(s), {len(payload)} bytes)")
    return 0


def ledger_main(argv: list[str]) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "record": _cmd_record,
        "list": _cmd_list,
        "diff": _cmd_diff,
        "html": _cmd_html,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # the consumer went away (`... | head`); behave like a well-bred
        # filter: swallow the error and keep interpreter shutdown quiet
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
