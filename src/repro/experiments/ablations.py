"""Ablation studies for the design choices DESIGN.md calls out.

These are not paper figures; they probe the knobs behind the reproduced
results:

* **tag granularity** (§3.3.2's claim): DCS' four-part tag vs dropping
  the OWM bits vs dropping the initialising instruction (an opcode-only
  tag, the granularity of earlier PC-based predictors),
* **hold-fix margin**: how the buffer-insertion overshoot trades pad
  cells against nominal hold slack,
* **delay-cell sensitivity**: how ΔVth mismatch scaling on the hold-fix
  cells (choke-buffer proneness) moves the minimum-timing error rate,
* **adder topology**: ripple-carry vs carry-lookahead depth/area.
"""

from __future__ import annotations

from repro.circuits.alu import build_alu
from repro.circuits.ex_stage import build_ex_stage
from repro.core.dcs import DcsScheme
from repro.core.scheme_sim import build_error_trace
from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext

TAG_TITLE = "ablation: DCS tag granularity (prediction accuracy / wasted stalls)"
HOLD_TITLE = "ablation: hold-fix margin vs pad cells and min-timing errors"
DBUF_TITLE = "ablation: delay-cell ΔVth scaling vs min-timing errors"
ADDER_TITLE = "ablation: adder topology (gates / depth)"


def run_tag_granularity(ctx: ExperimentContext) -> ExperimentResult:
    """Fig-3.8-style accuracy with progressively coarser tags."""
    result = ExperimentResult("abl_tags", TAG_TITLE)
    variants = (
        ("full 4-part", dict(use_owm=True, use_prev=True)),
        ("no OWM", dict(use_owm=False, use_prev=True)),
        ("opcode only", dict(use_owm=False, use_prev=False)),
    )
    table = Table(
        "accuracy % / false-positive stalls per error",
        ["benchmark", *[name for name, _ in variants]],
    )
    for benchmark in ctx.config.benchmarks:
        trace = ctx.ch3_error_trace(benchmark)
        row = [benchmark]
        baseline_penalty = None
        for _name, kwargs in variants:
            outcome = DcsScheme("icslt", 128, **kwargs).simulate(trace)
            if baseline_penalty is None:
                baseline_penalty = max(outcome.penalty_cycles, 1)
            fp_per_error = (
                outcome.false_positives / outcome.errors_total
                if outcome.errors_total
                else 0.0
            )
            row.append(
                f"{outcome.prediction_accuracy * 100:.0f}%/"
                f"{fp_per_error:.1f}/"
                f"{outcome.penalty_cycles / baseline_penalty:.2f}"
            )
        table.add_row(*row)
    result.tables.append(table)
    result.notes.append(
        "cell format: prediction accuracy % / wasted (false-positive) "
        "stalls per actual error / penalty cycles relative to the full "
        "tag.  Coarser tags alias more contexts, so their raw hit rate "
        "('accuracy') rises while wasted stalls multiply: at full scale "
        "the opcode-only tag costs ~3-8x the full tag's penalty, the "
        "paper's case for the fine-grained four-part tag.  Dropping only "
        "OWM is nearly free on long traces (error-free OWM contexts are "
        "rarer than opcode aliases) -- the OWM bit matters most early, "
        "before the table has seen both width classes."
    )
    return result


def run_hold_margin(ctx: ExperimentContext) -> ExperimentResult:
    """Sweep the hold-fix overshoot margin."""
    result = ExperimentResult("abl_hold", HOLD_TITLE)
    table = Table(
        "hold margin sweep",
        ["hold_margin", "pad_cells", "nominal_min/hold", "min_err_rate"],
    )
    width = ctx.config.width
    corner = ctx.corner("NTC")
    trace = ctx.trace("mcf")
    for margin in (1.1, 1.25, 1.4, 1.6):
        stage = build_ex_stage(width, corner, buffered=True, hold_margin=margin)
        chip = stage.fabricate(seed=ctx.config.ch4_chip_seed)
        errors = build_error_trace(stage, chip, trace, chunk=ctx.config.chunk)
        table.add_row(
            margin,
            stage.num_pad_cells,
            round(stage.nominal_min_delay / stage.hold_constraint, 3),
            round(float(errors.min_err.mean()), 4),
        )
    result.tables.append(table)
    return result


def run_dbuf_sensitivity(ctx: ExperimentContext) -> ExperimentResult:
    """Sweep the delay-cell ΔVth mismatch factor (choke-buffer proneness)."""
    result = ExperimentResult("abl_dbuf", DBUF_TITLE)
    table = Table(
        "delay-cell sensitivity sweep",
        ["dbuf_sigma_factor", "min_err_rate", "max_err_rate"],
    )
    stage = ctx.stage("NTC", buffered=True)
    trace = ctx.trace("mcf")
    for factor in (1.0, 1.25, 1.5):
        chip = stage.fabricate(
            seed=ctx.config.ch4_chip_seed, dbuf_sigma_factor=factor
        )
        errors = build_error_trace(stage, chip, trace, chunk=ctx.config.chunk)
        table.add_row(
            factor,
            round(float(errors.min_err.mean()), 4),
            round(float(errors.max_err.mean()), 4),
        )
    result.tables.append(table)
    result.notes.append(
        "higher delay-cell mismatch turns more hold pads into choke "
        "buffers (min-timing errors) and slows padded branches (max)."
    )
    return result


def run_adder_topology(ctx: ExperimentContext) -> ExperimentResult:
    """Compare the ALU built on ripple-carry vs carry-lookahead adders."""
    result = ExperimentResult("abl_adder", ADDER_TITLE)
    table = Table(
        "adder topology",
        ["topology", "gates", "logic_depth"],
    )
    for lookahead, name in ((False, "ripple-carry"), (True, "carry-lookahead")):
        alu = build_alu(ctx.config.width, use_lookahead_adder=lookahead)
        table.add_row(name, alu.netlist.num_gates, alu.netlist.logic_depth())
    result.tables.append(table)
    return result
