"""Fig. 3.12 -- energy efficiency of Razor / HFG / DCS variants.

Energy efficiency is the reciprocal of the energy-delay product,
normalised to Razor (higher is better).  DCS table power overheads
(§3.5.6) are folded into the average power.

Expected shape: DCS variants best (60-73 % over Razor in the paper);
HFG worst; the ACSLT gain over ICSLT is slimmer here than in the
performance plot because of its larger power overhead.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheme_runs import CH3_SCHEME_ORDER, ch3_runs

TITLE = "normalized energy efficiency (1/EDP), Chapter-3 schemes"


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("fig3_12", TITLE)
    table = Table(
        "energy efficiency normalised to Razor",
        ["benchmark", *CH3_SCHEME_ORDER],
    )
    for benchmark in ctx.config.benchmarks:
        _results, reports = ch3_runs(ctx, benchmark)
        table.add_row(
            benchmark,
            *[round(reports[s].normalized_efficiency, 3) for s in CH3_SCHEME_ORDER],
        )
    result.tables.append(table)
    return result
