"""Fig. 3.11 -- performance of Razor / HFG / DCS-ICSLT / DCS-ACSLT.

Execution time per benchmark converted to normalised performance
(Razor = 1.0, higher is better).

Expected shape: HFG worst (guardband stretches every cycle at NTC),
Razor in between, DCS variants best, with the largest DCS gain on mcf
(smallest unique error set).
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheme_runs import CH3_SCHEME_ORDER, ch3_runs

TITLE = "normalized performance, Chapter-3 schemes (Razor baseline)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("fig3_11", TITLE)
    table = Table(
        "performance normalised to Razor",
        ["benchmark", *CH3_SCHEME_ORDER],
    )
    for benchmark in ctx.config.benchmarks:
        _results, reports = ch3_runs(ctx, benchmark)
        table.add_row(
            benchmark,
            *[round(reports[s].normalized_performance, 3) for s in CH3_SCHEME_ORDER],
        )
    result.tables.append(table)
    averages = {
        s: sum(table.column(s)[i] for i in range(len(table.rows))) / len(table.rows)
        for s in CH3_SCHEME_ORDER
    }
    result.notes.append(
        "averages: "
        + ", ".join(f"{s}={v:.3f}" for s, v in averages.items())
    )
    return result
