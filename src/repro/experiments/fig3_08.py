"""Fig. 3.8 -- DCS-ICSLT prediction accuracy vs table size.

Replays each benchmark's error trace through DCS with 32-, 64-, 128- and
256-entry ICSLTs and reports prediction accuracy.

Expected shape: accuracy grows with table size and changes minimally
from 128 to 256 entries (the paper's rationale for choosing 128).
"""

from __future__ import annotations

from repro.core.dcs import DcsScheme
from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext

TITLE = "DCS-ICSLT prediction accuracy vs entries"

ENTRY_SIZES = (32, 64, 128, 256)


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("fig3_8", TITLE)
    table = Table(
        "prediction accuracy % (ICSLT)",
        ["benchmark", *[str(size) for size in ENTRY_SIZES]],
    )
    for benchmark in ctx.config.benchmarks:
        trace = ctx.ch3_error_trace(benchmark)
        row = [benchmark]
        for size in ENTRY_SIZES:
            outcome = DcsScheme("icslt", capacity=size).simulate(trace)
            row.append(round(outcome.prediction_accuracy * 100.0, 2))
        table.add_row(*row)
    result.tables.append(table)
    return result
