"""Registry of all reproduced experiments."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    ablations,
    fig3_02,
    fig3_03,
    fig3_04,
    fig3_08,
    fig3_09,
    fig3_10,
    fig3_11,
    fig3_12,
    fig4_02,
    fig4_03,
    fig4_04,
    fig4_08,
    fig4_09,
    fig4_10,
    fig4_11,
    fig4_12,
    tab3_overheads,
    tab4_overheads,
)
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import ExperimentContext

EXPERIMENTS: dict[str, tuple[Callable[[ExperimentContext], ExperimentResult], str]] = {
    "fig3_2": (fig3_02.run, fig3_02.TITLE),
    "fig3_3": (fig3_03.run, fig3_03.TITLE),
    "fig3_4": (fig3_04.run, fig3_04.TITLE),
    "fig3_8": (fig3_08.run, fig3_08.TITLE),
    "fig3_9": (fig3_09.run, fig3_09.TITLE),
    "fig3_10": (fig3_10.run, fig3_10.TITLE),
    "fig3_11": (fig3_11.run, fig3_11.TITLE),
    "fig3_12": (fig3_12.run, fig3_12.TITLE),
    "tab3_ovh": (tab3_overheads.run, tab3_overheads.TITLE),
    "fig4_2": (fig4_02.run, fig4_02.TITLE),
    "fig4_3": (fig4_03.run, fig4_03.TITLE),
    "fig4_4": (fig4_04.run, fig4_04.TITLE),
    "fig4_8": (fig4_08.run, fig4_08.TITLE),
    "fig4_9": (fig4_09.run, fig4_09.TITLE),
    "fig4_10": (fig4_10.run, fig4_10.TITLE),
    "fig4_11": (fig4_11.run, fig4_11.TITLE),
    "fig4_12": (fig4_12.run, fig4_12.TITLE),
    "tab4_ovh": (tab4_overheads.run, tab4_overheads.TITLE),
    "abl_tags": (ablations.run_tag_granularity, ablations.TAG_TITLE),
    "abl_hold": (ablations.run_hold_margin, ablations.HOLD_TITLE),
    "abl_dbuf": (ablations.run_dbuf_sensitivity, ablations.DBUF_TITLE),
    "abl_adder": (ablations.run_adder_topology, ablations.ADDER_TITLE),
}


def get_experiment(experiment_id: str):
    """The run callable for one experiment id."""
    if experiment_id not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return EXPERIMENTS[experiment_id][0]


def get_title(experiment_id: str) -> str:
    """The human-readable title for one experiment id."""
    if experiment_id not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}")
    return EXPERIMENTS[experiment_id][1]


def experiment_ids() -> list[str]:
    """All registered ids in registration (paper) order."""
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str, ctx: ExperimentContext | None = None
) -> ExperimentResult:
    """Run one experiment (with a fresh default context if none given)."""
    if ctx is None:
        ctx = ExperimentContext()
    return get_experiment(experiment_id)(ctx)
