"""Fig. 3.9 -- DCS-ACSLT prediction accuracy for four table geometries.

Replays each benchmark through DCS-ACSLT with the paper's four
(entries/associativity) combinations: 16/8, 16/16, 32/8, 32/16.

Expected shape: the 32-entry/16-way configuration yields the best
accuracy (it is the configuration the paper carries forward).
"""

from __future__ import annotations

from repro.core.dcs import DcsScheme
from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext

TITLE = "DCS-ACSLT prediction accuracy for entry/associativity combos"

COMBOS = ((16, 8), (16, 16), (32, 8), (32, 16))


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("fig3_9", TITLE)
    table = Table(
        "prediction accuracy % (ACSLT)",
        ["benchmark", *[f"{e}/{a}" for e, a in COMBOS]],
    )
    for benchmark in ctx.config.benchmarks:
        trace = ctx.ch3_error_trace(benchmark)
        row = [benchmark]
        for entries, assoc in COMBOS:
            outcome = DcsScheme(
                "acslt", capacity=entries, associativity=assoc
            ).simulate(trace)
            row.append(round(outcome.prediction_accuracy * 100.0, 2))
        table.add_row(*row)
    result.tables.append(table)
    return result
