"""Section 4.5.7 -- Trident hardware overheads.

Estimated area/wirelength/power overheads of the Trident components
relative to the whole pipeline, next to the paper's reported values.
"""

from __future__ import annotations

from repro.energy.overheads import trident_overheads
from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext

TITLE = "Trident hardware overheads"

#: (area %, wirelength %, power %) relative to the pipeline, from §4.5.7.
PAPER_VALUES = (0.97, 1.12, 1.58)


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("tab4_ovh", TITLE)
    report = trident_overheads(cet_entries=128)
    table = Table(
        "estimated vs paper-reported overheads (pipeline-relative)",
        ["scheme", "gates", "area%", "area%_paper", "wire%", "wire%_paper",
         "power%", "power%_paper"],
    )
    table.add_row(
        report.scheme,
        report.total_gates,
        round(report.area_percent, 3), PAPER_VALUES[0],
        round(report.wirelength_percent, 3), PAPER_VALUES[1],
        round(report.power_percent, 3), PAPER_VALUES[2],
    )
    result.tables.append(table)
    return result
