"""Command-line entry point: regenerate any (or all) paper figures.

Runs are supervised by :mod:`repro.runtime`: an exception in one
experiment is contained as a failure record while the remaining
experiments still run, a pass/fail summary prints at the end, and the
exit code is non-zero only if something failed.  With
``--checkpoint-dir`` the expensive artefacts (fabricated chips, error
traces) persist across invocations, so an interrupted ``all`` run
resumes in seconds.

With ``--jobs N`` (default: one per CPU) experiments fan out across a
process pool: shared artefacts are prefetched in parallel through the
checkpoint store, outcomes merge deterministically in submission order,
and a killed worker degrades to a single failure record.  ``--jobs 1``
forces the serial path.

``--backend`` picks *where* the batch executes: ``inproc`` (serial
reference), ``procpool`` (local process pool), or ``remote`` (socket
coordinator driving ``worker`` processes given by ``--workers``, with
heartbeats, work stealing, resubmission, and procpool fallback).  The
default ``auto`` maps ``--jobs 1`` to inproc and anything wider to
procpool.  Whatever the backend, the report is bit-identical.

Examples::

    python -m repro.experiments fig3_10
    python -m repro.experiments all --cycles 50000
    python -m repro.experiments fig4_8 fig4_9 --fast --out results.txt
    python -m repro.experiments all --fast --checkpoint-dir .ckpt --retries 1
    python -m repro.experiments all --fast --jobs 4   # parallel fan-out
    python -m repro.experiments all --fast --chaos-fail fig3_9   # self-test
    python -m repro.experiments all --fast --jobs 4 \
        --metrics-out metrics.json --trace-out trace.json  # telemetry
    python -m repro.experiments all --fast --ledger-dir .ledger  # history
    python -m repro.experiments ledger list --ledger-dir .ledger
    python -m repro.experiments ledger html --ledger-dir .ledger
    python -m repro.experiments worker --listen 127.0.0.1:7070  # fleet worker
    python -m repro.experiments all --fast --backend remote \
        --workers 127.0.0.1:7070 --workers 127.0.0.1:7071 \
        --checkpoint-dir .ckpt   # distributed fan-out
    python -m repro.experiments all --fast --backend remote \
        --workers 127.0.0.1:7070 --chaos-net partition   # fleet self-test

With ``--metrics-out`` / ``--trace-out`` / ``--profile`` the run is
instrumented end to end (see :mod:`repro.obs`): counters, gauges and
span histograms merge across workers into ``metrics.json``, every phase
becomes a Chrome trace event viewable in Perfetto (``trace.json``), and
``--profile`` captures cProfile stats for the slowest spans.  A summary
table of the hottest spans prints at the end of the run.

With ``--ledger-dir`` the merged telemetry of the run is additionally
distilled into one append-only run-ledger record (git revision, config
digest, determinism-view counters, per-experiment wall-clock, headline
figure outputs); the ``ledger {record,list,diff,html}`` subcommands
inspect that history and render the self-contained HTML dashboard.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
from dataclasses import replace

from repro import obs
from repro.experiments.config import DEFAULT_CONFIG, FAST_CONFIG
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.reportio import atomic_write_text, render_report
from repro.runtime import (
    CheckpointStore,
    RunOutcome,
    WorkerSpec,
    configure_logging,
    default_jobs,
)
from repro.runtime.backends import BACKEND_NAMES, RemoteOptions, resolve_backend
from repro.runtime.chaos import NET_MODES, ChaosNet
from repro.runtime.log import get_logger

logger = get_logger("cli")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down configuration (16-bit ALU, short traces)",
    )
    parser.add_argument("--cycles", type=int, help="override trace length")
    parser.add_argument("--width", type=int, help="override ALU width")
    parser.add_argument("--out", help="also write the report to this file")
    parser.add_argument(
        "--format",
        choices=("text", "json", "csv"),
        default="text",
        help="output format for --out (stdout always prints text)",
    )
    runtime = parser.add_argument_group("resilient runtime")
    runtime.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for experiment fan-out "
        "(0 = one per CPU, 1 = serial; default: 0)",
    )
    runtime.add_argument(
        "--backend",
        choices=("auto",) + BACKEND_NAMES,
        default="auto",
        help="execution backend (auto: inproc when --jobs 1, else procpool)",
    )
    runtime.add_argument(
        "--workers",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="remote worker address for --backend remote (repeatable)",
    )
    runtime.add_argument(
        "--heartbeat-s",
        type=float,
        default=0.5,
        metavar="S",
        help="remote worker heartbeat period (default: 0.5)",
    )
    runtime.add_argument(
        "--heartbeat-deadline-s",
        type=float,
        default=5.0,
        metavar="S",
        help="silence past this declares a busy remote worker dead "
        "(default: 5.0)",
    )
    runtime.add_argument(
        "--checkpoint-dir",
        help="persist chips/error traces here and resume from previous runs",
    )
    runtime.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore existing checkpoints (recompute, but still refresh the store)",
    )
    runtime.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="re-run a failed experiment up to N extra times",
    )
    runtime.add_argument(
        "--retry-backoff-s",
        type=float,
        default=0.0,
        metavar="S",
        help="base of the exponential inter-retry backoff with "
        "deterministic jitter (0 = retry immediately; default: 0)",
    )
    runtime.add_argument(
        "--claim-stale-s",
        type=float,
        default=600.0,
        metavar="S",
        help="checkpoint claims older than this are presumed orphaned "
        "and broken (default: 600)",
    )
    runtime.add_argument(
        "--timeout-s",
        type=float,
        metavar="S",
        help="per-experiment wall-clock budget; overruns become timeout failures",
    )
    runtime.add_argument(
        "--chaos-fail",
        action="append",
        default=[],
        metavar="ID",
        help="self-test: inject a failure into this experiment (repeatable)",
    )
    runtime.add_argument(
        "--chaos-kill",
        action="append",
        default=[],
        metavar="ID",
        help="self-test: kill the worker running this experiment "
        "(requires a multi-process backend; repeatable)",
    )
    runtime.add_argument(
        "--chaos-net",
        metavar="MODE[:VICTIM]",
        help="self-test: inject a network fault into --backend remote "
        f"(modes: {', '.join(NET_MODES)}; victim is a worker index, "
        "default 0)",
    )
    runtime.add_argument(
        "-v", "--verbose",
        action="count",
        default=0,
        help="runtime logging (-v info, -vv debug)",
    )
    telemetry = parser.add_argument_group(
        "telemetry (any of these flags switches telemetry on)"
    )
    telemetry.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write merged counters/gauges/histograms as JSON",
    )
    telemetry.add_argument(
        "--trace-out",
        metavar="PATH",
        help="write a Chrome trace-event JSON (chrome://tracing / Perfetto)",
    )
    telemetry.add_argument(
        "--profile",
        metavar="PATH",
        help="capture cProfile stats per span; write the slowest spans here",
    )
    telemetry.add_argument(
        "--profile-top",
        type=int,
        default=5,
        metavar="N",
        help="how many slowest spans keep their profiles (default: 5)",
    )
    telemetry.add_argument(
        "--ledger-dir",
        metavar="DIR",
        help="append one run-ledger record here (see 'ledger --help')",
    )
    telemetry.add_argument(
        "--events-out",
        metavar="PATH",
        help="append the structured lifecycle event stream (JSONL) here; "
        "tail it live with the 'progress' subcommand",
    )
    telemetry.add_argument(
        "--audit-out",
        metavar="PATH",
        help="write the merged cycle-audit stream (.npz) here; inspect it "
        "with the 'audit' subcommand family",
    )
    telemetry.add_argument(
        "--audit-policy",
        default="full",
        metavar="POLICY",
        help="audit sampling policy: full, window:START:LEN, or "
        "reservoir:K[:SEED] (default: full)",
    )
    return parser


# kept as an alias: ledger_cli and older callers import it from here
_atomic_write_text = atomic_write_text


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "ledger":
        from repro.experiments.ledger_cli import ledger_main

        return ledger_main(argv[1:])
    if argv and argv[0] == "qa":
        from repro.qa.cli import qa_main

        return qa_main(argv[1:])
    if argv and argv[0] == "worker":
        from repro.runtime.backends.worker import worker_main

        return worker_main(argv[1:])
    if argv and argv[0] == "progress":
        from repro.experiments.progress_cli import progress_main

        return progress_main(argv[1:])
    if argv and argv[0] == "audit":
        from repro.experiments.audit_cli import audit_main

        return audit_main(argv[1:])
    if argv and argv[0] == "serve":
        from repro.service.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        from repro.service.cli import client_main

        return client_main(argv[1:])
    parser = _build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose)

    # `is not None` so an explicit 0 reaches ExperimentConfig validation
    # instead of being silently ignored.
    config = FAST_CONFIG if args.fast else DEFAULT_CONFIG
    try:
        if args.cycles is not None:
            config = replace(config, cycles=args.cycles)
        if args.width is not None:
            config = replace(config, width=args.width)
    except ValueError as exc:
        parser.error(f"invalid configuration: {exc}")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.timeout_s is not None and args.timeout_s <= 0:
        parser.error("--timeout-s must be positive")
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    if args.retry_backoff_s < 0:
        parser.error("--retry-backoff-s must be >= 0")
    if args.claim_stale_s <= 0:
        parser.error("--claim-stale-s must be positive")
    if args.heartbeat_s <= 0 or args.heartbeat_deadline_s <= 0:
        parser.error("--heartbeat-s and --heartbeat-deadline-s must be positive")
    if args.profile_top < 1:
        parser.error("--profile-top must be >= 1")
    jobs = args.jobs or default_jobs()

    backend_name = args.backend
    if backend_name == "auto":
        backend_name = "inproc" if jobs == 1 else "procpool"
    if backend_name == "remote" and not args.workers:
        parser.error("--backend remote requires at least one --workers HOST:PORT")
    if args.workers and backend_name != "remote":
        parser.error("--workers only applies to --backend remote")
    if args.chaos_net and backend_name != "remote":
        parser.error("--chaos-net only applies to --backend remote")
    chaos_net = None
    if args.chaos_net:
        try:
            chaos_net = ChaosNet.parse(args.chaos_net)
        except ValueError as exc:
            parser.error(str(exc))

    ids = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    for experiment_id in ids:
        if experiment_id not in EXPERIMENTS:
            parser.error(f"unknown experiment {experiment_id!r}")
    for experiment_id in args.chaos_fail:
        if experiment_id not in EXPERIMENTS:
            parser.error(f"unknown --chaos-fail experiment {experiment_id!r}")
    for experiment_id in args.chaos_kill:
        if experiment_id not in EXPERIMENTS:
            parser.error(f"unknown --chaos-kill experiment {experiment_id!r}")
    if args.chaos_kill and (
        backend_name == "inproc" or (backend_name == "procpool" and jobs < 2)
    ):
        parser.error(
            "--chaos-kill requires --jobs >= 2 or a remote backend "
            "(it takes a worker down)"
        )

    # Telemetry is on iff any telemetry flag was given; the recorder is
    # installed before the store so checkpoint counters are captured.
    # --ledger-dir counts: a ledger record is built from the merged
    # metrics document, so recording implies instrumenting.
    telemetry_on = bool(
        args.metrics_out or args.trace_out or args.profile or args.ledger_dir
    )
    events_on = bool(args.events_out)
    # The cycle audit is its own channel: it never implies telemetry and
    # never feeds back into the report (byte-identity audit on/off).
    audit_on = bool(args.audit_out)
    from repro.obs import audit

    try:
        audit_policy = audit.SamplePolicy(args.audit_policy).text
    except ValueError as exc:
        parser.error(str(exc))
    # Every instrumented run gets a trace id: it stamps recorder spans,
    # rides the WorkerSpec into every worker (local or remote), tags each
    # structured event, and lands in the ledger record — one key linking
    # all the run's artefacts.
    trace_id = obs.new_trace_id() if (telemetry_on or events_on or audit_on) else ""
    parent_span_id = obs.new_span_id() if trace_id else None
    recorder = None
    telemetry_dir = None
    if telemetry_on:
        recorder = obs.enable(obs.TelemetryRecorder(
            process="main",
            profile=bool(args.profile),
            profile_top=args.profile_top,
            trace_id=trace_id,
        ))
        if backend_name != "inproc":
            telemetry_dir = tempfile.mkdtemp(prefix="repro-telemetry-")
    if events_on:
        try:  # a fresh run starts a fresh stream (the log appends)
            os.unlink(args.events_out)
        except OSError:
            pass
        obs.enable_events(obs.EventLog(args.events_out, trace_id=trace_id))
    audit_dir = None
    if audit_on:
        # Parent and workers all flush shards here; the post-run merge
        # deduplicates and writes the single --audit-out stream.
        audit_dir = tempfile.mkdtemp(prefix="repro-audit-")
        audit.enable(audit.AuditRecorder(
            policy=audit_policy, shard_dir=audit_dir, trace_id=trace_id,
        ))

    store = None
    if args.checkpoint_dir:
        store = CheckpointStore(args.checkpoint_dir, resume=not args.no_resume)
        logger.info(
            "checkpoint store at %s (%d entries, resume=%s)",
            store.root, len(store), store.resume,
        )

    def report_outcome(outcome: RunOutcome) -> None:
        if outcome.result is not None:
            print(outcome.result.to_text())
            print(f"[{outcome.experiment_id} completed in {outcome.elapsed_s:.1f}s]\n")
        else:
            assert outcome.failure is not None
            print(
                f"[{outcome.experiment_id} FAILED after {outcome.elapsed_s:.1f}s "
                f"({outcome.failure.kind}): {outcome.failure.error_type}: "
                f"{outcome.failure.message}]\n"
            )

    # Fan-out backends rendezvous through a shared checkpoint store;
    # without a user-provided one, an ephemeral store still lets
    # workers share chips and error traces.  (The serial inproc
    # backend only persists when the user asked for it.)
    ephemeral_dir = None
    checkpoint_dir = args.checkpoint_dir
    if not checkpoint_dir and backend_name != "inproc":
        ephemeral_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
        checkpoint_dir = ephemeral_dir
    spec = WorkerSpec(
        config=config,
        checkpoint_dir=checkpoint_dir,
        resume=not args.no_resume,
        retries=args.retries,
        timeout_s=args.timeout_s,
        retry_backoff_s=args.retry_backoff_s,
        chaos_fail=tuple(args.chaos_fail),
        chaos_kill=tuple(args.chaos_kill),
        verbose=args.verbose,
        claim_stale_s=args.claim_stale_s,
        telemetry_dir=telemetry_dir,
        profile=bool(args.profile),
        trace_id=trace_id or None,
        parent_span_id=parent_span_id,
        events_path=args.events_out if events_on else None,
        audit_dir=audit_dir,
        audit_policy=audit_policy if audit_on else None,
    )
    remote_options = None
    if backend_name == "remote":
        remote_options = RemoteOptions(
            workers=tuple(args.workers),
            heartbeat_s=args.heartbeat_s,
            heartbeat_deadline_s=args.heartbeat_deadline_s,
            chaos_net=chaos_net,
        )
    backend = resolve_backend(backend_name, remote_options=remote_options)
    logger.info(
        "running %d experiment(s) on the %s backend", len(ids), backend.name
    )
    obs.emit(
        "run_start", backend=backend_name, jobs=jobs, experiments=len(ids)
    )
    try:
        report, worker_stats = backend.run(
            ids, spec, jobs=jobs, on_outcome=report_outcome
        )
    finally:
        if ephemeral_dir is not None:
            shutil.rmtree(ephemeral_dir, ignore_errors=True)
    obs.emit(
        "run_end",
        status="ok" if report.ok else "failed",
        ok=len(report.outcomes) - len(report.failures),
        total=len(report.outcomes),
    )
    if store is not None:
        store.stats.merge(worker_stats)

    # Fold the parent's recorder and every worker shard into the final
    # telemetry documents before any reporting happens.
    metrics_doc = None
    trace_doc = None
    profiles: list = []
    if telemetry_on and recorder is not None:
        shard_docs = [recorder.snapshot_doc()]
        if telemetry_dir is not None:
            worker_docs, stale = obs.scan_shards(telemetry_dir)
            shard_docs.extend(worker_docs)
            shutil.rmtree(telemetry_dir, ignore_errors=True)
        else:
            stale = 0
        registry, events, profiles, processes = obs.merge_shards(shard_docs)
        if stale:
            registry.inc("obs.stale_shards_skipped", stale)
            logger.warning("skipped %d stale telemetry shard(s)", stale)
        metrics_doc = obs.metrics_document(registry, processes)
        trace_doc = obs.trace_document(events, trace_id=trace_id)
        obs.disable()
    if events_on:
        count = obs.get_event_log().count if obs.get_event_log() else 0
        obs.disable_events()
        print(f"events written to {args.events_out} ({count} event(s))")

    # Fold the audit shards the same way: parent flush + worker scan,
    # content-digest dedup, one merged deterministic stream.
    audit_rollup_doc = None
    audit_write_failed = False
    if audit_on:
        sink = audit.get()
        if sink is not None:
            sink.flush()
        audit.disable()
        audit_docs, audit_stale = audit.scan_audit_shards(audit_dir)
        shutil.rmtree(audit_dir, ignore_errors=True)
        if audit_stale:
            logger.warning("skipped %d stale audit shard(s)", audit_stale)
        audit_runs = audit.merge_audit(audit_docs)
        audit_rollup_doc = audit.audit_rollup(audit_runs)
        try:
            audit.write_audit(
                args.audit_out, audit_runs,
                trace_id=trace_id, policy=audit_policy,
            )
        except OSError as exc:
            audit_write_failed = True
            logger.error("could not write audit stream to %s: %s",
                         args.audit_out, exc)
            print(f"[audit stream NOT written to {args.audit_out}: {exc}]")
        else:
            records = audit_rollup_doc["records"]
            print(f"audit stream written to {args.audit_out} "
                  f"({len(audit_runs)} run(s), {records} record(s))")

    report_write_failed = False
    if args.out:
        payload = render_report(report, args.format)
        try:
            atomic_write_text(args.out, payload)
        except OSError as exc:
            report_write_failed = True
            logger.error("could not write report to %s: %s", args.out, exc)
            print(f"[report NOT written to {args.out}: {exc}]")
        else:
            print(f"report written to {args.out}")

    for path, payload, label in (
        (args.metrics_out,
         json.dumps(metrics_doc, indent=2, sort_keys=True) + "\n"
         if metrics_doc is not None else None, "metrics"),
        (args.trace_out,
         json.dumps(trace_doc) + "\n" if trace_doc is not None else None,
         "trace"),
        (args.profile,
         obs.profile_report(profiles, args.profile_top) if telemetry_on else None,
         "profile"),
    ):
        if not path or payload is None:
            continue
        try:
            _atomic_write_text(path, payload)
        except OSError as exc:
            report_write_failed = True
            logger.error("could not write %s to %s: %s", label, path, exc)
            print(f"[{label} NOT written to {path}: {exc}]")
        else:
            print(f"{label} written to {path}")

    if args.ledger_dir and metrics_doc is not None:
        from repro.obs.ledger import RunLedger, build_record

        try:
            record = build_record(
                report=report, metrics_doc=metrics_doc, config=config,
                trace_id=trace_id, audit_doc=audit_rollup_doc,
            )
            RunLedger(args.ledger_dir).append(record)
        except OSError as exc:
            report_write_failed = True
            logger.error("could not append ledger record: %s", exc)
            print(f"[ledger record NOT written to {args.ledger_dir}: {exc}]")
        else:
            print(f"ledger record {record['run_id']} appended "
                  f"in {args.ledger_dir}")

    print(report.summary_text())
    if metrics_doc is not None:
        print(obs.summary_table(metrics_doc))
    if store is not None:
        # hit/miss/claim counters for the -v summary line: sourced from
        # the merged metrics registry when telemetry is on (it already
        # folds every worker's counters in), else from the store stats.
        counts = store.stats.as_dict()
        if metrics_doc is not None:
            merged = metrics_doc["counters"]
            counts = {
                name: int(merged.get(f"checkpoint.{name}", 0))
                for name in counts
            }
        print(
            f"[checkpoints: {counts['hits']} hits, {counts['misses']} misses, "
            f"{counts['stores']} stored, {counts['corrupt']} corrupt | "
            f"claims: {counts['claims_won']} won, "
            f"{counts['claims_waited']} waited, "
            f"{counts['claims_broken']} broken]"
        )
    for failure in report.failures:
        logger.debug("traceback for %s:\n%s", failure.experiment_id, failure.traceback)
    if report_write_failed or audit_write_failed:
        return 1
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
