"""Command-line entry point: regenerate any (or all) paper figures.

Examples::

    python -m repro.experiments fig3_10
    python -m repro.experiments all --cycles 50000
    python -m repro.experiments fig4_8 fig4_9 --fast --out results.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from repro.experiments.config import DEFAULT_CONFIG, FAST_CONFIG
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.runner import ExperimentContext


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(sorted(EXPERIMENTS))}) or 'all'",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="scaled-down configuration (16-bit ALU, short traces)",
    )
    parser.add_argument("--cycles", type=int, help="override trace length")
    parser.add_argument("--width", type=int, help="override ALU width")
    parser.add_argument("--out", help="also write the report to this file")
    parser.add_argument(
        "--format",
        choices=("text", "json", "csv"),
        default="text",
        help="output format for --out (stdout always prints text)",
    )
    args = parser.parse_args(argv)

    config = FAST_CONFIG if args.fast else DEFAULT_CONFIG
    if args.cycles:
        config = replace(config, cycles=args.cycles)
    if args.width:
        config = replace(config, width=args.width)

    ids = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    for experiment_id in ids:
        if experiment_id not in EXPERIMENTS:
            parser.error(f"unknown experiment {experiment_id!r}")

    ctx = ExperimentContext(config)
    results = []
    for experiment_id in ids:
        start = time.time()
        result = get_experiment(experiment_id)(ctx)
        results.append(result)
        print(result.to_text())
        print(f"[{experiment_id} completed in {time.time() - start:.1f}s]\n")

    if args.out:
        if args.format == "json":
            import json

            payload = json.dumps([r.to_dict() for r in results], indent=2)
        elif args.format == "csv":
            payload = "".join(r.to_csv() for r in results)
        else:
            payload = "\n\n".join(r.to_text() for r in results) + "\n"
        with open(args.out, "w") as handle:
            handle.write(payload)
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
