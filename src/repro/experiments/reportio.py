"""Shared report rendering and atomic writes for the CLI and the service.

The byte-identity contract between every consumer of a
:class:`~repro.runtime.executor.RunReport` — the CLI's ``--out``, the
service's ``GET /jobs/<id>/report``, the QA ``service_vs_cli`` oracle —
holds because they all render through :func:`render_report`.  There is
exactly one serialisation of a report per format; nothing re-implements
it.

:func:`atomic_write_text` is the repo-wide tempfile + ``os.replace``
write used for every report-like artefact, so an interrupted writer can
never leave a truncated file behind.
"""

from __future__ import annotations

import json
import os
import tempfile

#: formats accepted by the CLI's ``--format`` and the service's submit.
REPORT_FORMATS = ("text", "json", "csv")


def render_report(report, fmt: str = "text") -> str:
    """One canonical serialisation of a run report per format.

    ``text`` is the human report: every result's table block joined by
    blank lines, plus the pass/fail summary when anything failed.
    ``json`` is the machine report (no trailing newline — historical,
    and pinned by the CI ``cmp`` gates).  ``csv`` concatenates each
    result's table rows.
    """
    if fmt not in REPORT_FORMATS:
        raise ValueError(f"unknown report format {fmt!r} (known: {REPORT_FORMATS})")
    results = report.results
    if fmt == "json":
        return json.dumps([r.to_dict() for r in results], indent=2)
    if fmt == "csv":
        return "".join(r.to_csv() for r in results)
    payload = "\n\n".join(r.to_text() for r in results) + "\n"
    if report.failures:
        payload += "\n" + report.summary_text() + "\n"
    return payload


def atomic_write_text(path: str, payload: str) -> None:
    """Write via a temp file in the target directory + ``os.replace``.

    An interrupted run can therefore never leave a truncated report: the
    previous file (if any) survives intact until the new one is complete.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".report-", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
