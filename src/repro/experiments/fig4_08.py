"""Fig. 4.8 -- distribution of SE and CE per benchmark.

Error-class shares on the Chapter-4 chip with the avoidance mechanism
disabled (raw detection): SE(Min), SE(Max) and CE as percentages of all
detected errors.

Expected shape: SEs dominate (~80 % in the paper) with minimum timing
violations a substantial fraction of them (~37.5 % in the paper); CEs a
small minority.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, Table, percent
from repro.experiments.runner import ExperimentContext

TITLE = "SE(Min) / SE(Max) / CE distribution per benchmark"


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("fig4_8", TITLE)
    table = Table(
        "error class shares % (Chapter-4 chip)",
        ["benchmark", "SE_min", "SE_max", "CE", "total_errors"],
    )
    total_min = total_all = 0
    for benchmark in ctx.config.benchmarks:
        counts = ctx.ch4_error_trace(benchmark).error_counts()
        errors = counts["se_min"] + counts["se_max"] + counts["ce"]
        table.add_row(
            benchmark,
            round(percent(counts["se_min"], errors), 2),
            round(percent(counts["se_max"], errors), 2),
            round(percent(counts["ce"], errors), 2),
            errors,
        )
        total_min += counts["se_min"]
        total_all += errors
    result.tables.append(table)
    result.notes.append(
        f"minimum timing violations constitute {percent(total_min, total_all):.1f}% "
        "of all SEs+CEs across benchmarks (paper: ~37.5% of SEs)."
    )
    return result
