"""Fig. 4.10 -- normalized penalty cycles of Razor / OCST / Trident.

Penalty cycles per benchmark normalised to Razor (lower is better).
As in the paper, Trident's count covers *both* minimum and maximum
timing errors while Razor's and OCST's cover only maximum violations.

Expected shape: Trident lowest everywhere thanks to its avoidance
mechanism, despite being charged for more error classes.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheme_runs import CH4_SCHEME_ORDER, ch4_runs

TITLE = "normalized penalty cycles, Chapter-4 schemes (Razor baseline)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("fig4_10", TITLE)
    table = Table(
        "penalty cycles normalised to Razor",
        ["benchmark", *CH4_SCHEME_ORDER],
    )
    for benchmark in ctx.config.benchmarks:
        _results, reports = ch4_runs(ctx, benchmark)
        table.add_row(
            benchmark,
            *[round(reports[s].normalized_penalty, 3) for s in CH4_SCHEME_ORDER],
        )
    result.tables.append(table)
    return result
