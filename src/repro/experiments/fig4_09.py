"""Fig. 4.9 -- choke error prediction accuracy vs CET size.

Replays each benchmark through Trident with 32- to 512-entry Choke
Error Tables.

Expected shape: a noticeable rise up to 128 entries and a marginal gain
(paper: ~2.3 %) from 128 to 512, motivating the 128-entry choice.
"""

from __future__ import annotations

from repro.core.trident import TridentScheme
from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext

TITLE = "Trident prediction accuracy vs CET entries"

CET_SIZES = (32, 64, 128, 256, 512)


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("fig4_9", TITLE)
    table = Table(
        "prediction accuracy % (CET)",
        ["benchmark", *[str(size) for size in CET_SIZES]],
    )
    accumulator = {size: [] for size in CET_SIZES}
    for benchmark in ctx.config.benchmarks:
        trace = ctx.ch4_error_trace(benchmark)
        row = [benchmark]
        for size in CET_SIZES:
            outcome = TridentScheme(cet_capacity=size).simulate(trace)
            accuracy = outcome.prediction_accuracy * 100.0
            row.append(round(accuracy, 2))
            accumulator[size].append(accuracy)
        table.add_row(*row)
    result.tables.append(table)
    averages = {
        size: sum(values) / len(values) for size, values in accumulator.items()
    }
    result.notes.append(
        "average accuracy: "
        + ", ".join(f"{size}e={avg:.2f}%" for size, avg in averages.items())
    )
    return result
