"""Fig. 4.11 -- performance of Razor / OCST / Trident.

Execution time per benchmark converted to normalised performance
(Razor = 1.0, higher is better).

Expected shape: Trident best on (nearly) every benchmark; our OCST sits
at ~Razor rather than the paper's +58 % because the simulated error
population is choke-dominated, leaving OCST's bounded skew range little
to tune away (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheme_runs import CH4_SCHEME_ORDER, ch4_runs

TITLE = "normalized performance, Chapter-4 schemes (Razor baseline)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("fig4_11", TITLE)
    table = Table(
        "performance normalised to Razor",
        ["benchmark", *CH4_SCHEME_ORDER],
    )
    for benchmark in ctx.config.benchmarks:
        _results, reports = ch4_runs(ctx, benchmark)
        table.add_row(
            benchmark,
            *[round(reports[s].normalized_performance, 3) for s in CH4_SCHEME_ORDER],
        )
    result.tables.append(table)
    averages = {
        s: sum(table.column(s)) / len(table.rows) for s in CH4_SCHEME_ORDER
    }
    result.notes.append(
        "averages: " + ", ".join(f"{s}={v:.3f}" for s, v in averages.items())
    )
    return result
