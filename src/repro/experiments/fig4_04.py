"""Fig. 4.4 -- timing errors vs operand sizes of errant instructions.

For each featured instruction, its errors (aggregated over all
benchmarks on the Chapter-4 chip) are split four ways: maximum errors
with Large / Small operands, and minimum errors with Large / Small
operands.  An occurrence counts as "Large" when either operand's
leftmost set bit lies in the upper half-word.

Expected shape: "Large" operands dominate both error kinds overall
(they sensitise more paths), but individual instructions (e.g. LUI, XOR
in the paper) can show balanced shares because even their small
operands carry many set bits.
"""

from __future__ import annotations

from repro.arch.isa import FIG4_3_INSTRS, Instr
from repro.experiments.report import ExperimentResult, Table, percent
from repro.experiments.runner import ExperimentContext
from repro.timing.dta import ERR_CE, ERR_SE_MAX, ERR_SE_MIN

TITLE = "error distribution vs operand size (Large/Small) per instruction"


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("fig4_4", TITLE)
    buckets = {int(i): [0, 0, 0, 0] for i in FIG4_3_INSTRS}  # MaxL MaxS MinL MinS

    for benchmark in ctx.config.benchmarks:
        trace = ctx.ch4_error_trace(benchmark)
        large = trace.size_a | trace.size_b
        is_max = (trace.err_class == ERR_SE_MAX) | (trace.err_class == ERR_CE)
        is_min = trace.err_class == ERR_SE_MIN
        for instr in FIG4_3_INSTRS:
            mask = trace.instr_sens == int(instr)
            bucket = buckets[int(instr)]
            bucket[0] += int((mask & is_max & large).sum())
            bucket[1] += int((mask & is_max & ~large).sum())
            bucket[2] += int((mask & is_min & large).sum())
            bucket[3] += int((mask & is_min & ~large).sum())

    table = Table(
        "error share % by kind and operand size",
        ["instr", "max_large", "max_small", "min_large", "min_small", "errors"],
    )
    total_min_large = 0
    total_min = 0
    for instr in FIG4_3_INSTRS:
        bucket = buckets[int(instr)]
        total = sum(bucket)
        table.add_row(
            Instr(instr).name,
            *[round(percent(v, total), 2) for v in bucket],
            total,
        )
        total_min_large += bucket[2]
        total_min += bucket[2] + bucket[3]
    result.tables.append(table)
    result.notes.append(
        f"across featured instructions, Large operands contribute "
        f"{percent(total_min_large, total_min):.1f}% of minimum timing errors."
    )
    return result
