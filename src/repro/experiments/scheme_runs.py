"""Shared scheme-comparison runs for the Chapter-3 and Chapter-4 figures.

Figures 3.10-3.12 plot different views of the same four scheme runs per
benchmark, and Figures 4.10-4.12 the same three; these helpers run each
comparison once per benchmark and memoise the normalised reports in the
experiment context.
"""

from __future__ import annotations

from repro.core.dcs import DcsScheme
from repro.core.schemes import HfgScheme, OcstScheme, RazorScheme
from repro.core.schemes.base import SchemeResult
from repro.core.trident import TridentScheme
from repro.energy.metrics import EnergyReport, normalize_to
from repro.energy.overheads import dcs_overheads, trident_overheads
from repro.experiments.runner import ExperimentContext
from repro.pv.delaymodel import NTC

#: Table geometries the paper carries into the comparisons.
ICSLT_ENTRIES = 128
ACSLT_ENTRIES = 32
ACSLT_WAYS = 16
CET_ENTRIES = 128

CH3_SCHEME_ORDER = ("Razor", "HFG", "DCS-ICSLT", "DCS-ACSLT")
CH4_SCHEME_ORDER = ("Razor", "OCST", "Trident")


def ch3_runs(
    ctx: ExperimentContext, benchmark: str
) -> tuple[dict[str, SchemeResult], dict[str, EnergyReport]]:
    """Razor / HFG / DCS-ICSLT / DCS-ACSLT on the Chapter-3 chip."""
    key = ("ch3_runs", benchmark)
    if key not in ctx.memo:
        trace = ctx.ch3_error_trace(benchmark)
        results = {
            scheme.name: scheme.simulate(trace)
            for scheme in (
                RazorScheme(),
                HfgScheme(),
                DcsScheme("icslt", capacity=ICSLT_ENTRIES),
                DcsScheme("acslt", capacity=ACSLT_ENTRIES, associativity=ACSLT_WAYS),
            )
        }
        overheads = {
            "DCS-ICSLT": dcs_overheads("icslt", ICSLT_ENTRIES),
            "DCS-ACSLT": dcs_overheads("acslt", ACSLT_ENTRIES, ACSLT_WAYS),
        }
        ctx.memo[key] = (results, normalize_to(results, NTC, overheads))
    return ctx.memo[key]


def ch4_runs(
    ctx: ExperimentContext, benchmark: str
) -> tuple[dict[str, SchemeResult], dict[str, EnergyReport]]:
    """Razor / OCST / Trident on the Chapter-4 chip."""
    key = ("ch4_runs", benchmark)
    if key not in ctx.memo:
        trace = ctx.ch4_error_trace(benchmark)
        interval = max(500, min(5000, len(trace) // 4))
        results = {
            scheme.name: scheme.simulate(trace)
            for scheme in (
                RazorScheme(),
                OcstScheme(interval=interval),
                TridentScheme(cet_capacity=CET_ENTRIES),
            )
        }
        overheads = {"Trident": trident_overheads(CET_ENTRIES)}
        ctx.memo[key] = (results, normalize_to(results, NTC, overheads))
    return ctx.memo[key]
