"""Fig. 3.4 -- errant vs error-free occurrence percentages in vortex.

Runs the vortex benchmark on the Chapter-3 reference chip and reports,
for the paper's eight featured instructions, the share of dynamic
occurrences that cause a (maximum) timing error.

Expected shape: both extremes exist -- some instructions err on (almost)
every occurrence, others are mostly error-free -- demonstrating that an
instruction that erred once cannot be blindly predicted to always err.
"""

from __future__ import annotations

from repro.arch.isa import FIG3_4_INSTRS, Instr
from repro.experiments.report import ExperimentResult, Table, percent
from repro.experiments.runner import ExperimentContext

TITLE = "errant vs error-free occurrence % per instruction (vortex, NTC)"


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("fig3_4", TITLE)
    trace = ctx.ch3_error_trace("vortex")
    max_err = trace.max_err

    table = Table(
        "vortex occurrence breakdown",
        ["instr", "occurrences", "error_pct", "error_free_pct"],
    )
    for instr in FIG3_4_INSTRS:
        mask = trace.instr_sens == int(instr)
        occurrences = int(mask.sum())
        errant = int((mask & max_err).sum())
        table.add_row(
            Instr(instr).name,
            occurrences,
            round(percent(errant, occurrences), 2),
            round(percent(occurrences - errant, occurrences), 2),
        )
    result.tables.append(table)
    return result
