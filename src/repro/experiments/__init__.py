"""Experiment harness: one module per reproduced figure/table.

Every experiment module exposes ``run(ctx) -> ExperimentResult``; the
registry in :mod:`repro.experiments.registry` maps experiment ids
(``fig3_2`` ... ``tab4_ovh``) to those functions, and
``python -m repro.experiments <id>`` regenerates the corresponding
figure's rows.
"""

from repro.experiments.config import DEFAULT_CONFIG, FAST_CONFIG, ExperimentConfig
from repro.experiments.runner import ExperimentContext
from repro.experiments.report import ExperimentResult, Table
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    get_experiment,
    get_title,
    run_experiment,
)

__all__ = [
    "DEFAULT_CONFIG",
    "EXPERIMENTS",
    "ExperimentConfig",
    "ExperimentContext",
    "ExperimentResult",
    "FAST_CONFIG",
    "Table",
    "experiment_ids",
    "get_experiment",
    "get_title",
    "run_experiment",
]
