"""Fig. 4.12 -- energy efficiency of Razor / OCST / Trident.

Reciprocal energy-delay product per benchmark, normalised to Razor,
with Trident's power overhead (§4.5.7) folded in.

Expected shape: Trident best everywhere (paper: +54 % over Razor on
average, gzip peaking).
"""

from __future__ import annotations

from repro.experiments.report import ExperimentResult, Table
from repro.experiments.runner import ExperimentContext
from repro.experiments.scheme_runs import CH4_SCHEME_ORDER, ch4_runs

TITLE = "normalized energy efficiency (1/EDP), Chapter-4 schemes"


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("fig4_12", TITLE)
    table = Table(
        "energy efficiency normalised to Razor",
        ["benchmark", *CH4_SCHEME_ORDER],
    )
    for benchmark in ctx.config.benchmarks:
        _results, reports = ch4_runs(ctx, benchmark)
        table.add_row(
            benchmark,
            *[round(reports[s].normalized_efficiency, 3) for s in CH4_SCHEME_ORDER],
        )
    result.tables.append(table)
    return result
