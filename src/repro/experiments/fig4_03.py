"""Fig. 4.3 -- distribution of erroneous and error-free occurrences.

For the paper's eight featured instructions, aggregated over all six
benchmarks on the Chapter-4 chip: the share of each instruction's
dynamic occurrences that cause a maximum timing error, a minimum timing
error, or no error (a CE counts towards the maximum-violation share, its
leading transition).

Expected shape: a real mix -- instructions dominated by maximum errors,
instructions dominated by minimum errors, and instructions with large
error-free shares, so no single-opcode rule can predict choke errors.
"""

from __future__ import annotations

from repro.arch.isa import FIG4_3_INSTRS, Instr
from repro.experiments.report import ExperimentResult, Table, percent
from repro.experiments.runner import ExperimentContext
from repro.timing.dta import ERR_CE, ERR_SE_MAX, ERR_SE_MIN

TITLE = "max / min / error-free occurrence distribution per instruction"


def run(ctx: ExperimentContext) -> ExperimentResult:
    result = ExperimentResult("fig4_3", TITLE)
    occurrences = {int(i): 0 for i in FIG4_3_INSTRS}
    max_errors = dict(occurrences)
    min_errors = dict(occurrences)

    for benchmark in ctx.config.benchmarks:
        trace = ctx.ch4_error_trace(benchmark)
        for instr in FIG4_3_INSTRS:
            mask = trace.instr_sens == int(instr)
            occurrences[int(instr)] += int(mask.sum())
            classes = trace.err_class[mask]
            max_errors[int(instr)] += int(
                ((classes == ERR_SE_MAX) | (classes == ERR_CE)).sum()
            )
            min_errors[int(instr)] += int((classes == ERR_SE_MIN).sum())

    table = Table(
        "occurrence distribution % (all benchmarks, Chapter-4 chip)",
        ["instr", "max_err_pct", "min_err_pct", "no_err_pct", "occurrences"],
    )
    for instr in FIG4_3_INSTRS:
        occ = occurrences[int(instr)]
        mx = percent(max_errors[int(instr)], occ)
        mn = percent(min_errors[int(instr)], occ)
        table.add_row(
            Instr(instr).name,
            round(mx, 2),
            round(mn, 2),
            round(max(0.0, 100.0 - mx - mn), 2),
            occ,
        )
    result.tables.append(table)
    return result
