"""The ``python -m repro.experiments audit {why,timeline,export}`` family.

Thin argparse front-end over :mod:`repro.obs.audit`:

* ``why`` — cycle-level provenance: what error hit at cycle N, which
  gate is to blame, and what each scheme decided.  Three sources
  compose: ``--audit STREAM`` looks decisions up in a recorded stream,
  ``--experiment ID`` recomputes the gate-level blame by replaying the
  cycle's input transition through :func:`analyze_choke_event`, and
  ``--fixture`` runs the whole chain on the hand-computed forced-choke
  circuit from :mod:`repro.qa.circuits` (self-contained — the
  acceptance demo).
* ``timeline`` — per-run bucketed decision-severity strings (the same
  strings the ledger dashboard panel shows).
* ``export`` — Perfetto trace of a stream (instant events per decision
  plus a cumulative penalty counter track).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.obs import audit


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments audit",
        description="Inspect cycle-audit streams: blame, timelines, export.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    why = sub.add_parser("why", help="explain the decision chain at one cycle")
    why.add_argument("--audit", metavar="STREAM",
                     help="merged audit stream (.npz) from --audit-out")
    why.add_argument("--cycle", type=int, metavar="N",
                     help="simulated cycle to explain")
    why.add_argument("--scheme", help="only show this scheme's decision")
    why.add_argument("--fixture", action="store_true",
                     help="self-contained demo on the forced-choke QA circuit")
    why.add_argument("--experiment", metavar="ID",
                     help="recompute gate-level blame by replaying this "
                     "experiment's input transition at --cycle")
    why.add_argument("--benchmark", default="mcf",
                     help="benchmark trace for --experiment (default: mcf)")
    why.add_argument("--corner", default="NTC",
                     help="operating corner for --experiment (default: NTC)")
    why.add_argument("--chip-seed", type=int, metavar="K",
                     help="fabrication seed for --experiment "
                     "(default: the config's ch3 chip seed)")
    why.add_argument("--fast", action="store_true",
                     help="use the scaled-down configuration for --experiment")
    why.add_argument("--checkpoint-dir",
                     help="reuse cached chips/traces for --experiment")

    timeline = sub.add_parser("timeline",
                              help="bucketed decision timelines of a stream")
    timeline.add_argument("--audit", required=True, metavar="STREAM")
    timeline.add_argument("--scheme", help="only show this scheme's runs")

    export = sub.add_parser("export", help="write a Perfetto trace of a stream")
    export.add_argument("--audit", required=True, metavar="STREAM")
    export.add_argument("--trace-out", required=True, metavar="PATH",
                        help="Perfetto/chrome://tracing JSON destination")
    return parser


def _fmt_record(run: dict, row: int) -> str:
    columns = run["columns"]
    code = int(columns["decision"][row])
    name = audit.DECISION_NAMES.get(code, str(code))
    parts = [name]
    if columns["stall"][row]:
        parts.append(f"stall {int(columns['stall'][row])}")
    if columns["penalty"][row]:
        parts.append(f"penalty {int(columns['penalty'][row])}")
    if columns["novel"][row]:
        parts.append("novel")
    detail = ", ".join(parts[1:])
    slack = float(columns["slack_late"][row])
    return (f"{name}" + (f" ({detail})" if detail else "")
            + f" | err class {int(columns['err'][row])}"
            + f" | slack_late {slack:+.1f} ps")


def _stream_why(stream_path: str, cycle: int, scheme: str | None) -> list[str]:
    document = audit.load_audit(stream_path)
    lines: list[str] = []
    for run in document["runs"]:
        if scheme and run.get("scheme") != scheme:
            continue
        cycles = run["columns"]["cycle"]
        rows = np.flatnonzero(cycles == cycle)
        label = audit.run_label(run)
        if len(rows) == 0:
            if len(cycles):
                nearest = int(cycles[np.argmin(np.abs(cycles - cycle))])
                lines.append(f"  {label}: no record at cycle {cycle} "
                             f"(nearest recorded: {nearest})")
            else:
                lines.append(f"  {label}: empty run")
            continue
        for row in rows:
            lines.append(f"  {label}: {_fmt_record(run, int(row))}")
    return lines


def _cmd_why(args: argparse.Namespace) -> int:
    if not (args.fixture or args.audit or args.experiment):
        print("audit why: need --fixture, --audit, and/or --experiment",
              file=sys.stderr)
        return 2
    if (args.audit or args.experiment) and args.cycle is None:
        print("audit why: --audit/--experiment need --cycle N", file=sys.stderr)
        return 2

    if args.fixture:
        return _cmd_why_fixture(args)

    printed = False
    if args.experiment:
        lines = _experiment_blame(args)
        print(f"audit why: {args.experiment} "
              f"({args.benchmark}@{args.corner}), cycle {args.cycle}")
        for line in lines:
            print(line)
        printed = True
    if args.audit:
        if not printed:
            print(f"audit why: {args.audit}, cycle {args.cycle}")
        print("decision chain:")
        lines = _stream_why(args.audit, args.cycle, args.scheme)
        for line in lines:
            print(line)
        if not lines:
            print("  (no runs in the stream match"
                  + (f" scheme {args.scheme!r}" if args.scheme else "") + ")")
    return 0


def _cmd_why_fixture(args: argparse.Namespace) -> int:
    """The acceptance demo: blame + decision on the forced-choke circuit.

    A hand-built chip carries one planted choke gate on its short mux
    branch; one errant cycle is synthesised, every scheme replays it
    under a full audit, and the output names the planted gate alongside
    each scheme's recorded decision for that cycle.
    """
    from repro.core import dcs as dcs_mod
    from repro.core.schemes import razor as razor_mod
    from repro.core.trident import controller as trident_mod
    from repro.qa.circuits import forced_choke_chip, synthetic_error_trace
    from repro.timing.choke import analyze_choke_event
    from repro.timing.dta import ERR_CE, ERR_NONE

    cycle = args.cycle if args.cycle is not None else 3
    fixture = forced_choke_chip()
    # Sensitise the choked short branch: sel stays 1 (mux selects the
    # short branch), b toggles across the cycle boundary.
    prev = np.array([0, 0, 1])
    curr = np.array([0, 1, 1])
    event = analyze_choke_event(
        fixture.circuit, fixture.chip, prev, curr, fixture.nominal_critical
    )
    if event is None:  # pragma: no cover - the fixture guarantees an event
        print("audit why: fixture produced no choke event", file=sys.stderr)
        return 1

    err_class = np.full(max(cycle + 3, 8), ERR_NONE, dtype=np.int8)
    err_class[cycle] = ERR_CE
    trace = synthetic_error_trace(err_class, benchmark="forced-choke")

    previous = audit.get()
    sink = audit.enable(audit.AuditRecorder(policy="full"))
    try:
        schemes = [
            razor_mod.RazorScheme(),
            dcs_mod.DcsScheme(variant="icslt", capacity=8, associativity=4),
            trident_mod.TridentScheme(cet_capacity=8),
        ]
        if args.scheme:
            schemes = [s for s in schemes if s.name == args.scheme] or schemes
        for scheme in schemes:
            scheme.simulate(trace)
        runs = [run.to_block() for run in sink.runs if run.done]
    finally:
        if previous is None:
            audit.disable()
        else:
            audit.enable(previous)

    print(f"audit why: forced-choke fixture, cycle {cycle}")
    print(f"  error: CE at cycle {cycle} "
          f"(sensitised arrival {fixture.short_arrival:.1f} ps vs "
          f"nominal critical {fixture.nominal_critical:.1f} ps)")
    print(f"  blame: {event.blame_line(fixture.netlist)}")
    print("decision chain:")
    for run in runs:
        cycles = run["columns"]["cycle"]
        for row in np.flatnonzero(cycles == cycle):
            print(f"  {audit.run_label(run)}: {_fmt_record(run, int(row))}")
    return 0


def _experiment_blame(args: argparse.Namespace) -> list[str]:
    """Recompute gate-level blame for one cycle of a real experiment."""
    from repro.experiments.config import DEFAULT_CONFIG, FAST_CONFIG
    from repro.experiments.registry import EXPERIMENTS
    from repro.experiments.runner import ExperimentContext
    from repro.runtime import CheckpointStore
    from repro.timing.choke import analyze_choke_event

    if args.experiment not in EXPERIMENTS:
        raise SystemExit(f"audit why: unknown experiment {args.experiment!r}")
    config = FAST_CONFIG if args.fast else DEFAULT_CONFIG
    store = CheckpointStore(args.checkpoint_dir) if args.checkpoint_dir else None
    ctx = ExperimentContext(config, store=store)
    stage = ctx.stage(args.corner)
    chip_seed = args.chip_seed if args.chip_seed is not None else config.ch3_chip_seed
    chip = ctx.chip(chip_seed, args.corner)
    trace = ctx.trace(args.benchmark)
    inputs = trace.encode_inputs(stage.alu)
    cycle = args.cycle
    # ErrorTrace entry N covers the transition from input column N to
    # N+1 (the sensitising instruction is instrs[N+1]).
    if not 0 <= cycle < inputs.shape[1] - 1:
        raise SystemExit(
            f"audit why: cycle {cycle} outside trace "
            f"(0..{inputs.shape[1] - 2})"
        )
    event = analyze_choke_event(
        stage.circuit, chip, inputs[:, cycle], inputs[:, cycle + 1],
        stage.nominal_critical_delay,
    )
    if event is None:
        return [f"  blame: no choke path at cycle {cycle} on chip seed "
                f"{chip_seed} (sensitised delay within nominal critical)"]
    return [
        f"  blame (chip seed {chip_seed}): {event.blame_line(stage.netlist)}",
        f"  path endpoint: node {event.path.nodes[-1]} "
        f"({stage.netlist.name_of(event.path.nodes[-1])})",
    ]


def _cmd_timeline(args: argparse.Namespace) -> int:
    document = audit.load_audit(args.audit)
    runs = [
        run for run in document["runs"]
        if not args.scheme or run.get("scheme") == args.scheme
    ]
    if not runs:
        print("no matching runs in the stream", file=sys.stderr)
        return 1
    width = max(len(audit.run_label(run)) for run in runs)
    print(f"policy {document.get('policy', 'full')} · {len(runs)} run(s) · "
          "glyphs: e=errant-cycle a=avoid p=predict f=false-positive "
          "D=detect U=under-stall")
    for run in runs:
        label = audit.run_label(run).ljust(width)
        print(f"{label}  {audit.decision_timeline(run)}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    document = audit.load_audit(args.audit)
    trace_doc = audit.audit_trace_document(
        document["runs"], trace_id=document.get("trace_id", "")
    )
    with open(args.trace_out, "w") as handle:
        json.dump(trace_doc, handle)
        handle.write("\n")
    print(f"audit trace written to {args.trace_out} "
          f"({len(trace_doc['traceEvents'])} event(s))")
    return 0


def audit_main(argv: list[str]) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "why":
            return _cmd_why(args)
        if args.command == "timeline":
            return _cmd_timeline(args)
        return _cmd_export(args)
    except BrokenPipeError:
        # `audit ... | head` is legitimate; die quietly like `ledger`.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(audit_main(sys.argv[1:]))
