"""The ``python -m repro.experiments progress`` live fleet view.

Two complementary data sources:

* ``--events events.jsonl`` — replays the structured event stream a run
  appends with ``--events-out`` and renders per-experiment completion
  plus a per-worker health table (last-heartbeat age, in-flight task,
  completed count, steals, clock-offset tier).  ``--follow`` re-reads
  the file on an interval, so the same command tails a live run — the
  stream is append-only JSONL, so a reader never needs coordination
  with the writer, and a truncated final line (writer mid-append) is
  skipped exactly as on crash replay.
* ``--status HOST:PORT`` — asks a live worker directly over the frame
  protocol (a ``status`` frame, answered with ``status_ok``): uptime,
  sessions served, tasks served, in-flight experiment ids.

Both are read-only observers: neither perturbs the run being watched
beyond one extra accept on the worker's listen socket.
"""

from __future__ import annotations

import argparse
import socket
import sys
import time
from typing import Any

from repro.obs.events import format_event, read_events


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments progress",
        description="Watch a fleet run via its event stream or a live worker.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--events", metavar="PATH",
        help="events.jsonl written by a run's --events-out",
    )
    source.add_argument(
        "--status", metavar="HOST:PORT",
        help="query a live worker's status frame instead",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="keep re-reading --events until the run ends (or Ctrl-C)",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="--follow refresh period (default: 1.0)",
    )
    parser.add_argument(
        "--tail", type=int, default=0, metavar="N",
        help="also print the last N raw events (default: 0)",
    )
    parser.add_argument(
        "--timeout-s", type=float, default=5.0, metavar="S",
        help="--status connect/read timeout (default: 5.0)",
    )
    return parser


# ----------------------------------------------------------------------
# event-stream summarisation
# ----------------------------------------------------------------------

def summarize_events(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Fold an event list into run/experiment/worker state.

    Pure and replay-based: the same function serves a finished file and
    a live tail, because every event carries its full context.
    """
    run: dict[str, Any] = {"trace_id": "", "backend": "", "ended": False}
    experiments: dict[str, dict[str, Any]] = {}
    workers: dict[str, dict[str, Any]] = {}

    def worker_row(label: str) -> dict[str, Any]:
        return workers.setdefault(label, {
            "last_ts": 0.0, "inflight": set(), "completed": 0,
            "steals": 0, "tier": "-",
        })

    for event in events:
        kind = event.get("kind")
        ts = float(event.get("ts", 0.0))
        eid = event.get("experiment")
        label = event.get("worker")
        if event.get("trace_id"):
            run["trace_id"] = event["trace_id"]
        if kind == "run_start":
            run["backend"] = event.get("backend", "")
            run["total"] = event.get("experiments")
        elif kind == "run_end":
            run["ended"] = True
            run["status"] = event.get("status", "?")
        if eid:
            state = experiments.setdefault(eid, {"status": "scheduled"})
            if kind in ("scheduled", "claimed", "started"):
                # lifecycle only moves forward; a resubmitted task's
                # fresh "claimed" legitimately rewinds it from started
                state["status"] = kind
            elif kind == "result":
                state["status"] = str(event.get("status", "done"))
                state["elapsed_s"] = event.get("elapsed_s")
            elif kind in ("crash", "partition", "resubmit"):
                state["status"] = kind
        if label:
            row = worker_row(label)
            row["last_ts"] = max(row["last_ts"], ts)
            if kind in ("claimed", "started") and eid:
                row["inflight"].add(eid)
            elif kind == "result" and eid:
                row["inflight"].discard(eid)
                row["completed"] += 1
            elif kind in ("crash", "partition") and eid:
                row["inflight"].discard(eid)
            elif kind == "steal":
                row["steals"] += 1
                victim = event.get("victim")
                if victim and eid:
                    worker_row(victim)["inflight"].discard(eid)
            elif kind == "clock":
                row["tier"] = str(event.get("tier", "-"))
    return {"run": run, "experiments": experiments, "workers": workers}


def render_summary(
    summary: dict[str, Any], now: float | None = None
) -> str:
    from repro.experiments.report import Table

    run = summary["run"]
    experiments = summary["experiments"]
    workers = summary["workers"]
    now = time.time() if now is None else now
    done = sum(
        1 for s in experiments.values()
        if s["status"] not in ("scheduled", "claimed", "started", "resubmit")
    )
    lines = []
    header = f"run: {done}/{len(experiments)} experiment(s) finished"
    if run.get("backend"):
        header += f" | backend: {run['backend']}"
    if run.get("trace_id"):
        header += f" | trace: {run['trace_id'][:12]}"
    header += f" | {'ended (' + str(run.get('status')) + ')' if run['ended'] else 'running'}"
    lines.append(header)

    table = Table(
        title="experiments",
        headers=["experiment", "status", "elapsed_s"],
    )
    for eid in sorted(experiments):
        state = experiments[eid]
        table.add_row(eid, state["status"], state.get("elapsed_s", ""))
    lines.append(table.render())

    if workers:
        health = Table(
            title="worker health",
            headers=["worker", "hb_age_s", "inflight", "done", "steals", "clock"],
        )
        for label in sorted(workers):
            row = workers[label]
            age = max(0.0, now - row["last_ts"]) if row["last_ts"] else float("inf")
            health.add_row(
                label,
                round(age, 1) if age != float("inf") else "-",
                ",".join(sorted(row["inflight"])) or "-",
                row["completed"],
                row["steals"],
                row["tier"],
            )
        lines.append(health.render())
    return "\n\n".join(lines)


def _cmd_events(args: argparse.Namespace) -> int:
    while True:
        events = read_events(args.events)
        if not events:
            print(f"no events in {args.events} (yet)")
        else:
            summary = summarize_events(events)
            print(render_summary(summary))
            if args.tail > 0:
                print()
                for event in events[-args.tail:]:
                    print(f"  {format_event(event)}")
            if not args.follow or summary["run"]["ended"]:
                return 0
        if not args.follow:
            return 0
        time.sleep(args.interval)
        print()


# ----------------------------------------------------------------------
# live worker probe
# ----------------------------------------------------------------------

def _cmd_status(args: argparse.Namespace) -> int:
    from repro.runtime.backends.frames import FrameError, FrameStream
    from repro.runtime.backends.remote import parse_address

    address = parse_address(args.status)
    try:
        sock = socket.create_connection(address, timeout=args.timeout_s)
    except OSError as exc:
        print(f"error: cannot reach {address[0]}:{address[1]}: {exc}",
              file=sys.stderr)
        return 2
    stream = FrameStream(sock)
    try:
        stream.send({"type": "status"})
        reply = stream.recv(timeout=args.timeout_s)
    except (OSError, FrameError, TimeoutError) as exc:
        print(f"error: status query failed: {exc}", file=sys.stderr)
        return 2
    finally:
        stream.close()
    if not reply or reply.get("type") != "status_ok":
        print(f"error: unexpected status reply: {reply!r}", file=sys.stderr)
        return 2
    print(f"worker {address[0]}:{address[1]}")
    for key in ("host", "pid", "protocol", "uptime_s", "sessions_total",
                "tasks_served", "tracing"):
        print(f"  {key}: {reply.get(key)}")
    inflight = reply.get("inflight") or []
    print(f"  inflight: {', '.join(inflight) if inflight else '(idle)'}")
    return 0


def progress_main(argv: list[str]) -> int:
    args = _build_parser().parse_args(argv)
    if args.interval <= 0:
        args.interval = 1.0
    try:
        if args.status:
            return _cmd_status(args)
        return _cmd_events(args)
    except KeyboardInterrupt:
        return 0
