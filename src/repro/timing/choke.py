"""Choke-point analytics: CDL, CGL, choke paths, choke buffers.

Definitions (Section 3.2.1 of the paper):

* A *choke point* is a single gate or small group of PV-affected gates
  that dominates the delay of the (sensitised) path containing it, able to
  turn a nominally short path into the post-silicon critical path.
* *Choke Delay Level* (CDL): the additional delay the choke path carries
  beyond the nominal critical path delay, as a percentage of the latter.
* *Choke Gate Level* (CGL): the number of gates forming the choke point,
  as a percentage of the total gate count of the circuit.

The paper bins CDL into four categories: Low (0-5%], Medium-Low (5-10%],
Medium-High (10-20%] and High (>20%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.pv.chip import ChipSample
from repro.timing.dta import single_transition_arrivals
from repro.timing.levelize import LevelizedCircuit
from repro.timing.paths import Path, trace_dynamic_path

#: CDL category labels, in increasing severity.
CDL_CATEGORIES: tuple[str, ...] = ("CDL_L", "CDL_ML", "CDL_MH", "CDL_H")


def classify_cdl(cdl_percent: float) -> str | None:
    """Bin a CDL percentage into the paper's four categories.

    Returns ``None`` for non-positive CDL (the sensitised path did not
    exceed the nominal critical path, so no choke path was created).
    """
    if cdl_percent <= 0.0:
        return None
    if cdl_percent <= 5.0:
        return "CDL_L"
    if cdl_percent <= 10.0:
        return "CDL_ML"
    if cdl_percent <= 20.0:
        return "CDL_MH"
    return "CDL_H"


@dataclass(frozen=True)
class ChokeEvent:
    """One sensitised choke-path occurrence on a fabricated chip."""

    cdl_percent: float
    cgl_percent: float
    category: str
    path: Path
    choke_gate_ids: tuple[int, ...]

    @property
    def num_choke_gates(self) -> int:
        return len(self.choke_gate_ids)

    def resolve_gates(self, netlist) -> tuple[str, ...]:
        """Human-readable labels for the choke gates: ``name[KIND]@L<n>``.

        ``netlist`` is the :class:`~repro.gates.netlist.Netlist` the event
        was analysed on (``circuit.netlist``); unnamed nodes fall back to
        the ``n<id>`` convention of :meth:`Netlist.name_of`.  Used by the
        ``audit why`` CLI so blame lines print gate identities instead of
        raw node indices.
        """
        levels = netlist.levels()
        return tuple(
            f"{netlist.name_of(node_id)}[{netlist.kind(node_id).name}]"
            f"@L{int(levels[node_id])}"
            for node_id in self.choke_gate_ids
        )

    def blame_line(self, netlist) -> str:
        """One-line provenance summary: category, CDL, and gate labels."""
        gates = ", ".join(self.resolve_gates(netlist))
        return (
            f"{self.category} (+{self.cdl_percent:.1f}% over nominal, "
            f"{self.num_choke_gates} gate(s)): {gates}"
        )


def choke_gates_on_path(
    path: Path, chip: ChipSample, ratio_threshold: float = 1.5
) -> tuple[int, ...]:
    """Gates on ``path`` whose fabricated delay exceeds nominal notably.

    These are the gates "forming the choke point" for CGL purposes.
    """
    ratios = chip.delay_ratio()
    return tuple(
        node_id
        for node_id in path.nodes
        if chip.nominal_delays[node_id] > 0 and ratios[node_id] >= ratio_threshold
    )


def fast_gates_on_path(
    path: Path, chip: ChipSample, ratio_threshold: float = 1.5
) -> tuple[int, ...]:
    """Gates on ``path`` significantly *faster* than nominal (choke buffers
    and their kin), i.e. ratio <= 1/ratio_threshold."""
    ratios = chip.delay_ratio()
    return tuple(
        node_id
        for node_id in path.nodes
        if chip.nominal_delays[node_id] > 0 and ratios[node_id] <= 1.0 / ratio_threshold
    )


def analyze_choke_event(
    circuit: LevelizedCircuit,
    chip: ChipSample,
    vector_prev: np.ndarray,
    vector_curr: np.ndarray,
    nominal_critical_delay: float,
    ratio_threshold: float = 1.5,
) -> ChokeEvent | None:
    """Analyse one vector pair for a choke event on ``chip``.

    Runs node-resolved dynamic timing for the transition, and if the
    sensitised critical delay exceeds the PV-free critical path delay,
    traces the sensitised path and measures CDL/CGL.  Returns ``None``
    when no choke path was created.
    """
    if nominal_critical_delay <= 0:
        raise ValueError("nominal_critical_delay must be positive")
    late, _early, toggled = single_transition_arrivals(
        circuit, vector_prev, vector_curr, chip.delays
    )
    out_ids = circuit.output_ids
    out_late = late[out_ids]
    if not np.isfinite(out_late).any():
        return None
    worst_pos = int(np.nanargmax(np.where(np.isfinite(out_late), out_late, -np.inf)))
    worst_output = int(out_ids[worst_pos])
    worst_delay = float(out_late[worst_pos])

    cdl = (worst_delay - nominal_critical_delay) / nominal_critical_delay * 100.0
    category = classify_cdl(cdl)
    if category is None:
        return None

    netlist = circuit.netlist
    path = trace_dynamic_path(netlist, late, chip.delays, worst_output, toggled)
    choke_ids = choke_gates_on_path(path, chip, ratio_threshold)
    if not choke_ids:
        # The excess delay is not attributable to PV-affected gates (e.g.
        # accumulated mild variation); the paper's choke definition
        # requires a dominating affected gate group.
        return None
    cgl = len(choke_ids) / max(netlist.num_gates, 1) * 100.0
    if obs.enabled():
        # Per-chip choke histogram: CDL/CGL samples labelled by the
        # chip's fabrication seed, plus a category counter per the
        # paper's four CDL bins.
        obs.inc("choke.events", category=category)
        obs.inc("choke.cdl", category=category, chip=chip.seed)
        obs.observe("choke.cdl_percent", cdl, chip=chip.seed)
        obs.observe("choke.cgl_percent", cgl, chip=chip.seed)
    return ChokeEvent(
        cdl_percent=cdl,
        cgl_percent=cgl,
        category=category,
        path=path,
        choke_gate_ids=choke_ids,
    )
