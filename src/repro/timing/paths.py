"""Path objects and trace-back through static or dynamic arrivals."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gates.celllib import GateKind
from repro.gates.netlist import Netlist

_TOLERANCE = 1e-4


@dataclass(frozen=True)
class Path:
    """A source-to-endpoint path through the netlist.

    ``nodes`` is ordered source-first; ``delay`` is the accumulated
    propagation delay along the path.
    """

    nodes: tuple[int, ...]
    delay: float

    def __len__(self) -> int:
        return len(self.nodes)

    def gate_kinds(self, netlist: Netlist) -> tuple[GateKind, ...]:
        return tuple(netlist.kind(node_id) for node_id in self.nodes)

    def gate_count(self, netlist: Netlist) -> int:
        """Number of combinational gates on the path (sources excluded)."""
        return sum(
            1 for node_id in self.nodes if netlist.fanins(node_id)
        )


def _trace_back(
    netlist: Netlist,
    arrivals: np.ndarray,
    delays: np.ndarray,
    endpoint: int,
    candidates=None,
) -> Path:
    """Walk from ``endpoint`` to a source following arrival equalities."""
    nodes = [endpoint]
    node = endpoint
    while True:
        fanins = netlist.fanins(node)
        if not fanins:
            break
        target = arrivals[node] - delays[node]
        best = None
        best_gap = None
        for fanin in fanins:
            if candidates is not None and not candidates[fanin]:
                continue
            gap = abs(float(arrivals[fanin]) - float(target))
            if best_gap is None or gap < best_gap:
                best, best_gap = fanin, gap
        if best is None or (best_gap is not None and best_gap > _TOLERANCE * max(1.0, abs(target))):
            # Numerical slack; accept the closest fanin anyway if one exists.
            if best is None:
                break
        node = best
        nodes.append(node)
    nodes.reverse()
    return Path(nodes=tuple(nodes), delay=float(arrivals[endpoint]))


def trace_critical_path(netlist: Netlist, delays: np.ndarray) -> Path:
    """The static longest path to the worst primary output."""
    from repro.timing.sta import arrival_times

    arrivals = arrival_times(netlist, delays, "max")
    endpoint = max(netlist.output_ids, key=lambda node_id: arrivals[node_id])
    return _trace_back(netlist, arrivals, delays, endpoint)


def trace_dynamic_path(
    netlist: Netlist,
    late_arrivals: np.ndarray,
    delays: np.ndarray,
    endpoint: int,
    toggled: np.ndarray,
) -> Path:
    """The sensitised path realising a dynamic late arrival at ``endpoint``.

    ``late_arrivals``/``toggled`` come from
    :func:`repro.timing.dta.single_transition_arrivals`.
    """
    if not toggled[endpoint]:
        raise ValueError(f"endpoint {endpoint} did not toggle")
    return _trace_back(netlist, late_arrivals, delays, endpoint, candidates=toggled)
