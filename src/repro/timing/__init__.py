"""Timing substrate: the paper's "in-house STA tool".

* :mod:`repro.timing.levelize` -- levelised, kind-grouped circuit form
  consumed by the vectorised engines,
* :mod:`repro.timing.logic_eval` -- batch boolean evaluation,
* :mod:`repro.timing.dta` -- dynamic timing analysis: per-cycle sensitised
  max/min transition arrival times for vector pairs,
* :mod:`repro.timing.sta` -- static longest/shortest path analysis,
* :mod:`repro.timing.paths` -- path extraction and trace-back,
* :mod:`repro.timing.choke` -- choke-point analytics (CDL, CGL, choke
  buffers).
"""

from repro.timing.levelize import LevelizedCircuit, levelize
from repro.timing.logic_eval import evaluate_logic
from repro.timing.dta import CycleTimings, cycle_timings, single_transition_arrivals
from repro.timing.sta import (
    arrival_times,
    critical_path_delay,
    output_arrivals,
    shortest_path_delay,
)
from repro.timing.paths import Path, trace_critical_path, trace_dynamic_path
from repro.timing.choke import (
    CDL_CATEGORIES,
    ChokeEvent,
    analyze_choke_event,
    classify_cdl,
)
from repro.timing.report import timing_report

__all__ = [
    "CDL_CATEGORIES",
    "ChokeEvent",
    "CycleTimings",
    "LevelizedCircuit",
    "Path",
    "analyze_choke_event",
    "arrival_times",
    "classify_cdl",
    "critical_path_delay",
    "cycle_timings",
    "evaluate_logic",
    "levelize",
    "output_arrivals",
    "shortest_path_delay",
    "single_transition_arrivals",
    "timing_report",
    "trace_critical_path",
    "trace_dynamic_path",
]
