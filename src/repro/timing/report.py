"""Synthesised-style timing reports (PrimeTime-flavoured text output).

Downstream users of an EDA library expect a timing report: per-path
breakdowns with per-cell increments, slack against a constraint, and a
summary of the endpoint distribution.  :func:`timing_report` produces
one for any (netlist, delay assignment, clock) triple -- handy for
inspecting exactly where a fabricated chip's choke gates land.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gates.netlist import Netlist
from repro.timing.paths import Path, _trace_back
from repro.timing.sta import arrival_times


@dataclass(frozen=True)
class PathReport:
    """One reported path with its per-node arrival breakdown."""

    endpoint_name: str
    path: Path
    arrival: float
    slack: float
    lines: tuple[str, ...]

    def render(self) -> str:
        return "\n".join(self.lines)


def _format_path(
    netlist: Netlist,
    path: Path,
    delays: np.ndarray,
    endpoint_name: str,
    constraint: float,
    chip_ratios: np.ndarray | None,
) -> PathReport:
    lines = [f"  Endpoint: {endpoint_name}"]
    lines.append(f"  {'node':>6s}  {'cell':8s}  {'incr':>9s}  {'arrival':>9s}  note")
    total = 0.0
    for node in path.nodes:
        incr = float(delays[node])
        total += incr
        note = ""
        if chip_ratios is not None and netlist.fanins(node):
            ratio = float(chip_ratios[node])
            if ratio >= 1.5:
                note = f"<-- choke gate ({ratio:.1f}x nominal)"
            elif ratio <= 1 / 1.5:
                note = f"<-- fast gate ({ratio:.2f}x nominal)"
        lines.append(
            f"  {node:6d}  {netlist.kind(node).name:8s}  {incr:9.1f}  "
            f"{total:9.1f}  {note}"
        )
    slack = constraint - total
    verdict = "MET" if slack >= 0 else "VIOLATED"
    lines.append(f"  required {constraint:.1f}  arrival {total:.1f}  "
                 f"slack {slack:.1f} ({verdict})")
    return PathReport(
        endpoint_name=endpoint_name,
        path=path,
        arrival=total,
        slack=slack,
        lines=tuple(lines),
    )


def timing_report(
    netlist: Netlist,
    delays: np.ndarray,
    clock_period: float,
    num_paths: int = 3,
    nominal_delays: np.ndarray | None = None,
) -> str:
    """A text timing report: the ``num_paths`` worst endpoints.

    When ``nominal_delays`` is given (a fabricated chip's PV-free
    reference), per-gate deviation annotations mark choke and fast gates
    along each path.
    """
    if clock_period <= 0:
        raise ValueError("clock_period must be positive")
    if num_paths < 1:
        raise ValueError("num_paths must be at least 1")

    arrivals = arrival_times(netlist, delays, "max")
    chip_ratios = None
    if nominal_delays is not None:
        with np.errstate(divide="ignore", invalid="ignore"):
            chip_ratios = np.where(
                nominal_delays > 0, delays / nominal_delays, 1.0
            )

    endpoints = sorted(
        netlist.outputs.items(), key=lambda item: -arrivals[item[1]]
    )[:num_paths]

    sections = [
        f"Timing report: {netlist.name} "
        f"(clock {clock_period:.1f} ps, {netlist.num_gates} gates)",
    ]
    violations = 0
    for name, node in endpoints:
        path = _trace_back(netlist, arrivals, delays, node)
        report = _format_path(
            netlist, path, delays, name, clock_period, chip_ratios
        )
        if report.slack < 0:
            violations += 1
        sections.append(report.render())
    worst = float(max(arrivals[n] for n in netlist.output_ids))
    sections.append(
        f"Summary: worst arrival {worst:.1f} ps, worst slack "
        f"{clock_period - worst:.1f} ps, "
        f"{violations}/{len(endpoints)} reported endpoints violating"
    )
    return "\n\n".join(sections)
