"""Levelised circuit form for the vectorised logic/timing engines.

Nodes are grouped by (logic level, gate kind) so that each group can be
evaluated with a handful of numpy operations over all cycles at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gates.celllib import GateKind
from repro.gates.netlist import Netlist


@dataclass(frozen=True)
class LevelGroup:
    """All gates of one kind within one logic level."""

    kind: GateKind
    nodes: np.ndarray  # node ids, int32
    in0: np.ndarray
    in1: np.ndarray  # empty for 1-input kinds
    in2: np.ndarray  # empty unless MUX2

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass
class LevelizedCircuit:
    """A netlist reorganised into per-level, per-kind gate groups."""

    netlist: Netlist
    num_nodes: int
    input_ids: np.ndarray
    output_ids: np.ndarray
    const0_ids: np.ndarray
    const1_ids: np.ndarray
    levels: list[list[LevelGroup]]  # levels[0] is the first *gate* level
    node_levels: np.ndarray

    @property
    def depth(self) -> int:
        """Number of gate levels."""
        return len(self.levels)


def levelize(netlist: Netlist) -> LevelizedCircuit:
    """Build the levelised form of ``netlist``."""
    node_levels = netlist.levels()
    kinds = [netlist.kind(node_id) for node_id in range(netlist.num_nodes)]

    input_ids = np.array(netlist.input_ids, dtype=np.int32)
    const0_ids = np.array(
        [i for i, kind in enumerate(kinds) if kind is GateKind.CONST0], dtype=np.int32
    )
    const1_ids = np.array(
        [i for i, kind in enumerate(kinds) if kind is GateKind.CONST1], dtype=np.int32
    )

    max_level = int(node_levels.max()) if netlist.num_nodes else 0
    levels: list[list[LevelGroup]] = []
    for level in range(1, max_level + 1):
        node_ids = np.flatnonzero(node_levels == level)
        by_kind: dict[GateKind, list[int]] = {}
        for node_id in node_ids:
            by_kind.setdefault(kinds[node_id], []).append(int(node_id))
        groups: list[LevelGroup] = []
        for kind, members in sorted(by_kind.items()):
            fanins = [netlist.fanins(node_id) for node_id in members]
            arity = len(fanins[0])
            in0 = np.array([f[0] for f in fanins], dtype=np.int32)
            in1 = (
                np.array([f[1] for f in fanins], dtype=np.int32)
                if arity > 1
                else np.array([], dtype=np.int32)
            )
            in2 = (
                np.array([f[2] for f in fanins], dtype=np.int32)
                if arity > 2
                else np.array([], dtype=np.int32)
            )
            groups.append(
                LevelGroup(
                    kind=kind,
                    nodes=np.array(members, dtype=np.int32),
                    in0=in0,
                    in1=in1,
                    in2=in2,
                )
            )
        levels.append(groups)

    return LevelizedCircuit(
        netlist=netlist,
        num_nodes=netlist.num_nodes,
        input_ids=input_ids,
        output_ids=np.array(netlist.output_ids, dtype=np.int32),
        const0_ids=const0_ids,
        const1_ids=const1_ids,
        levels=levels,
        node_levels=node_levels,
    )
