"""Levelised circuit form for the vectorised logic/timing engines.

Nodes are grouped by (logic level, gate kind) so that each group can be
evaluated with a handful of numpy operations over all cycles at once.

Two views of the same ordering coexist:

* :class:`LevelGroup` / ``LevelizedCircuit.levels`` — the per-object
  view, convenient for traversal code (STA, choke trace-back).
* :class:`GateTable` — the packed structure-of-arrays view the hot
  kernels iterate: every group's node/fanin ids live in one contiguous
  int32 array, sliced by a ``(num_groups + 1)`` offset table, so the
  per-level inner loop is plain slicing with no Python object traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gates.celllib import GateKind, fanin_count
from repro.gates.netlist import Netlist


@dataclass(frozen=True)
class LevelGroup:
    """All gates of one kind within one logic level."""

    kind: GateKind
    nodes: np.ndarray  # node ids, int32
    in0: np.ndarray
    in1: np.ndarray  # empty for 1-input kinds
    in2: np.ndarray  # empty unless MUX2

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass(frozen=True)
class GateTable:
    """Packed (level, kind)-grouped gate arrays, shared by a whole population.

    Group ``g`` covers the half-open slice ``offsets[g]:offsets[g + 1]``
    of the packed arrays.  ``in1``/``in2`` are aligned with ``nodes``
    and hold ``-1`` where the gate kind has no such fanin, so every
    packed array has the same length and a group slice is always valid.
    The table is a pure reindexing of the netlist — it carries no
    per-chip data, which is what lets one table drive the timing of an
    entire Monte Carlo population.
    """

    kinds: tuple[GateKind, ...]  # per group
    arity: np.ndarray  # per group fanin count, int8
    levels: np.ndarray  # per group logic level, int32
    offsets: np.ndarray  # (num_groups + 1,) int32 into the packed arrays
    nodes: np.ndarray  # packed node ids, level-ordered, int32
    in0: np.ndarray  # packed fanin 0
    in1: np.ndarray  # packed fanin 1, -1 where absent
    in2: np.ndarray  # packed fanin 2 (MUX2 select), -1 where absent

    @property
    def num_groups(self) -> int:
        return len(self.kinds)

    @property
    def num_gates(self) -> int:
        return len(self.nodes)

    def group(self, g: int) -> tuple[GateKind, slice]:
        """Gate kind and packed-array slice of group ``g``."""
        return self.kinds[g], slice(int(self.offsets[g]), int(self.offsets[g + 1]))


def pack_gate_table(levels: list[list[LevelGroup]]) -> GateTable:
    """Flatten per-object level groups into one contiguous :class:`GateTable`."""
    kinds: list[GateKind] = []
    group_levels: list[int] = []
    offsets = [0]
    nodes: list[np.ndarray] = []
    in0: list[np.ndarray] = []
    in1: list[np.ndarray] = []
    in2: list[np.ndarray] = []
    for level_index, groups in enumerate(levels, start=1):
        for group in groups:
            size = len(group)
            kinds.append(group.kind)
            group_levels.append(level_index)
            offsets.append(offsets[-1] + size)
            nodes.append(group.nodes)
            in0.append(group.in0)
            missing = np.full(size, -1, dtype=np.int32)
            in1.append(group.in1 if len(group.in1) else missing)
            in2.append(group.in2 if len(group.in2) else missing)

    def _pack(chunks: list[np.ndarray]) -> np.ndarray:
        if not chunks:
            return np.array([], dtype=np.int32)
        return np.ascontiguousarray(np.concatenate(chunks).astype(np.int32))

    return GateTable(
        kinds=tuple(kinds),
        arity=np.array([fanin_count(kind) for kind in kinds], dtype=np.int8),
        levels=np.array(group_levels, dtype=np.int32),
        offsets=np.array(offsets, dtype=np.int32),
        nodes=_pack(nodes),
        in0=_pack(in0),
        in1=_pack(in1),
        in2=_pack(in2),
    )


@dataclass
class LevelizedCircuit:
    """A netlist reorganised into per-level, per-kind gate groups."""

    netlist: Netlist
    num_nodes: int
    input_ids: np.ndarray
    output_ids: np.ndarray
    const0_ids: np.ndarray
    const1_ids: np.ndarray
    levels: list[list[LevelGroup]]  # levels[0] is the first *gate* level
    node_levels: np.ndarray
    table: GateTable | None = None

    @property
    def depth(self) -> int:
        """Number of gate levels."""
        return len(self.levels)

    def gate_table(self) -> GateTable:
        """The packed SoA view of the level groups (built once, cached)."""
        if self.table is None:
            self.table = pack_gate_table(self.levels)
        return self.table


def levelize(netlist: Netlist) -> LevelizedCircuit:
    """Build the levelised form of ``netlist``."""
    node_levels = netlist.levels()
    kinds = [netlist.kind(node_id) for node_id in range(netlist.num_nodes)]

    input_ids = np.array(netlist.input_ids, dtype=np.int32)
    const0_ids = np.array(
        [i for i, kind in enumerate(kinds) if kind is GateKind.CONST0], dtype=np.int32
    )
    const1_ids = np.array(
        [i for i, kind in enumerate(kinds) if kind is GateKind.CONST1], dtype=np.int32
    )

    max_level = int(node_levels.max()) if netlist.num_nodes else 0
    levels: list[list[LevelGroup]] = []
    for level in range(1, max_level + 1):
        node_ids = np.flatnonzero(node_levels == level)
        by_kind: dict[GateKind, list[int]] = {}
        for node_id in node_ids:
            by_kind.setdefault(kinds[node_id], []).append(int(node_id))
        groups: list[LevelGroup] = []
        for kind, members in sorted(by_kind.items()):
            fanins = [netlist.fanins(node_id) for node_id in members]
            arity = len(fanins[0])
            in0 = np.array([f[0] for f in fanins], dtype=np.int32)
            in1 = (
                np.array([f[1] for f in fanins], dtype=np.int32)
                if arity > 1
                else np.array([], dtype=np.int32)
            )
            in2 = (
                np.array([f[2] for f in fanins], dtype=np.int32)
                if arity > 2
                else np.array([], dtype=np.int32)
            )
            groups.append(
                LevelGroup(
                    kind=kind,
                    nodes=np.array(members, dtype=np.int32),
                    in0=in0,
                    in1=in1,
                    in2=in2,
                )
            )
        levels.append(groups)

    return LevelizedCircuit(
        netlist=netlist,
        num_nodes=netlist.num_nodes,
        input_ids=input_ids,
        output_ids=np.array(netlist.output_ids, dtype=np.int32),
        const0_ids=const0_ids,
        const1_ids=const1_ids,
        levels=levels,
        node_levels=node_levels,
    )
