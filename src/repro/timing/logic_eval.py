"""Vectorised boolean evaluation of a levelised circuit.

Evaluates every node's logic value for a whole batch of input vectors at
once.  Semantics must agree with the scalar reference
:func:`repro.gates.celllib.evaluate_gate` (property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.gates.celllib import GateKind
from repro.timing.levelize import GateTable, LevelizedCircuit


def _evaluate_table_group(values: np.ndarray, table: GateTable, g: int) -> None:
    """Compute one packed group's node rows in place from fanin rows."""
    kind, span = table.group(g)
    a = values[table.in0[span]]
    if kind is GateKind.BUF or kind is GateKind.DBUF:
        result = a
    elif kind is GateKind.INV:
        result = ~a
    else:
        b = values[table.in1[span]]
        if kind is GateKind.AND2:
            result = a & b
        elif kind is GateKind.OR2:
            result = a | b
        elif kind is GateKind.NAND2:
            result = ~(a & b)
        elif kind is GateKind.NOR2:
            result = ~(a | b)
        elif kind is GateKind.XOR2:
            result = a ^ b
        elif kind is GateKind.XNOR2:
            result = ~(a ^ b)
        elif kind is GateKind.MUX2:
            sel = values[table.in2[span]]
            result = np.where(sel, b, a)
        else:
            raise ValueError(f"cannot evaluate kind {kind!r}")
    values[table.nodes[span]] = result


def evaluate_logic(circuit: LevelizedCircuit, inputs: np.ndarray) -> np.ndarray:
    """Evaluate all nodes for a batch of input vectors.

    ``inputs`` has shape (num_primary_inputs, num_vectors), rows ordered
    like ``circuit.input_ids``.  Returns a boolean (num_nodes,
    num_vectors) matrix of node values.
    """
    inputs = np.asarray(inputs, dtype=bool)
    if inputs.ndim != 2 or inputs.shape[0] != len(circuit.input_ids):
        raise ValueError(
            f"inputs must be ({len(circuit.input_ids)}, cycles), got {inputs.shape}"
        )
    num_vectors = inputs.shape[1]
    values = np.zeros((circuit.num_nodes, num_vectors), dtype=bool)
    values[circuit.input_ids] = inputs
    if len(circuit.const1_ids):
        values[circuit.const1_ids] = True
    table = circuit.gate_table()
    for g in range(table.num_groups):
        _evaluate_table_group(values, table, g)
    return values


def output_values(circuit: LevelizedCircuit, values: np.ndarray) -> np.ndarray:
    """Extract the primary-output rows of a value matrix."""
    return values[circuit.output_ids]


def output_words(circuit: LevelizedCircuit, values: np.ndarray) -> np.ndarray:
    """Pack primary-output bits into unsigned integers per vector.

    Output ordering follows the netlist's output registration order, which
    for the ALU is LSB first.
    """
    bits = output_values(circuit, values)
    weights = np.left_shift(np.ones(bits.shape[0], dtype=np.uint64), np.arange(bits.shape[0], dtype=np.uint64))
    return (bits.astype(np.uint64) * weights[:, None]).sum(axis=0, dtype=np.uint64)
